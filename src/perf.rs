//! The `perf` subcommand: the continuous-benchmark harness and its
//! regression gate.
//!
//! `perf bench` runs a fixed matrix of pipeline scenarios — the monitor
//! hour loop, feature extraction (pure + finish), clustering sketches,
//! Random-Forest train/classify, store append/read, the daemon's ingest
//! path (wire decode + bounded-queue churn), its hour-boundary SLO
//! accounting (latency quantiles + alert evaluation), and the
//! end-to-end sniff at
//! `--threads 1` and `--threads 0` — each with warmup
//! iterations followed by repeated timed samples, and writes one
//! `BENCH_<scenario>.json` per scenario (schema documented in
//! `ph_prof::bench`). `perf diff OLD NEW` compares two such files with
//! the noise-aware thresholds in `ph_prof::diff` and exits 4 when the
//! candidate regressed, which is what lets `ci.sh` gate on performance.
//!
//! `perf critical-path` analyzes a timeline recorded with `--trace`
//! (from a store's `trace.log` via `--store DIR`, or a standalone
//! `trace.log` path): per-stage busy/stall/idle wall-clock fractions,
//! overall parallel efficiency, and the ranked serialized-phase report
//! that answers why `--threads N` barely beats `--threads 1`.
//!
//! Scenario inputs are generated deterministically from `--seed`
//! (default 42), so two runs on the same machine measure identical
//! work. `--quick` shrinks every scenario to CI-smoke size; the default
//! "full" mode uses `ph_bench::ExperimentScale::small()` so a full
//! matrix still finishes in minutes.

use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::time::Instant;

use ph_exec::ExecConfig;
use ph_prof::{bench_file_name, compare, BenchMeta, BenchReport, DiffConfig, Verdict};
use pseudo_honeypot::core::detector::{build_training_data_with, DetectorConfig, SpamDetector};
use pseudo_honeypot::core::features::{pure_batch, FeatureExtractor, DEFAULT_TAU};
use pseudo_honeypot::core::labeling::clustering::{
    apply_with, merge_candidate_pairs, ClusteringConfig,
};
use pseudo_honeypot::core::labeling::pipeline::{label_collection_with, PipelineConfig};
use pseudo_honeypot::core::labeling::LabeledCollection;
use pseudo_honeypot::core::monitor::{CollectedTweet, Runner, RunnerConfig};
use pseudo_honeypot::serve::{slo, IngestQueue};
use pseudo_honeypot::sim::engine::{Engine, SimConfig};
use pseudo_honeypot::sim::wire::{read_stream_frame, write_stream_frame, StreamFrame};
use pseudo_honeypot::store::{encode_collected, CollectedReader, SegmentLog};

use crate::cli::Args;
use crate::die;

/// Process exit code for a detected perf regression (distinct from
/// 1 = error, 2 = usage, 3 = simulated crash).
const EXIT_REGRESSION: i32 = 4;

/// Scenario input sizes, derived from the mode (`--quick` vs full).
struct Sizes {
    organic: usize,
    campaigns: usize,
    per_campaign: usize,
    gt_hours: u64,
    hours: u64,
    forest_trees: usize,
    seed: u64,
    mode: &'static str,
}

impl Sizes {
    fn quick(seed: u64) -> Self {
        Sizes {
            organic: 300,
            campaigns: 2,
            per_campaign: 8,
            gt_hours: 4,
            hours: 5,
            forest_trees: 5,
            seed,
            mode: "quick",
        }
    }

    fn full(seed: u64) -> Self {
        // Anchor the full mode to the bench crate's CI scale so `perf
        // bench` and the table/figure binaries measure the same work.
        let scale = ph_bench::ExperimentScale::small();
        Sizes {
            organic: scale.organic,
            campaigns: scale.campaigns,
            per_campaign: scale.per_campaign,
            gt_hours: scale.gt_hours,
            hours: scale.hours,
            forest_trees: scale.forest_trees,
            seed,
            mode: "full",
        }
    }

    fn sim_config(&self) -> SimConfig {
        SimConfig {
            seed: self.seed,
            num_organic: self.organic,
            num_campaigns: self.campaigns,
            accounts_per_campaign: self.per_campaign,
            ..Default::default()
        }
    }

    fn detector_config(&self) -> DetectorConfig {
        DetectorConfig {
            forest: ph_ml::forest::RandomForestConfig {
                num_trees: self.forest_trees,
                ..DetectorConfig::default().forest
            },
            ..Default::default()
        }
    }
}

/// Entry point for `perf <bench|diff|critical-path> …`.
pub fn run(args: &Args) {
    match args.positionals.first().map(String::as_str) {
        Some("bench") => bench(args),
        Some("diff") => diff(args),
        Some("critical-path") => critical_path(args),
        Some(other) => {
            eprintln!(
                "error: unknown perf subcommand '{other}' (expected 'bench', 'diff', or 'critical-path')"
            );
            std::process::exit(2);
        }
        None => {
            eprintln!("usage: pseudo-honeypot perf bench [--quick] [--only A,B] [--out-dir DIR]");
            eprintln!("       pseudo-honeypot perf diff OLD.json NEW.json");
            eprintln!("       pseudo-honeypot perf critical-path (--store DIR | TRACE.log)");
            std::process::exit(2);
        }
    }
}

// ---------------------------------------------------------------------------
// perf critical-path
// ---------------------------------------------------------------------------

/// Loads a recorded timeline — from a store directory's `trace.log`
/// (`--store DIR`) or an explicit `trace.log` path — and prints the
/// critical-path analysis. Exit 0 on success, 1 when the trace is
/// missing or empty, 2 on usage errors.
fn critical_path(args: &Args) {
    let log = match (args.options.get("store"), args.positionals.get(1)) {
        (Some(dir), _) => {
            let dir = Path::new(dir);
            let log = pseudo_honeypot::store::read_trace(dir)
                .unwrap_or_else(|e| die(&format!("cannot read trace in {}", dir.display()), e));
            if log.events.is_empty() {
                eprintln!(
                    "error: no timeline trace in {} — record one with: sniff --store {} --trace t.json",
                    dir.display(),
                    dir.display()
                );
                std::process::exit(1);
            }
            log
        }
        (None, Some(path)) => {
            let path = Path::new(path);
            pseudo_honeypot::store::read_trace_file(path)
                .unwrap_or_else(|e| die(&format!("cannot read {}", path.display()), e))
        }
        (None, None) => {
            eprintln!("usage: pseudo-honeypot perf critical-path (--store DIR | TRACE.log)");
            std::process::exit(2);
        }
    };
    print_timeline(&ph_trace::timeline::analyze(&log));
}

/// Renders a [`ph_trace::timeline::TimelineReport`]: the overall
/// parallel-efficiency figure, per-stage busy/stall/idle fractions, the
/// ranked serialized-phase list, and the top-level chain bounding the
/// run. Shared by `perf critical-path` and `inspect --timeline`.
pub fn print_timeline(r: &ph_trace::timeline::TimelineReport) {
    let ms = |us: u64| us as f64 / 1_000.0;
    println!("\ntimeline ({} events dropped while recording):", r.dropped);
    println!(
        "  run wall {:.1} ms, max workers {}, worker busy {:.1} ms",
        ms(r.run_wall_us),
        r.max_workers,
        ms(r.total_busy_us)
    );
    println!(
        "  parallel efficiency {:.3}  =  {:.1} ms busy / ({:.1} ms wall x {} workers)",
        r.parallel_efficiency,
        ms(r.total_busy_us),
        ms(r.run_wall_us),
        r.max_workers
    );

    if !r.stages.is_empty() {
        println!("\nper-stage wall-clock split:");
        println!(
            "  {:<28} {:>5} {:>4} {:>10} {:>7} {:>7} {:>7} {:>8}",
            "stage", "inv", "wrk", "wall ms", "busy", "stall", "idle", "eff.par"
        );
        for s in &r.stages {
            println!(
                "  {:<28} {:>5} {:>4} {:>10.1} {:>6.1}% {:>6.1}% {:>6.1}% {:>8.2}",
                s.name,
                s.invocations,
                s.workers,
                ms(s.wall_us),
                100.0 * s.busy_frac(),
                100.0 * s.stall_frac(),
                100.0 * s.idle_frac(),
                s.effective_parallelism()
            );
        }
    }

    if !r.phases.is_empty() {
        println!("\nwhy t0 \u{2248} t1 — phases ranked by exclusive serialized time:");
        println!(
            "  {:<28} {:>5} {:>10} {:>10} {:>8}  verdict",
            "phase", "inv", "wall ms", "excl ms", "par"
        );
        for p in &r.phases {
            println!(
                "  {:<28} {:>5} {:>10.1} {:>10.1} {:>8.2}  {}",
                p.name,
                p.invocations,
                ms(p.wall_us),
                ms(p.exclusive_us),
                p.parallelism(),
                if p.serialized() {
                    "serialized"
                } else {
                    "parallel"
                }
            );
        }
    }

    if !r.chain.is_empty() {
        println!("\ncritical chain (top-level phases in run order):");
        for link in &r.chain {
            println!(
                "  {:>10.1} ms  {:<28} (+{:.1} ms into the run)",
                ms(link.dur_us),
                link.name,
                ms(link.start_us)
            );
        }
        println!(
            "  {:>10.1} ms  (wall outside any phase)",
            ms(r.uncovered_us)
        );
    }
}

// ---------------------------------------------------------------------------
// perf diff
// ---------------------------------------------------------------------------

fn load_report(path: &str) -> BenchReport {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("cannot read {path}"), e));
    BenchReport::from_json(&text).unwrap_or_else(|e| die(&format!("cannot parse {path}"), e))
}

fn diff(args: &Args) {
    let (Some(old_path), Some(new_path)) = (args.positionals.get(1), args.positionals.get(2))
    else {
        eprintln!("usage: pseudo-honeypot perf diff OLD.json NEW.json");
        std::process::exit(2);
    };
    let old = load_report(old_path);
    let new = load_report(new_path);
    let comparison = compare(&old, &new, &DiffConfig::default())
        .unwrap_or_else(|e| die("cannot compare bench reports", e));
    println!(
        "{}: {:.3} ms -> {:.3} ms  change {:+.1}%  threshold ±{:.1}%  [{}]",
        comparison.scenario,
        comparison.old_median,
        comparison.new_median,
        comparison.change_ratio * 100.0,
        comparison.threshold * 100.0,
        comparison.verdict
    );
    if comparison.verdict == Verdict::Regression {
        eprintln!(
            "error: perf regression in '{}' ({:+.1}% over a ±{:.1}% noise threshold)",
            comparison.scenario,
            comparison.change_ratio * 100.0,
            comparison.threshold * 100.0
        );
        std::process::exit(EXIT_REGRESSION);
    }
}

// ---------------------------------------------------------------------------
// perf bench
// ---------------------------------------------------------------------------

/// Warmup-then-sample measurement of one closure, in milliseconds.
fn measure<F: FnMut()>(warmup: u64, samples: u64, mut f: F) -> Vec<f64> {
    for _ in 0..warmup {
        f();
    }
    let mut out = Vec::with_capacity(samples as usize);
    for _ in 0..samples {
        let start = Instant::now();
        f();
        out.push(start.elapsed().as_secs_f64() * 1_000.0);
    }
    out
}

/// Deterministic inputs shared by the component scenarios, built once
/// outside any timed region: a ground-truth phase (training matrix +
/// detector) followed by a measurement-phase collection.
struct Fixture {
    engine: Engine,
    dataset: ph_ml::data::Dataset,
    detector: SpamDetector,
    collected: Vec<CollectedTweet>,
}

fn build_fixture(sizes: &Sizes, exec: &ExecConfig) -> Fixture {
    let mut engine = Engine::new(sizes.sim_config());
    let runner = Runner::with_exec(
        RunnerConfig {
            seed: sizes.seed,
            ..Default::default()
        },
        exec.clone(),
    );
    let train = runner.run(&mut engine, sizes.gt_hours);
    let ground_truth =
        label_collection_with(&train.collected, &engine, &PipelineConfig::default(), exec);
    let (dataset, _) = build_training_data_with(
        &train.collected,
        &ground_truth.labels,
        &engine,
        DEFAULT_TAU,
        exec,
    );
    let detector = SpamDetector::train(&sizes.detector_config(), &dataset);
    let report = runner.run(&mut engine, sizes.hours);
    Fixture {
        engine,
        dataset,
        detector,
        collected: report.collected,
    }
}

/// One full pipeline pass (ground truth → train → sniff → classify) —
/// the end-to-end scenario body.
fn end_to_end(sizes: &Sizes, threads: usize) {
    let exec = ExecConfig::with_threads(threads);
    let fixture = build_fixture(sizes, &exec);
    let outcome = fixture
        .detector
        .classify_batch(&fixture.collected, &fixture.engine, &exec);
    black_box(outcome.predictions.len());
}

/// The fixed scenario matrix. Every scenario name doubles as the
/// baseline file name via [`bench_file_name`].
const SCENARIOS: &[&str] = &[
    "monitor_hour_loop",
    "feature_extraction",
    "clustering_sketches",
    "rf_train",
    "rf_classify",
    "rf_classify_batch",
    "cluster_merge",
    "store_append",
    "store_read",
    "serve_ingest",
    "serve_latency",
    "sniff_e2e_t1",
    "sniff_e2e_t0",
];

/// Whether a scenario needs the shared [`Fixture`].
fn needs_fixture(name: &str) -> bool {
    matches!(
        name,
        "feature_extraction"
            | "clustering_sketches"
            | "rf_train"
            | "rf_classify"
            | "rf_classify_batch"
            | "cluster_merge"
            | "store_append"
            | "store_read"
            | "serve_ingest"
    )
}

fn scratch_dir(label: &str, seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!("ph-perf-{label}-{}-{seed}", std::process::id()))
}

fn run_scenario(
    name: &str,
    sizes: &Sizes,
    fixture: Option<&Fixture>,
    warmup: u64,
    samples: u64,
) -> Vec<f64> {
    let exec = ExecConfig::sequential();
    let fx = || fixture.expect("fixture prepared for fixture-backed scenarios");
    match name {
        "monitor_hour_loop" => measure(warmup, samples, || {
            // Fresh engine per iteration: the hour loop's cost includes
            // simulator advancement, exactly as a sniff run pays it.
            let mut engine = Engine::new(sizes.sim_config());
            let runner = Runner::with_exec(
                RunnerConfig {
                    seed: sizes.seed,
                    ..Default::default()
                },
                exec.clone(),
            );
            black_box(runner.run(&mut engine, sizes.gt_hours).collected.len());
        }),
        "feature_extraction" => {
            let fixture = fx();
            measure(warmup, samples, || {
                let pure = pure_batch(&fixture.collected, &fixture.engine.rest(), &exec);
                let mut extractor = FeatureExtractor::with_tau(DEFAULT_TAU);
                let mut acc = 0.0f64;
                for (collected, pure) in fixture.collected.iter().zip(pure) {
                    acc += extractor
                        .finish(collected, pure)
                        .first()
                        .copied()
                        .unwrap_or(0.0);
                }
                black_box(acc);
            })
        }
        "clustering_sketches" => {
            let fixture = fx();
            measure(warmup, samples, || {
                let mut labels = LabeledCollection {
                    tweet_labels: vec![None; fixture.collected.len()],
                    ..Default::default()
                };
                apply_with(
                    &fixture.collected,
                    &fixture.engine.rest(),
                    &ClusteringConfig::default(),
                    &exec,
                    &mut labels,
                );
                black_box(labels.num_spam());
            })
        }
        "rf_train" => {
            let fixture = fx();
            measure(warmup, samples, || {
                black_box(SpamDetector::train(
                    &sizes.detector_config(),
                    &fixture.dataset,
                ));
            })
        }
        "rf_classify" => {
            let fixture = fx();
            measure(warmup, samples, || {
                let outcome =
                    fixture
                        .detector
                        .classify_batch(&fixture.collected, &fixture.engine, &exec);
                black_box(outcome.predictions.len());
            })
        }
        "rf_classify_batch" => {
            // The flat-forest batch predict in isolation: train once and
            // copy the dataset into one contiguous row-major matrix
            // outside the timed region, then time `predict_batch` alone.
            let fixture = fx();
            let forest = ph_ml::forest::RandomForest::fit(
                &sizes.detector_config().forest,
                &fixture.dataset,
                sizes.seed,
            );
            let flat = ph_ml::flat::FlatForest::from_forest(&forest);
            let n_rows = fixture.dataset.len();
            let mut matrix = Vec::with_capacity(n_rows * fixture.dataset.num_features());
            for row in fixture.dataset.rows() {
                matrix.extend_from_slice(row);
            }
            measure(warmup, samples, || {
                let probs = flat.predict_batch(&matrix, n_rows);
                black_box(probs.len());
            })
        }
        "cluster_merge" => {
            // The parallel pairwise-verify + union-find merge in
            // isolation, over a deterministic synthetic candidate-pair
            // stream (ring plus seeded long-range chords) so the scenario
            // measures merge mechanics, not sketch construction.
            let universe = 4_096usize;
            let mut pairs = Vec::new();
            let mut x = sizes.seed | 1;
            for i in 0..universe {
                pairs.push((i, (i + 1) % universe));
                // xorshift64 chord endpoints.
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                pairs.push((i, (x as usize) % universe));
            }
            measure(warmup, samples, || {
                let mut uf = ph_sketch::UnionFind::new(universe);
                merge_candidate_pairs(
                    &exec,
                    "clustering.bench_merge",
                    universe,
                    pairs.clone(),
                    |i, j| (i + j) % 3 != 0,
                    &mut uf,
                );
                black_box(uf.component_count());
            })
        }
        "store_append" => {
            let fixture = fx();
            let payloads: Vec<Vec<u8>> = fixture.collected.iter().map(encode_collected).collect();
            let dir = scratch_dir("append", sizes.seed);
            let result = measure(warmup, samples, || {
                let _ = std::fs::remove_dir_all(&dir);
                std::fs::create_dir_all(&dir).expect("scratch dir");
                let mut log =
                    SegmentLog::create(&dir, 8 * 1024 * 1024).expect("segment log create");
                log.append_batch(&payloads).expect("append");
                log.sync().expect("sync");
            });
            let _ = std::fs::remove_dir_all(&dir);
            result
        }
        "store_read" => {
            let fixture = fx();
            let dir = scratch_dir("read", sizes.seed);
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).expect("scratch dir");
            {
                let payloads: Vec<Vec<u8>> =
                    fixture.collected.iter().map(encode_collected).collect();
                let mut log =
                    SegmentLog::create(&dir, 8 * 1024 * 1024).expect("segment log create");
                log.append_batch(&payloads).expect("append");
                log.sync().expect("sync");
            }
            let result = measure(warmup, samples, || {
                let reader = CollectedReader::open(&dir).expect("reader");
                let mut count = 0usize;
                for record in reader {
                    black_box(record.expect("stored record readable"));
                    count += 1;
                }
                assert_eq!(count, fixture.collected.len(), "short read");
            });
            let _ = std::fs::remove_dir_all(&dir);
            result
        }
        "serve_ingest" => {
            let fixture = fx();
            // The daemon's ingest hot path, isolated from sockets: one
            // wire stream pre-encoded outside the timed region, then per
            // sample a full decode with every frame pushed through (and
            // popped back out of) the shedding bounded queue.
            let mut wire = Vec::new();
            for collected in &fixture.collected {
                write_stream_frame(&mut wire, &StreamFrame::Tweet(collected.tweet.clone()))
                    .expect("wire encode");
            }
            write_stream_frame(&mut wire, &StreamFrame::Shutdown).expect("wire encode");
            measure(warmup, samples, || {
                let queue = IngestQueue::new(pseudo_honeypot::sim::api::DEFAULT_QUEUE_CAPACITY);
                let mut reader = wire.as_slice();
                let mut frames = 0usize;
                while let Some(frame) = read_stream_frame(&mut reader).expect("wire decode") {
                    queue.push(frame);
                    black_box(queue.pop_timeout(std::time::Duration::ZERO));
                    frames += 1;
                }
                assert_eq!(frames, fixture.collected.len() + 1, "short stream");
            })
        }
        "serve_latency" => {
            // The daemon's hour-boundary SLO accounting, isolated from
            // the pipeline: per sample, every hour records its latency
            // batch (cumulative histogram, exact quantile gauges, the
            // per-hour series) and the alert engine evaluates the armed
            // rule against it. Batches are synthesized outside the
            // timed region from the seed; odd hours spike past the
            // limit so both the fire and recover transitions run.
            let target = slo::SloTarget::parse("p99:250").expect("static SLO spec");
            let per_hour = sizes.organic.max(1);
            let mut state = sizes.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let batches: Vec<Vec<f64>> = (0..sizes.hours.max(3))
                .map(|hour| {
                    (0..per_hour)
                        .map(|_| {
                            let base = (next() % 200) as f64;
                            if hour % 2 == 1 {
                                base + 300.0
                            } else {
                                base
                            }
                        })
                        .collect()
                })
                .collect();
            measure(warmup, samples, || {
                ph_telemetry::alert_reset();
                ph_telemetry::alert_install(target.rule());
                let mut transitions = 0usize;
                for (hour, batch) in batches.iter().enumerate() {
                    black_box(slo::record_hour(hour as u64, batch));
                    transitions += ph_telemetry::alert_evaluate(hour as u64).len();
                }
                assert!(transitions >= 2, "the alert engine never transitioned");
            })
        }
        "sniff_e2e_t1" => measure(warmup, samples, || end_to_end(sizes, 1)),
        "sniff_e2e_t0" => measure(warmup, samples, || end_to_end(sizes, 0)),
        other => die("unknown scenario", format!("'{other}'")),
    }
}

fn rustc_version() -> String {
    std::process::Command::new("rustc")
        .arg("--version")
        .output()
        .ok()
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn bench(args: &Args) {
    let quick = args.has_flag("quick");
    let seed = args.get_u64("seed", 42);
    let sizes = if quick {
        Sizes::quick(seed)
    } else {
        Sizes::full(seed)
    };
    let warmup = args.get_u64("warmup", if quick { 1 } else { 2 });
    let samples = args.get_u64("samples", if quick { 3 } else { 5 }).max(1);
    let out_dir = PathBuf::from(args.get_str("out-dir", "."));

    let selected: Vec<&str> = match args.options.get("only") {
        Some(list) => {
            let wanted: Vec<&str> = list.split(',').map(str::trim).collect();
            for w in &wanted {
                if !SCENARIOS.contains(w) {
                    eprintln!(
                        "error: unknown scenario '{w}' (known: {})",
                        SCENARIOS.join(", ")
                    );
                    std::process::exit(2);
                }
            }
            SCENARIOS
                .iter()
                .copied()
                .filter(|s| wanted.contains(s))
                .collect()
        }
        None => SCENARIOS.to_vec(),
    };

    let rustc = rustc_version();
    println!(
        "perf bench: {} scenarios, mode {}, warmup {}, samples {}, seed {}",
        selected.len(),
        sizes.mode,
        warmup,
        samples,
        seed
    );

    // The component scenarios share one deterministic fixture, built
    // outside every timed region.
    let fixture = selected
        .iter()
        .any(|s| needs_fixture(s))
        .then(|| build_fixture(&sizes, &ExecConfig::sequential()));

    for name in selected {
        let samples_ms = run_scenario(name, &sizes, fixture.as_ref(), warmup, samples);
        let meta = BenchMeta {
            rustc: rustc.clone(),
            threads: if name == "sniff_e2e_t0" { 0 } else { 1 },
            seed,
            crate_version: env!("CARGO_PKG_VERSION").to_string(),
            mode: sizes.mode.to_string(),
        };
        let report = BenchReport::from_samples(name, warmup, samples_ms, meta);
        let path = out_dir.join(bench_file_name(name));
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .unwrap_or_else(|e| die(&format!("cannot create {}", parent.display()), e));
            }
        }
        std::fs::write(&path, report.to_json())
            .unwrap_or_else(|e| die(&format!("cannot write {}", path.display()), e));
        println!(
            "  {:<22} median {:>10.3} ms  iqr {:>8.3} ms  ({} samples) -> {}",
            report.scenario,
            report.median,
            report.iqr,
            report.samples.len(),
            path.display()
        );
    }
}
