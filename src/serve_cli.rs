//! The `serve` and `feed` subcommands: the long-lived sniffer daemon and
//! its standalone wire-protocol producer.
//!
//! ```text
//! pseudo-honeypot serve --store DIR [--hours H] [--gt-hours H] [--seed S]
//!                       [--listen ADDR] [--http ADDR|none] [--verdicts FILE]
//!                       [--resume] [--loadgen] [--rate R] [--stop-after H]
//!                       [--slo pQQ:MS] [--watchdog-ticks N]
//!                       [--throttle-ms MS [--throttle-hours H]]
//! pseudo-honeypot feed  --connect ADDR [--hours H] [--start-hour H]
//!                       [--gt-hours H] [--seed S] [--rate R]
//! ```
//!
//! Service health: `--slo` arms the ingest→verdict latency SLO (per-hour
//! quantiles in `serve.latency_ms.*`, a breach degrades `/healthz` to
//! 503 and recovers when the quantile cools), `--watchdog-ticks` arms
//! the stage watchdog, SIGQUIT dumps the flight recorder into the store
//! without stopping, and a panic dumps the same ring before dying —
//! `inspect --flight` renders any of those dumps later. `feed` retries
//! its connect with bounded exponential backoff so it can race a daemon
//! that is still binding; exhausted retries exit 2 with a hint.
//!
//! `serve` binds an ingest socket (TCP `host:port` or, for anything
//! containing a `/`, a Unix-socket path), runs monitor → extract →
//! classify continuously against the frames it receives, appends live
//! NDJSON verdicts, checkpoints through `ph-store`, and drains cleanly
//! on SIGTERM/SIGINT — `--resume` then continues mid-run with a
//! byte-identical verdict stream. `feed` is the matching producer: it
//! rebuilds the deterministic engine and streams its firehose at an
//! open-loop `--rate` (events/second; 0 = unpaced).

use std::io;
use std::path::PathBuf;

use ph_telemetry::log_warn;
use pseudo_honeypot::serve::daemon::{LoadgenConfig, ServeConfig, ThrottleConfig};
use pseudo_honeypot::serve::loadgen::FeedConfig;
use pseudo_honeypot::serve::slo::SloTarget;
use pseudo_honeypot::serve::{daemon, loadgen, signal, BindAddr};
use pseudo_honeypot::store::{Manifest, StoreConfig};

use crate::cli::Args;
use crate::{die, exec_config, record_run_meta};

/// A stopped-but-checkpointed run's exit code: the daemon (or a
/// `--store` sniff) received SIGTERM/SIGINT, drained at an hour
/// boundary, and wrote a checkpoint — `--resume` continues it.
pub const EXIT_INTERRUPTED: i32 = 5;

/// The manifest the CLI arguments describe (same defaults as `sniff`).
fn manifest_from(args: &Args) -> Manifest {
    Manifest {
        sim_seed: args.get_u64("seed", 42),
        organic: args.get_u64("organic", 2_000),
        campaigns: args.get_u64("campaigns", 6),
        per_campaign: args.get_u64("per-campaign", 20),
        runner_seed: args.get_u64("seed", 42),
        gt_hours: args.get_u64("gt-hours", 24),
        hours: args.get_u64("hours", 24),
        buffer_capacity: pseudo_honeypot::sim::api::DEFAULT_QUEUE_CAPACITY as u64,
        taste_flip: args.get_u64(
            "taste-flip",
            pseudo_honeypot::store::manifest::NO_TASTE_FLIP,
        ),
    }
}

/// Parses `--rate R` (events/second, fractional allowed; 0 = unpaced).
fn rate_from(args: &Args) -> f64 {
    match args.options.get("rate") {
        None => 0.0,
        Some(raw) => match raw.parse::<f64>() {
            Ok(rate) if rate >= 0.0 && rate.is_finite() => rate,
            _ => {
                eprintln!("error: --rate expects a non-negative number, got '{raw}'");
                std::process::exit(2);
            }
        },
    }
}

/// `pseudo-honeypot serve` — returns the process exit code (0 done,
/// [`EXIT_INTERRUPTED`] stopped early but resumable).
pub fn serve(args: &Args) -> i32 {
    let Some(dir) = args.options.get("store").map(PathBuf::from) else {
        eprintln!("error: serve requires --store DIR");
        std::process::exit(2);
    };
    let resume = args.has_flag("resume");
    if resume {
        for key in [
            "seed",
            "organic",
            "campaigns",
            "per-campaign",
            "gt-hours",
            "hours",
        ] {
            if args.options.contains_key(key) {
                log_warn!("--{key} ignored on --resume: the store manifest pins it");
            }
        }
    }
    let manifest = manifest_from(args);
    let exec = exec_config(args);
    record_run_meta(exec.threads, manifest.sim_seed);

    let listen = match args.options.get("listen") {
        Some(spec) => BindAddr::parse(spec),
        None => BindAddr::Unix(dir.join("ingest.sock")),
    };
    let http = match args.options.get("http").map(String::as_str) {
        Some("none") => None,
        Some(addr) => Some(addr.to_string()),
        None => Some("127.0.0.1:0".to_string()),
    };
    let slo = args.options.get("slo").map(|spec| {
        SloTarget::parse(spec).unwrap_or_else(|e| {
            eprintln!("error: --slo {e}");
            std::process::exit(2);
        })
    });
    let throttle = args
        .options
        .contains_key("throttle-ms")
        .then(|| ThrottleConfig {
            ms: args.get_u64("throttle-ms", 0),
            // Default: throttle every hour — pass --throttle-hours to
            // get the breach-then-recover shape.
            hours: args.get_u64("throttle-hours", u64::MAX),
        });

    // SIGQUIT is the operator's "what is the daemon doing right now":
    // it dumps the flight recorder into the store and keeps serving. A
    // panic dumps the same ring before dying, so the incident's last
    // moments survive the process.
    signal::install_dump();
    let panic_dir = dir.clone();
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let _ = pseudo_honeypot::store::write_flight(&panic_dir, &ph_telemetry::flight_snapshot());
        default_hook(info);
    }));

    let config = ServeConfig {
        dir: dir.clone(),
        manifest,
        resume,
        store: StoreConfig::default(),
        exec,
        listen,
        http,
        verdicts: args.options.get("verdicts").map(PathBuf::from),
        loadgen: args.has_flag("loadgen").then(|| LoadgenConfig {
            rate: rate_from(args),
        }),
        stop: signal::install(),
        stop_after_hours: args
            .options
            .contains_key("stop-after")
            .then(|| args.get_u64("stop-after", 0)),
        explain: args.has_flag("explain"),
        slo,
        watchdog_ticks: args.get_u64("watchdog-ticks", 0),
        throttle,
    };
    let outcome = daemon::run(config)
        .unwrap_or_else(|e| die(&format!("serve failed on {}", dir.display()), e));
    println!(
        "serve: {} of {} h monitored, {} records, {} verdicts, {} shed",
        outcome.hours_done, outcome.total_hours, outcome.records, outcome.verdicts, outcome.shed
    );
    if outcome.stopped_early {
        println!(
            "stopped early at a checkpointed hour boundary — continue with:\n  \
             pseudo-honeypot serve --store {} --resume",
            dir.display()
        );
        EXIT_INTERRUPTED
    } else {
        0
    }
}

/// `pseudo-honeypot feed` — always exits 0 on success (a vanished daemon
/// is an error: the producer is open-loop, it never waits for one).
pub fn feed(args: &Args) -> i32 {
    let Some(addr) = args.options.get("connect") else {
        eprintln!("error: feed requires --connect ADDR (the daemon's ingest socket)");
        std::process::exit(2);
    };
    let addr = BindAddr::parse(addr);
    let manifest = manifest_from(args);
    let start_hour = args.get_u64("start-hour", 0);
    if start_hour >= manifest.hours {
        eprintln!(
            "error: --start-hour {start_hour} is past the run's {} hours",
            manifest.hours
        );
        std::process::exit(2);
    }
    let config = FeedConfig {
        manifest,
        start_hour,
        end_hour: manifest.hours,
        rate: rate_from(args),
    };
    let summary = match loadgen::feed(&addr, &config) {
        Ok(summary) => summary,
        Err(e)
            if matches!(
                e.kind(),
                io::ErrorKind::ConnectionRefused
                    | io::ErrorKind::NotFound
                    | io::ErrorKind::AddrNotAvailable
            ) =>
        {
            // Retries are exhausted (connect_with_retry already backed
            // off for ~6 s) — the daemon simply isn't there. That's a
            // usage problem, not a runtime failure.
            eprintln!("error: no daemon listening at {addr} ({e})");
            eprintln!("hint: start one first — pseudo-honeypot serve --store DIR --listen {addr}");
            std::process::exit(2);
        }
        Err(e) => die(&format!("feed to {addr} failed"), e),
    };
    println!(
        "feed: delivered {} tweets over {} hours to {addr}",
        summary.tweets, summary.hours
    );
    0
}
