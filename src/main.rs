//! The `pseudo-honeypot` command-line interface.
//!
//! ```text
//! pseudo-honeypot attributes                      list the 24-attribute taxonomy
//! pseudo-honeypot simulate  [--hours H] [--organic N] [--seed S]
//! pseudo-honeypot sniff     [--hours H] [--gt-hours H] [--organic N] [--seed S]
//! pseudo-honeypot showdown  [--hours H] [--nodes N] [--seed S]
//! ```
//!
//! `sniff` runs the complete paper pipeline: deploy the Table I/II network
//! on a simulated Twitter, collect, build ground truth, train the RF
//! detector, and report what it caught.

use pseudo_honeypot::core::attributes::{AttributeKind, ProfileAttribute, SampleAttribute};
use pseudo_honeypot::core::baselines::run_random_baseline;
use pseudo_honeypot::core::detector::{build_training_data, DetectorConfig, SpamDetector};
use pseudo_honeypot::core::labeling::pipeline::{format_table3, label_collection, PipelineConfig};
use pseudo_honeypot::core::monitor::{Runner, RunnerConfig};
use pseudo_honeypot::core::pge::{overall_pge, pge_ranking_with_min};
use pseudo_honeypot::sim::engine::{Engine, SimConfig};

mod cli;
use cli::Args;

fn main() {
    let args = Args::parse(std::env::args().skip(1));
    match args.command.as_deref() {
        Some("attributes") => attributes(),
        Some("simulate") => simulate(&args),
        Some("sniff") => sniff(&args),
        Some("showdown") => showdown(&args),
        Some(other) => {
            eprintln!("unknown command '{other}'");
            usage();
            std::process::exit(2);
        }
        None => usage(),
    }
}

fn usage() {
    println!("pseudo-honeypot — attribute-driven spam sniffing (DSN 2019 reproduction)");
    println!();
    println!("commands:");
    println!("  attributes                          list the 24-attribute taxonomy (Table I/II)");
    println!("  simulate  [--hours H] [--organic N] [--seed S]");
    println!("                                      run the social-network simulator and print stats");
    println!("  sniff     [--hours H] [--gt-hours H] [--organic N] [--seed S]");
    println!("                                      full pipeline: monitor, label, train, detect");
    println!("  showdown  [--hours H] [--nodes N] [--seed S]");
    println!("                                      pseudo-honeypot vs random accounts");
}

fn sim_config(args: &Args) -> SimConfig {
    SimConfig {
        seed: args.get_u64("seed", 42),
        num_organic: args.get_u64("organic", 2_000) as usize,
        num_campaigns: args.get_u64("campaigns", 6) as usize,
        accounts_per_campaign: args.get_u64("per-campaign", 20) as usize,
        ..Default::default()
    }
}

fn attributes() {
    println!("C1 — profile-based attributes and Table II sample values:");
    for (i, attr) in ProfileAttribute::ALL.iter().enumerate() {
        let values: Vec<String> = attr
            .sample_values()
            .iter()
            .map(|v| {
                if v.fract().abs() < 1e-9 {
                    format!("{}", *v as i64)
                } else {
                    format!("{v:.3}")
                }
            })
            .collect();
        println!("  {:>2}. {:<32} {}", i + 1, attr.label(), values.join(" "));
    }
    println!("\nC2/C3 — topical attributes:");
    for kind in AttributeKind::all()
        .into_iter()
        .filter(|k| !matches!(k, AttributeKind::Profile(_)))
    {
        println!("   - {kind}");
    }
    let slots = SampleAttribute::standard_slots();
    println!(
        "\nstandard network: {} slots × 10 accounts = up to {} nodes",
        slots.len(),
        slots.len() * 10
    );
}

fn simulate(args: &Args) {
    let hours = args.get_u64("hours", 24);
    let mut engine = Engine::new(sim_config(args));
    println!(
        "simulating {hours} h over {} accounts…",
        engine.rest().num_accounts()
    );
    engine.run_hours(hours);
    let stats = engine.stats();
    println!("tweets:            {}", stats.tweets);
    println!("  spam:            {}", stats.spam_tweets);
    println!("  with mentions:   {}", stats.mention_tweets);
    println!("suspended:         {}", stats.suspended_accounts);
    println!(
        "accounts now:      {} (campaign churn adds replacements)",
        engine.rest().num_accounts()
    );
}

fn sniff(args: &Args) {
    let gt_hours = args.get_u64("gt-hours", 24);
    let hours = args.get_u64("hours", 24);
    let name = args.get_str("name", "sniffing campaign");
    println!("== {name} ==");
    let mut engine = Engine::new(sim_config(args));
    let runner = Runner::new(RunnerConfig {
        seed: args.get_u64("seed", 42),
        ..Default::default()
    });

    println!("phase 1: ground truth — standard network, {gt_hours} h…");
    let train_report = runner.run(&mut engine, gt_hours);
    let ground_truth = label_collection(&train_report.collected, &engine, &PipelineConfig::default());
    println!("{}", format_table3(&ground_truth.summary));

    println!("phase 2: training the Random Forest detector…");
    let (data, _) = build_training_data(
        &train_report.collected,
        &ground_truth.labels,
        &engine,
        pseudo_honeypot::core::features::DEFAULT_TAU,
    );
    let detector = SpamDetector::train(&DetectorConfig::default(), &data);

    println!("phase 3: sniffing for {hours} h…");
    let report = runner.run(&mut engine, hours);
    let outcome = detector.classify_collection(&report.collected, &engine);
    println!(
        "collected {} tweets from {} accounts",
        report.collected.len(),
        report.unique_authors()
    );
    println!(
        "classified {} spams from {} spammer accounts",
        outcome.num_spam(),
        outcome.num_spammers()
    );
    let ranking = pge_ranking_with_min(&report, &outcome.predictions, hours as f64 * 2.0);
    println!("\ntop attributes by PGE:");
    for entry in ranking.iter().take(5) {
        println!(
            "  {:<44} PGE {:.4} ({} spammers)",
            entry.slot.describe(),
            entry.pge,
            entry.spammers
        );
    }
    if args.has_flag("verify") {
        let oracle = engine.ground_truth();
        let correct = report
            .collected
            .iter()
            .zip(&outcome.predictions)
            .filter(|(c, &p)| p == oracle.is_spam(&c.tweet))
            .count();
        println!(
            "\noracle check: {:.2}% of verdicts correct",
            100.0 * correct as f64 / report.collected.len().max(1) as f64
        );
    }
}

fn showdown(args: &Args) {
    let hours = args.get_u64("hours", 36);
    let nodes = args.get_u64("nodes", 100) as usize;
    let seed = args.get_u64("seed", 42);

    let mut ph_engine = Engine::new(sim_config(args));
    let runner = Runner::new(RunnerConfig {
        seed,
        ..Default::default()
    });
    let ph = runner.run(&mut ph_engine, hours);
    let ph_oracle = ph_engine.ground_truth();
    let ph_flags: Vec<bool> = ph
        .collected
        .iter()
        .map(|c| ph_oracle.is_spam(&c.tweet))
        .collect();

    let mut rnd_engine = Engine::new(sim_config(args));
    let rnd = run_random_baseline(&mut rnd_engine, nodes, hours, seed);
    let rnd_oracle = rnd_engine.ground_truth();
    let rnd_flags: Vec<bool> = rnd
        .collected
        .iter()
        .map(|c| rnd_oracle.is_spam(&c.tweet))
        .collect();

    let (ph_pge, rnd_pge) = (overall_pge(&ph, &ph_flags), overall_pge(&rnd, &rnd_flags));
    println!("{hours} h head-to-head (oracle-scored):");
    println!(
        "  pseudo-honeypot: {} tweets, PGE {:.4}",
        ph.collected.len(),
        ph_pge
    );
    println!(
        "  random accounts: {} tweets, PGE {:.4}",
        rnd.collected.len(),
        rnd_pge
    );
    if rnd_pge > 0.0 {
        println!("  advantage: {:.2}×", ph_pge / rnd_pge);
    }
}
