//! The `pseudo-honeypot` command-line interface.
//!
//! ```text
//! pseudo-honeypot attributes                      list the 24-attribute taxonomy
//! pseudo-honeypot simulate  [--hours H] [--organic N] [--seed S]
//! pseudo-honeypot sniff     [--hours H] [--gt-hours H] [--organic N] [--seed S]
//!                           [--store DIR] [--resume] [--crash-after H]
//! pseudo-honeypot serve     --store DIR [--listen ADDR] [--http ADDR]
//!                           [--resume] [--loadgen] [--rate R]
//!                           [--slo pQQ:MS] [--watchdog-ticks N]
//! pseudo-honeypot feed      --connect ADDR [--hours H] [--start-hour H] [--rate R]
//! pseudo-honeypot replay    --store DIR
//! pseudo-honeypot inspect   --store DIR [--top K] [--tail N] [--timeline] [--flight]
//! pseudo-honeypot showdown  [--hours H] [--nodes N] [--seed S]
//! pseudo-honeypot perf bench [--quick] [--only NAMES] [--out-dir DIR]
//! pseudo-honeypot perf diff OLD.json NEW.json
//! pseudo-honeypot perf critical-path (--store DIR | TRACE.log)
//! ```
//!
//! Global options (any subcommand):
//!
//! ```text
//! --metrics-out FILE       write a machine-readable run report (spans,
//!                          counters, gauges, histograms, series) on exit
//! --metrics-format FMT     json (default) | prom (Prometheus text 0.0.4)
//! --log-level LEVEL        error | warn | info (default) | debug
//! --quiet                  silence all progress logging
//! --progress               live one-line progress on stderr (stdout is
//!                          untouched — safe to pipe)
//! --profile                enable the counting allocator + per-stage
//!                          attribution; `prof.*` metrics land in the
//!                          `--metrics-out` report (stdout is unchanged)
//! --trace FILE             record the causal timeline (per-worker
//!                          batches, stalls, merge waits, queue depths,
//!                          pipeline phases) and export it as Chrome
//!                          trace-event JSON — load FILE in Perfetto.
//!                          Stdout is byte-identical to an untraced run
//! ```
//!
//! `sniff` runs the complete paper pipeline: deploy the Table I/II network
//! on a simulated Twitter, collect, build ground truth, train the RF
//! detector, and report what it caught. `serve` runs the same pipeline as
//! a long-lived daemon against a live socket feed (see `serve_cli`).
//!
//! Exit codes: 0 success, 1 runtime error, 2 usage error, 3 simulated
//! crash (`--crash-after`), 4 perf regression (`perf diff`), 5
//! interrupted-and-checkpointed (SIGINT/SIGTERM on `sniff --store` or
//! `serve`; the run continues with `--resume`).

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use ph_exec::ExecConfig;
use ph_telemetry::{log_info, log_warn};
use pseudo_honeypot::core::attributes::{AttributeKind, ProfileAttribute, SampleAttribute};
use pseudo_honeypot::core::baselines::run_random_baseline;
use pseudo_honeypot::core::detector::{build_training_data_with, DetectorConfig, SpamDetector};
use pseudo_honeypot::core::labeling::pipeline::{
    format_table3, label_collection_stream_with, label_collection_with, PipelineConfig,
};
use pseudo_honeypot::core::monitor::{
    CollectedTweet, MonitorReport, RunState, Runner, RunnerConfig,
};
use pseudo_honeypot::core::pge::{
    overall_pge, per_hour_attribute_pge, per_hour_stats, pge_ranking_with_min,
};
use pseudo_honeypot::sim::engine::{Engine, SimConfig};
use pseudo_honeypot::store::{Manifest, ResumedStore, Store, StoreConfig};

mod cli;
mod perf;
mod serve_cli;
use cli::Args;

/// The whole binary runs under the counting allocator: until
/// `--profile` flips it on it costs one relaxed atomic load per
/// allocation, and with it on every pipeline stage's allocations are
/// attributed by the `ph_prof::scope` hooks inside `ph-exec`.
#[global_allocator]
static ALLOC: ph_prof::CountingAllocator = ph_prof::CountingAllocator::new();

/// Options/flags accepted by every subcommand.
const GLOBAL_OPTIONS: &[&str] = &["metrics-out", "metrics-format", "log-level", "trace"];
const GLOBAL_FLAGS: &[&str] = &["quiet", "progress", "profile"];

/// Simulator-shaping options shared by the engine-driving subcommands.
const SIM_OPTIONS: &[&str] = &["seed", "organic", "campaigns", "per-campaign"];

fn main() {
    let args = Args::parse(std::env::args().skip(1));
    configure_logging(&args);
    // Subcommands that can stop early-but-resumable (SIGINT/SIGTERM on
    // `sniff --store` or `serve`) report it through this code so the
    // metrics/trace exports below still run before the process exits.
    let mut exit_code = 0;
    match args.command.as_deref() {
        Some("attributes") => {
            validate_options(&args, &[], &[]);
            attributes();
        }
        Some("simulate") => {
            validate_options(&args, &with_sim(&["hours"]), &[]);
            simulate(&args);
        }
        Some("sniff") => {
            validate_options(
                &args,
                &with_sim(&[
                    "hours",
                    "gt-hours",
                    "name",
                    "store",
                    "crash-after",
                    "threads",
                    "taste-flip",
                ]),
                &["verify", "resume", "explain"],
            );
            exit_code = sniff(&args);
        }
        Some("serve") => {
            validate_options(
                &args,
                &with_sim(&[
                    "hours",
                    "gt-hours",
                    "store",
                    "listen",
                    "http",
                    "verdicts",
                    "rate",
                    "stop-after",
                    "threads",
                    "taste-flip",
                    "slo",
                    "watchdog-ticks",
                    "throttle-ms",
                    "throttle-hours",
                ]),
                &["resume", "loadgen", "explain"],
            );
            exit_code = serve_cli::serve(&args);
        }
        Some("feed") => {
            validate_options(
                &args,
                &with_sim(&["hours", "gt-hours", "start-hour", "connect", "rate"]),
                &[],
            );
            exit_code = serve_cli::feed(&args);
        }
        Some("replay") => {
            validate_options(&args, &["store", "threads"], &["verify"]);
            replay(&args);
        }
        Some("inspect") => {
            validate_options(
                &args,
                &["store", "top", "tail", "window"],
                &["timeline", "drift", "flight"],
            );
            inspect(&args);
        }
        Some("explain") => {
            validate_options(&args, &["store", "seq", "top"], &[]);
            explain(&args);
        }
        Some("showdown") => {
            validate_options(&args, &with_sim(&["hours", "nodes", "threads"]), &[]);
            showdown(&args);
        }
        Some("perf") => {
            validate_options(
                &args,
                &[
                    "only", "samples", "warmup", "out-dir", "seed", "threads", "store",
                ],
                &["quick"],
            );
            perf::run(&args);
        }
        Some(other) => {
            eprintln!("unknown command '{other}'");
            usage();
            std::process::exit(2);
        }
        None => usage(),
    }
    if args.has_flag("profile") {
        // Flush the allocator/CPU/wall rollups into the registry so the
        // metrics report written next carries them.
        ph_prof::publish();
    }
    write_metrics(&args);
    write_trace_export(&args);
    if exit_code != 0 {
        std::process::exit(exit_code);
    }
}

/// Applies `--quiet` / `--log-level` / `--progress` / `--profile` before
/// anything can log or allocate meaningfully, and validates
/// `--metrics-format` up front so a typo fails before hours of
/// monitoring, not after.
fn configure_logging(args: &Args) {
    if args.has_flag("profile") {
        ph_prof::enable();
    }
    if args.flags.iter().any(|f| f == "trace") {
        eprintln!("error: --trace expects a file path for the Chrome trace-event JSON export");
        eprintln!("hint: pseudo-honeypot sniff --threads 0 --trace timeline.json");
        std::process::exit(2);
    }
    if args.options.contains_key("trace") {
        // Flip the recorder on before any stage can run; everything else
        // about tracing happens at exit (export) or in the store writer.
        ph_trace::enable();
    }
    if args.has_flag("quiet") {
        ph_telemetry::set_quiet();
    } else if let Some(level) = args.options.get("log-level") {
        match level.parse::<ph_telemetry::Level>() {
            Ok(level) => ph_telemetry::set_max_level(level),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }
    if args.has_flag("progress") {
        ph_telemetry::set_progress(true);
    }
    let _ = metrics_format(args);
}

/// Parses `--metrics-format` (default `json`); unknown values take the
/// usage-error exit.
fn metrics_format(args: &Args) -> ph_telemetry::ReportFormat {
    match args.options.get("metrics-format").map(String::as_str) {
        None | Some("json") => ph_telemetry::ReportFormat::Json,
        Some("prom") => ph_telemetry::ReportFormat::Prom,
        Some(other) => {
            eprintln!("error: --metrics-format expects 'json' or 'prom', got '{other}'");
            std::process::exit(2);
        }
    }
}

/// Rejects options/flags outside the subcommand's and the global
/// allow-lists — a typo like `--huors` should fail loudly, not silently
/// run with the default.
fn validate_options(args: &Args, options: &[&str], flags: &[&str]) {
    let mut known_options: Vec<&str> = GLOBAL_OPTIONS.to_vec();
    known_options.extend(options);
    let mut known_flags: Vec<&str> = GLOBAL_FLAGS.to_vec();
    known_flags.extend(flags);
    let unknown = args.unknown_options(&known_options, &known_flags);
    if !unknown.is_empty() {
        let command = args.command.as_deref().unwrap_or("");
        eprintln!(
            "error: unknown option(s) for '{command}': {}",
            unknown.join(", ")
        );
        std::process::exit(2);
    }
}

/// `SIM_OPTIONS` plus subcommand extras.
fn with_sim<'a>(extra: &[&'a str]) -> Vec<&'a str> {
    let mut v: Vec<&str> = SIM_OPTIONS.to_vec();
    v.extend(extra);
    v
}

/// Honors `--metrics-out FILE` (in the `--metrics-format` of choice) after
/// the subcommand finishes. Missing parent directories are created; an
/// unwritable destination is a usage error (exit 2), not a crash.
fn write_metrics(args: &Args) {
    let Some(path) = args.options.get("metrics-out") else {
        return;
    };
    let path = Path::new(path);
    match ph_telemetry::write_report(path, metrics_format(args)) {
        Ok(()) => log_info!("wrote metrics report to {}", path.display()),
        Err(e) => {
            eprintln!("error: cannot write metrics to {}: {e}", path.display());
            eprintln!(
                "hint: parent directories are created automatically — check the path is writable"
            );
            std::process::exit(2);
        }
    }
}

/// Honors `--trace FILE` after the subcommand finishes: snapshots the
/// recorded timeline and writes it as Chrome trace-event JSON (open the
/// file in Perfetto / `chrome://tracing`). Missing parent directories
/// are created; an unwritable destination is a usage error (exit 2).
/// Stdout is untouched, keeping traced runs byte-identical.
fn write_trace_export(args: &Args) {
    let Some(path) = args.options.get("trace") else {
        return;
    };
    let path = Path::new(path);
    let log = ph_trace::snapshot();
    let json = ph_trace::chrome::to_chrome_json(&log);
    let result = match path.parent() {
        Some(parent) if !parent.as_os_str().is_empty() => std::fs::create_dir_all(parent),
        _ => Ok(()),
    }
    .and_then(|()| std::fs::write(path, json));
    match result {
        Ok(()) => {
            log_info!(
                "wrote {} trace events to {} ({} dropped)",
                log.events.len(),
                path.display(),
                log.dropped
            );
        }
        Err(e) => {
            eprintln!("error: cannot write trace to {}: {e}", path.display());
            eprintln!(
                "hint: parent directories are created automatically — check the path is writable"
            );
            std::process::exit(2);
        }
    }
}

/// Pins the run configuration into the registry's metadata section so
/// `--metrics-out` reports (JSON `"meta"` object, Prometheus `ph_meta`
/// gauges) are comparable across machines and thread counts.
fn record_run_meta(threads: usize, seed: u64) {
    ph_telemetry::set_meta("crate_version", env!("CARGO_PKG_VERSION"));
    ph_telemetry::set_meta("threads", &threads.to_string());
    ph_telemetry::set_meta("seed", &seed.to_string());
}

fn usage() {
    println!("pseudo-honeypot — attribute-driven spam sniffing (DSN 2019 reproduction)");
    println!();
    println!("commands:");
    println!("  attributes                          list the 24-attribute taxonomy (Table I/II)");
    println!("  simulate  [--hours H] [--organic N] [--seed S]");
    println!(
        "                                      run the social-network simulator and print stats"
    );
    println!("  sniff     [--hours H] [--gt-hours H] [--organic N] [--seed S]");
    println!("                                      full pipeline: monitor, label, train, detect");
    println!(
        "            [--store DIR]             persist the collection to a durable segment log"
    );
    println!("            [--resume]                continue a crashed/stopped run from DIR's last checkpoint");
    println!("            [--crash-after H]         stop after H monitored hours with a torn tail (exit 3)");
    println!(
        "            [--explain]               record verdict explanations + per-feature drift"
    );
    println!(
        "                                      (explain.log/drift.log in the store; zero cost off)"
    );
    println!(
        "            [--taste-flip H]          flip spammer tastes at engine hour H (drift demo;"
    );
    println!(
        "                                      pinned in the manifest so resume/replay match)"
    );
    println!("  serve     --store DIR [--hours H] [--gt-hours H] [--seed S]");
    println!(
        "                                      long-lived sniffer daemon: ingest wire frames from"
    );
    println!("            [--listen ADDR]           a TCP host:port or Unix-socket path (default");
    println!(
        "                                      DIR/ingest.sock), classify each completed hour,"
    );
    println!(
        "                                      append live NDJSON verdicts to DIR/verdicts.ndjson"
    );
    println!(
        "            [--http ADDR|none]        /metrics + /healthz endpoint (default 127.0.0.1:0;"
    );
    println!("                                      bound addresses land in DIR/ENDPOINTS)");
    println!(
        "            [--loadgen [--rate R]]    built-in open-loop producer at R events/s (0 = max)"
    );
    println!(
        "            [--resume]                continue a drained run from its last checkpoint"
    );
    println!("            [--stop-after H]          drain after H hours this session (exit 5)");
    println!(
        "            [--slo pQQ:MS]            latency SLO: hourly pQQ ingest→verdict latency must"
    );
    println!(
        "                                      stay ≤ MS ms (QQ ∈ 50/95/99); breaches raise an"
    );
    println!(
        "                                      alert, degrade /healthz to 503, and recover when"
    );
    println!("                                      the quantile cools (serve.latency_ms metrics)");
    println!(
        "            [--watchdog-ticks N]      declare a busy stage stalled after N 250 ms samples"
    );
    println!(
        "                                      without progress (0 = off): journal event, degraded"
    );
    println!("                                      /healthz, flight-recorder dump into the store");
    println!("            [--throttle-ms MS [--throttle-hours H]]");
    println!(
        "                                      test-only: sleep MS inside each of the first H hour"
    );
    println!(
        "                                      boundaries to provoke an SLO breach + recovery"
    );
    println!("            [--explain]               NDJSON verdicts gain margin + top_features;");
    println!(
        "                                      explain.log/drift.log persisted beside the journal"
    );
    println!("            [--taste-flip H]          flip spammer tastes at engine hour H");
    println!("  feed      --connect ADDR [--hours H] [--start-hour H] [--rate R]");
    println!("                                      standalone producer: stream the deterministic");
    println!("                                      firehose to a daemon's ingest socket");
    println!("  replay    --store DIR               re-run labeling + classification from a stored log alone");
    println!("  inspect   --store DIR [--top K] [--tail N] [--timeline] [--drift]");
    println!("            [--flight [--window SECS]]");
    println!(
        "                                      render a stored run's per-hour PGE, top attributes,"
    );
    println!(
        "                                      stage throughput, span tree, and event journal —"
    );
    println!("                                      no re-execution; --timeline adds the stored");
    println!(
        "                                      trace's critical-path analysis; --drift adds the"
    );
    println!("                                      per-hour PSI drift table and alarm timeline;");
    println!(
        "                                      --flight renders the flight recorder's last-SECS"
    );
    println!("                                      timeline (dumped on SIGQUIT/watchdog/panic)");
    println!("  explain   --store DIR [--seq N] [--top K]");
    println!(
        "                                      render one stored verdict's provenance: identity,"
    );
    println!(
        "                                      ground-truth label, vote margin, and the top-K"
    );
    println!("                                      feature attributions (needs a --explain run)");
    println!("  showdown  [--hours H] [--nodes N] [--seed S]");
    println!("                                      pseudo-honeypot vs random accounts");
    println!("  perf bench [--quick] [--only A,B] [--samples N] [--warmup N] [--out-dir DIR]");
    println!(
        "                                      run the fixed benchmark matrix, write BENCH_*.json"
    );
    println!("  perf diff OLD.json NEW.json         noise-aware baseline comparison; exit 4 on a");
    println!("                                      perf regression");
    println!("  perf critical-path (--store DIR | TRACE.log)");
    println!("                                      analyze a recorded timeline: per-stage busy/");
    println!(
        "                                      stall/idle fractions, parallel efficiency, and"
    );
    println!("                                      the serialized chain bounding the run");
    println!();
    println!("global options:");
    println!(
        "  --metrics-out FILE                  write a run report (spans/counters/histograms/series)"
    );
    println!("  --metrics-format FMT                json (default) | prom (Prometheus text 0.0.4)");
    println!("  --log-level LEVEL                   error | warn | info (default) | debug");
    println!("  --quiet                             silence progress logging");
    println!(
        "  --progress                          live one-line progress on stderr (stdout untouched)"
    );
    println!("  --profile                           count allocations per pipeline stage (prof.* metrics");
    println!(
        "                                      in the --metrics-out report; stdout unchanged)"
    );
    println!("  --threads N                         (sniff/replay/showdown) shard pipeline stages across");
    println!("                                      N workers — 0 = all cores, 1 = sequential (default);");
    println!("                                      output is byte-identical at any thread count");
    println!("  --trace FILE                        record the causal timeline and write Chrome");
    println!(
        "                                      trace-event JSON to FILE (load it in Perfetto);"
    );
    println!(
        "                                      sniff --store runs also persist trace.log in the"
    );
    println!("                                      store; stdout stays byte-identical");
    println!();
    println!("exit codes: 0 ok, 1 error, 2 usage, 3 simulated crash, 4 perf regression,");
    println!("            5 interrupted-and-checkpointed (resume with --resume)");
}

/// `--threads N` → the dataflow configuration shared by every sharded
/// stage (1 = sequential, the default; 0 = all available cores). The
/// `ph-exec` determinism contract makes any value produce byte-identical
/// output, so this is purely a throughput knob.
fn exec_config(args: &Args) -> ExecConfig {
    ExecConfig::with_threads(args.get_u64("threads", 1) as usize)
}

fn sim_config(args: &Args) -> SimConfig {
    let flip = args.get_u64(
        "taste-flip",
        pseudo_honeypot::store::manifest::NO_TASTE_FLIP,
    );
    SimConfig {
        seed: args.get_u64("seed", 42),
        num_organic: args.get_u64("organic", 2_000) as usize,
        num_campaigns: args.get_u64("campaigns", 6) as usize,
        accounts_per_campaign: args.get_u64("per-campaign", 20) as usize,
        drift: (flip != pseudo_honeypot::store::manifest::NO_TASTE_FLIP).then(|| {
            pseudo_honeypot::sim::drift::DriftSchedule::flip_at(
                flip,
                pseudo_honeypot::sim::drift::inverted_tastes(),
            )
        }),
        ..Default::default()
    }
}

fn attributes() {
    println!("C1 — profile-based attributes and Table II sample values:");
    for (i, attr) in ProfileAttribute::ALL.iter().enumerate() {
        let values: Vec<String> = attr
            .sample_values()
            .iter()
            .map(|v| {
                if v.fract().abs() < 1e-9 {
                    format!("{}", *v as i64)
                } else {
                    format!("{v:.3}")
                }
            })
            .collect();
        println!("  {:>2}. {:<32} {}", i + 1, attr.label(), values.join(" "));
    }
    println!("\nC2/C3 — topical attributes:");
    for kind in AttributeKind::all()
        .into_iter()
        .filter(|k| !matches!(k, AttributeKind::Profile(_)))
    {
        println!("   - {kind}");
    }
    let slots = SampleAttribute::standard_slots();
    println!(
        "\nstandard network: {} slots × 10 accounts = up to {} nodes",
        slots.len(),
        slots.len() * 10
    );
}

fn simulate(args: &Args) {
    let hours = args.get_u64("hours", 24);
    let mut engine = Engine::new(sim_config(args));
    log_info!(
        "simulating {hours} h over {} accounts…",
        engine.rest().num_accounts()
    );
    engine.run_hours(hours);
    let stats = engine.stats();
    println!("tweets:            {}", stats.tweets);
    println!("  spam:            {}", stats.spam_tweets);
    println!("  with mentions:   {}", stats.mention_tweets);
    println!("suspended:         {}", stats.suspended_accounts);
    println!(
        "accounts now:      {} (campaign churn adds replacements)",
        engine.rest().num_accounts()
    );
}

fn sniff(args: &Args) -> i32 {
    if args.has_flag("explain") {
        pseudo_honeypot::core::observe::set_enabled(true);
    }
    match args.options.get("store") {
        Some(dir) => sniff_stored(args, &PathBuf::from(dir)),
        None => {
            if args.has_flag("resume") || args.options.contains_key("crash-after") {
                eprintln!("error: --resume and --crash-after require --store DIR");
                std::process::exit(2);
            }
            sniff_in_memory(args);
            0
        }
    }
}

fn sniff_in_memory(args: &Args) {
    let gt_hours = args.get_u64("gt-hours", 24);
    let hours = args.get_u64("hours", 24);
    let name = args.get_str("name", "sniffing campaign");
    println!("== {name} ==");
    let exec = exec_config(args);
    record_run_meta(exec.threads, args.get_u64("seed", 42));
    let mut engine = Engine::new(sim_config(args));
    let runner = Runner::with_exec(
        RunnerConfig {
            seed: args.get_u64("seed", 42),
            ..Default::default()
        },
        exec.clone(),
    );

    let (detector, _) = ground_truth_and_detector(&mut engine, &runner, gt_hours, true, &exec);

    log_info!("phase 3: sniffing for {hours} h…");
    let report = runner.run(&mut engine, hours);
    let outcome = detector.classify_batch(&report.collected, &engine, &exec);
    if report.dropped > 0 {
        log_warn!(
            "{} tweets were shed by the streaming buffer",
            report.dropped
        );
    }
    print_sniff_summary(&report, &outcome.predictions, &outcome, hours, gt_hours);
    if args.has_flag("verify") {
        let oracle = engine.ground_truth();
        let correct = report
            .collected
            .iter()
            .zip(&outcome.predictions)
            .filter(|(c, &p)| p == oracle.is_spam(&c.tweet))
            .count();
        println!(
            "\noracle check: {:.2}% of verdicts correct",
            100.0 * correct as f64 / report.collected.len().max(1) as f64
        );
    }
}

/// Phases 1–2 of the pipeline (shared by fresh, resumed, and replayed
/// runs — all three must rebuild the *identical* detector): ground-truth
/// collection over `gt_hours`, labeling, and Random-Forest training.
fn ground_truth_and_detector(
    engine: &mut Engine,
    runner: &Runner,
    gt_hours: u64,
    print_table: bool,
    exec: &ExecConfig,
) -> (SpamDetector, usize) {
    log_info!("phase 1: ground truth — standard network, {gt_hours} h…");
    let train_report = runner.run(engine, gt_hours);
    let ground_truth = label_collection_with(
        &train_report.collected,
        engine,
        &PipelineConfig::default(),
        exec,
    );
    if print_table {
        println!("{}", format_table3(&ground_truth.summary));
    }
    log_info!("phase 2: training the Random Forest detector…");
    let (data, _) = build_training_data_with(
        &train_report.collected,
        &ground_truth.labels,
        engine,
        pseudo_honeypot::core::features::DEFAULT_TAU,
        exec,
    );
    let detector = SpamDetector::train(&DetectorConfig::default(), &data);
    (detector, train_report.collected.len())
}

/// Feeds the per-attribute PGE time series (`pge.<attribute>`) into the
/// registry, so metrics exports and the store's series stream carry the
/// hour-by-hour efficiency trend alongside the final ranking.
fn emit_pge_series(report: &MonitorReport, predictions: &[bool], hours: u64, gt_hours: u64) {
    for (kind, values) in per_hour_attribute_pge(
        &report.collected,
        predictions,
        &report.node_hours,
        hours,
        gt_hours,
    ) {
        let series = ph_telemetry::series(&format!("pge.{kind}"));
        for (hour, value) in values.iter().enumerate() {
            series.add(hour as u64, *value);
        }
    }
}

/// The classification + PGE tail every sniff variant prints.
fn print_sniff_summary(
    report: &MonitorReport,
    predictions: &[bool],
    outcome: &pseudo_honeypot::core::detector::ClassificationOutcome,
    hours: u64,
    gt_hours: u64,
) {
    emit_pge_series(report, predictions, hours, gt_hours);
    println!(
        "collected {} tweets from {} accounts",
        report.collected.len(),
        report.unique_authors()
    );
    println!(
        "classified {} spams from {} spammer accounts",
        outcome.num_spam(),
        outcome.num_spammers()
    );
    let ranking = pge_ranking_with_min(report, predictions, hours as f64 * 2.0);
    println!("\ntop attributes by PGE:");
    for entry in ranking.iter().take(5) {
        println!(
            "  {:<44} PGE {:.4} ({} spammers)",
            entry.slot.describe(),
            entry.pge,
            entry.spammers
        );
    }
}

fn die(context: &str, e: impl std::fmt::Display) -> ! {
    eprintln!("error: {context}: {e}");
    std::process::exit(1);
}

fn runner_for(manifest: &Manifest, exec: ExecConfig) -> Runner {
    Runner::with_exec(
        RunnerConfig {
            seed: manifest.runner_seed,
            buffer_capacity: manifest.buffer_capacity as usize,
            ..Default::default()
        },
        exec,
    )
}

fn engine_for(manifest: &Manifest) -> Engine {
    Engine::new(SimConfig {
        seed: manifest.sim_seed,
        num_organic: manifest.organic as usize,
        num_campaigns: manifest.campaigns as usize,
        accounts_per_campaign: manifest.per_campaign as usize,
        drift: manifest.drift_schedule(),
        ..Default::default()
    })
}

/// Store-backed sniff: every collected tweet lands in the segment log,
/// the run checkpoints hourly, and `--resume` continues after a crash.
/// SIGINT/SIGTERM stop the run at the next hour boundary with a forced
/// checkpoint and exit code 5 — `--resume` continues it exactly.
fn sniff_stored(args: &Args, dir: &Path) -> i32 {
    let resume = args.has_flag("resume");
    let crash_after = args
        .options
        .contains_key("crash-after")
        .then(|| args.get_u64("crash-after", 0));
    let name = args.get_str("name", "sniffing campaign");
    println!("== {name} ==");

    // Fresh runs pin the CLI configuration into the manifest; resumed
    // runs take *everything* from the stored manifest (the store is the
    // source of truth — mixing a new seed into an old log would corrupt
    // the determinism the whole recovery story rests on).
    let resumed: Option<ResumedStore> = if resume {
        let r = Store::open_resume(dir, StoreConfig::default())
            .unwrap_or_else(|e| die(&format!("cannot resume {}", dir.display()), e));
        for key in [
            "seed",
            "organic",
            "campaigns",
            "per-campaign",
            "gt-hours",
            "hours",
        ] {
            if args.options.contains_key(key) {
                log_warn!("--{key} ignored on --resume: the store manifest pins it");
            }
        }
        log_info!(
            "resuming {}: {} of {} h done, {} records on log ({} bytes truncated in recovery)",
            dir.display(),
            r.state.next_hour,
            r.manifest.hours,
            r.store.record_count(),
            r.recovery.truncated_bytes
        );
        Some(r)
    } else {
        None
    };
    let manifest = match &resumed {
        Some(r) => r.manifest,
        None => Manifest {
            sim_seed: args.get_u64("seed", 42),
            organic: args.get_u64("organic", 2_000),
            campaigns: args.get_u64("campaigns", 6),
            per_campaign: args.get_u64("per-campaign", 20),
            runner_seed: args.get_u64("seed", 42),
            gt_hours: args.get_u64("gt-hours", 24),
            hours: args.get_u64("hours", 24),
            buffer_capacity: pseudo_honeypot::sim::api::DEFAULT_QUEUE_CAPACITY as u64,
            taste_flip: args.get_u64(
                "taste-flip",
                pseudo_honeypot::store::manifest::NO_TASTE_FLIP,
            ),
        },
    };

    let exec = exec_config(args);
    record_run_meta(exec.threads, manifest.sim_seed);
    let mut engine = engine_for(&manifest);
    // SIGINT/SIGTERM raise this flag; the runner then stops at the next
    // hour boundary with every completed hour on the log.
    let stop = pseudo_honeypot::serve::signal::install();
    let runner = runner_for(&manifest, exec.clone()).with_stop_flag(stop);
    let (detector, _) =
        ground_truth_and_detector(&mut engine, &runner, manifest.gt_hours, !resume, &exec);

    let (mut store, mut state, prior) = match resumed {
        Some(r) => {
            // Fast-forward a fresh engine over the already-monitored hours;
            // determinism makes this byte-equivalent to never crashing.
            engine.run_hours(r.state.next_hour);
            (r.store, r.state, r.report)
        }
        None => {
            let store = Store::create(dir, manifest, StoreConfig::default())
                .unwrap_or_else(|e| die(&format!("cannot create store {}", dir.display()), e));
            (store, RunState::default(), MonitorReport::default())
        }
    };

    let segment_hours = crash_after
        .map(|h| h.saturating_sub(state.next_hour))
        .unwrap_or(u64::MAX);
    log_info!(
        "phase 3: sniffing hours {}..{} into {}…",
        state.next_hour,
        manifest.hours,
        dir.display()
    );
    let mut writer = store.writer(&prior);
    let segment = runner
        .run_segment(
            &mut engine,
            &mut state,
            manifest.hours,
            segment_hours,
            runner.standard_networks(),
            &mut writer,
        )
        .unwrap_or_else(|e| die("store write failed", e));
    if runner.stop_requested() && state.next_hour < manifest.hours {
        // SIGINT/SIGTERM: the runner already drained at an hour boundary,
        // so force a checkpoint (the hourly interval may not have hit) and
        // leave classification to the run that completes the store.
        writer
            .checkpoint_now(&state, &segment)
            .unwrap_or_else(|e| die("interrupt checkpoint failed", e));
        drop(writer);
        store.sync().unwrap_or_else(|e| die("store sync failed", e));
        log_warn!(
            "interrupted after {} of {} h (checkpoint written); resume with --resume",
            state.next_hour,
            manifest.hours
        );
        return serve_cli::EXIT_INTERRUPTED;
    }
    drop(writer);
    let mut report = prior;
    report.merge(&segment);

    if crash_after.is_some() && state.next_hour < manifest.hours {
        // Simulated hard crash: die mid-append, leaving a torn half-frame
        // on the active segment for the next open to truncate.
        inject_torn_tail(dir);
        log_warn!(
            "simulated crash after {} of {} h (torn tail written); resume with --resume",
            state.next_hour,
            manifest.hours
        );
        std::process::exit(3);
    }
    store.sync().unwrap_or_else(|e| die("store sync failed", e));

    // Classify off the log — the durable sink kept nothing in memory, so
    // the segment reader supplies the collection (which the summary needs
    // materialized anyway, letting the classifier shard over it).
    report.collected = stored_records(&store).collect();
    let outcome = detector.classify_batch(&report.collected, &engine, &exec);
    if report.dropped > 0 {
        log_warn!(
            "{} tweets were shed by the streaming buffer",
            report.dropped
        );
    }
    print_sniff_summary(
        &report,
        &outcome.predictions,
        &outcome,
        manifest.hours,
        manifest.gt_hours,
    );
    println!(
        "\nstore: {} records in {} ({} h checkpointed)",
        store.record_count(),
        dir.display(),
        state.next_hour
    );

    // Persist the run's observability record next to the data it
    // describes: the deterministic event journal plus the flattened series
    // (per-hour metrics and run-level `stage.*`/`span.*`/`hist.*`
    // aggregates), so `inspect` can render the run later without
    // re-executing anything.
    if pseudo_honeypot::core::observe::is_enabled() {
        // Before the journal snapshot: finalizing the open drift window
        // may raise its last alarms.
        pseudo_honeypot::core::observe::drift_finalize();
    }
    let journal = ph_telemetry::journal_snapshot();
    let points = ph_telemetry::run_series_points(manifest.hours.saturating_sub(1));
    store
        .write_telemetry(&journal, &points)
        .unwrap_or_else(|e| die("telemetry write failed", e));
    log_info!(
        "telemetry: {} journal events, {} series points persisted to {}",
        journal.len(),
        points.len(),
        dir.display()
    );
    if ph_trace::is_enabled() {
        // The durable twin of the --trace JSON export: the framed+CRC'd
        // trace.log lands next to journal.log/series.log so
        // `inspect --timeline` and `perf critical-path --store` can
        // analyze the run later without the recording process.
        let trace = ph_trace::snapshot();
        pseudo_honeypot::store::write_trace(dir, &trace)
            .unwrap_or_else(|e| die("trace write failed", e));
        log_info!(
            "trace: {} timeline events persisted to {} ({} dropped)",
            trace.events.len(),
            dir.display(),
            trace.dropped
        );
    }
    if pseudo_honeypot::core::observe::is_enabled() {
        // The decision-observability twin of journal/series: one framed
        // explanation per stored record (join on seq) plus the per-hour
        // drift scores and alarm timeline — `explain` and
        // `inspect --drift` render both from the store alone.
        let explanations = pseudo_honeypot::core::observe::explanations();
        pseudo_honeypot::store::write_explain(dir, &explanations)
            .unwrap_or_else(|e| die("explain write failed", e));
        let (drift_hours, drift_alarms) = pseudo_honeypot::core::observe::drift_results();
        pseudo_honeypot::store::write_drift(dir, &drift_hours, &drift_alarms)
            .unwrap_or_else(|e| die("drift write failed", e));
        log_info!(
            "observe: {} explanations, {} drift windows, {} alarms persisted to {}",
            explanations.len(),
            drift_hours.len(),
            drift_alarms.len(),
            dir.display()
        );
    }
    if args.has_flag("verify") {
        sidecar_check(&report.collected, &outcome.predictions);
    }
    0
}

/// Infallible record stream over a store's log (I/O errors abort the CLI).
fn stored_records(store: &Store) -> impl Iterator<Item = CollectedTweet> {
    store
        .reader()
        .unwrap_or_else(|e| die("cannot read store", e))
        .map(|r| r.unwrap_or_else(|e| die("stored record unreadable", e)))
}

/// Scores predictions against the evaluation sidecar persisted in the log.
fn sidecar_check(collected: &[CollectedTweet], predictions: &[bool]) {
    let correct = collected
        .iter()
        .zip(predictions)
        .filter(|(c, &p)| p == c.tweet.evaluation_sidecar_spam())
        .count();
    println!(
        "\noracle check (stored sidecar): {:.2}% of verdicts correct",
        100.0 * correct as f64 / collected.len().max(1) as f64
    );
}

/// Appends half a record frame to the newest segment — what a power cut
/// mid-`write(2)` leaves behind. Recovery must truncate exactly this.
fn inject_torn_tail(dir: &Path) {
    let mut segments: Vec<PathBuf> = match std::fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(|e| {
                let path = e.ok()?.path();
                let name = path.file_name()?.to_str()?;
                (name.starts_with("segment-") && name.ends_with(".seg")).then_some(path)
            })
            .collect(),
        Err(e) => die("cannot list store", e),
    };
    segments.sort();
    let Some(last) = segments.pop() else { return };
    let result = std::fs::OpenOptions::new()
        .append(true)
        .open(&last)
        .and_then(|mut f| {
            // Length prefix promising 64 bytes, then only 3 delivered.
            f.write_all(&64u32.to_le_bytes())?;
            f.write_all(&0u32.to_le_bytes())?;
            f.write_all(&[0xAA, 0xBB, 0xCC])
        });
    if let Err(e) = result {
        die("cannot inject torn tail", e);
    }
}

/// Re-runs labeling and classification *from the stored log alone*: the
/// manifest rebuilds the deterministic engine and detector, the segment
/// log supplies the traffic, and the checkpoint log supplies node-hours —
/// no live monitoring anywhere.
fn replay(args: &Args) {
    let Some(dir) = args.options.get("store").map(PathBuf::from) else {
        eprintln!("error: replay requires --store DIR");
        std::process::exit(2);
    };
    let _span = ph_telemetry::span("replay");
    let resumed = Store::open_resume(&dir, StoreConfig::default())
        .unwrap_or_else(|e| die(&format!("cannot open store {}", dir.display()), e));
    let manifest = resumed.manifest;
    println!("== replay of {} ==", dir.display());
    println!(
        "manifest: seed {}, {} organic, {} campaigns × {}, gt {} h, sniff {} h",
        manifest.sim_seed,
        manifest.organic,
        manifest.campaigns,
        manifest.per_campaign,
        manifest.gt_hours,
        manifest.hours
    );
    println!(
        "log: {} records, {} of {} h completed",
        resumed.store.record_count(),
        resumed.state.next_hour,
        manifest.hours
    );

    let exec = exec_config(args);
    record_run_meta(exec.threads, manifest.sim_seed);
    let mut engine = engine_for(&manifest);
    let runner = runner_for(&manifest, exec.clone());
    let (detector, _) =
        ground_truth_and_detector(&mut engine, &runner, manifest.gt_hours, false, &exec);
    // Advance the engine to where the stored run left off, so REST-side
    // lookups (profiles, suspensions) see the same world state.
    engine.run_hours(resumed.state.next_hour);

    log_info!("labeling the stored collection…");
    let reader = resumed
        .store
        .reader()
        .unwrap_or_else(|e| die("cannot read store", e));
    let (collected, dataset) =
        label_collection_stream_with(reader, &engine, &PipelineConfig::default(), &exec)
            .unwrap_or_else(|e| die("stored record unreadable", e));
    println!("{}", format_table3(&dataset.summary));

    log_info!("classifying the stored collection…");
    let outcome = detector.classify_batch(&collected, &engine, &exec);
    let mut report = resumed.report.clone();
    report.collected = collected;
    print_sniff_summary(
        &report,
        &outcome.predictions,
        &outcome,
        manifest.hours,
        manifest.gt_hours,
    );
    if args.has_flag("verify") {
        sidecar_check(&report.collected, &outcome.predictions);
    }
}

/// Renders a stored run's observability record — manifest, per-hour PGE
/// (spam bit from the stored evaluation sidecar), top attributes, stage
/// throughput, span tree, and the tail of the event journal — without
/// re-running any part of the pipeline. The store is opened through the
/// same recovery path as `--resume`, so a torn tail is truncated first.
fn inspect(args: &Args) {
    let Some(dir) = args.options.get("store").map(PathBuf::from) else {
        eprintln!("error: inspect requires --store DIR");
        std::process::exit(2);
    };
    let top = args.get_u64("top", 5) as usize;
    let tail = args.get_u64("tail", 8) as usize;
    let resumed = Store::open_resume(&dir, StoreConfig::default())
        .unwrap_or_else(|e| die(&format!("cannot open store {}", dir.display()), e));
    let manifest = resumed.manifest;
    println!("== inspect of {} ==", dir.display());
    println!(
        "manifest: seed {}, {} organic, {} campaigns × {}, gt {} h, sniff {} h",
        manifest.sim_seed,
        manifest.organic,
        manifest.campaigns,
        manifest.per_campaign,
        manifest.gt_hours,
        manifest.hours
    );
    println!(
        "log: {} records, {} of {} h completed",
        resumed.store.record_count(),
        resumed.state.next_hour,
        manifest.hours
    );

    let mut report = resumed.report.clone();
    report.collected = stored_records(&resumed.store).collect();
    let flags: Vec<bool> = report
        .collected
        .iter()
        .map(|c| c.tweet.evaluation_sidecar_spam())
        .collect();
    let hours = resumed.state.next_hour;

    print_hourly_pge(&report, &flags, hours, manifest.gt_hours, top);
    print_top_slots(&report, &flags, hours, top);

    let series = pseudo_honeypot::store::read_series(&dir)
        .unwrap_or_else(|e| die("cannot read series stream", e));
    let journal = pseudo_honeypot::store::read_journal(&dir)
        .unwrap_or_else(|e| die("cannot read journal stream", e));
    if series.is_empty() && journal.is_empty() {
        println!(
            "\n(no telemetry recorded in this store — the journal/series streams are written when a sniff --store run completes)"
        );
    } else {
        print_stage_throughput(&series);
        print_stall_quantiles(&series);
        print_margin_quantiles(&series);
        print_span_tree(&series);
        print_journal_tail(&journal, tail);
    }
    if args.has_flag("drift") {
        print_drift(&dir, top);
    }
    if args.has_flag("flight") {
        print_flight(&dir, args.get_u64("window", 60));
    }
    if args.has_flag("timeline") {
        let trace = pseudo_honeypot::store::read_trace(&dir)
            .unwrap_or_else(|e| die("cannot read trace stream", e));
        if trace.events.is_empty() {
            println!(
                "\n(no timeline trace in this store — record one with sniff --store DIR --trace FILE)"
            );
        } else {
            perf::print_timeline(&ph_trace::timeline::analyze(&trace));
        }
    }
}

/// Backpressure-stall latency quantiles per stage, from the persisted
/// `hist.exec.<stage>.stall_ms.*` series points (interpolated p50/p95/p99
/// plus the stall count).
fn print_stall_quantiles(series: &[ph_telemetry::SeriesPoint]) {
    type StallRow = (Option<f64>, Option<f64>, Option<f64>, Option<f64>);
    let mut stages: BTreeMap<String, StallRow> = BTreeMap::new();
    for p in series {
        let Some(rest) = p.name.strip_prefix("hist.exec.") else {
            continue;
        };
        let Some((stage, metric)) = rest.rsplit_once('.') else {
            continue;
        };
        let Some(stage) = stage.strip_suffix(".stall_ms") else {
            continue;
        };
        let entry = stages.entry(stage.to_string()).or_default();
        match metric {
            "count" => entry.0 = Some(p.value),
            "p50" => entry.1 = Some(p.value),
            "p95" => entry.2 = Some(p.value),
            "p99" => entry.3 = Some(p.value),
            _ => {}
        }
    }
    stages.retain(|_, (count, ..)| count.is_some_and(|c| c > 0.0));
    if stages.is_empty() {
        return;
    }
    let cell = |v: Option<f64>, precision: usize| match v {
        Some(v) => format!("{v:.precision$}"),
        None => "-".to_string(),
    };
    println!("\nbackpressure stalls (ms):");
    println!(
        "{:<28} {:>8} {:>10} {:>10} {:>10}",
        "stage", "stalls", "p50", "p95", "p99"
    );
    for (stage, (count, p50, p95, p99)) in &stages {
        println!(
            "{:<28} {:>8} {:>10} {:>10} {:>10}",
            stage,
            cell(*count, 0),
            cell(*p50, 3),
            cell(*p95, 3),
            cell(*p99, 3)
        );
    }
}

/// Verdict-margin quantiles from the persisted `hist.verdict.margin.*`
/// series points — how decisive the classifier's calls were.
fn print_margin_quantiles(series: &[ph_telemetry::SeriesPoint]) {
    let value_of = |metric: &str| {
        series
            .iter()
            .find(|p| p.name == format!("hist.verdict.margin.{metric}"))
            .map(|p| p.value)
    };
    let Some(count) = value_of("count").filter(|&c| c > 0.0) else {
        return;
    };
    let cell = |v: Option<f64>| match v {
        Some(v) => format!("{v:.4}"),
        None => "-".to_string(),
    };
    println!(
        "\nverdict margin |2·score − 1| ({} verdicts):",
        count as u64
    );
    println!(
        "  mean {}  p50 {}  p95 {}  p99 {}",
        cell(value_of("mean")),
        cell(value_of("p50")),
        cell(value_of("p95")),
        cell(value_of("p99"))
    );
}

/// `inspect --drift`: the per-hour per-feature drift table, the most
/// drifted features, and the alarm timeline — all from `drift.log`.
fn print_drift(dir: &Path, top: usize) {
    use pseudo_honeypot::core::features::{feature_names, FEATURE_COUNT};
    use pseudo_honeypot::core::observe::PSI_ALARM_THRESHOLD;
    let (hours, alarms) = pseudo_honeypot::store::read_drift(dir)
        .unwrap_or_else(|e| die("cannot read drift stream", e));
    if hours.is_empty() {
        println!(
            "\n(no drift stream in this store — record the run with sniff --store DIR --explain)"
        );
        return;
    }
    let names = feature_names();
    println!("\nper-hour feature drift (PSI against the train-time reference):");
    println!(
        "{:>4} {:>8} {:>10} {:>10}  worst feature",
        "hour", "samples", "mean", "max"
    );
    for h in &hours {
        let mean = h.psi.iter().sum::<f64>() / FEATURE_COUNT as f64;
        let (worst, worst_psi) = h
            .psi
            .iter()
            .copied()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap_or((0, 0.0));
        println!(
            "{:>4} {:>8} {:>10.4} {:>10.4}  {}",
            h.hour, h.samples, mean, worst_psi, names[worst]
        );
    }
    let mut per_feature: Vec<(usize, f64)> = (0..FEATURE_COUNT)
        .map(|f| (f, hours.iter().map(|h| h.psi[f]).fold(0.0, f64::max)))
        .collect();
    per_feature.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    println!("\nmost drifted features (max hourly PSI):");
    for (f, psi) in per_feature.into_iter().take(top) {
        println!("  {:<40} {psi:.4}", names[f]);
    }
    println!("\ndrift alarms (feature PSI > {PSI_ALARM_THRESHOLD}):");
    if alarms.is_empty() {
        println!("  (none)");
    }
    for a in &alarms {
        println!(
            "  hour {:>3}: {} (psi {:.3})",
            a.hour, names[a.feature as usize], a.psi
        );
    }
}

/// `inspect --flight [--window SECS]`: the flight recorder's timeline —
/// the ring of recent journal/trace notes the daemon dumped on SIGQUIT,
/// a watchdog trip, or a panic. Entries are shown relative to the
/// newest one (`t-0.000s`), windowed to the last SECS seconds, so the
/// moments before an incident read top-to-bottom from the store alone.
fn print_flight(dir: &Path, window_secs: u64) {
    let entries = pseudo_honeypot::store::read_flight(dir)
        .unwrap_or_else(|e| die("cannot read flight stream", e));
    if entries.is_empty() {
        println!(
            "\n(no flight recording in this store — the daemon dumps one on SIGQUIT, a stage-watchdog trip, or a panic)"
        );
        return;
    }
    let latest = entries.iter().map(|e| e.at_ms).max().unwrap_or(0);
    let cutoff = latest.saturating_sub(window_secs.saturating_mul(1000));
    let shown: Vec<_> = entries.iter().filter(|e| e.at_ms >= cutoff).collect();
    println!(
        "\nflight recorder: {} entries captured; showing the last {window_secs}s ({}):",
        entries.len(),
        shown.len()
    );
    for entry in shown {
        println!(
            "  t-{:>8.3}s  {:<16} {}",
            (latest - entry.at_ms) as f64 / 1000.0,
            entry.kind,
            entry.detail
        );
    }
}

/// `explain --store DIR [--seq N] [--top K]`: renders one stored
/// verdict's provenance — tweet identity and stored ground-truth label
/// from the segment log, score/margin/baseline and the top-K feature
/// attributions from `explain.log` — without re-executing anything.
fn explain(args: &Args) {
    let Some(dir) = args.options.get("store").map(PathBuf::from) else {
        eprintln!("error: explain requires --store DIR");
        std::process::exit(2);
    };
    let top = args.get_u64("top", 5) as usize;
    let explanations = pseudo_honeypot::store::read_explain(&dir).unwrap_or_else(|e| {
        die(
            &format!("cannot read explain stream in {}", dir.display()),
            e,
        )
    });
    if explanations.is_empty() {
        eprintln!(
            "error: no explanations in {} — record the run with sniff --store DIR --explain",
            dir.display()
        );
        std::process::exit(1);
    }
    let explanation = match args.options.get("seq") {
        Some(_) => {
            let seq = args.get_u64("seq", 0);
            explanations
                .iter()
                .find(|e| e.seq == seq)
                .unwrap_or_else(|| {
                    eprintln!(
                        "error: no explanation with seq {seq} — the store holds seqs 0..{}",
                        explanations.len()
                    );
                    std::process::exit(1);
                })
        }
        // Default: the first spam verdict (the interesting kind), or the
        // first record of an all-ham run.
        None => explanations
            .iter()
            .find(|e| e.spam)
            .unwrap_or(&explanations[0]),
    };

    let resumed = Store::open_resume(&dir, StoreConfig::default())
        .unwrap_or_else(|e| die(&format!("cannot open store {}", dir.display()), e));
    println!("== verdict {} of {} ==", explanation.seq, dir.display());
    if let Some(c) = stored_records(&resumed.store).nth(explanation.seq as usize) {
        println!(
            "tweet {} by account {}, hour {} ({:?} on {})",
            c.tweet.id.0,
            c.tweet.author.0,
            explanation.hour,
            c.category,
            c.slot.describe()
        );
        println!(
            "ground truth (stored sidecar): {}",
            if c.tweet.evaluation_sidecar_spam() {
                "spam"
            } else {
                "ham"
            }
        );
    }
    println!(
        "verdict: {} (score {:.4}, margin {:+.4}, forest baseline {:.4})",
        if explanation.spam { "SPAM" } else { "ham" },
        explanation.score,
        explanation.margin,
        explanation.baseline
    );
    let ranked = explanation.top_features(top);
    let names = pseudo_honeypot::core::features::feature_names();
    println!(
        "\ntop {} feature attributions (signed probability delta):",
        ranked.len()
    );
    for (f, delta) in ranked {
        let bar_len = (delta.abs() * 40.0).round().min(20.0) as usize;
        println!(
            "  {:<40} {delta:>+8.4}  {}",
            names[f],
            if delta >= 0.0 { "+" } else { "-" }.repeat(bar_len)
        );
    }
    println!(
        "\n(attributions telescope: baseline {:.4} + deltas = score {:.4})",
        explanation.baseline, explanation.score
    );
}

/// The per-hour PGE table: one row per monitored hour with overall
/// counts, amortized node-hours, and one PGE column per top attribute.
fn print_hourly_pge(report: &MonitorReport, flags: &[bool], hours: u64, gt_hours: u64, top: usize) {
    if hours == 0 {
        println!("\n(no monitored hours recorded)");
        return;
    }
    let stats = per_hour_stats(&report.collected, flags, hours, gt_hours);
    let by_attr = per_hour_attribute_pge(
        &report.collected,
        flags,
        &report.node_hours,
        hours,
        gt_hours,
    );
    // Rank attribute kinds by total per-hour PGE mass and keep the top few
    // as extra columns.
    let mut ranked: Vec<(AttributeKind, f64)> = by_attr
        .iter()
        .map(|(k, v)| (*k, v.iter().sum::<f64>()))
        .collect();
    ranked.sort_by(|a, b| {
        b.1.total_cmp(&a.1)
            .then_with(|| a.0.to_string().cmp(&b.0.to_string()))
    });
    let kinds: Vec<AttributeKind> = ranked.into_iter().take(top).map(|(k, _)| k).collect();
    let total_node_hours: f64 = report.node_hours.values().sum();
    let hourly_node_hours = total_node_hours / hours as f64;

    println!("\nper-hour PGE (spam bit from the stored evaluation sidecar; node-hours amortized):");
    let mut header = format!(
        "{:>4} {:>8} {:>7} {:>9} {:>9} {:>8}",
        "hour", "tweets", "spam", "spammers", "node-hrs", "PGE"
    );
    for kind in &kinds {
        header.push_str(&format!(" {:>18}", truncate_label(&kind.to_string(), 18)));
    }
    println!("{header}");
    for row in &stats {
        let pge = if hourly_node_hours > 0.0 {
            row.spammers as f64 / hourly_node_hours
        } else {
            0.0
        };
        let mut line = format!(
            "{:>4} {:>8} {:>7} {:>9} {:>9.1} {:>8.4}",
            row.hour, row.tweets, row.spams, row.spammers, hourly_node_hours, pge
        );
        for kind in &kinds {
            line.push_str(&format!(" {:>18.4}", by_attr[kind][row.hour as usize]));
        }
        println!("{line}");
    }
}

/// Clips an attribute label to `width` characters for a table header.
fn truncate_label(label: &str, width: usize) -> String {
    if label.chars().count() <= width {
        label.to_string()
    } else {
        let cut: String = label.chars().take(width.saturating_sub(1)).collect();
        format!("{cut}…")
    }
}

/// The whole-run slot ranking, scored off the stored sidecar.
fn print_top_slots(report: &MonitorReport, flags: &[bool], hours: u64, top: usize) {
    let ranking = pge_ranking_with_min(report, flags, hours as f64 * 2.0);
    println!("\ntop attributes by PGE (whole run):");
    if ranking.is_empty() {
        println!("  (none above the node-hour floor)");
        return;
    }
    for entry in ranking.iter().take(top) {
        println!(
            "  {:<44} PGE {:.4} ({} spammers over {:.0} node-hours)",
            entry.slot.describe(),
            entry.pge,
            entry.spammers,
            entry.node_hours
        );
    }
}

/// Per-stage throughput from the persisted `stage.*` series points.
fn print_stage_throughput(series: &[ph_telemetry::SeriesPoint]) {
    type StageRow = (Option<f64>, Option<f64>, Option<f64>);
    let mut stages: BTreeMap<String, StageRow> = BTreeMap::new();
    for p in series {
        let Some(rest) = p.name.strip_prefix("stage.") else {
            continue;
        };
        let Some((stage, metric)) = rest.rsplit_once('.') else {
            continue;
        };
        let entry = stages.entry(stage.to_string()).or_default();
        match metric {
            "items" => entry.0 = Some(p.value),
            "ms" => entry.1 = Some(p.value),
            "tweets_per_s" => entry.2 = Some(p.value),
            _ => {}
        }
    }
    if stages.is_empty() {
        return;
    }
    let cell = |v: Option<f64>, precision: usize| match v {
        Some(v) => format!("{v:.precision$}"),
        None => "-".to_string(),
    };
    println!("\nstage throughput:");
    println!(
        "{:<28} {:>12} {:>12} {:>12}",
        "stage", "items", "total ms", "tweets/s"
    );
    for (stage, (items, ms, tps)) in &stages {
        println!(
            "{:<28} {:>12} {:>12} {:>12}",
            stage,
            cell(*items, 0),
            cell(*ms, 1),
            cell(*tps, 0)
        );
    }
}

/// The span tree, reconstructed from the dotted `span.<path>.*` series
/// names: a path nests under every other recorded path that dot-prefixes
/// it.
fn print_span_tree(series: &[ph_telemetry::SeriesPoint]) {
    let mut spans: BTreeMap<String, (f64, f64)> = BTreeMap::new();
    for p in series {
        let Some(rest) = p.name.strip_prefix("span.") else {
            continue;
        };
        if let Some(path) = rest.strip_suffix(".count") {
            spans.entry(path.to_string()).or_default().0 = p.value;
        } else if let Some(path) = rest.strip_suffix(".total_ms") {
            spans.entry(path.to_string()).or_default().1 = p.value;
        }
    }
    if spans.is_empty() {
        return;
    }
    println!("\nspan tree:");
    let paths: Vec<String> = spans.keys().cloned().collect();
    for (path, (count, total_ms)) in &spans {
        let depth = paths
            .iter()
            .filter(|p| {
                path.len() > p.len()
                    && path.starts_with(p.as_str())
                    && path.as_bytes()[p.len()] == b'.'
            })
            .count();
        println!(
            "  {:indent$}{:<32} {:>8.0}× {:>12.1} ms",
            "",
            path,
            count,
            total_ms,
            indent = depth * 2
        );
    }
}

/// The last `tail` events of the persisted run journal.
fn print_journal_tail(journal: &[ph_telemetry::JournalEntry], tail: usize) {
    if journal.is_empty() {
        return;
    }
    println!(
        "\njournal: {} deterministic events; last {}:",
        journal.len(),
        tail.min(journal.len())
    );
    let skip = journal.len().saturating_sub(tail);
    for entry in &journal[skip..] {
        println!("  #{:<6} {}", entry.seq, entry.event.describe());
    }
}

fn showdown(args: &Args) {
    let hours = args.get_u64("hours", 36);
    let nodes = args.get_u64("nodes", 100) as usize;
    let seed = args.get_u64("seed", 42);
    record_run_meta(exec_config(args).threads, seed);

    let mut ph_engine = Engine::new(sim_config(args));
    let runner = Runner::with_exec(
        RunnerConfig {
            seed,
            ..Default::default()
        },
        exec_config(args),
    );
    let ph = runner.run(&mut ph_engine, hours);
    let ph_oracle = ph_engine.ground_truth();
    let ph_flags: Vec<bool> = ph
        .collected
        .iter()
        .map(|c| ph_oracle.is_spam(&c.tweet))
        .collect();

    let mut rnd_engine = Engine::new(sim_config(args));
    let rnd = run_random_baseline(&mut rnd_engine, nodes, hours, seed);
    let rnd_oracle = rnd_engine.ground_truth();
    let rnd_flags: Vec<bool> = rnd
        .collected
        .iter()
        .map(|c| rnd_oracle.is_spam(&c.tweet))
        .collect();

    let (ph_pge, rnd_pge) = (overall_pge(&ph, &ph_flags), overall_pge(&rnd, &rnd_flags));
    println!("{hours} h head-to-head (oracle-scored):");
    println!(
        "  pseudo-honeypot: {} tweets, PGE {:.4}",
        ph.collected.len(),
        ph_pge
    );
    println!(
        "  random accounts: {} tweets, PGE {:.4}",
        rnd.collected.len(),
        rnd_pge
    );
    if rnd_pge > 0.0 {
        println!("  advantage: {:.2}×", ph_pge / rnd_pge);
    }
}
