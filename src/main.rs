//! The `pseudo-honeypot` command-line interface.
//!
//! ```text
//! pseudo-honeypot attributes                      list the 24-attribute taxonomy
//! pseudo-honeypot simulate  [--hours H] [--organic N] [--seed S]
//! pseudo-honeypot sniff     [--hours H] [--gt-hours H] [--organic N] [--seed S]
//! pseudo-honeypot showdown  [--hours H] [--nodes N] [--seed S]
//! ```
//!
//! Global options (any subcommand):
//!
//! ```text
//! --metrics-out FILE.json   write a machine-readable run report (spans,
//!                           counters, gauges, histograms) on exit
//! --log-level LEVEL         error | warn | info (default) | debug
//! --quiet                   silence all progress logging
//! ```
//!
//! `sniff` runs the complete paper pipeline: deploy the Table I/II network
//! on a simulated Twitter, collect, build ground truth, train the RF
//! detector, and report what it caught.

use std::path::Path;

use ph_telemetry::{log_info, log_warn};
use pseudo_honeypot::core::attributes::{AttributeKind, ProfileAttribute, SampleAttribute};
use pseudo_honeypot::core::baselines::run_random_baseline;
use pseudo_honeypot::core::detector::{build_training_data, DetectorConfig, SpamDetector};
use pseudo_honeypot::core::labeling::pipeline::{format_table3, label_collection, PipelineConfig};
use pseudo_honeypot::core::monitor::{Runner, RunnerConfig};
use pseudo_honeypot::core::pge::{overall_pge, pge_ranking_with_min};
use pseudo_honeypot::sim::engine::{Engine, SimConfig};

mod cli;
use cli::Args;

/// Options/flags accepted by every subcommand.
const GLOBAL_OPTIONS: &[&str] = &["metrics-out", "log-level"];
const GLOBAL_FLAGS: &[&str] = &["quiet"];

/// Simulator-shaping options shared by the engine-driving subcommands.
const SIM_OPTIONS: &[&str] = &["seed", "organic", "campaigns", "per-campaign"];

fn main() {
    let args = Args::parse(std::env::args().skip(1));
    configure_logging(&args);
    match args.command.as_deref() {
        Some("attributes") => {
            validate_options(&args, &[], &[]);
            attributes();
        }
        Some("simulate") => {
            validate_options(&args, &with_sim(&["hours"]), &[]);
            simulate(&args);
        }
        Some("sniff") => {
            validate_options(
                &args,
                &with_sim(&["hours", "gt-hours", "name"]),
                &["verify"],
            );
            sniff(&args);
        }
        Some("showdown") => {
            validate_options(&args, &with_sim(&["hours", "nodes"]), &[]);
            showdown(&args);
        }
        Some(other) => {
            eprintln!("unknown command '{other}'");
            usage();
            std::process::exit(2);
        }
        None => usage(),
    }
    write_metrics(&args);
}

/// Applies `--quiet` / `--log-level` before anything can log.
fn configure_logging(args: &Args) {
    if args.has_flag("quiet") {
        ph_telemetry::set_quiet();
    } else if let Some(level) = args.options.get("log-level") {
        match level.parse::<ph_telemetry::Level>() {
            Ok(level) => ph_telemetry::set_max_level(level),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }
}

/// Rejects options/flags outside the subcommand's and the global
/// allow-lists — a typo like `--huors` should fail loudly, not silently
/// run with the default.
fn validate_options(args: &Args, options: &[&str], flags: &[&str]) {
    let mut known_options: Vec<&str> = GLOBAL_OPTIONS.to_vec();
    known_options.extend(options);
    let mut known_flags: Vec<&str> = GLOBAL_FLAGS.to_vec();
    known_flags.extend(flags);
    let unknown = args.unknown_options(&known_options, &known_flags);
    if !unknown.is_empty() {
        let command = args.command.as_deref().unwrap_or("");
        eprintln!(
            "error: unknown option(s) for '{command}': {}",
            unknown.join(", ")
        );
        std::process::exit(2);
    }
}

/// `SIM_OPTIONS` plus subcommand extras.
fn with_sim<'a>(extra: &[&'a str]) -> Vec<&'a str> {
    let mut v: Vec<&str> = SIM_OPTIONS.to_vec();
    v.extend(extra);
    v
}

/// Honors `--metrics-out FILE.json` after the subcommand finishes.
fn write_metrics(args: &Args) {
    if let Some(path) = args.options.get("metrics-out") {
        match ph_telemetry::write_json_report(Path::new(path)) {
            Ok(()) => log_info!("wrote metrics report to {path}"),
            Err(e) => {
                eprintln!("error: failed to write metrics to {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

fn usage() {
    println!("pseudo-honeypot — attribute-driven spam sniffing (DSN 2019 reproduction)");
    println!();
    println!("commands:");
    println!("  attributes                          list the 24-attribute taxonomy (Table I/II)");
    println!("  simulate  [--hours H] [--organic N] [--seed S]");
    println!(
        "                                      run the social-network simulator and print stats"
    );
    println!("  sniff     [--hours H] [--gt-hours H] [--organic N] [--seed S]");
    println!("                                      full pipeline: monitor, label, train, detect");
    println!("  showdown  [--hours H] [--nodes N] [--seed S]");
    println!("                                      pseudo-honeypot vs random accounts");
    println!();
    println!("global options:");
    println!(
        "  --metrics-out FILE.json             write a JSON run report (spans/counters/histograms)"
    );
    println!("  --log-level LEVEL                   error | warn | info (default) | debug");
    println!("  --quiet                             silence progress logging");
}

fn sim_config(args: &Args) -> SimConfig {
    SimConfig {
        seed: args.get_u64("seed", 42),
        num_organic: args.get_u64("organic", 2_000) as usize,
        num_campaigns: args.get_u64("campaigns", 6) as usize,
        accounts_per_campaign: args.get_u64("per-campaign", 20) as usize,
        ..Default::default()
    }
}

fn attributes() {
    println!("C1 — profile-based attributes and Table II sample values:");
    for (i, attr) in ProfileAttribute::ALL.iter().enumerate() {
        let values: Vec<String> = attr
            .sample_values()
            .iter()
            .map(|v| {
                if v.fract().abs() < 1e-9 {
                    format!("{}", *v as i64)
                } else {
                    format!("{v:.3}")
                }
            })
            .collect();
        println!("  {:>2}. {:<32} {}", i + 1, attr.label(), values.join(" "));
    }
    println!("\nC2/C3 — topical attributes:");
    for kind in AttributeKind::all()
        .into_iter()
        .filter(|k| !matches!(k, AttributeKind::Profile(_)))
    {
        println!("   - {kind}");
    }
    let slots = SampleAttribute::standard_slots();
    println!(
        "\nstandard network: {} slots × 10 accounts = up to {} nodes",
        slots.len(),
        slots.len() * 10
    );
}

fn simulate(args: &Args) {
    let hours = args.get_u64("hours", 24);
    let mut engine = Engine::new(sim_config(args));
    log_info!(
        "simulating {hours} h over {} accounts…",
        engine.rest().num_accounts()
    );
    engine.run_hours(hours);
    let stats = engine.stats();
    println!("tweets:            {}", stats.tweets);
    println!("  spam:            {}", stats.spam_tweets);
    println!("  with mentions:   {}", stats.mention_tweets);
    println!("suspended:         {}", stats.suspended_accounts);
    println!(
        "accounts now:      {} (campaign churn adds replacements)",
        engine.rest().num_accounts()
    );
}

fn sniff(args: &Args) {
    let gt_hours = args.get_u64("gt-hours", 24);
    let hours = args.get_u64("hours", 24);
    let name = args.get_str("name", "sniffing campaign");
    println!("== {name} ==");
    let mut engine = Engine::new(sim_config(args));
    let runner = Runner::new(RunnerConfig {
        seed: args.get_u64("seed", 42),
        ..Default::default()
    });

    log_info!("phase 1: ground truth — standard network, {gt_hours} h…");
    let train_report = runner.run(&mut engine, gt_hours);
    let ground_truth =
        label_collection(&train_report.collected, &engine, &PipelineConfig::default());
    println!("{}", format_table3(&ground_truth.summary));

    log_info!("phase 2: training the Random Forest detector…");
    let (data, _) = build_training_data(
        &train_report.collected,
        &ground_truth.labels,
        &engine,
        pseudo_honeypot::core::features::DEFAULT_TAU,
    );
    let detector = SpamDetector::train(&DetectorConfig::default(), &data);

    log_info!("phase 3: sniffing for {hours} h…");
    let report = runner.run(&mut engine, hours);
    let outcome = detector.classify_collection(&report.collected, &engine);
    if report.dropped > 0 {
        log_warn!(
            "{} tweets were shed by the streaming buffer",
            report.dropped
        );
    }
    println!(
        "collected {} tweets from {} accounts",
        report.collected.len(),
        report.unique_authors()
    );
    println!(
        "classified {} spams from {} spammer accounts",
        outcome.num_spam(),
        outcome.num_spammers()
    );
    let ranking = pge_ranking_with_min(&report, &outcome.predictions, hours as f64 * 2.0);
    println!("\ntop attributes by PGE:");
    for entry in ranking.iter().take(5) {
        println!(
            "  {:<44} PGE {:.4} ({} spammers)",
            entry.slot.describe(),
            entry.pge,
            entry.spammers
        );
    }
    if args.has_flag("verify") {
        let oracle = engine.ground_truth();
        let correct = report
            .collected
            .iter()
            .zip(&outcome.predictions)
            .filter(|(c, &p)| p == oracle.is_spam(&c.tweet))
            .count();
        println!(
            "\noracle check: {:.2}% of verdicts correct",
            100.0 * correct as f64 / report.collected.len().max(1) as f64
        );
    }
}

fn showdown(args: &Args) {
    let hours = args.get_u64("hours", 36);
    let nodes = args.get_u64("nodes", 100) as usize;
    let seed = args.get_u64("seed", 42);

    let mut ph_engine = Engine::new(sim_config(args));
    let runner = Runner::new(RunnerConfig {
        seed,
        ..Default::default()
    });
    let ph = runner.run(&mut ph_engine, hours);
    let ph_oracle = ph_engine.ground_truth();
    let ph_flags: Vec<bool> = ph
        .collected
        .iter()
        .map(|c| ph_oracle.is_spam(&c.tweet))
        .collect();

    let mut rnd_engine = Engine::new(sim_config(args));
    let rnd = run_random_baseline(&mut rnd_engine, nodes, hours, seed);
    let rnd_oracle = rnd_engine.ground_truth();
    let rnd_flags: Vec<bool> = rnd
        .collected
        .iter()
        .map(|c| rnd_oracle.is_spam(&c.tweet))
        .collect();

    let (ph_pge, rnd_pge) = (overall_pge(&ph, &ph_flags), overall_pge(&rnd, &rnd_flags));
    println!("{hours} h head-to-head (oracle-scored):");
    println!(
        "  pseudo-honeypot: {} tweets, PGE {:.4}",
        ph.collected.len(),
        ph_pge
    );
    println!(
        "  random accounts: {} tweets, PGE {:.4}",
        rnd.collected.len(),
        rnd_pge
    );
    if rnd_pge > 0.0 {
        println!("  advantage: {:.2}×", ph_pge / rnd_pge);
    }
}
