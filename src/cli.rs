//! Minimal dependency-free argument parsing for the `pseudo-honeypot` CLI.

use std::collections::HashMap;

/// A parsed command line: subcommand + `--key value` options.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Args {
    /// First positional argument.
    pub command: Option<String>,
    /// `--key value` pairs (keys without the leading dashes).
    pub options: HashMap<String, String>,
    /// Bare `--flag`s (no value).
    pub flags: Vec<String>,
}

impl Args {
    /// Parses an iterator of raw arguments (excluding the program name).
    pub fn parse<I, S>(raw: I) -> Args
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut args = Args::default();
        let mut iter = raw.into_iter().map(Into::into).peekable();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                match iter.peek() {
                    Some(next) if !next.starts_with("--") => {
                        let value = iter.next().expect("peeked");
                        args.options.insert(key.to_string(), value);
                    }
                    _ => args.flags.push(key.to_string()),
                }
            } else if args.command.is_none() {
                args.command = Some(arg);
            }
        }
        args
    }

    /// A numeric option with a default.
    ///
    /// # Panics
    ///
    /// Panics with a friendly message when the value does not parse.
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        match self.options.get(key) {
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| panic!("--{key} expects an integer, got '{v}'")),
            None => default,
        }
    }

    /// A string option with a default.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.options
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Whether a bare flag was passed.
    pub fn has_flag(&self, flag: &str) -> bool {
        self.flags.iter().any(|f| f == flag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_command_options_and_flags() {
        let args = Args::parse(["sniff", "--hours", "24", "--verbose", "--seed", "7"]);
        assert_eq!(args.command.as_deref(), Some("sniff"));
        assert_eq!(args.get_u64("hours", 0), 24);
        assert_eq!(args.get_u64("seed", 0), 7);
        assert!(args.has_flag("verbose"));
        assert!(!args.has_flag("quiet"));
    }

    #[test]
    fn defaults_apply_when_absent() {
        let args = Args::parse(["simulate"]);
        assert_eq!(args.get_u64("hours", 48), 48);
        assert_eq!(args.get_str("slots", "top"), "top");
    }

    #[test]
    fn empty_input_is_safe() {
        let args = Args::parse(Vec::<String>::new());
        assert_eq!(args.command, None);
    }

    #[test]
    #[should_panic(expected = "expects an integer")]
    fn bad_numbers_panic_with_context() {
        let args = Args::parse(["x", "--hours", "soon"]);
        let _ = args.get_u64("hours", 0);
    }
}
