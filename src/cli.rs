//! Minimal dependency-free argument parsing for the `pseudo-honeypot` CLI.

use std::collections::HashMap;
use std::fmt;

/// A parsed command line: subcommand + `--key value` options.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Args {
    /// First positional argument.
    pub command: Option<String>,
    /// Positional arguments after the command, in order (e.g.
    /// `perf diff OLD NEW` → `["diff", "OLD", "NEW"]`).
    pub positionals: Vec<String>,
    /// `--key value` pairs (keys without the leading dashes).
    pub options: HashMap<String, String>,
    /// Bare `--flag`s (no value).
    pub flags: Vec<String>,
}

/// An option whose value failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadOption {
    /// Option key (without dashes).
    pub key: String,
    /// The raw value supplied.
    pub value: String,
    /// What the option expected.
    pub expected: &'static str,
}

impl fmt::Display for BadOption {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "--{} expects {}, got '{}'",
            self.key, self.expected, self.value
        )
    }
}

impl std::error::Error for BadOption {}

impl Args {
    /// Parses an iterator of raw arguments (excluding the program name).
    pub fn parse<I, S>(raw: I) -> Args
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut args = Args::default();
        let mut iter = raw.into_iter().map(Into::into).peekable();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                match iter.peek() {
                    Some(next) if !next.starts_with("--") => {
                        let value = iter.next().expect("peeked");
                        args.options.insert(key.to_string(), value);
                    }
                    _ => args.flags.push(key.to_string()),
                }
            } else if args.command.is_none() {
                args.command = Some(arg);
            } else {
                args.positionals.push(arg);
            }
        }
        args
    }

    /// A numeric option with a default, as a `Result`.
    ///
    /// # Errors
    ///
    /// Returns [`BadOption`] when the value is present but not an integer.
    pub fn try_get_u64(&self, key: &str, default: u64) -> Result<u64, BadOption> {
        match self.options.get(key) {
            Some(v) => v.parse().map_err(|_| BadOption {
                key: key.to_string(),
                value: v.clone(),
                expected: "an integer",
            }),
            None => Ok(default),
        }
    }

    /// A numeric option with a default. On a malformed value, prints the
    /// error plus a corrective hint and exits with status 2 (usage
    /// error) instead of panicking.
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.try_get_u64(key, default).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            eprintln!("hint: pass a non-negative integer, e.g. --{key} {default}");
            std::process::exit(2);
        })
    }

    /// A string option with a default.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.options
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Whether a bare flag was passed.
    pub fn has_flag(&self, flag: &str) -> bool {
        self.flags.iter().any(|f| f == flag)
    }

    /// Options and flags outside the given allow-lists, sorted — used to
    /// reject typos like `--huors` instead of silently ignoring them.
    pub fn unknown_options(&self, known_options: &[&str], known_flags: &[&str]) -> Vec<String> {
        let mut unknown: Vec<String> = self
            .options
            .keys()
            .filter(|k| !known_options.contains(&k.as_str()))
            .map(|k| format!("--{k}"))
            .chain(
                self.flags
                    .iter()
                    .filter(|f| !known_flags.contains(&f.as_str()))
                    .map(|f| format!("--{f}")),
            )
            .collect();
        unknown.sort();
        unknown
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_command_options_and_flags() {
        let args = Args::parse(["sniff", "--hours", "24", "--verbose", "--seed", "7"]);
        assert_eq!(args.command.as_deref(), Some("sniff"));
        assert_eq!(args.get_u64("hours", 0), 24);
        assert_eq!(args.get_u64("seed", 0), 7);
        assert!(args.has_flag("verbose"));
        assert!(!args.has_flag("quiet"));
    }

    #[test]
    fn defaults_apply_when_absent() {
        let args = Args::parse(["simulate"]);
        assert_eq!(args.get_u64("hours", 48), 48);
        assert_eq!(args.get_str("slots", "top"), "top");
    }

    #[test]
    fn empty_input_is_safe() {
        let args = Args::parse(Vec::<String>::new());
        assert_eq!(args.command, None);
        assert!(args.positionals.is_empty());
    }

    #[test]
    fn extra_positionals_are_kept_in_order() {
        let args = Args::parse(["perf", "diff", "OLD.json", "NEW.json", "--quiet"]);
        assert_eq!(args.command.as_deref(), Some("perf"));
        assert_eq!(args.positionals, vec!["diff", "OLD.json", "NEW.json"]);
        assert!(args.has_flag("quiet"));
    }

    #[test]
    fn bad_numbers_report_key_and_value() {
        let args = Args::parse(["x", "--hours", "soon"]);
        let err = args.try_get_u64("hours", 0).unwrap_err();
        let message = err.to_string();
        assert!(message.contains("--hours"), "{message}");
        assert!(message.contains("'soon'"), "{message}");
        assert!(message.contains("integer"), "{message}");
    }

    #[test]
    fn unparseable_threads_uses_the_numeric_option_error_path() {
        let args = Args::parse(["sniff", "--threads", "abc"]);
        let err = args.try_get_u64("threads", 1).unwrap_err();
        assert_eq!(
            err,
            BadOption {
                key: "threads".to_string(),
                value: "abc".to_string(),
                expected: "an integer",
            }
        );
        assert_eq!(err.to_string(), "--threads expects an integer, got 'abc'");
    }

    #[test]
    fn unknown_options_are_detected() {
        let args = Args::parse(["sniff", "--huors", "24", "--verify", "--hours", "4"]);
        let unknown = args.unknown_options(&["hours"], &[]);
        assert_eq!(unknown, vec!["--huors", "--verify"]);
        assert!(args
            .unknown_options(&["hours", "huors"], &["verify"])
            .is_empty());
    }
}
