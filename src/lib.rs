//! Umbrella crate for the pseudo-honeypot reproduction workspace.
//!
//! Re-exports the public APIs of the member crates so downstream users (and
//! the `examples/` binaries) can depend on a single crate:
//!
//! - [`sketch`] — similarity sketches (dHash, MinHash, name patterns),
//! - [`ml`] — from-scratch classifiers and cross-validation,
//! - [`sim`] — the Twitter-like social-network simulator,
//! - [`core`] — the pseudo-honeypot system itself,
//! - [`store`] — the durable segment log + checkpoint/replay store,
//! - [`serve`] — the long-lived sniffer daemon (socket ingestion, live
//!   verdicts, checkpointed restarts).

#![forbid(unsafe_code)]

pub use ph_core as core;
pub use ph_ml as ml;
pub use ph_serve as serve;
pub use ph_sketch as sketch;
pub use ph_store as store;
pub use ph_twitter_sim as sim;
