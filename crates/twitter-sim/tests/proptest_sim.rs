//! Property-based tests for simulator invariants.

use proptest::prelude::*;

use ph_twitter_sim::account::AccountId;
use ph_twitter_sim::engine::{Engine, SimConfig};
use ph_twitter_sim::wire::{decode_frame, encode_frame};

fn config(seed: u64, organic: usize, campaigns: usize) -> SimConfig {
    SimConfig {
        seed,
        num_organic: organic,
        num_campaigns: campaigns,
        accounts_per_campaign: 4,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The engine never loses accounting: stats are internally consistent
    /// and monotone in simulated hours.
    #[test]
    fn engine_stats_consistent(seed: u64, hours in 1u64..6) {
        let mut engine = Engine::new(config(seed, 120, 2));
        engine.run_hours(hours);
        let stats = engine.stats();
        prop_assert_eq!(stats.hours, hours);
        prop_assert!(stats.spam_tweets <= stats.tweets);
        prop_assert!(stats.mention_tweets <= stats.tweets);
        prop_assert_eq!(engine.now().whole_hours(), hours);
    }

    /// Streaming delivery is filter-sound: every delivered tweet crosses a
    /// tracked account.
    #[test]
    fn streaming_filter_soundness(seed: u64, tracked_count in 1usize..10) {
        let mut engine = Engine::new(config(seed, 150, 2));
        let tracked: Vec<AccountId> =
            (0..tracked_count as u32).map(AccountId).collect();
        let streaming = engine.streaming();
        let sub = streaming.track_mentions(tracked.clone());
        engine.run_hours(3);
        for tweet in streaming.poll(sub).unwrap() {
            let crosses = tracked.contains(&tweet.author)
                || tracked.iter().any(|&t| tweet.mentions_account(t));
            prop_assert!(crosses, "delivered tweet does not cross the filter");
        }
    }

    /// Every tweet produced by the engine survives a wire round-trip
    /// losslessly (modulo the hidden ground-truth flag).
    #[test]
    fn wire_roundtrip_of_real_traffic(seed: u64) {
        let mut engine = Engine::new(config(seed, 100, 2));
        let streaming = engine.streaming();
        let all: Vec<AccountId> = (0..engine.rest().num_accounts() as u32)
            .map(AccountId)
            .collect();
        let sub = streaming.track_mentions(all);
        engine.run_hours(2);
        for tweet in streaming.poll(sub).unwrap() {
            let decoded = decode_frame(&encode_frame(&tweet)).unwrap();
            prop_assert_eq!(decoded.id, tweet.id);
            prop_assert_eq!(decoded.text, tweet.text.clone());
            prop_assert_eq!(decoded.mentions, tweet.mentions.clone());
            prop_assert_eq!(decoded.created_at, tweet.created_at);
        }
    }

    /// Same seed ⇒ identical traffic; different seed ⇒ (almost surely)
    /// different traffic volume.
    #[test]
    fn seed_determinism(seed: u64) {
        let run = |s: u64| {
            let mut e = Engine::new(config(s, 100, 2));
            e.run_hours(3);
            e.stats()
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// Suspended accounts stop producing tweets.
    #[test]
    fn suspended_accounts_go_quiet(seed: u64) {
        let mut engine = Engine::new(SimConfig {
            suspension_rate_per_hour: 0.5,
            ..config(seed, 80, 3)
        });
        let streaming = engine.streaming();
        let all: Vec<AccountId> = (0..engine.rest().num_accounts() as u32)
            .map(AccountId)
            .collect();
        let sub = streaming.track_mentions(all);
        // Let suspensions accumulate.
        engine.run_hours(12);
        let _ = streaming.poll(sub).unwrap();
        // Record who is suspended now, then verify none of them tweet later.
        let suspended: Vec<AccountId> = (0..engine.rest().num_accounts() as u32)
            .map(AccountId)
            .filter(|&id| engine.rest().is_suspended(id))
            .collect();
        engine.run_hours(3);
        for tweet in streaming.poll(sub).unwrap() {
            prop_assert!(
                !suspended.contains(&tweet.author),
                "suspended account still tweeting"
            );
        }
    }
}
