//! The realized social-interaction graph.
//!
//! Profiles declare friend/follower *counts* (what the paper's C1
//! attributes read), but organic interaction flows over a much smaller set
//! of realized relationships — the people a user actually reads and
//! replies to. This module materializes that interaction subgraph:
//! every account holds up to [`EDGE_CAP`] outgoing "actually follows"
//! edges, attached preferentially to high-follower accounts, and organic
//! mention targeting walks these edges. Spammers ignore the graph (they
//! target by attractiveness), which is exactly the asymmetry the
//! reciprocity and mention-time features exploit.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::account::{Account, AccountId};

/// Maximum realized out-edges per account.
pub const EDGE_CAP: usize = 30;

/// The realized interaction graph, indexed by dense account ids.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SocialGraph {
    following: Vec<Vec<AccountId>>,
    followers: Vec<Vec<AccountId>>,
}

impl SocialGraph {
    /// Builds the graph over the initial population: each account follows
    /// `min(friends_count, EDGE_CAP)` others, drawn preferentially by
    /// declared follower count (a Chung–Lu style attachment).
    pub fn generate(accounts: &[Account], rng: &mut StdRng) -> Self {
        let n = accounts.len();
        let mut graph = Self {
            following: vec![Vec::new(); n],
            followers: vec![Vec::new(); n],
        };
        if n < 2 {
            return graph;
        }
        // Cumulative attachment weights ∝ 1 + followers_count (the +1
        // keeps zero-follower accounts reachable).
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for account in accounts {
            acc += 1.0 + account.profile.followers_count as f64;
            cumulative.push(acc);
        }
        for (i, account) in accounts.iter().enumerate() {
            debug_assert_eq!(
                account.profile.id.index(),
                i,
                "graph generation requires dense, in-order account ids"
            );
            let out_degree = (account.profile.friends_count as usize).min(EDGE_CAP);
            let mut targets: Vec<AccountId> = Vec::with_capacity(out_degree);
            let mut guard = 0;
            while targets.len() < out_degree && guard < out_degree * 20 {
                guard += 1;
                let draw = rng.random::<f64>() * acc;
                let pick = cumulative.partition_point(|&c| c < draw).min(n - 1);
                let id = accounts[pick].profile.id;
                if pick != i && !targets.contains(&id) {
                    targets.push(id);
                }
            }
            for &target in &targets {
                graph.followers[target.index()].push(account.profile.id);
            }
            graph.following[i] = targets;
        }
        graph
    }

    /// Number of accounts covered.
    pub fn len(&self) -> usize {
        self.following.len()
    }

    /// True when the graph covers no accounts.
    pub fn is_empty(&self) -> bool {
        self.following.is_empty()
    }

    /// Accounts `id` actually follows (empty for accounts added after
    /// generation, e.g. churned-in campaign replacements).
    pub fn following(&self, id: AccountId) -> &[AccountId] {
        self.following
            .get(id.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Accounts actually following `id`.
    pub fn followers(&self, id: AccountId) -> &[AccountId] {
        self.followers
            .get(id.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Whether `a` follows `b`.
    pub fn follows(&self, a: AccountId, b: AccountId) -> bool {
        self.following(a).contains(&b)
    }

    /// Extends the index space for accounts registered after generation
    /// (they start with no realized edges).
    pub fn extend_to(&mut self, len: usize) {
        if len > self.following.len() {
            self.following.resize(len, Vec::new());
            self.followers.resize(len, Vec::new());
        }
    }

    /// Total realized edges.
    pub fn edge_count(&self) -> usize {
        self.following.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::generate_organic;
    use rand::SeedableRng;

    fn graph(n: usize, seed: u64) -> (Vec<Account>, SocialGraph) {
        let mut rng = StdRng::seed_from_u64(seed);
        let accounts = generate_organic(n, 0, &mut rng);
        let graph = SocialGraph::generate(&accounts, &mut rng);
        (accounts, graph)
    }

    #[test]
    fn out_degree_respects_declared_friends_and_cap() {
        let (accounts, graph) = graph(300, 1);
        for account in &accounts {
            let realized = graph.following(account.profile.id).len();
            let declared = account.profile.friends_count as usize;
            assert!(realized <= declared.min(EDGE_CAP));
        }
        assert!(graph.edge_count() > 0);
    }

    #[test]
    fn followers_mirror_following() {
        let (accounts, graph) = graph(200, 2);
        for account in &accounts {
            let id = account.profile.id;
            for &target in graph.following(id) {
                assert!(
                    graph.followers(target).contains(&id),
                    "edge {id}→{target} missing from follower list"
                );
            }
        }
        let total_followers: usize = accounts
            .iter()
            .map(|a| graph.followers(a.profile.id).len())
            .sum();
        assert_eq!(total_followers, graph.edge_count());
    }

    #[test]
    fn no_self_loops_or_duplicate_edges() {
        let (accounts, graph) = graph(200, 3);
        for account in &accounts {
            let id = account.profile.id;
            let targets = graph.following(id);
            assert!(!targets.contains(&id), "self-loop at {id}");
            let mut sorted = targets.to_vec();
            sorted.sort_unstable();
            let before = sorted.len();
            sorted.dedup();
            assert_eq!(before, sorted.len(), "duplicate edge at {id}");
        }
    }

    #[test]
    fn attachment_is_preferential() {
        let (accounts, graph) = graph(800, 4);
        // Accounts in the top follower-count decile should hold far more
        // realized followers than the bottom decile.
        let mut by_declared: Vec<&Account> = accounts.iter().collect();
        by_declared.sort_by_key(|a| a.profile.followers_count);
        let decile = accounts.len() / 10;
        let realized = |slice: &[&Account]| -> usize {
            slice
                .iter()
                .map(|a| graph.followers(a.profile.id).len())
                .sum()
        };
        let bottom = realized(&by_declared[..decile]);
        let top = realized(&by_declared[accounts.len() - decile..]);
        assert!(
            top > bottom * 3,
            "attachment not preferential (top {top}, bottom {bottom})"
        );
    }

    #[test]
    fn extend_to_adds_empty_rows() {
        let (_, mut graph) = graph(50, 5);
        graph.extend_to(60);
        assert_eq!(graph.len(), 60);
        assert!(graph.following(AccountId(55)).is_empty());
        // Shrinking is a no-op.
        graph.extend_to(10);
        assert_eq!(graph.len(), 60);
    }

    #[test]
    fn tiny_graphs_are_safe() {
        let (_, graph) = graph(1, 6);
        assert_eq!(graph.edge_count(), 0);
    }
}
