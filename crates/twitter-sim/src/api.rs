//! The simulated Twitter API surfaces: a Streaming API with mention-track
//! filters and a REST API for profile lookups.
//!
//! These facades are the *only* surfaces `ph-core` touches — mirroring the
//! paper's transparency requirement (§III-A): the pseudo-honeypot observes
//! accounts strictly through public developer APIs, never through privileged
//! access.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Arc, Mutex};

use crate::account::AccountId;
use crate::tweet::Tweet;

/// Handle to a streaming subscription.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubscriptionId(u64);

/// Default per-subscription buffer capacity; beyond it the oldest tweets are
/// dropped and counted (Twitter's real streaming API similarly sheds load).
pub const DEFAULT_QUEUE_CAPACITY: usize = 1_000_000;

#[derive(Debug)]
struct Subscription {
    tracked: HashSet<AccountId>,
    /// A firehose subscription matches every tweet regardless of
    /// `tracked` — the open-loop load generator's tap on the full
    /// simulated stream.
    firehose: bool,
    queue: VecDeque<Tweet>,
    capacity: usize,
    dropped: u64,
}

#[derive(Debug, Default)]
struct BusInner {
    next_id: u64,
    subscriptions: HashMap<u64, Subscription>,
}

/// The engine-side message bus behind [`StreamingApi`].
#[derive(Debug, Default)]
pub(crate) struct StreamBus {
    inner: Mutex<BusInner>,
}

impl StreamBus {
    /// Delivers a tweet to every subscription whose filter it matches.
    ///
    /// A tweet matches when it *mentions* a tracked account or is *authored
    /// by* one (the paper's categories (1)–(3) of collected tweets).
    pub(crate) fn publish(&self, tweet: &Tweet) {
        let mut inner = self.inner.lock().expect("stream bus lock poisoned");
        for sub in inner.subscriptions.values_mut() {
            let matches = sub.firehose
                || sub.tracked.contains(&tweet.author)
                || tweet.mentions.iter().any(|m| sub.tracked.contains(m));
            if matches {
                if sub.queue.len() >= sub.capacity {
                    sub.queue.pop_front();
                    sub.dropped += 1;
                }
                sub.queue.push_back(tweet.clone());
            }
        }
    }
}

/// Client handle to the simulated Streaming API. Cheap to clone; all clones
/// share the engine's bus.
#[derive(Debug, Clone)]
pub struct StreamingApi {
    bus: Arc<StreamBus>,
}

impl StreamingApi {
    pub(crate) fn new(bus: Arc<StreamBus>) -> Self {
        Self { bus }
    }

    /// Opens a subscription tracking mentions of (and posts by) the given
    /// accounts — the `@user_account_name` filter list of the paper's
    /// Tweepy implementation.
    pub fn track_mentions<I>(&self, accounts: I) -> SubscriptionId
    where
        I: IntoIterator<Item = AccountId>,
    {
        self.track_mentions_with_capacity(accounts, DEFAULT_QUEUE_CAPACITY)
    }

    /// Like [`track_mentions`](Self::track_mentions) with an explicit
    /// buffer capacity — small capacities simulate a slow consumer being
    /// load-shed by the stream.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn track_mentions_with_capacity<I>(&self, accounts: I, capacity: usize) -> SubscriptionId
    where
        I: IntoIterator<Item = AccountId>,
    {
        assert!(capacity > 0, "buffer capacity must be positive");
        self.subscribe(accounts.into_iter().collect(), false, capacity)
    }

    /// Opens a **firehose** subscription delivering *every* tweet the
    /// engine emits, regardless of author or mentions — the tap the
    /// open-loop load generator replays over the wire. Real deployments
    /// have no such feed (the paper's transparency requirement); it exists
    /// so the daemon's socket path can be driven at full simulated volume.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn firehose_with_capacity(&self, capacity: usize) -> SubscriptionId {
        assert!(capacity > 0, "buffer capacity must be positive");
        self.subscribe(HashSet::new(), true, capacity)
    }

    fn subscribe(
        &self,
        tracked: HashSet<AccountId>,
        firehose: bool,
        capacity: usize,
    ) -> SubscriptionId {
        let mut inner = self.bus.inner.lock().expect("stream bus lock poisoned");
        let id = inner.next_id;
        inner.next_id += 1;
        inner.subscriptions.insert(
            id,
            Subscription {
                tracked,
                firehose,
                queue: VecDeque::new(),
                capacity,
                dropped: 0,
            },
        );
        SubscriptionId(id)
    }

    /// Replaces a subscription's filter list (hourly pseudo-honeypot
    /// switching re-points the same stream at the new node set).
    ///
    /// # Errors
    ///
    /// Returns `Err` if the subscription does not exist (already closed).
    pub fn set_filter<I>(&self, id: SubscriptionId, accounts: I) -> Result<(), ClosedSubscription>
    where
        I: IntoIterator<Item = AccountId>,
    {
        let mut inner = self.bus.inner.lock().expect("stream bus lock poisoned");
        match inner.subscriptions.get_mut(&id.0) {
            Some(sub) => {
                sub.tracked = accounts.into_iter().collect();
                Ok(())
            }
            None => Err(ClosedSubscription(id)),
        }
    }

    /// Drains and returns all tweets buffered since the last poll.
    ///
    /// # Errors
    ///
    /// Returns `Err` if the subscription does not exist.
    pub fn poll(&self, id: SubscriptionId) -> Result<Vec<Tweet>, ClosedSubscription> {
        let mut inner = self.bus.inner.lock().expect("stream bus lock poisoned");
        match inner.subscriptions.get_mut(&id.0) {
            Some(sub) => Ok(sub.queue.drain(..).collect()),
            None => Err(ClosedSubscription(id)),
        }
    }

    /// Number of tweets shed due to a full buffer.
    ///
    /// # Errors
    ///
    /// Returns `Err` if the subscription does not exist.
    pub fn dropped(&self, id: SubscriptionId) -> Result<u64, ClosedSubscription> {
        let inner = self.bus.inner.lock().expect("stream bus lock poisoned");
        inner
            .subscriptions
            .get(&id.0)
            .map(|s| s.dropped)
            .ok_or(ClosedSubscription(id))
    }

    /// Closes a subscription; subsequent calls with its id fail.
    pub fn close(&self, id: SubscriptionId) {
        self.bus
            .inner
            .lock()
            .expect("stream bus lock poisoned")
            .subscriptions
            .remove(&id.0);
    }

    /// Number of live subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.bus
            .inner
            .lock()
            .expect("stream bus lock poisoned")
            .subscriptions
            .len()
    }
}

/// Error returned when using a closed or unknown subscription.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClosedSubscription(pub SubscriptionId);

impl std::fmt::Display for ClosedSubscription {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "streaming subscription {:?} is closed", self.0)
    }
}

impl std::error::Error for ClosedSubscription {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;
    use crate::tweet::{TweetId, TweetKind, TweetSource};

    fn tweet(author: u32, mentions: &[u32]) -> Tweet {
        Tweet {
            id: TweetId(1),
            author: AccountId(author),
            created_at: SimTime::EPOCH,
            kind: TweetKind::Original,
            source: TweetSource::Web,
            text: "hi".into(),
            hashtags: vec![],
            mentions: mentions.iter().map(|&m| AccountId(m)).collect(),
            urls: vec![],
            reacted_to_post_at: None,
            ground_truth_spam: false,
        }
    }

    fn api() -> (Arc<StreamBus>, StreamingApi) {
        let bus = Arc::new(StreamBus::default());
        let api = StreamingApi::new(Arc::clone(&bus));
        (bus, api)
    }

    #[test]
    fn delivers_mentions_of_tracked_accounts() {
        let (bus, api) = api();
        let sub = api.track_mentions([AccountId(7)]);
        bus.publish(&tweet(1, &[7]));
        bus.publish(&tweet(1, &[8]));
        let got = api.poll(sub).unwrap();
        assert_eq!(got.len(), 1);
        assert!(got[0].mentions_account(AccountId(7)));
    }

    #[test]
    fn delivers_posts_by_tracked_accounts() {
        let (bus, api) = api();
        let sub = api.track_mentions([AccountId(3)]);
        bus.publish(&tweet(3, &[]));
        assert_eq!(api.poll(sub).unwrap().len(), 1);
    }

    #[test]
    fn poll_drains_the_queue() {
        let (bus, api) = api();
        let sub = api.track_mentions([AccountId(1)]);
        bus.publish(&tweet(1, &[]));
        assert_eq!(api.poll(sub).unwrap().len(), 1);
        assert!(api.poll(sub).unwrap().is_empty());
    }

    #[test]
    fn set_filter_repoints_subscription() {
        let (bus, api) = api();
        let sub = api.track_mentions([AccountId(1)]);
        api.set_filter(sub, [AccountId(2)]).unwrap();
        bus.publish(&tweet(9, &[1]));
        bus.publish(&tweet(9, &[2]));
        let got = api.poll(sub).unwrap();
        assert_eq!(got.len(), 1);
        assert!(got[0].mentions_account(AccountId(2)));
    }

    #[test]
    fn closed_subscription_errors() {
        let (_bus, api) = api();
        let sub = api.track_mentions([AccountId(1)]);
        api.close(sub);
        assert!(api.poll(sub).is_err());
        assert!(api.set_filter(sub, []).is_err());
        assert_eq!(api.subscription_count(), 0);
    }

    #[test]
    fn overflow_sheds_oldest_and_counts_drops() {
        let (bus, api) = api();
        let sub = api.track_mentions_with_capacity([AccountId(1)], 2);
        for i in 0..5 {
            let mut t = tweet(1, &[]);
            t.id = TweetId(i);
            bus.publish(&t);
        }
        assert_eq!(api.dropped(sub).unwrap(), 3);
        let got = api.poll(sub).unwrap();
        assert_eq!(got.len(), 2);
        // The two *newest* tweets survive.
        assert_eq!(got[0].id, TweetId(3));
        assert_eq!(got[1].id, TweetId(4));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let (_bus, api) = api();
        let _ = api.track_mentions_with_capacity([AccountId(1)], 0);
    }

    #[test]
    fn firehose_receives_everything_and_sheds_like_any_subscription() {
        let (bus, api) = api();
        let fh = api.firehose_with_capacity(2);
        // No author or mention overlap with any tracked set — still delivered.
        bus.publish(&tweet(1, &[]));
        bus.publish(&tweet(2, &[3]));
        bus.publish(&tweet(4, &[]));
        assert_eq!(api.dropped(fh).unwrap(), 1);
        let got = api.poll(fh).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].author, AccountId(2));
        assert_eq!(got[1].author, AccountId(4));
    }

    #[test]
    fn multiple_subscriptions_receive_independently() {
        let (bus, api) = api();
        let s1 = api.track_mentions([AccountId(1)]);
        let s2 = api.track_mentions([AccountId(2)]);
        bus.publish(&tweet(9, &[1, 2]));
        assert_eq!(api.poll(s1).unwrap().len(), 1);
        assert_eq!(api.poll(s2).unwrap().len(), 1);
    }
}
