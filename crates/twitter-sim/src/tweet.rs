//! Tweets and their observable metadata.

use serde::{Deserialize, Serialize};

use crate::account::AccountId;
use crate::time::SimTime;

/// Identifier of a tweet within one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TweetId(pub u64);

/// The paper's "tweet status" content feature: tweet, retweet, or quote.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TweetKind {
    /// An original post.
    Original,
    /// A retweet of someone else's post.
    Retweet,
    /// A quote tweet.
    Quote,
}

impl TweetKind {
    /// All kinds, in feature-vector order.
    pub const ALL: [TweetKind; 3] = [TweetKind::Original, TweetKind::Retweet, TweetKind::Quote];
}

/// The paper's "tweet source" content feature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TweetSource {
    /// Posted from the web client.
    Web,
    /// Posted from an official mobile app.
    Mobile,
    /// Posted through a third-party app / the API (where bots live).
    ThirdParty,
    /// Anything else.
    Other,
}

impl TweetSource {
    /// All sources, in feature-vector order.
    pub const ALL: [TweetSource; 4] = [
        TweetSource::Web,
        TweetSource::Mobile,
        TweetSource::ThirdParty,
        TweetSource::Other,
    ];

    /// Index into [`TweetSource::ALL`].
    pub fn index(self) -> usize {
        match self {
            TweetSource::Web => 0,
            TweetSource::Mobile => 1,
            TweetSource::ThirdParty => 2,
            TweetSource::Other => 3,
        }
    }
}

/// One tweet as observed through the streaming API.
///
/// The `ground_truth_spam` field is *simulator-private* (`pub(crate)`):
/// downstream crates can only reach it through
/// [`crate::engine::GroundTruth`], keeping the detector honest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tweet {
    /// Unique id.
    pub id: TweetId,
    /// Author account.
    pub author: AccountId,
    /// Posting time.
    pub created_at: SimTime,
    /// Original / retweet / quote.
    pub kind: TweetKind,
    /// Posting client.
    pub source: TweetSource,
    /// Tweet text.
    pub text: String,
    /// Hashtags (without `#`).
    pub hashtags: Vec<String>,
    /// Mentioned accounts.
    pub mentions: Vec<AccountId>,
    /// Embedded URLs.
    pub urls: Vec<String>,
    /// When this tweet reacts to another user's post (a mention/reply), the
    /// time that post was made — observable by inspecting the target's
    /// public timeline. Drives the paper's *mention time* feature.
    pub reacted_to_post_at: Option<SimTime>,
    /// Simulation ground truth, reachable only via the oracle.
    pub(crate) ground_truth_spam: bool,
}

impl Tweet {
    /// Constructs a tweet as observed from outside the simulator (e.g. a
    /// hand-built fixture or a decoded wire frame). The hidden ground-truth
    /// flag defaults to *not spam* — real observers never see labels.
    #[allow(clippy::too_many_arguments)]
    pub fn observed(
        id: TweetId,
        author: AccountId,
        created_at: SimTime,
        kind: TweetKind,
        source: TweetSource,
        text: String,
        hashtags: Vec<String>,
        mentions: Vec<AccountId>,
        urls: Vec<String>,
        reacted_to_post_at: Option<SimTime>,
    ) -> Self {
        Self {
            id,
            author,
            created_at,
            kind,
            source,
            text,
            hashtags,
            mentions,
            urls,
            reacted_to_post_at,
            ground_truth_spam: false,
        }
    }

    /// The simulator's hidden spam label, exposed **for evaluation
    /// sidecars only**: `ph-store` persists it alongside each logged tweet
    /// so an offline `replay` can score against the oracle without a live
    /// engine. Detector, labeling, and feature code must keep going
    /// through [`crate::engine::GroundTruth`] — consuming this from a
    /// classification path defeats the honesty guarantee.
    #[must_use]
    pub fn evaluation_sidecar_spam(&self) -> bool {
        self.ground_truth_spam
    }

    /// Restores the hidden spam label on a decoded tweet — the write half
    /// of the evaluation sidecar (see [`Tweet::evaluation_sidecar_spam`]).
    pub fn set_evaluation_sidecar_spam(&mut self, spam: bool) {
        self.ground_truth_spam = spam;
    }

    /// Number of characters in the tweet text.
    pub fn content_length(&self) -> usize {
        self.text.chars().count()
    }

    /// Number of ASCII digits in the text.
    pub fn digit_count(&self) -> usize {
        self.text.chars().filter(char::is_ascii_digit).count()
    }

    /// Number of non-ASCII symbols in the text (the simulator's stand-in
    /// for emoji counting).
    pub fn emoji_count(&self) -> usize {
        self.text.chars().filter(|c| !c.is_ascii()).count()
    }

    /// True when this tweet mentions `account`.
    pub fn mentions_account(&self, account: AccountId) -> bool {
        self.mentions.contains(&account)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tweet(text: &str) -> Tweet {
        Tweet {
            id: TweetId(1),
            author: AccountId(2),
            created_at: SimTime::from_minutes(5),
            kind: TweetKind::Original,
            source: TweetSource::Web,
            text: text.to_string(),
            hashtags: vec![],
            mentions: vec![AccountId(3)],
            urls: vec![],
            reacted_to_post_at: None,
            ground_truth_spam: false,
        }
    }

    #[test]
    fn content_statistics() {
        let t = tweet("win 100 coins 🚀 now");
        assert_eq!(t.content_length(), 19);
        assert_eq!(t.digit_count(), 3);
        assert_eq!(t.emoji_count(), 1);
    }

    #[test]
    fn mention_check() {
        let t = tweet("hello");
        assert!(t.mentions_account(AccountId(3)));
        assert!(!t.mentions_account(AccountId(9)));
    }

    #[test]
    fn source_indices_cover_all() {
        for (i, s) in TweetSource::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
    }
}
