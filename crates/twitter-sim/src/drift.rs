//! Spammer-taste and spammer-behavior drift.
//!
//! "Since spammers' taste may change over time in practice, the Twitter
//! spammer drift problem is challenging in the design of pseudo-honeypot"
//! (§IV-C). The paper defers the problem to future work; this module makes
//! it *simulatable*. A [`DriftSchedule`] applies [`DriftEvent`]s at chosen
//! hours; each event can change
//!
//! - **tastes** — the ground-truth [`AttractivenessModel`] (who gets
//!   targeted), and/or
//! - **behaviour** — a [`StealthShift`] of every campaign (how the spam
//!   looks: subtle payload rate, reaction latency, posting sources).
//!
//! Behavioural drift is what degrades a frozen detector (the features it
//! learned stop firing); taste drift is what degrades attribute-based
//! selection. The `ablation_drift` bench exercises both against
//! `ph_core::drift::AdaptiveDetector`.

use serde::{Deserialize, Serialize};

use crate::attract::AttractivenessModel;

/// A campaign-wide behaviour change making spam look more organic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StealthShift {
    /// New probability that a spam attempt is subtle (benign wording,
    /// non-blacklisted URL).
    pub subtle_rate: f64,
    /// New mean minutes between a victim's post and the spam reaction
    /// (higher = more human-like).
    pub reaction_mean_minutes: f64,
    /// New posting-source distribution `[web, mobile, third-party, other]`.
    pub source_weights: [f64; 4],
}

impl StealthShift {
    /// The canonical "spammers go undercover" shift: mostly subtle
    /// payloads, human-like latency, mobile/web clients.
    pub fn undercover() -> Self {
        Self {
            subtle_rate: 0.6,
            reaction_mean_minutes: 45.0,
            source_weights: [0.35, 0.45, 0.1, 0.1],
        }
    }
}

/// One scheduled drift event.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DriftEvent {
    /// Replace the ground-truth attraction model (taste drift).
    pub attract: Option<AttractivenessModel>,
    /// Shift every campaign's behaviour (behavioural drift).
    pub stealth: Option<StealthShift>,
}

/// A schedule of drift events by hour.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DriftSchedule {
    /// `(hour, event)` pairs, sorted by hour; each takes effect at the
    /// *start* of its hour.
    changes: Vec<(u64, DriftEvent)>,
}

impl DriftSchedule {
    /// Builds a schedule; entries are sorted by hour.
    ///
    /// # Panics
    ///
    /// Panics if two entries share the same hour.
    pub fn new(mut changes: Vec<(u64, DriftEvent)>) -> Self {
        changes.sort_by_key(|&(h, _)| h);
        for pair in changes.windows(2) {
            assert_ne!(pair[0].0, pair[1].0, "duplicate drift hour {}", pair[0].0);
        }
        Self { changes }
    }

    /// A single taste flip at `hour`.
    pub fn flip_at(hour: u64, new_model: AttractivenessModel) -> Self {
        Self::new(vec![(
            hour,
            DriftEvent {
                attract: Some(new_model),
                stealth: None,
            },
        )])
    }

    /// A combined taste + behaviour flip at `hour` — the full drift
    /// scenario of the `ablation_drift` bench.
    pub fn full_flip_at(hour: u64, new_model: AttractivenessModel, shift: StealthShift) -> Self {
        Self::new(vec![(
            hour,
            DriftEvent {
                attract: Some(new_model),
                stealth: Some(shift),
            },
        )])
    }

    /// The event taking effect exactly at `hour`, if any.
    pub fn change_at(&self, hour: u64) -> Option<&DriftEvent> {
        self.changes
            .iter()
            .find(|&&(h, _)| h == hour)
            .map(|(_, e)| e)
    }

    /// All scheduled changes.
    pub fn changes(&self) -> &[(u64, DriftEvent)] {
        &self.changes
    }

    /// True when no changes are scheduled.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }
}

/// A ready-made "inverted tastes" model: spammers pivot away from
/// list-active, well-followed accounts toward fresh low-profile ones —
/// the qualitative opposite of the default model. The mildly negative
/// scale weights *repel* spammers from list-active and well-followed
/// victims (the factors floor at a small positive value) without
/// starving honeypot collection entirely, and the near-neutral
/// no-hashtag damp keeps the hashtag axis from confounding the list
/// axis (a strong no-hashtag boost drags victim selection toward
/// accounts that happen to be list-active, re-raising the very metric
/// the inversion is meant to lower).
pub fn inverted_tastes() -> AttractivenessModel {
    AttractivenessModel {
        lists_activity_weight: -0.1,
        follower_weight: -0.15,
        trending_up_boost: 1.0,
        popular_boost: 1.0,
        trending_down_boost: 1.8,
        no_hashtag_damp: 0.8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_sorts_and_looks_up() {
        let s = DriftSchedule::new(vec![
            (
                50,
                DriftEvent {
                    attract: Some(inverted_tastes()),
                    stealth: None,
                },
            ),
            (
                10,
                DriftEvent {
                    attract: Some(AttractivenessModel::default()),
                    stealth: None,
                },
            ),
        ]);
        assert_eq!(s.changes()[0].0, 10);
        assert!(s.change_at(50).is_some());
        assert!(s.change_at(49).is_none());
    }

    #[test]
    fn flip_constructors() {
        let s = DriftSchedule::flip_at(24, inverted_tastes());
        assert_eq!(s.changes().len(), 1);
        assert!(s.change_at(24).unwrap().stealth.is_none());
        let f = DriftSchedule::full_flip_at(24, inverted_tastes(), StealthShift::undercover());
        assert!(f.change_at(24).unwrap().stealth.is_some());
    }

    #[test]
    #[should_panic(expected = "duplicate drift hour")]
    fn duplicate_hours_panic() {
        let _ = DriftSchedule::new(vec![(5, DriftEvent::default()), (5, DriftEvent::default())]);
    }

    #[test]
    fn inverted_tastes_flip_the_strong_weights() {
        let normal = AttractivenessModel::default();
        let flipped = inverted_tastes();
        assert!(flipped.lists_activity_weight < normal.lists_activity_weight);
        assert!(flipped.no_hashtag_damp > normal.no_hashtag_damp);
    }

    #[test]
    fn undercover_shift_is_subtle_and_slow() {
        let s = StealthShift::undercover();
        assert!(s.subtle_rate > 0.5);
        assert!(s.reaction_mean_minutes > 30.0);
        assert!(s.source_weights[2] < 0.5, "third-party share must drop");
    }
}
