//! A seeded, event-driven Twitter-like social-network simulator.
//!
//! The paper evaluates pseudo-honeypots on live Twitter through the
//! Streaming and REST APIs — a data source that is gated. This crate
//! replaces it with a synthetic substrate that exposes the *same observable
//! surfaces*:
//!
//! - [`engine::Engine`] — hour-stepped simulation of organic users and spam
//!   campaigns over a dynamic topic pool,
//! - [`api::StreamingApi`] — mention-track filters with polled delivery
//!   (the `@user` filters of the paper's Tweepy implementation),
//! - [`engine::RestApi`] — profile lookups, suspension checks,
//!   timeline-derived activity signals,
//! - [`engine::GroundTruth`] — the evaluation-only oracle (which tweets are
//!   truly spam, which accounts are campaign-operated).
//!
//! Spammers pick victims with probability proportional to an
//! attribute-based [`attract::AttractivenessModel`], so the paper's central
//! phenomenon — some account attributes attract far more spam than others —
//! *emerges* in the stream rather than being wired into the detection
//! pipeline under test.
//!
//! # Example
//!
//! ```
//! use ph_twitter_sim::account::AccountId;
//! use ph_twitter_sim::engine::{Engine, SimConfig};
//!
//! let mut engine = Engine::new(SimConfig {
//!     num_organic: 200,
//!     num_campaigns: 2,
//!     accounts_per_campaign: 5,
//!     ..Default::default()
//! });
//! let streaming = engine.streaming();
//! let sub = streaming.track_mentions([AccountId(0), AccountId(1)]);
//! engine.run_hours(3);
//! let collected = streaming.poll(sub)?;
//! // Only tweets crossing the tracked accounts were delivered.
//! for tweet in &collected {
//!     assert!(
//!         tweet.author == AccountId(0)
//!             || tweet.author == AccountId(1)
//!             || tweet.mentions_account(AccountId(0))
//!             || tweet.mentions_account(AccountId(1))
//!     );
//! }
//! # Ok::<(), ph_twitter_sim::api::ClosedSubscription>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod account;
pub mod api;
pub mod attract;
pub mod campaign;
pub mod drift;
pub mod engine;
pub mod graph;
pub mod population;
pub mod text;
pub mod time;
pub mod topics;
pub mod tweet;
pub mod wire;

pub use account::{Account, AccountId, CampaignId, Profile};
pub use api::StreamingApi;
pub use engine::{Engine, GroundTruth, RestApi, SimConfig};
pub use time::SimTime;
pub use topics::{TopicCategory, Trend};
pub use tweet::{Tweet, TweetId, TweetKind, TweetSource};
