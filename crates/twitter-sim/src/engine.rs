//! The hour-stepped simulation engine.
//!
//! Each [`Engine::step_hour`] call: evolves the topic pool, refreshes the
//! spammer-attraction table, generates organic posts (with mentions and
//! replies), generates campaign spam targeted by attractiveness, runs the
//! suspension process, and publishes every tweet to the streaming bus.

use std::collections::VecDeque;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::account::{Account, AccountId, CampaignId};
use crate::api::{StreamBus, StreamingApi};
use crate::attract::{AttractivenessModel, TopicExposure};
use crate::campaign::Campaign;
use crate::population::generate_organic;
use crate::text::{benign_sentence, benign_url, spam_payload, MONEY_PHRASES};
use crate::time::{SimTime, MINUTES_PER_HOUR};
use crate::topics::{TopicEngine, Trend};
use crate::tweet::{Tweet, TweetId, TweetKind, TweetSource};

/// Simulation configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Master seed; everything downstream derives from it.
    pub seed: u64,
    /// Number of organic accounts.
    pub num_organic: usize,
    /// Number of spam campaigns.
    pub num_campaigns: usize,
    /// Accounts per campaign.
    pub accounts_per_campaign: usize,
    /// Topics per hashtag category.
    pub topics_per_category: usize,
    /// Hourly probability that a campaign account that has spammed gets
    /// suspended. Calibrated so a sizeable minority of spammers are
    /// suspended over a multi-hundred-hour run (paper Table III: suspension
    /// labels 6.7% of tweets).
    pub suspension_rate_per_hour: f64,
    /// Hourly probability that an organic account is (wrongly) suspended —
    /// "a suspended account is not necessarily a spam account".
    pub organic_suspension_rate_per_hour: f64,
    /// Hours a hashtag stays in an account's recent-exposure window.
    pub exposure_window_hours: u64,
    /// The ground-truth attraction model.
    pub attract: AttractivenessModel,
    /// Probability that an organic tweet uses spam-adjacent wording (hard
    /// negatives for the classifier).
    pub organic_spamlike_rate: f64,
    /// Probability that a campaign replaces a freshly suspended member with
    /// a newly registered account (the underground account-market churn the
    /// paper's related work describes). Churn spreads a campaign's spam
    /// volume over many short-lived accounts.
    pub campaign_replenishment_rate: f64,
    /// Optional spammer-taste drift schedule (§IV-C's future-work problem,
    /// made simulatable). `None` keeps tastes fixed for the whole run.
    pub drift: Option<crate::drift::DriftSchedule>,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            num_organic: 2_000,
            num_campaigns: 6,
            accounts_per_campaign: 12,
            topics_per_category: 12,
            suspension_rate_per_hour: 0.02,
            organic_suspension_rate_per_hour: 0.000_02,
            exposure_window_hours: 6,
            attract: AttractivenessModel::default(),
            organic_spamlike_rate: 0.01,
            campaign_replenishment_rate: 0.8,
            drift: None,
        }
    }
}

/// Aggregate counters maintained by the engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Hours simulated so far.
    pub hours: u64,
    /// Total tweets generated.
    pub tweets: u64,
    /// Ground-truth spam tweets generated.
    pub spam_tweets: u64,
    /// Tweets carrying at least one mention.
    pub mention_tweets: u64,
    /// Currently suspended accounts.
    pub suspended_accounts: u64,
}

/// Public activity summary used for the paper's Active/Dormant screening.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActivitySummary {
    /// Time of the account's most recent post, if any.
    pub last_post_at: Option<SimTime>,
    /// Exponentially-weighted recent mentions received per hour.
    pub recent_mentions_per_hour: f64,
}

/// One account's rolling exposure bookkeeping.
#[derive(Debug, Clone, Default)]
struct AccountState {
    last_post_at: Option<SimTime>,
    /// Hashtags used recently: (hashtag, hour used).
    recent_hashtags: VecDeque<(String, u64)>,
    /// EWMA of mentions received per hour.
    mention_ewma: f64,
    /// Mentions received during the current hour.
    mentions_this_hour: u32,
    suspended: bool,
    has_spammed: bool,
}

/// The simulation engine. See the module docs for the per-hour schedule.
#[derive(Debug)]
pub struct Engine {
    config: SimConfig,
    rng: StdRng,
    time: SimTime,
    accounts: Vec<Account>,
    campaigns: Vec<Campaign>,
    topics: TopicEngine,
    graph: crate::graph::SocialGraph,
    states: Vec<AccountState>,
    bus: Arc<StreamBus>,
    next_tweet_id: u64,
    stats: EngineStats,
    /// Cumulative attraction weights over organic accounts, rebuilt hourly.
    victim_cumulative: Vec<f64>,
    /// Organic account indices parallel to `victim_cumulative`.
    victim_indices: Vec<usize>,
    /// Accounts that posted during the last hour (reply targets).
    recent_posters: Vec<AccountId>,
}

impl Engine {
    /// Builds the population, campaigns and topic pool from the config.
    ///
    /// # Panics
    ///
    /// Panics if the config describes an empty population.
    pub fn new(config: SimConfig) -> Self {
        assert!(config.num_organic > 0, "need at least one organic account");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let topics = TopicEngine::new(config.topics_per_category, &mut rng);
        let mut accounts = generate_organic(config.num_organic, 0, &mut rng);
        let mut campaigns = Vec::with_capacity(config.num_campaigns);
        for c in 0..config.num_campaigns {
            let campaign = Campaign::generate(CampaignId(c as u16), &mut rng);
            for _ in 0..config.accounts_per_campaign {
                let id = AccountId(accounts.len() as u32);
                accounts.push(campaign.generate_member(id, &mut rng));
            }
            campaigns.push(campaign);
        }
        let graph = crate::graph::SocialGraph::generate(&accounts, &mut rng);
        let states = vec![AccountState::default(); accounts.len()];
        let mut engine = Self {
            config,
            rng,
            time: SimTime::EPOCH,
            accounts,
            campaigns,
            topics,
            graph,
            states,
            bus: Arc::new(StreamBus::default()),
            next_tweet_id: 0,
            stats: EngineStats::default(),
            victim_cumulative: Vec::new(),
            victim_indices: Vec::new(),
            recent_posters: Vec::new(),
        };
        engine.rebuild_victim_table();
        engine
    }

    /// Current simulation time (start of the next hour to simulate).
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// Aggregate counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Client handle to the streaming API.
    pub fn streaming(&self) -> StreamingApi {
        StreamingApi::new(Arc::clone(&self.bus))
    }

    /// Read-only REST facade.
    pub fn rest(&self) -> RestApi<'_> {
        RestApi { engine: self }
    }

    /// Ground-truth oracle (evaluation only — not part of the API surface
    /// the detector observes).
    pub fn ground_truth(&self) -> GroundTruth<'_> {
        GroundTruth { engine: self }
    }

    /// The topic pool (playing the hashtag-analytics-provider role).
    pub fn topics(&self) -> &TopicEngine {
        &self.topics
    }

    /// The spam campaigns (ground truth, for evaluation).
    pub fn campaigns(&self) -> &[Campaign] {
        &self.campaigns
    }

    /// Registers an externally constructed account (e.g. an artificial
    /// honeypot) into the live network. The account participates in the
    /// next simulated hour: it posts per its behavior and can be targeted
    /// by spammers like any organic account.
    ///
    /// Returns the id assigned to the new account.
    ///
    /// # Panics
    ///
    /// Panics if the account is constructed as a campaign member (scripted
    /// accounts must be organic-kind; campaigns are created via config).
    pub fn add_account(&mut self, mut account: crate::account::Account) -> AccountId {
        assert!(
            !account.is_spammer(),
            "scripted accounts must be organic-kind"
        );
        let id = AccountId(self.accounts.len() as u32);
        account.profile.id = id;
        self.accounts.push(account);
        self.states.push(AccountState::default());
        self.graph.extend_to(self.accounts.len());
        self.rebuild_victim_table();
        id
    }

    /// The realized social-interaction graph (public information: follow
    /// lists are visible through the real API as well).
    pub fn graph(&self) -> &crate::graph::SocialGraph {
        &self.graph
    }

    /// Simulates `hours` hours.
    pub fn run_hours(&mut self, hours: u64) {
        for _ in 0..hours {
            self.step_hour();
        }
    }

    /// Simulates one hour.
    pub fn step_hour(&mut self) {
        let _span = ph_telemetry::span("simulate.step_hour");
        // Spammer drift takes effect at the scheduled hour boundary.
        if let Some(schedule) = &self.config.drift {
            if let Some(event) = schedule.change_at(self.time.whole_hours()) {
                let event = event.clone();
                if let Some(model) = event.attract {
                    self.config.attract = model;
                }
                if let Some(shift) = event.stealth {
                    self.apply_stealth_shift(&shift);
                }
            }
        }
        self.topics.evolve(&mut self.rng);
        self.rebuild_victim_table();
        let mut posters: Vec<AccountId> = Vec::new();
        let mut tweets: Vec<Tweet> = Vec::new();

        for index in 0..self.accounts.len() {
            if self.states[index].suspended {
                continue;
            }
            if self.accounts[index].is_spammer() {
                self.spam_activity(index, &mut tweets);
                // Campaign accounts also post benign camouflage.
                let camouflage = self.campaigns[self.accounts[index]
                    .campaign()
                    .expect("spammer has campaign")
                    .0 as usize]
                    .camouflage_rate;
                if self.rng.random_bool(camouflage) {
                    let t = self.organic_tweet(index, false);
                    tweets.push(t);
                }
            } else {
                let posts = self.poisson(self.accounts[index].behavior.posts_per_hour);
                for _ in 0..posts {
                    let spamlike = self.rng.random_bool(self.config.organic_spamlike_rate);
                    let t = self.organic_tweet(index, spamlike);
                    tweets.push(t);
                }
                if posts > 0 {
                    posters.push(AccountId(index as u32));
                }
            }
        }

        // Deliver, then update rolling state.
        for tweet in &tweets {
            self.deliver(tweet);
        }
        ph_telemetry::cached_counter!("simulate.tweets_posted").add(tweets.len() as u64);
        self.recent_posters = posters;
        self.finish_hour();
    }

    /// Applies a behavioural drift shift to every campaign and its live
    /// members (future replacements inherit via the campaign templates).
    fn apply_stealth_shift(&mut self, shift: &crate::drift::StealthShift) {
        for campaign in &mut self.campaigns {
            campaign.subtle_rate = shift.subtle_rate;
            campaign.reaction_mean_minutes = shift.reaction_mean_minutes;
            campaign.member_source_weights = shift.source_weights;
        }
        for account in &mut self.accounts {
            if account.is_spammer() {
                account.behavior.reaction_latency_minutes = shift.reaction_mean_minutes;
                account.behavior.source_weights = shift.source_weights;
            }
        }
    }

    /// Rebuilds the cumulative attraction table over organic accounts.
    fn rebuild_victim_table(&mut self) {
        let hour = self.time.whole_hours();
        self.victim_indices.clear();
        self.victim_cumulative.clear();
        let mut acc = 0.0;
        for (i, account) in self.accounts.iter().enumerate() {
            if account.is_spammer() || self.states[i].suspended {
                continue;
            }
            let exposure = self.exposure_of(i, hour);
            let score = self.config.attract.score(&account.profile, &exposure);
            acc += score;
            self.victim_indices.push(i);
            self.victim_cumulative.push(acc);
        }
    }

    /// Recent topical exposure of an account.
    fn exposure_of(&self, index: usize, _hour: u64) -> TopicExposure {
        let mut exposure = TopicExposure::default();
        for (hashtag, _) in &self.states[index].recent_hashtags {
            if let Some(topic) = self.topics.topic(hashtag) {
                exposure.uses_hashtags = true;
                if !exposure.categories.contains(&topic.category) {
                    exposure.categories.push(topic.category);
                }
                match topic.trend {
                    Trend::Up => exposure.trending_up = true,
                    Trend::Down => exposure.trending_down = true,
                    Trend::Popular => exposure.popular = true,
                    Trend::Stable => {}
                }
            }
        }
        exposure
    }

    /// One organic (or camouflage) tweet from `index`.
    fn organic_tweet(&mut self, index: usize, spamlike: bool) -> Tweet {
        let created_at = self.random_minute();
        let behavior = self.accounts[index].behavior.clone();
        let kind = {
            let r = self.rng.random::<f64>();
            if r < behavior.retweet_probability {
                TweetKind::Retweet
            } else if r < behavior.retweet_probability + behavior.quote_probability {
                TweetKind::Quote
            } else {
                TweetKind::Original
            }
        };
        let source = self.sample_source(&behavior.source_weights);

        // Hashtags from the account's interests.
        let mut hashtags = Vec::new();
        if !behavior.interests.is_empty() && self.rng.random_bool(0.7) {
            let topic = self
                .topics
                .sample_topic(&behavior.interests, &mut self.rng)
                .name
                .clone();
            hashtags.push(topic);
        }

        // Mentions: organic users mostly react to people they actually
        // follow who posted recently; occasionally to any recent poster
        // (discovery via hashtags/retweets).
        let mut mentions = Vec::new();
        let mut reacted_to_post_at = None;
        if self.rng.random_bool(behavior.mention_probability) {
            let target = if self.rng.random_bool(0.7) {
                let id = AccountId(index as u32);
                let now_hours = self.time.whole_hours();
                let recent_followed: Vec<AccountId> = self
                    .graph
                    .following(id)
                    .iter()
                    .copied()
                    .filter(|f| {
                        self.states[f.index()]
                            .last_post_at
                            .is_some_and(|t| now_hours.saturating_sub(t.whole_hours()) <= 2)
                    })
                    .collect();
                recent_followed.choose(&mut self.rng).copied()
            } else {
                self.recent_posters.choose(&mut self.rng).copied()
            };
            if let Some(target) = target {
                if target.index() != index {
                    mentions.push(target);
                    // Organic reaction latency: the target posted earlier;
                    // reconstruct the observed gap from this user's latency.
                    let latency = self.exp_minutes(behavior.reaction_latency_minutes);
                    reacted_to_post_at =
                        Some(created_at - SimTime::from_minutes(latency.max(1.0) as u64));
                }
            }
        }

        let word_count = self.rng.random_range(4..12);
        let mut text = benign_sentence(&mut self.rng, word_count);
        let mut urls = Vec::new();
        if self.rng.random_bool(0.15) {
            let url = benign_url(&mut self.rng);
            text = format!("{text} {url}");
            urls.push(url);
        }
        if spamlike {
            // Hard negative: money wording, but benign link and organic
            // account. Keeps the classification boundary non-trivial.
            let phrase = MONEY_PHRASES
                .choose(&mut self.rng)
                .expect("non-empty corpus");
            text = format!("lol this ad says: {phrase}");
        }
        for h in &hashtags {
            text = format!("{text} #{h}");
        }

        self.make_tweet(
            index,
            created_at,
            kind,
            source,
            text,
            hashtags,
            mentions,
            urls,
            reacted_to_post_at,
            false,
        )
    }

    /// Spam mentions from campaign account `index` during this hour.
    fn spam_activity(&mut self, index: usize, out: &mut Vec<Tweet>) {
        let behavior = self.accounts[index].behavior.clone();
        let attempts = self.poisson(behavior.spam_attempts_per_hour);
        if attempts == 0 || self.victim_indices.is_empty() {
            return;
        }
        let flavor = behavior.spam_flavor.expect("spammer has flavor");
        let campaign = &self.campaigns[self.accounts[index]
            .campaign()
            .expect("spammer has campaign")
            .0 as usize];
        let (discipline, subtle_rate) = (campaign.discipline, campaign.subtle_rate);
        for _ in 0..attempts {
            let victim = self.sample_victim();
            let created_at = self.random_minute();
            // Spammers react to victims almost immediately.
            let gap = self.exp_minutes(behavior.reaction_latency_minutes).max(1.0);
            let reacted = Some(created_at - SimTime::from_minutes(gap as u64));
            let text = if self.rng.random_bool(subtle_rate) {
                crate::text::subtle_spam_payload(&mut self.rng)
            } else if self.rng.random_bool(discipline) {
                spam_payload(&mut self.rng, flavor)
            } else {
                let extra = self.rng.random_range(2..5);
                crate::text::spam_payload_with_noise(&mut self.rng, flavor, extra)
            };
            let urls: Vec<String> = text
                .split_whitespace()
                .filter(|w| w.starts_with("http"))
                .map(str::to_string)
                .collect();
            // Spam sometimes rides a trending hashtag for reach.
            let mut hashtags = Vec::new();
            if self.rng.random_bool(0.4) {
                let trending = self.topics.trending(Trend::Up, 5);
                if let Some(h) = trending.choose(&mut self.rng) {
                    hashtags.push((*h).to_string());
                }
            }
            let source = self.sample_source(&behavior.source_weights);
            let tweet = self.make_tweet(
                index,
                created_at,
                TweetKind::Original,
                source,
                text,
                hashtags,
                vec![AccountId(victim as u32)],
                urls,
                reacted,
                true,
            );
            out.push(tweet);
        }
        self.states[index].has_spammed = true;
    }

    /// Weighted victim draw from the hourly attraction table.
    fn sample_victim(&mut self) -> usize {
        let total = *self
            .victim_cumulative
            .last()
            .expect("victim table is non-empty");
        let draw = self.rng.random::<f64>() * total;
        let pos = self
            .victim_cumulative
            .partition_point(|&c| c < draw)
            .min(self.victim_indices.len() - 1);
        self.victim_indices[pos]
    }

    #[allow(clippy::too_many_arguments)]
    fn make_tweet(
        &mut self,
        author_index: usize,
        created_at: SimTime,
        kind: TweetKind,
        source: TweetSource,
        text: String,
        hashtags: Vec<String>,
        mentions: Vec<AccountId>,
        urls: Vec<String>,
        reacted_to_post_at: Option<SimTime>,
        spam: bool,
    ) -> Tweet {
        let id = TweetId(self.next_tweet_id);
        self.next_tweet_id += 1;
        Tweet {
            id,
            author: AccountId(author_index as u32),
            created_at,
            kind,
            source,
            text,
            hashtags,
            mentions,
            urls,
            reacted_to_post_at,
            ground_truth_spam: spam,
        }
    }

    /// Publishes a tweet and updates rolling per-account state + stats.
    fn deliver(&mut self, tweet: &Tweet) {
        self.bus.publish(tweet);
        self.stats.tweets += 1;
        if tweet.ground_truth_spam {
            self.stats.spam_tweets += 1;
        }
        if !tweet.mentions.is_empty() {
            self.stats.mention_tweets += 1;
        }
        let hour = self.time.whole_hours();
        let author = tweet.author.index();
        self.states[author].last_post_at = Some(tweet.created_at);
        for hashtag in &tweet.hashtags {
            self.states[author]
                .recent_hashtags
                .push_back((hashtag.clone(), hour));
        }
        for mention in &tweet.mentions {
            self.states[mention.index()].mentions_this_hour += 1;
        }
    }

    /// Hour epilogue: suspension process, exposure-window expiry, EWMA
    /// update, clock advance.
    fn finish_hour(&mut self) {
        let hour = self.time.whole_hours();
        let window = self.config.exposure_window_hours;
        let mut replacements: Vec<CampaignId> = Vec::new();
        for index in 0..self.accounts.len() {
            // Suspension.
            if !self.states[index].suspended {
                let rate = if self.accounts[index].is_spammer() {
                    if self.states[index].has_spammed {
                        self.config.suspension_rate_per_hour
                    } else {
                        0.0
                    }
                } else {
                    self.config.organic_suspension_rate_per_hour
                };
                if rate > 0.0 && self.rng.random_bool(rate.min(1.0)) {
                    self.states[index].suspended = true;
                    self.stats.suspended_accounts += 1;
                    // The campaign buys a replacement account.
                    if let Some(campaign) = self.accounts[index].campaign() {
                        if self
                            .rng
                            .random_bool(self.config.campaign_replenishment_rate.clamp(0.0, 1.0))
                        {
                            replacements.push(campaign);
                        }
                    }
                }
            }
            // Exposure window expiry.
            let state = &mut self.states[index];
            while state
                .recent_hashtags
                .front()
                .is_some_and(|&(_, h)| hour.saturating_sub(h) >= window)
            {
                state.recent_hashtags.pop_front();
            }
            // Mention EWMA.
            state.mention_ewma =
                state.mention_ewma * 0.7 + f64::from(state.mentions_this_hour) * 0.3;
            state.mentions_this_hour = 0;
        }
        for campaign_id in replacements {
            let id = AccountId(self.accounts.len() as u32);
            let member = self.campaigns[campaign_id.0 as usize].generate_member(id, &mut self.rng);
            self.accounts.push(member);
            self.states.push(AccountState::default());
        }
        self.graph.extend_to(self.accounts.len());
        self.stats.hours += 1;
        self.time = self.time + SimTime::from_hours(1);
    }

    /// A random minute within the current hour.
    fn random_minute(&mut self) -> SimTime {
        self.time + SimTime::from_minutes(self.rng.random_range(0..MINUTES_PER_HOUR))
    }

    /// Knuth Poisson sampler (rates here are ≤ ~4, so this is fast).
    fn poisson(&mut self, lambda: f64) -> u32 {
        if lambda <= 0.0 {
            return 0;
        }
        let l = (-lambda).exp();
        let mut k = 0u32;
        let mut p = 1.0;
        loop {
            p *= self.rng.random::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
            if k > 10_000 {
                return k; // defensive cap; unreachable for sane rates
            }
        }
    }

    /// Exponentially distributed minutes with the given mean.
    fn exp_minutes(&mut self, mean: f64) -> f64 {
        let u: f64 = self.rng.random::<f64>().max(1e-12);
        -mean * u.ln()
    }

    fn sample_source(&mut self, weights: &[f64; 4]) -> TweetSource {
        let total: f64 = weights.iter().sum();
        let mut draw = self.rng.random::<f64>() * total;
        for (i, &w) in weights.iter().enumerate() {
            draw -= w;
            if draw <= 0.0 {
                return TweetSource::ALL[i];
            }
        }
        TweetSource::Other
    }
}

/// Read-only REST facade over the engine — profile lookups, suspension
/// checks, timeline-derived signals. Everything here is public information
/// in Twitter terms.
#[derive(Debug, Clone, Copy)]
pub struct RestApi<'a> {
    engine: &'a Engine,
}

impl<'a> RestApi<'a> {
    /// Total number of accounts in the network.
    pub fn num_accounts(&self) -> usize {
        self.engine.accounts.len()
    }

    /// Looks up a public profile.
    pub fn profile(&self, id: AccountId) -> Option<&'a crate::account::Profile> {
        self.engine.accounts.get(id.index()).map(|a| &a.profile)
    }

    /// Iterates all public profiles (the paper screens billions of accounts
    /// through sampled streams; the simulator exposes the full directory).
    pub fn profiles(&self) -> impl Iterator<Item = &'a crate::account::Profile> {
        self.engine.accounts.iter().map(|a| &a.profile)
    }

    /// Whether the account is currently suspended.
    pub fn is_suspended(&self, id: AccountId) -> bool {
        self.engine
            .states
            .get(id.index())
            .is_some_and(|s| s.suspended)
    }

    /// Hashtags the account used within the exposure window (observable
    /// from its public timeline).
    pub fn recent_hashtags(&self, id: AccountId) -> Vec<String> {
        self.engine
            .states
            .get(id.index())
            .map(|s| s.recent_hashtags.iter().map(|(h, _)| h.clone()).collect())
            .unwrap_or_default()
    }

    /// Post/mention recency summary for Active/Dormant screening.
    pub fn activity(&self, id: AccountId) -> ActivitySummary {
        let state = &self.engine.states[id.index()];
        ActivitySummary {
            last_post_at: state.last_post_at,
            recent_mentions_per_hour: state.mention_ewma,
        }
    }
}

/// The evaluation-only oracle over simulation ground truth.
///
/// The pseudo-honeypot *pipeline* never consults this (it would be
/// cheating); the labeling pipeline's simulated "manual checking" pass and
/// the experiment harnesses do.
#[derive(Debug, Clone, Copy)]
pub struct GroundTruth<'a> {
    engine: &'a Engine,
}

impl GroundTruth<'_> {
    /// True when the tweet is ground-truth spam.
    pub fn is_spam(&self, tweet: &Tweet) -> bool {
        tweet.ground_truth_spam
    }

    /// True when the account is campaign-operated.
    pub fn is_spammer(&self, id: AccountId) -> bool {
        self.engine
            .accounts
            .get(id.index())
            .is_some_and(Account::is_spammer)
    }

    /// The campaign operating the account, if any.
    pub fn campaign_of(&self, id: AccountId) -> Option<CampaignId> {
        self.engine
            .accounts
            .get(id.index())
            .and_then(Account::campaign)
    }

    /// Total ground-truth spammer accounts in the network.
    pub fn num_spammers(&self) -> usize {
        self.engine
            .accounts
            .iter()
            .filter(|a| a.is_spammer())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(seed: u64) -> SimConfig {
        SimConfig {
            seed,
            num_organic: 300,
            num_campaigns: 3,
            accounts_per_campaign: 8,
            ..Default::default()
        }
    }

    #[test]
    fn engine_builds_expected_population() {
        let engine = Engine::new(small_config(1));
        assert_eq!(engine.rest().num_accounts(), 300 + 3 * 8);
        assert_eq!(engine.ground_truth().num_spammers(), 24);
    }

    #[test]
    fn stepping_advances_time_and_generates_tweets() {
        let mut engine = Engine::new(small_config(2));
        engine.run_hours(5);
        assert_eq!(engine.now().whole_hours(), 5);
        let stats = engine.stats();
        assert_eq!(stats.hours, 5);
        assert!(stats.tweets > 0, "no tweets generated");
        assert!(stats.spam_tweets > 0, "no spam generated");
        assert!(stats.spam_tweets < stats.tweets);
    }

    #[test]
    fn streaming_receives_mentions_of_tracked_account() {
        let mut engine = Engine::new(small_config(3));
        let streaming = engine.streaming();
        // Track everyone so the subscription certainly matches something.
        let all: Vec<AccountId> = (0..engine.rest().num_accounts() as u32)
            .map(AccountId)
            .collect();
        let sub = streaming.track_mentions(all);
        engine.run_hours(3);
        let tweets = streaming.poll(sub).unwrap();
        assert_eq!(tweets.len() as u64, engine.stats().tweets);
    }

    #[test]
    fn spam_tweets_mention_organic_victims() {
        let mut engine = Engine::new(small_config(4));
        let streaming = engine.streaming();
        let all: Vec<AccountId> = (0..engine.rest().num_accounts() as u32)
            .map(AccountId)
            .collect();
        let sub = streaming.track_mentions(all);
        engine.run_hours(4);
        let tweets = streaming.poll(sub).unwrap();
        let gt = engine.ground_truth();
        let spam: Vec<_> = tweets.iter().filter(|t| gt.is_spam(t)).collect();
        assert!(!spam.is_empty());
        for s in &spam {
            assert!(gt.is_spammer(s.author), "spam from non-spammer");
            assert!(!s.mentions.is_empty(), "spam without a victim mention");
            for m in &s.mentions {
                assert!(!gt.is_spammer(*m), "spammer targeted a spammer");
            }
        }
    }

    #[test]
    fn spammers_get_suspended_over_time() {
        let mut engine = Engine::new(SimConfig {
            suspension_rate_per_hour: 0.05,
            ..small_config(5)
        });
        engine.run_hours(60);
        let rest = engine.rest();
        let gt = engine.ground_truth();
        let suspended_spammers = (0..rest.num_accounts() as u32)
            .map(AccountId)
            .filter(|&id| gt.is_spammer(id) && rest.is_suspended(id))
            .count();
        assert!(
            suspended_spammers > 3,
            "only {suspended_spammers} spammers suspended after 60h"
        );
        // Suspension is partial: some spammers survive.
        assert!(suspended_spammers < gt.num_spammers());
    }

    #[test]
    fn deterministic_for_seed() {
        let mut a = Engine::new(small_config(9));
        let mut b = Engine::new(small_config(9));
        a.run_hours(3);
        b.run_hours(3);
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn activity_summary_tracks_posts() {
        let mut engine = Engine::new(small_config(6));
        engine.run_hours(6);
        let rest = engine.rest();
        let with_posts = (0..rest.num_accounts() as u32)
            .map(AccountId)
            .filter(|&id| rest.activity(id).last_post_at.is_some())
            .count();
        assert!(with_posts > 50, "only {with_posts} accounts ever posted");
    }

    #[test]
    fn spam_mention_gaps_are_shorter_than_organic() {
        let mut engine = Engine::new(small_config(7));
        let streaming = engine.streaming();
        let all: Vec<AccountId> = (0..engine.rest().num_accounts() as u32)
            .map(AccountId)
            .collect();
        let sub = streaming.track_mentions(all);
        engine.run_hours(8);
        let tweets = streaming.poll(sub).unwrap();
        let gt = engine.ground_truth();
        let mean_gap = |spam: bool| {
            let gaps: Vec<f64> = tweets
                .iter()
                .filter(|t| gt.is_spam(t) == spam && t.reacted_to_post_at.is_some())
                .map(|t| t.created_at.minutes_since(t.reacted_to_post_at.unwrap()) as f64)
                .collect();
            assert!(!gaps.is_empty());
            gaps.iter().sum::<f64>() / gaps.len() as f64
        };
        assert!(
            mean_gap(true) < mean_gap(false),
            "spam mention time should be shorter"
        );
    }

    #[test]
    fn churn_replaces_suspended_campaign_members() {
        let mut engine = Engine::new(SimConfig {
            suspension_rate_per_hour: 0.2,
            campaign_replenishment_rate: 1.0,
            ..small_config(33)
        });
        let before = engine.rest().num_accounts();
        engine.run_hours(25);
        let after = engine.rest().num_accounts();
        assert!(after > before, "no replacement accounts were registered");
        // Replacements are campaign members with fresh ids.
        let gt = engine.ground_truth();
        let fresh_spammers = (before as u32..after as u32)
            .map(AccountId)
            .filter(|&id| gt.is_spammer(id))
            .count();
        assert_eq!(
            fresh_spammers,
            after - before,
            "every churned-in account must belong to a campaign"
        );
    }

    #[test]
    fn churn_can_be_disabled() {
        let mut engine = Engine::new(SimConfig {
            suspension_rate_per_hour: 0.2,
            campaign_replenishment_rate: 0.0,
            ..small_config(34)
        });
        let before = engine.rest().num_accounts();
        engine.run_hours(25);
        assert_eq!(engine.rest().num_accounts(), before);
    }

    #[test]
    fn stealth_shift_applies_to_live_members() {
        use crate::drift::{DriftSchedule, StealthShift};
        let mut engine = Engine::new(SimConfig {
            drift: Some(DriftSchedule::new(vec![(
                2,
                crate::drift::DriftEvent {
                    attract: None,
                    stealth: Some(StealthShift::undercover()),
                },
            )])),
            ..small_config(35)
        });
        engine.run_hours(3);
        let shifted = engine
            .accounts
            .iter()
            .filter(|a| a.is_spammer())
            .all(|a| (a.behavior.reaction_latency_minutes - 45.0).abs() < 1e-9);
        assert!(shifted, "stealth shift did not reach live members");
    }

    #[test]
    fn drift_changes_victim_preferences() {
        use crate::drift::{inverted_tastes, DriftSchedule};
        // Mean lists-per-day of spam victims under normal vs inverted
        // tastes: inverted tastes must target noticeably less list-active
        // victims.
        let victim_lpd = |drift: Option<DriftSchedule>| -> f64 {
            let mut engine = Engine::new(SimConfig {
                drift,
                ..small_config(42)
            });
            let streaming = engine.streaming();
            let all: Vec<AccountId> = (0..engine.rest().num_accounts() as u32)
                .map(AccountId)
                .collect();
            let sub = streaming.track_mentions(all);
            engine.run_hours(10);
            let tweets = streaming.poll(sub).unwrap();
            let gt = engine.ground_truth();
            let rest = engine.rest();
            let lpds: Vec<f64> = tweets
                .iter()
                .filter(|t| gt.is_spam(t))
                .filter_map(|t| t.mentions.first())
                .filter_map(|&v| rest.profile(v))
                .map(|p| p.lists_per_day())
                .collect();
            assert!(!lpds.is_empty(), "no spam victims observed");
            lpds.iter().sum::<f64>() / lpds.len() as f64
        };
        let normal = victim_lpd(None);
        let drifted = victim_lpd(Some(DriftSchedule::flip_at(0, inverted_tastes())));
        assert!(
            drifted < normal,
            "inverted tastes should target less list-active victims \
             (normal {normal:.3}, drifted {drifted:.3})"
        );
    }

    #[test]
    fn exposure_window_expires() {
        let mut engine = Engine::new(SimConfig {
            exposure_window_hours: 2,
            ..small_config(8)
        });
        engine.run_hours(1);
        // Find an account with recent hashtags, then run past the window
        // with that account suspended-equivalent (we just check expiry for
        // accounts that stop posting — organic ones keep posting, so check
        // bounds instead: no hashtag entry may be older than the window).
        engine.run_hours(4);
        let rest = engine.rest();
        for i in 0..rest.num_accounts() as u32 {
            let tags = rest.recent_hashtags(AccountId(i));
            assert!(tags.len() < 1000, "unbounded hashtag window");
        }
    }
}
