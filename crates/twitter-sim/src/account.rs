//! Accounts: public profiles (what the Twitter API exposes) and private
//! behavioral parameters (how the simulator drives them).

use ph_sketch::GrayImage;
use serde::{Deserialize, Serialize};

use crate::text::SpamFlavor;
use crate::topics::TopicCategory;

/// Identifier of an account within one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AccountId(pub u32);

impl AccountId {
    /// The raw index (accounts are stored densely).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for AccountId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// Identifier of a spam campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CampaignId(pub u16);

/// Whether an account is organic or a campaign-operated spammer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccountKind {
    /// A normal user.
    Organic,
    /// A spammer operated by the given campaign.
    Campaign(CampaignId),
}

/// The public face of an account — everything observable through the
/// (simulated) Twitter REST API. This is what pseudo-honeypot selection and
/// feature extraction are allowed to see.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Profile {
    /// Account id.
    pub id: AccountId,
    /// Handle, e.g. `maria_gardens7`.
    pub screen_name: String,
    /// Display name.
    pub display_name: String,
    /// Bio text.
    pub description: String,
    /// Number of accounts this user follows ("friends" in Twitter terms).
    pub friends_count: u64,
    /// Number of followers.
    pub followers_count: u64,
    /// Account age in days at simulation start.
    pub account_age_days: u32,
    /// Number of lists the account appears on / has joined.
    pub lists_count: u64,
    /// Number of favorited (liked) tweets.
    pub favorites_count: u64,
    /// Lifetime number of statuses posted.
    pub statuses_count: u64,
    /// Verified badge.
    pub verified: bool,
    /// Still using the default egg avatar.
    pub default_profile_image: bool,
    /// Profile image raster (consumed by dHash clustering).
    pub profile_image: GrayImage,
}

impl Profile {
    /// `friends + followers` (Table II attribute 3).
    pub fn total_friends_followers(&self) -> u64 {
        self.friends_count + self.followers_count
    }

    /// `friends / followers` (Table II attribute 4); `friends` when the
    /// account has no followers (avoids ∞ while preserving ordering).
    pub fn friend_follower_ratio(&self) -> f64 {
        if self.followers_count == 0 {
            self.friends_count as f64
        } else {
            self.friends_count as f64 / self.followers_count as f64
        }
    }

    /// Average lists joined per day of account life (Table II attribute 9).
    pub fn lists_per_day(&self) -> f64 {
        self.lists_count as f64 / f64::from(self.account_age_days.max(1))
    }

    /// Average favorites per day (Table II attribute 10).
    pub fn favorites_per_day(&self) -> f64 {
        self.favorites_count as f64 / f64::from(self.account_age_days.max(1))
    }

    /// Average statuses per day (Table II attribute 11).
    pub fn statuses_per_day(&self) -> f64 {
        self.statuses_count as f64 / f64::from(self.account_age_days.max(1))
    }
}

/// Simulator-private behavioral parameters driving an account's activity.
/// These are *not* exposed through the API facades.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Behavior {
    /// Expected organic posts per hour (Poisson rate).
    pub posts_per_hour: f64,
    /// Probability that a post mentions another account.
    pub mention_probability: f64,
    /// Mean minutes between seeing a post and reacting to it.
    pub reaction_latency_minutes: f64,
    /// Distribution over tweet sources `[web, mobile, third-party, other]`;
    /// sums to 1.
    pub source_weights: [f64; 4],
    /// Probability that a post is a retweet.
    pub retweet_probability: f64,
    /// Probability that a post is a quote.
    pub quote_probability: f64,
    /// Topical interests (empty = posts without hashtags).
    pub interests: Vec<TopicCategory>,
    /// For campaign accounts: spam mentions attempted per active hour.
    pub spam_attempts_per_hour: f64,
    /// For campaign accounts: payload flavor.
    pub spam_flavor: Option<SpamFlavor>,
}

impl Behavior {
    /// A quiet organic default (tests and builders override fields).
    pub fn organic_default() -> Self {
        Self {
            posts_per_hour: 0.2,
            mention_probability: 0.3,
            reaction_latency_minutes: 120.0,
            source_weights: [0.3, 0.5, 0.1, 0.1],
            retweet_probability: 0.2,
            quote_probability: 0.1,
            interests: Vec::new(),
            spam_attempts_per_hour: 0.0,
            spam_flavor: None,
        }
    }
}

/// A full simulated account: public profile + private behavior + kind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Account {
    /// Public profile.
    pub profile: Profile,
    /// Private behavioral parameters.
    pub behavior: Behavior,
    /// Organic or campaign-operated.
    pub kind: AccountKind,
}

impl Account {
    /// True when the account is operated by a spam campaign.
    pub fn is_spammer(&self) -> bool {
        matches!(self.kind, AccountKind::Campaign(_))
    }

    /// The campaign id, if any.
    pub fn campaign(&self) -> Option<CampaignId> {
        match self.kind {
            AccountKind::Campaign(c) => Some(c),
            AccountKind::Organic => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> Profile {
        Profile {
            id: AccountId(1),
            screen_name: "tester".into(),
            display_name: "Tester".into(),
            description: "bio".into(),
            friends_count: 100,
            followers_count: 50,
            account_age_days: 200,
            lists_count: 20,
            favorites_count: 400,
            statuses_count: 1000,
            verified: false,
            default_profile_image: false,
            profile_image: GrayImage::new(9, 9),
        }
    }

    #[test]
    fn derived_attributes() {
        let p = profile();
        assert_eq!(p.total_friends_followers(), 150);
        assert!((p.friend_follower_ratio() - 2.0).abs() < 1e-12);
        assert!((p.lists_per_day() - 0.1).abs() < 1e-12);
        assert!((p.favorites_per_day() - 2.0).abs() < 1e-12);
        assert!((p.statuses_per_day() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_with_zero_followers_is_finite() {
        let mut p = profile();
        p.followers_count = 0;
        assert!((p.friend_follower_ratio() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn zero_age_is_clamped_for_per_day_averages() {
        let mut p = profile();
        p.account_age_days = 0;
        assert!(p.lists_per_day().is_finite());
    }

    #[test]
    fn kind_helpers() {
        let organic = Account {
            profile: profile(),
            behavior: Behavior::organic_default(),
            kind: AccountKind::Organic,
        };
        assert!(!organic.is_spammer());
        assert_eq!(organic.campaign(), None);
        let spammer = Account {
            kind: AccountKind::Campaign(CampaignId(3)),
            ..organic
        };
        assert!(spammer.is_spammer());
        assert_eq!(spammer.campaign(), Some(CampaignId(3)));
    }

    #[test]
    fn account_id_display() {
        assert_eq!(AccountId(42).to_string(), "u42");
    }
}
