//! Simulation time: minutes since the simulation epoch.
//!
//! The paper's pseudo-honeypot switches node sets hourly and computes
//! minute-grained behavioral features (mention time, average tweet
//! intervals), so a minute resolution over an hour-stepped engine is exactly
//! the granularity the pipeline needs.

use std::fmt;
use std::ops::{Add, Sub};

use serde::{Deserialize, Serialize};

/// Minutes per simulated hour.
pub const MINUTES_PER_HOUR: u64 = 60;

/// Minutes per simulated day.
pub const MINUTES_PER_DAY: u64 = 24 * MINUTES_PER_HOUR;

/// An instant in simulation time, measured in whole minutes since the
/// simulation epoch.
///
/// # Example
///
/// ```
/// use ph_twitter_sim::time::SimTime;
///
/// let t = SimTime::from_hours(2) + SimTime::from_minutes(30);
/// assert_eq!(t.as_minutes(), 150);
/// assert_eq!(t.whole_hours(), 2);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (minute zero).
    pub const EPOCH: SimTime = SimTime(0);

    /// Constructs from whole minutes.
    pub const fn from_minutes(minutes: u64) -> Self {
        SimTime(minutes)
    }

    /// Constructs from whole hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimTime(hours * MINUTES_PER_HOUR)
    }

    /// Constructs from whole days.
    pub const fn from_days(days: u64) -> Self {
        SimTime(days * MINUTES_PER_DAY)
    }

    /// Minutes since the epoch.
    pub const fn as_minutes(self) -> u64 {
        self.0
    }

    /// Whole hours elapsed since the epoch (truncating).
    pub const fn whole_hours(self) -> u64 {
        self.0 / MINUTES_PER_HOUR
    }

    /// Whole days elapsed since the epoch (truncating).
    pub const fn whole_days(self) -> u64 {
        self.0 / MINUTES_PER_DAY
    }

    /// Minutes elapsed since `earlier`, saturating at zero when `earlier`
    /// is in the future.
    pub const fn minutes_since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// This instant plus a number of minutes.
    pub const fn plus_minutes(self, minutes: u64) -> SimTime {
        SimTime(self.0 + minutes)
    }
}

impl Add for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl Sub for SimTime {
    type Output = SimTime;

    /// Saturating difference, consistent with [`SimTime::minutes_since`].
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}d{:02}h{:02}m",
            self.whole_days(),
            (self.0 / MINUTES_PER_HOUR) % 24,
            self.0 % MINUTES_PER_HOUR
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(SimTime::from_hours(3).as_minutes(), 180);
        assert_eq!(SimTime::from_days(2).whole_hours(), 48);
        assert_eq!(SimTime::from_minutes(61).whole_hours(), 1);
    }

    #[test]
    fn minutes_since_saturates() {
        let early = SimTime::from_minutes(10);
        let late = SimTime::from_minutes(25);
        assert_eq!(late.minutes_since(early), 15);
        assert_eq!(early.minutes_since(late), 0);
    }

    #[test]
    fn arithmetic_operators() {
        let t = SimTime::from_hours(1) + SimTime::from_minutes(5);
        assert_eq!(t.as_minutes(), 65);
        assert_eq!((t - SimTime::from_minutes(70)).as_minutes(), 0);
    }

    #[test]
    fn display_format() {
        let t = SimTime::from_days(1) + SimTime::from_hours(2) + SimTime::from_minutes(3);
        assert_eq!(t.to_string(), "1d02h03m");
    }
}
