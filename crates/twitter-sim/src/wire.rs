//! Wire format of the simulated streaming API.
//!
//! The real Streaming API delivers length-delimited JSON frames over a
//! chunked HTTP connection; the simulator's equivalent is a compact binary
//! frame (length-prefixed fields) so that stream consumers can be exercised
//! end-to-end — encode on the "server" side, decode on the client side —
//! without a JSON (or even a buffer-crate) dependency: frames are plain
//! `Vec<u8>`s and decoding walks a `&[u8]` cursor.
//!
//! Frame layout (all integers little-endian):
//!
//! ```text
//! u32  frame length (bytes after this field)
//! u64  tweet id          u32 author id        u64 created_at minutes
//! u8   kind              u8 source            u8 flags (bit0: has reaction)
//! u64  reacted_to minutes (present iff bit0)
//! str  text              [str] hashtags       [u32] mentions     [str] urls
//! ```
//!
//! where `str` is `u32 len + bytes` and `[T]` is `u32 count + items`.

use crate::account::AccountId;
use crate::time::SimTime;
use crate::tweet::{Tweet, TweetId, TweetKind, TweetSource};

/// Errors produced when decoding a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Frame shorter than its declared length.
    Truncated,
    /// Unknown enum discriminant.
    BadDiscriminant {
        /// The field containing the bad value.
        field: &'static str,
        /// The offending value.
        value: u8,
    },
    /// Text field is not UTF-8.
    BadUtf8,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "frame truncated"),
            DecodeError::BadDiscriminant { field, value } => {
                write!(f, "invalid {field} discriminant {value}")
            }
            DecodeError::BadUtf8 => write!(f, "string field is not valid utf-8"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encodes one tweet into a self-delimited frame.
pub fn encode_frame(tweet: &Tweet) -> Vec<u8> {
    let mut body = Vec::with_capacity(64 + tweet.text.len());
    put_u64(&mut body, tweet.id.0);
    put_u32(&mut body, tweet.author.0);
    put_u64(&mut body, tweet.created_at.as_minutes());
    put_u8(
        &mut body,
        match tweet.kind {
            TweetKind::Original => 0,
            TweetKind::Retweet => 1,
            TweetKind::Quote => 2,
        },
    );
    put_u8(&mut body, tweet.source.index() as u8);
    match tweet.reacted_to_post_at {
        Some(t) => {
            put_u8(&mut body, 1);
            put_u64(&mut body, t.as_minutes());
        }
        None => put_u8(&mut body, 0),
    }
    put_str(&mut body, &tweet.text);
    put_u32(&mut body, tweet.hashtags.len() as u32);
    for h in &tweet.hashtags {
        put_str(&mut body, h);
    }
    put_u32(&mut body, tweet.mentions.len() as u32);
    for m in &tweet.mentions {
        put_u32(&mut body, m.0);
    }
    put_u32(&mut body, tweet.urls.len() as u32);
    for u in &tweet.urls {
        put_str(&mut body, u);
    }

    let mut frame = Vec::with_capacity(4 + body.len());
    put_u32(&mut frame, body.len() as u32);
    frame.extend_from_slice(&body);
    frame
}

/// Decodes one frame back into a tweet.
///
/// The ground-truth flag is *not* part of the wire format (a real stream
/// would not carry labels); decoded tweets are always `spam = false` as far
/// as the hidden field is concerned and must be labeled by the pipeline.
///
/// # Errors
///
/// Returns a [`DecodeError`] on truncated or malformed frames.
pub fn decode_frame(frame: &[u8]) -> Result<Tweet, DecodeError> {
    let mut buf = frame;
    let declared = take_u32(&mut buf)? as usize;
    if buf.len() < declared {
        return Err(DecodeError::Truncated);
    }
    let id = TweetId(take_u64(&mut buf)?);
    let author = AccountId(take_u32(&mut buf)?);
    let created_at = SimTime::from_minutes(take_u64(&mut buf)?);
    let kind = match take_u8(&mut buf)? {
        0 => TweetKind::Original,
        1 => TweetKind::Retweet,
        2 => TweetKind::Quote,
        value => {
            return Err(DecodeError::BadDiscriminant {
                field: "kind",
                value,
            })
        }
    };
    let source = match take_u8(&mut buf)? {
        0 => TweetSource::Web,
        1 => TweetSource::Mobile,
        2 => TweetSource::ThirdParty,
        3 => TweetSource::Other,
        value => {
            return Err(DecodeError::BadDiscriminant {
                field: "source",
                value,
            })
        }
    };
    let reacted_to_post_at = match take_u8(&mut buf)? {
        0 => None,
        1 => Some(SimTime::from_minutes(take_u64(&mut buf)?)),
        value => {
            return Err(DecodeError::BadDiscriminant {
                field: "flags",
                value,
            })
        }
    };
    let text = take_str(&mut buf)?;
    let hashtag_count = take_u32(&mut buf)? as usize;
    let mut hashtags = Vec::with_capacity(hashtag_count.min(1024));
    for _ in 0..hashtag_count {
        hashtags.push(take_str(&mut buf)?);
    }
    let mention_count = take_u32(&mut buf)? as usize;
    let mut mentions = Vec::with_capacity(mention_count.min(1024));
    for _ in 0..mention_count {
        mentions.push(AccountId(take_u32(&mut buf)?));
    }
    let url_count = take_u32(&mut buf)? as usize;
    let mut urls = Vec::with_capacity(url_count.min(1024));
    for _ in 0..url_count {
        urls.push(take_str(&mut buf)?);
    }
    Ok(Tweet {
        id,
        author,
        created_at,
        kind,
        source,
        text,
        hashtags,
        mentions,
        urls,
        reacted_to_post_at,
        ground_truth_spam: false,
    })
}

/// One frame of the daemon-facing event stream: tweets interleaved with
/// control markers.
///
/// The batch pipeline gets hour boundaries for free (it *steps* the engine),
/// but a socket consumer only sees a byte stream — so the producer marks the
/// boundaries explicitly. Verdict byte-identity across restarts hinges on
/// this: hour composition is defined by the markers, never by arrival timing.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamFrame {
    /// One tweet event (same payload as [`encode_frame`]).
    Tweet(Tweet),
    /// All tweets for run-relative hour `hour` have been sent.
    HourBoundary {
        /// Run-relative hour index just completed (0-based).
        hour: u64,
    },
    /// The producer is done; the consumer may drain and exit.
    Shutdown,
}

const TAG_TWEET: u8 = 0;
const TAG_HOUR_BOUNDARY: u8 = 1;
const TAG_SHUTDOWN: u8 = 2;

/// Encodes one stream frame: `u32` length (bytes after this field), `u8` tag,
/// then the tag-specific payload. A `Tweet` payload nests the complete
/// [`encode_frame`] output, own length prefix included.
pub fn encode_stream_frame(frame: &StreamFrame) -> Vec<u8> {
    let mut body = Vec::with_capacity(8);
    match frame {
        StreamFrame::Tweet(tweet) => {
            put_u8(&mut body, TAG_TWEET);
            body.extend_from_slice(&encode_frame(tweet));
        }
        StreamFrame::HourBoundary { hour } => {
            put_u8(&mut body, TAG_HOUR_BOUNDARY);
            put_u64(&mut body, *hour);
        }
        StreamFrame::Shutdown => put_u8(&mut body, TAG_SHUTDOWN),
    }
    let mut out = Vec::with_capacity(4 + body.len());
    put_u32(&mut out, body.len() as u32);
    out.extend_from_slice(&body);
    out
}

/// Decodes one stream frame produced by [`encode_stream_frame`].
///
/// # Errors
///
/// Returns a [`DecodeError`] on truncated or malformed frames.
pub fn decode_stream_frame(frame: &[u8]) -> Result<StreamFrame, DecodeError> {
    let mut buf = frame;
    let declared = take_u32(&mut buf)? as usize;
    if buf.len() < declared {
        return Err(DecodeError::Truncated);
    }
    match take_u8(&mut buf)? {
        TAG_TWEET => Ok(StreamFrame::Tweet(decode_frame(buf)?)),
        TAG_HOUR_BOUNDARY => Ok(StreamFrame::HourBoundary {
            hour: take_u64(&mut buf)?,
        }),
        TAG_SHUTDOWN => Ok(StreamFrame::Shutdown),
        value => Err(DecodeError::BadDiscriminant {
            field: "stream frame tag",
            value,
        }),
    }
}

/// Writes one stream frame to a socket or file.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_stream_frame<W: std::io::Write>(
    w: &mut W,
    frame: &StreamFrame,
) -> std::io::Result<()> {
    w.write_all(&encode_stream_frame(frame))
}

/// Reads one stream frame; `Ok(None)` means clean EOF (the connection closed
/// exactly on a frame boundary). EOF mid-frame or a malformed payload maps to
/// `io::ErrorKind::InvalidData`.
///
/// # Errors
///
/// Propagates I/O errors from the reader; decode failures surface as
/// `InvalidData`.
pub fn read_stream_frame<R: std::io::Read>(r: &mut R) -> std::io::Result<Option<StreamFrame>> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_bytes[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "stream frame truncated in length prefix",
                ))
            }
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    let mut body = vec![0u8; len];
    r.read_exact(&mut body).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "stream frame truncated in body",
            )
        } else {
            e
        }
    })?;
    let mut frame = Vec::with_capacity(4 + len);
    frame.extend_from_slice(&len_bytes);
    frame.extend_from_slice(&body);
    decode_stream_frame(&frame)
        .map(Some)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

fn take_u8(buf: &mut &[u8]) -> Result<u8, DecodeError> {
    let (&first, rest) = buf.split_first().ok_or(DecodeError::Truncated)?;
    *buf = rest;
    Ok(first)
}

fn take_u32(buf: &mut &[u8]) -> Result<u32, DecodeError> {
    if buf.len() < 4 {
        return Err(DecodeError::Truncated);
    }
    let (head, rest) = buf.split_at(4);
    *buf = rest;
    Ok(u32::from_le_bytes(head.try_into().expect("4 bytes")))
}

fn take_u64(buf: &mut &[u8]) -> Result<u64, DecodeError> {
    if buf.len() < 8 {
        return Err(DecodeError::Truncated);
    }
    let (head, rest) = buf.split_at(8);
    *buf = rest;
    Ok(u64::from_le_bytes(head.try_into().expect("8 bytes")))
}

fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn take_str(buf: &mut &[u8]) -> Result<String, DecodeError> {
    let len = take_u32(buf)? as usize;
    if buf.len() < len {
        return Err(DecodeError::Truncated);
    }
    let (head, rest) = buf.split_at(len);
    let s = std::str::from_utf8(head).map_err(|_| DecodeError::BadUtf8)?;
    *buf = rest;
    Ok(s.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tweet() -> Tweet {
        Tweet {
            id: TweetId(77),
            author: AccountId(5),
            created_at: SimTime::from_minutes(123),
            kind: TweetKind::Quote,
            source: TweetSource::ThirdParty,
            text: "free money 🚀 now".into(),
            hashtags: vec!["tech_1".into(), "social_2".into()],
            mentions: vec![AccountId(9), AccountId(10)],
            urls: vec!["http://phish-login.example/abc".into()],
            reacted_to_post_at: Some(SimTime::from_minutes(120)),
            ground_truth_spam: true,
        }
    }

    #[test]
    fn roundtrip_preserves_observable_fields() {
        let t = tweet();
        let decoded = decode_frame(&encode_frame(&t)).unwrap();
        assert_eq!(decoded.id, t.id);
        assert_eq!(decoded.author, t.author);
        assert_eq!(decoded.created_at, t.created_at);
        assert_eq!(decoded.kind, t.kind);
        assert_eq!(decoded.source, t.source);
        assert_eq!(decoded.text, t.text);
        assert_eq!(decoded.hashtags, t.hashtags);
        assert_eq!(decoded.mentions, t.mentions);
        assert_eq!(decoded.urls, t.urls);
        assert_eq!(decoded.reacted_to_post_at, t.reacted_to_post_at);
    }

    #[test]
    fn ground_truth_never_crosses_the_wire() {
        let t = tweet();
        assert!(t.ground_truth_spam);
        let decoded = decode_frame(&encode_frame(&t)).unwrap();
        assert!(!decoded.ground_truth_spam);
    }

    #[test]
    fn roundtrip_without_reaction() {
        let mut t = tweet();
        t.reacted_to_post_at = None;
        let decoded = decode_frame(&encode_frame(&t)).unwrap();
        assert_eq!(decoded.reacted_to_post_at, None);
    }

    #[test]
    fn truncated_frames_error() {
        let frame = encode_frame(&tweet());
        for cut in [0, 3, 8, frame.len() - 1] {
            assert!(decode_frame(&frame[..cut]).is_err(), "cut at {cut} decoded");
        }
    }

    #[test]
    fn bad_discriminant_errors() {
        let frame = encode_frame(&tweet());
        let mut bytes = frame.clone();
        // kind byte sits at offset 4 (len) + 8 + 4 + 8 = 24.
        bytes[24] = 9;
        assert_eq!(
            decode_frame(&bytes),
            Err(DecodeError::BadDiscriminant {
                field: "kind",
                value: 9
            })
        );
    }

    #[test]
    fn stream_frames_roundtrip() {
        let frames = [
            StreamFrame::Tweet(tweet()),
            StreamFrame::HourBoundary { hour: 42 },
            StreamFrame::Shutdown,
        ];
        for f in &frames {
            let mut expect = f.clone();
            if let StreamFrame::Tweet(t) = &mut expect {
                // Labels never cross the wire.
                t.ground_truth_spam = false;
            }
            assert_eq!(
                decode_stream_frame(&encode_stream_frame(f)).unwrap(),
                expect
            );
        }
    }

    #[test]
    fn stream_frames_roundtrip_through_io() {
        let frames = [
            StreamFrame::HourBoundary { hour: 0 },
            StreamFrame::Tweet(tweet()),
            StreamFrame::Shutdown,
        ];
        let mut buf = Vec::new();
        for f in &frames {
            write_stream_frame(&mut buf, f).unwrap();
        }
        let mut cursor = &buf[..];
        let mut got = Vec::new();
        while let Some(f) = read_stream_frame(&mut cursor).unwrap() {
            got.push(f);
        }
        assert_eq!(got.len(), 3);
        assert!(matches!(got[0], StreamFrame::HourBoundary { hour: 0 }));
        assert!(matches!(got[1], StreamFrame::Tweet(_)));
        assert!(matches!(got[2], StreamFrame::Shutdown));
    }

    #[test]
    fn stream_frame_clean_eof_vs_torn_frame() {
        let mut buf = Vec::new();
        write_stream_frame(&mut buf, &StreamFrame::HourBoundary { hour: 7 }).unwrap();
        // Clean EOF exactly on the boundary.
        let mut cursor = &buf[..];
        assert!(read_stream_frame(&mut cursor).unwrap().is_some());
        assert!(read_stream_frame(&mut cursor).unwrap().is_none());
        // Torn anywhere inside the frame is an error, not EOF.
        for cut in 1..buf.len() {
            let mut torn = &buf[..cut];
            let err = read_stream_frame(&mut torn).unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "cut at {cut}");
        }
    }

    #[test]
    fn stream_frame_bad_tag_errors() {
        let mut bytes = encode_stream_frame(&StreamFrame::Shutdown);
        bytes[4] = 9;
        assert_eq!(
            decode_stream_frame(&bytes),
            Err(DecodeError::BadDiscriminant {
                field: "stream frame tag",
                value: 9
            })
        );
    }

    #[test]
    fn empty_collections_roundtrip() {
        let mut t = tweet();
        t.hashtags.clear();
        t.mentions.clear();
        t.urls.clear();
        t.text = String::new();
        let decoded = decode_frame(&encode_frame(&t)).unwrap();
        assert!(decoded.hashtags.is_empty());
        assert!(decoded.mentions.is_empty());
        assert!(decoded.urls.is_empty());
        assert!(decoded.text.is_empty());
    }
}
