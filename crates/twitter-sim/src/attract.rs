//! The ground-truth spammer-attraction model.
//!
//! Why this exists: the paper *measures* which account attributes attract
//! spammers on live Twitter (Tables V–VI, Figures 3–5). To reproduce those
//! measurements on a synthetic substrate, the simulator needs a generative
//! model of spammer victim choice. This module encodes the mechanisms the
//! paper hypothesises — visible, active accounts attract spam; list
//! activity, follower mass and trending-topic exposure matter most — as a
//! smooth per-account score. Spammers sample victims with probability
//! proportional to this score, and the paper's attribute rankings *emerge*
//! from measurement rather than being hard-coded into the pipeline under
//! test.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::account::Profile;
use crate::topics::TopicCategory;

/// An account's recent topical exposure, computed by the engine from its
/// rolling hashtag window.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TopicExposure {
    /// Categories present among recent hashtags.
    pub categories: Vec<TopicCategory>,
    /// Recently used a trending-up hashtag.
    pub trending_up: bool,
    /// Recently used a trending-down hashtag.
    pub trending_down: bool,
    /// Recently used a popular (top-decile heat) hashtag.
    pub popular: bool,
    /// Used any hashtag at all recently.
    pub uses_hashtags: bool,
}

/// Tunable weights of the attraction model. Defaults reproduce the paper's
/// ordering; the ablation benches perturb them. The two scale weights may
/// be negative — that *inverts* the preference (active accounts become
/// repellent); the factor then floors at a small positive value so scores
/// stay valid sampling weights.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttractivenessModel {
    /// Scale of the lists-per-day factor (the paper's #1 attribute).
    /// Negative values make list-active accounts repellent.
    pub lists_activity_weight: f64,
    /// Scale of the follower-mass factor. Negative values make
    /// well-followed accounts repellent.
    pub follower_weight: f64,
    /// Multiplier when the account is exposed to trending-up topics.
    pub trending_up_boost: f64,
    /// Multiplier when exposed to popular topics.
    pub popular_boost: f64,
    /// Multiplier when exposed to trending-down topics.
    pub trending_down_boost: f64,
    /// Multiplier when the account posts without hashtags.
    pub no_hashtag_damp: f64,
}

impl Default for AttractivenessModel {
    fn default() -> Self {
        Self {
            lists_activity_weight: 3.0,
            follower_weight: 1.6,
            trending_up_boost: 2.0,
            popular_boost: 1.8,
            trending_down_boost: 1.4,
            no_hashtag_damp: 0.6,
        }
    }
}

impl AttractivenessModel {
    /// The spammer-attraction score of one account (> 0). Spammers pick
    /// victims with probability proportional to this value.
    pub fn score(&self, profile: &Profile, exposure: &TopicExposure) -> f64 {
        let mut score = 1.0;

        // Lists-per-day: saturating Hill curve peaking toward ~1–2/day.
        // Table VI ranks "joining 1 list per day" first by a wide margin.
        let lpd = profile.lists_per_day();
        let lists_activity = (lpd * lpd) / (lpd * lpd + 0.35);
        score *= (0.3 + self.lists_activity_weight * lists_activity).max(0.02);

        // Follower / friend mass: logarithmic visibility scaling.
        score *=
            (0.5 + self.follower_weight * log_scale(profile.followers_count, 30_000)).max(0.02);
        score *= 0.6 + 1.1 * log_scale(profile.friends_count, 30_000);
        score *= 0.5 + 1.5 * log_scale(profile.lists_count, 500);
        score *= 0.7 + 0.9 * log_scale(profile.favorites_count, 200_000);
        score *= 0.7 + 0.9 * log_scale(profile.statuses_count, 200_000);

        // Account age: a bump around ~1000 days (Figure 3(e)); very young
        // accounts are invisible, ancient ones are often dormant.
        let age = f64::from(profile.account_age_days);
        let age_bump = (-((age - 1000.0) / 900.0).powi(2)).exp();
        score *= 0.7 + 0.6 * age_bump;

        // Friend/follower ratio: audiences (ratio ≪ 1) are attractive,
        // follow-spam shapes (ratio ≫ 1) are not (Figure 3(d)).
        let ratio = profile.friend_follower_ratio();
        score *= 0.7 + 0.6 / (1.0 + ratio);

        // Topical exposure.
        if exposure.trending_up {
            score *= self.trending_up_boost;
        } else if exposure.popular {
            score *= self.popular_boost;
        } else if exposure.trending_down {
            score *= self.trending_down_boost;
        }
        if !exposure.uses_hashtags {
            score *= self.no_hashtag_damp;
        } else {
            score *= category_boost(&exposure.categories);
        }

        score.max(1e-6)
    }
}

/// `ln(1 + v) / ln(1 + cap)`, clamped to `[0, 1.2]` — diminishing returns
/// past the paper's largest sample value.
fn log_scale(value: u64, cap: u64) -> f64 {
    ((1.0 + value as f64).ln() / (1.0 + cap as f64).ln()).clamp(0.0, 1.2)
}

/// The strongest category boost among the exposed categories (Figure 4
/// shows social/general/tech/business capture the most spammers).
fn category_boost(categories: &[TopicCategory]) -> f64 {
    categories
        .iter()
        .map(|c| match c {
            TopicCategory::Social => 1.50,
            TopicCategory::Tech => 1.45,
            TopicCategory::General => 1.40,
            TopicCategory::Business => 1.35,
            TopicCategory::Entertainment => 1.30,
            TopicCategory::Education => 1.00,
            TopicCategory::Environment => 0.90,
            TopicCategory::Astrology => 0.85,
        })
        .fold(1.0_f64, f64::max)
}

/// Samples `k` indices (with replacement) proportionally to `weights`.
///
/// # Panics
///
/// Panics if `weights` is empty or sums to a non-positive value.
pub fn weighted_sample(weights: &[f64], k: usize, rng: &mut StdRng) -> Vec<usize> {
    assert!(!weights.is_empty(), "cannot sample from empty weights");
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weights must sum to a positive value");
    // Cumulative table + binary search: O(n) build, O(log n) per draw.
    let mut cumulative = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for &w in weights {
        acc += w.max(0.0);
        cumulative.push(acc);
    }
    (0..k)
        .map(|_| {
            let draw = rng.random::<f64>() * acc;
            cumulative
                .partition_point(|&c| c < draw)
                .min(weights.len() - 1)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::account::AccountId;
    use ph_sketch::GrayImage;
    use rand::SeedableRng;

    fn base_profile() -> Profile {
        Profile {
            id: AccountId(0),
            screen_name: "user".into(),
            display_name: "User".into(),
            description: String::new(),
            friends_count: 200,
            followers_count: 200,
            account_age_days: 500,
            lists_count: 5,
            favorites_count: 500,
            statuses_count: 2_000,
            verified: false,
            default_profile_image: false,
            profile_image: GrayImage::new(9, 9),
        }
    }

    #[test]
    fn score_is_positive() {
        let m = AttractivenessModel::default();
        let s = m.score(&base_profile(), &TopicExposure::default());
        assert!(s > 0.0);
    }

    #[test]
    fn more_followers_attract_more() {
        let m = AttractivenessModel::default();
        let lo = base_profile();
        let hi = Profile {
            followers_count: 10_000,
            ..base_profile()
        };
        let e = TopicExposure::default();
        assert!(m.score(&hi, &e) > m.score(&lo, &e));
    }

    #[test]
    fn one_list_per_day_beats_quarter_list_per_day() {
        let m = AttractivenessModel::default();
        let daily = Profile {
            lists_count: 500,
            account_age_days: 500,
            ..base_profile()
        };
        let quarterly = Profile {
            lists_count: 125,
            account_age_days: 500,
            ..base_profile()
        };
        let e = TopicExposure::default();
        assert!(m.score(&daily, &e) > m.score(&quarterly, &e));
    }

    #[test]
    fn age_peaks_near_1000_days() {
        let m = AttractivenessModel::default();
        let e = TopicExposure::default();
        // Hold the per-day rates fixed while varying age, so the comparison
        // isolates the age bump from the activity factors.
        let at = |days: u32| {
            m.score(
                &Profile {
                    account_age_days: days,
                    lists_count: u64::from(days / 100),
                    favorites_count: u64::from(days),
                    statuses_count: u64::from(4 * days),
                    ..base_profile()
                },
                &e,
            )
        };
        assert!(at(1000) > at(10));
        assert!(at(1000) > at(3000));
    }

    #[test]
    fn low_ratio_is_more_attractive() {
        let m = AttractivenessModel::default();
        let e = TopicExposure::default();
        let audience = Profile {
            friends_count: 100,
            followers_count: 1000,
            ..base_profile()
        };
        let follower_spammer = Profile {
            friends_count: 1000,
            followers_count: 100,
            ..base_profile()
        };
        assert!(m.score(&audience, &e) > m.score(&follower_spammer, &e));
    }

    #[test]
    fn trending_up_boosts_most() {
        let m = AttractivenessModel::default();
        let p = base_profile();
        let hashtag = TopicExposure {
            uses_hashtags: true,
            categories: vec![TopicCategory::Education],
            ..Default::default()
        };
        let up = TopicExposure {
            trending_up: true,
            ..hashtag.clone()
        };
        let down = TopicExposure {
            trending_down: true,
            ..hashtag.clone()
        };
        assert!(m.score(&p, &up) > m.score(&p, &down));
        assert!(m.score(&p, &down) > m.score(&p, &hashtag));
    }

    #[test]
    fn no_hashtag_dampens() {
        let m = AttractivenessModel::default();
        let p = base_profile();
        let none = TopicExposure::default();
        let social = TopicExposure {
            uses_hashtags: true,
            categories: vec![TopicCategory::Social],
            ..Default::default()
        };
        assert!(m.score(&p, &social) > m.score(&p, &none));
    }

    #[test]
    fn weighted_sample_prefers_heavy_indices() {
        let mut rng = StdRng::seed_from_u64(1);
        let weights = vec![1.0, 0.0, 9.0];
        let draws = weighted_sample(&weights, 5_000, &mut rng);
        let heavy = draws.iter().filter(|&&i| i == 2).count();
        let zero = draws.iter().filter(|&&i| i == 1).count();
        assert!(heavy > 4_000, "heavy index drawn only {heavy} times");
        assert_eq!(zero, 0, "zero-weight index must never be drawn");
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_weights_panic() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = weighted_sample(&[], 1, &mut rng);
    }
}
