//! Organic-account population generation.
//!
//! The generator has one structural requirement: the pseudo-honeypot
//! selector must be able to find ~10 accounts near *every* sample value of
//! Table II (e.g. exactly-10k-follower accounts). A pure heavy-tail draw
//! leaves the extreme grid points too sparse, so each account anchors one
//! randomly chosen profile attribute to a randomly chosen grid value (with
//! small noise) and draws the rest from heavy-tailed marginals — preserving
//! realistic skew while guaranteeing grid coverage.

use ph_sketch::GrayImage;
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::Rng;

use crate::account::{Account, AccountId, AccountKind, Behavior, Profile};
use crate::text::{organic_description, GIVEN_NAMES};
use crate::topics::TopicCategory;

/// Table II sample-value grids for the 11 profile attributes (used here for
/// anchoring; `ph-core` re-declares them as selection targets).
pub mod grids {
    /// Attribute 1: friends count.
    pub const FRIENDS: [f64; 10] = [
        10., 50., 100., 200., 300., 500., 1_000., 3_000., 5_000., 10_000.,
    ];
    /// Attribute 2: follower count.
    pub const FOLLOWERS: [f64; 10] = FRIENDS;
    /// Attribute 3: total friends and followers.
    pub const TOTAL: [f64; 10] = [
        20., 100., 200., 500., 1_000., 2_000., 3_000., 5_000., 10_000., 30_000.,
    ];
    /// Attribute 4: friends / followers.
    pub const RATIO: [f64; 10] = [0.1, 0.125, 0.25, 0.5, 1., 2., 4., 6., 8., 10.];
    /// Attribute 5: account age in days.
    pub const AGE_DAYS: [f64; 10] = [
        10., 50., 100., 300., 500., 1_000., 1_500., 2_000., 2_500., 3_000.,
    ];
    /// Attribute 6: lists count.
    pub const LISTS: [f64; 10] = [10., 20., 30., 40., 50., 70., 100., 200., 300., 500.];
    /// Attribute 7: favorites count.
    pub const FAVORITES: [f64; 10] = [
        10., 50., 100., 500., 1_000., 5_000., 10_000., 50_000., 100_000., 200_000.,
    ];
    /// Attribute 8: status count.
    pub const STATUSES: [f64; 10] = FAVORITES;
    /// Attribute 9: average lists joined per day.
    pub const LISTS_PER_DAY: [f64; 10] =
        [0.01, 0.02, 0.05, 0.1, 0.125, 1.0 / 6.0, 0.25, 0.5, 1., 2.];
    /// Attribute 10: average favorites per day.
    pub const FAVORITES_PER_DAY: [f64; 10] = [0.02, 0.1, 0.2, 0.5, 1., 2., 3., 5., 10., 50.];
    /// Attribute 11: average statuses per day.
    pub const STATUSES_PER_DAY: [f64; 10] = [0.02, 0.1, 0.2, 0.5, 1., 2., 3., 4., 10., 50.];
}

/// Which attribute an account was anchored to (testing/diagnostics only —
/// the pipeline never sees this).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Anchor {
    Friends,
    Followers,
    Total,
    Ratio,
    Age,
    Lists,
    Favorites,
    Statuses,
    ListsPerDay,
    FavoritesPerDay,
    StatusesPerDay,
}

const ANCHORS: [Anchor; 11] = [
    Anchor::Friends,
    Anchor::Followers,
    Anchor::Total,
    Anchor::Ratio,
    Anchor::Age,
    Anchor::Lists,
    Anchor::Favorites,
    Anchor::Statuses,
    Anchor::ListsPerDay,
    Anchor::FavoritesPerDay,
    Anchor::StatusesPerDay,
];

/// Generates `count` organic accounts with ids starting at `first_id`.
///
/// # Panics
///
/// Panics if `count == 0`.
pub fn generate_organic(count: usize, first_id: u32, rng: &mut StdRng) -> Vec<Account> {
    assert!(count > 0, "population must be non-empty");
    (0..count)
        .map(|i| generate_one(AccountId(first_id + i as u32), rng))
        .collect()
}

fn generate_one(id: AccountId, rng: &mut StdRng) -> Account {
    // Heavy-tailed base draws. Cumulative counters (lists, favorites,
    // statuses) scale with account age through a per-day *rate*, so that the
    // per-day averages of Table II are not spuriously anti-correlated with
    // age (a fresh account hasn't had time to join 300 lists).
    let mut age_days = log_uniform(rng, 10.0, 3_000.0);
    let mut friends = log_uniform(rng, 5.0, 15_000.0);
    // Followers correlate with friends, with lognormal scatter.
    let mut followers = (friends.powf(0.9) * log_uniform(rng, 0.3, 3.0)).max(1.0);
    let mut lists = (log_uniform(rng, 0.003, 1.5) - 0.002) * age_days;
    let mut favorites = log_uniform(rng, 0.05, 80.0) * age_days;
    let mut statuses = log_uniform(rng, 0.05, 80.0) * age_days;

    // Anchor one attribute to a Table II grid value (±5% noise) so the
    // selector always finds candidates at every sample value.
    let anchor = *ANCHORS.choose(rng).expect("non-empty anchor list");
    let noise = rng.random_range(0.97..1.03);
    let pick = |rng: &mut StdRng, grid: &[f64]| *grid.choose(rng).expect("non-empty grid");
    match anchor {
        Anchor::Friends => friends = pick(rng, &grids::FRIENDS) * noise,
        Anchor::Followers => followers = pick(rng, &grids::FOLLOWERS) * noise,
        Anchor::Total => {
            let total = pick(rng, &grids::TOTAL) * noise;
            let share = rng.random_range(0.2..0.8);
            friends = total * share;
            followers = total - friends;
        }
        Anchor::Ratio => {
            let ratio = pick(rng, &grids::RATIO) * noise;
            followers = log_uniform(rng, 50.0, 5_000.0);
            friends = ratio * followers;
        }
        Anchor::Age => age_days = pick(rng, &grids::AGE_DAYS) * noise,
        Anchor::Lists => lists = pick(rng, &grids::LISTS) * noise,
        Anchor::Favorites => favorites = pick(rng, &grids::FAVORITES) * noise,
        Anchor::Statuses => statuses = pick(rng, &grids::STATUSES) * noise,
        Anchor::ListsPerDay => lists = pick(rng, &grids::LISTS_PER_DAY) * noise * age_days,
        Anchor::FavoritesPerDay => {
            favorites = pick(rng, &grids::FAVORITES_PER_DAY) * noise * age_days;
        }
        Anchor::StatusesPerDay => {
            statuses = pick(rng, &grids::STATUSES_PER_DAY) * noise * age_days;
        }
    }

    let age_days = (age_days.round() as u32).max(1);
    let followers_count = followers.round().max(0.0) as u64;
    let friends_count = friends.round().max(0.0) as u64;
    let statuses_count = statuses.round().max(0.0) as u64;

    // Interests: most users have 1–3 topical interests; ~15% never hashtag.
    let interests: Vec<TopicCategory> = if rng.random_bool(0.15) {
        Vec::new()
    } else {
        let n = rng.random_range(1..=3);
        let mut picked = Vec::with_capacity(n);
        for _ in 0..n {
            let c = *TopicCategory::ALL.choose(rng).expect("non-empty");
            if !picked.contains(&c) {
                picked.push(c);
            }
        }
        picked
    };

    let verified = followers_count > 5_000 && rng.random_bool(0.15);
    // Activity scales with lifetime statuses/day, floored so even quiet
    // accounts occasionally post.
    let statuses_per_day = statuses_count as f64 / f64::from(age_days);
    let posts_per_hour = (statuses_per_day / 24.0).clamp(0.02, 4.0);

    let account = Account {
        profile: Profile {
            id,
            screen_name: organic_screen_name(rng),
            display_name: GIVEN_NAMES.choose(rng).expect("non-empty").to_string(),
            description: if rng.random_bool(0.1) {
                String::new()
            } else {
                organic_description(rng)
            },
            friends_count,
            followers_count,
            account_age_days: age_days,
            lists_count: lists.round().max(0.0) as u64,
            favorites_count: favorites.round().max(0.0) as u64,
            statuses_count,
            verified,
            default_profile_image: rng.random_bool(0.08),
            profile_image: noise_image(rng),
        },
        behavior: Behavior {
            posts_per_hour,
            mention_probability: rng.random_range(0.1..0.5),
            reaction_latency_minutes: rng.random_range(30.0..400.0),
            source_weights: organic_source_weights(rng),
            retweet_probability: rng.random_range(0.05..0.3),
            quote_probability: rng.random_range(0.02..0.15),
            interests,
            spam_attempts_per_hour: 0.0,
            spam_flavor: None,
        },
        kind: AccountKind::Organic,
    };
    account
}

/// Log-uniform draw on `[lo, hi]`.
fn log_uniform(rng: &mut StdRng, lo: f64, hi: f64) -> f64 {
    debug_assert!(lo > 0.0 && hi > lo);
    (rng.random_range(lo.ln()..hi.ln())).exp()
}

/// Organic screen names vary freely in shape: name, name+word, name+digits,
/// capitalized variants — high Σ-sequence diversity.
fn organic_screen_name(rng: &mut StdRng) -> String {
    let name = *GIVEN_NAMES.choose(rng).expect("non-empty");
    match rng.random_range(0..5) {
        0 => name.to_string(),
        1 => format!("{name}{}", rng.random_range(1..9999)),
        2 => format!(
            "{name}_{}",
            crate::text::BENIGN_WORDS.choose(rng).expect("non-empty")
        ),
        3 => {
            let mut capitalized = String::new();
            let mut chars = name.chars();
            if let Some(first) = chars.next() {
                capitalized.extend(first.to_uppercase());
                capitalized.extend(chars);
            }
            format!("{capitalized}{}", rng.random_range(1..99))
        }
        _ => format!(
            "{}_{name}",
            crate::text::BENIGN_WORDS.choose(rng).expect("non-empty")
        ),
    }
}

/// Organic users post mostly from web/mobile clients.
fn organic_source_weights(rng: &mut StdRng) -> [f64; 4] {
    let web = rng.random_range(0.2..0.5);
    let mobile = rng.random_range(0.3..0.6);
    let third = rng.random_range(0.0..0.1);
    let other = rng.random_range(0.0..0.08);
    let total = web + mobile + third + other;
    [web / total, mobile / total, third / total, other / total]
}

/// Independent high-frequency noise avatar — far from every other account's
/// avatar under dHash.
fn noise_image(rng: &mut StdRng) -> GrayImage {
    GrayImage::from_fn(24, 24, |_, _| rng.random())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn population(n: usize, seed: u64) -> Vec<Account> {
        let mut rng = StdRng::seed_from_u64(seed);
        generate_organic(n, 0, &mut rng)
    }

    #[test]
    fn generates_requested_count_with_sequential_ids() {
        let pop = population(100, 1);
        assert_eq!(pop.len(), 100);
        assert_eq!(pop[0].profile.id, AccountId(0));
        assert_eq!(pop[99].profile.id, AccountId(99));
        assert!(pop.iter().all(|a| !a.is_spammer()));
    }

    #[test]
    fn grid_points_have_candidates() {
        // With 4000 accounts and 110 grid cells, every friends-count grid
        // value should have several accounts within ±10%.
        let pop = population(4_000, 2);
        for &target in &grids::FRIENDS {
            let hits = pop
                .iter()
                .filter(|a| {
                    let v = a.profile.friends_count as f64;
                    (v - target).abs() <= target * 0.1 + 1.0
                })
                .count();
            assert!(
                hits >= 3,
                "friends grid value {target} has only {hits} hits"
            );
        }
    }

    #[test]
    fn lists_per_day_grid_has_candidates() {
        let pop = population(4_000, 3);
        for &target in &grids::LISTS_PER_DAY {
            let hits = pop
                .iter()
                .filter(|a| {
                    let v = a.profile.lists_per_day();
                    (v - target).abs() <= target * 0.15 + 0.005
                })
                .count();
            assert!(
                hits >= 3,
                "lists/day grid value {target} has only {hits} hits"
            );
        }
    }

    #[test]
    fn deterministic_for_seed() {
        assert_eq!(population(50, 7), population(50, 7));
        assert_ne!(population(50, 7), population(50, 8));
    }

    #[test]
    fn behavioral_parameters_are_sane() {
        for a in population(500, 4) {
            let b = &a.behavior;
            assert!(b.posts_per_hour > 0.0 && b.posts_per_hour <= 4.0);
            let total: f64 = b.source_weights.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "source weights sum {total}");
            assert!(b.spam_flavor.is_none());
        }
    }

    #[test]
    fn some_accounts_have_no_interests() {
        let pop = population(500, 5);
        let none = pop
            .iter()
            .filter(|a| a.behavior.interests.is_empty())
            .count();
        assert!(none > 20, "only {none} hashtag-free accounts");
        assert!(none < 200, "{none} hashtag-free accounts is too many");
    }

    #[test]
    fn avatars_are_mutually_distant() {
        use ph_sketch::DHash128;
        let pop = population(20, 6);
        for i in 0..pop.len() {
            for j in (i + 1)..pop.len() {
                let a = DHash128::of(&pop[i].profile.profile_image);
                let b = DHash128::of(&pop[j].profile.profile_image);
                assert!(
                    a.hamming_distance(b) > 5,
                    "organic avatars {i} and {j} collide"
                );
            }
        }
    }
}
