//! Text corpora and generators for synthetic tweets, names and
//! descriptions.
//!
//! The generators are intentionally simple but produce text with the
//! *detectable structure* the paper's labeling rules key on: spam payloads
//! carry malicious URLs, money-gain phrasing, adult keywords or promoter
//! language; organic text is benign chatter with occasional ambiguous
//! wording (so classifiers face a non-trivial boundary).

use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::Rng;

/// Benign vocabulary for organic tweets and descriptions.
pub const BENIGN_WORDS: &[&str] = &[
    "coffee",
    "morning",
    "weekend",
    "project",
    "reading",
    "music",
    "garden",
    "friends",
    "family",
    "travel",
    "photo",
    "recipe",
    "game",
    "movie",
    "book",
    "lecture",
    "meeting",
    "sunset",
    "running",
    "cycling",
    "painting",
    "coding",
    "concert",
    "museum",
    "festival",
    "puppy",
    "kitten",
    "dinner",
    "breakfast",
    "holiday",
    "beach",
    "mountain",
    "river",
    "library",
    "workshop",
    "seminar",
    "podcast",
    "album",
    "season",
    "episode",
    "recipe",
    "bakery",
];

/// Short human-ish given names used for organic display names.
pub const GIVEN_NAMES: &[&str] = &[
    "alex", "maria", "chen", "fatima", "john", "sofia", "ivan", "amara", "liam", "noor", "kai",
    "elena", "omar", "jade", "hugo", "nina", "ravi", "lucia", "tomas", "aisha", "felix", "maya",
    "diego", "hana", "peter", "zara", "emil", "rosa", "amir", "iris",
];

/// Money/quick-gain spam phrases (rule 6 of the paper's rule list).
pub const MONEY_PHRASES: &[&str] = &[
    "earn cash fast working from home",
    "double your money in one week guaranteed",
    "free money no strings attached claim now",
    "quick loan approved instantly no credit check",
    "win big jackpot today limited spots",
    "get rich with this one simple trick",
];

/// Adult-content spam phrases (rule 7).
pub const ADULT_PHRASES: &[&str] = &[
    "hot singles in your area waiting",
    "adult cams free preview tonight",
    "explicit photos click to unlock",
];

/// Malicious-promoter phrases (rules 9/10): fake followers, pills, deals.
pub const PROMOTER_PHRASES: &[&str] = &[
    "buy 10000 followers cheap instant delivery",
    "miracle diet pills lose weight overnight",
    "designer watches replica huge discount today",
    "unlock premium accounts free generator",
    "crypto giveaway send one coin receive ten",
];

/// Deceptive/phishing phrases (rule 3).
pub const PHISHING_PHRASES: &[&str] = &[
    "your account will be suspended verify now",
    "you have won a prize confirm your details",
    "security alert unusual login confirm password",
    "package delivery failed update your address",
];

/// Domains used in malicious URLs. The labeling rules treat any URL on one
/// of these domains as malicious (the simulator's stand-in for a URL
/// blacklist such as Google Safe Browsing).
pub const MALICIOUS_DOMAINS: &[&str] = &[
    "malware-load.example",
    "phish-login.example",
    "cheap-pills.example",
    "follower-farm.example",
    "crypto-grab.example",
];

/// Benign domains for organic link sharing.
pub const BENIGN_DOMAINS: &[&str] = &[
    "news.example",
    "blog.example",
    "video.example",
    "photos.example",
    "events.example",
];

/// Word stems used to build campaign screen-name templates.
pub const CAMPAIGN_STEMS: &[&str] = &[
    "deal", "promo", "offer", "bonus", "prize", "click", "win", "cash", "gift", "sale",
];

/// Returns a benign sentence of `words` words.
pub fn benign_sentence(rng: &mut StdRng, words: usize) -> String {
    let mut out = Vec::with_capacity(words);
    for _ in 0..words {
        out.push(*BENIGN_WORDS.choose(rng).expect("non-empty corpus"));
    }
    out.join(" ")
}

/// Returns a benign organic description, e.g. for a user bio.
///
/// Real bios are structurally diverse; a single scaffold ("X lover. Y and Z
/// enthusiast.") would make thousands of organic bios near-duplicates under
/// tri-gram MinHash and poison the clustering pass. Five scaffolds with
/// variable-length free text keep organic pairwise similarity low.
pub fn organic_description(rng: &mut StdRng) -> String {
    let w = |rng: &mut StdRng| *BENIGN_WORDS.choose(rng).expect("non-empty");
    match rng.random_range(0..5) {
        0 => format!("{} lover. {} and {} enthusiast.", w(rng), w(rng), w(rng)),
        1 => {
            let words = rng.random_range(3..8);
            benign_sentence(rng, words)
        }
        2 => format!("{} | {} | {}", w(rng), w(rng), w(rng)),
        3 => format!(
            "into {} since {}. ask me about {}.",
            w(rng),
            rng.random_range(1999..2018),
            w(rng)
        ),
        _ => format!(
            "{} person from the {} side of town, {} on weekends",
            w(rng),
            w(rng),
            w(rng)
        ),
    }
}

/// Returns a random malicious URL on one of the blacklisted domains.
pub fn malicious_url(rng: &mut StdRng) -> String {
    format!(
        "http://{}/{:06x}",
        MALICIOUS_DOMAINS.choose(rng).expect("non-empty"),
        rng.random_range(0..0xff_ffff)
    )
}

/// Returns a random benign URL.
pub fn benign_url(rng: &mut StdRng) -> String {
    format!(
        "https://{}/{:06x}",
        BENIGN_DOMAINS.choose(rng).expect("non-empty"),
        rng.random_range(0..0xff_ffff)
    )
}

/// True when `url` points at a blacklisted domain.
pub fn is_malicious_url(url: &str) -> bool {
    MALICIOUS_DOMAINS.iter().any(|d| url.contains(d))
}

/// The flavors of spam payload a campaign can specialize in, matching the
/// paper's rule-based labeling categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpamFlavor {
    /// Quick-money and loan scams.
    Money,
    /// Adult-content lures.
    Adult,
    /// Fake-goods / fake-follower promotion.
    Promoter,
    /// Credential phishing.
    Phishing,
}

impl SpamFlavor {
    /// All flavors.
    pub const ALL: [SpamFlavor; 4] = [
        SpamFlavor::Money,
        SpamFlavor::Adult,
        SpamFlavor::Promoter,
        SpamFlavor::Phishing,
    ];

    /// The phrase corpus for this flavor.
    pub fn phrases(self) -> &'static [&'static str] {
        match self {
            SpamFlavor::Money => MONEY_PHRASES,
            SpamFlavor::Adult => ADULT_PHRASES,
            SpamFlavor::Promoter => PROMOTER_PHRASES,
            SpamFlavor::Phishing => PHISHING_PHRASES,
        }
    }
}

/// Builds one spam payload: a flavor phrase plus a malicious URL, with a
/// small amount of filler variation so payloads are near- (not exact-)
/// duplicates.
pub fn spam_payload(rng: &mut StdRng, flavor: SpamFlavor) -> String {
    let extra = if rng.random_bool(0.5) { 0 } else { 1 };
    spam_payload_with_noise(rng, flavor, extra)
}

/// Like [`spam_payload`] with `extra_words` benign filler words mixed in.
/// Heavy filler pushes tri-gram similarity between payloads of the same
/// campaign below clustering thresholds — the sloppy-campaign case.
pub fn spam_payload_with_noise(rng: &mut StdRng, flavor: SpamFlavor, extra_words: usize) -> String {
    let phrase = flavor.phrases().choose(rng).expect("non-empty corpus");
    let url = malicious_url(rng);
    let mut parts: Vec<String> = Vec::with_capacity(extra_words + 2);
    let before = rng.random_range(0..=extra_words);
    for _ in 0..before {
        parts.push(BENIGN_WORDS.choose(rng).expect("non-empty").to_string());
    }
    parts.push((*phrase).to_string());
    for _ in before..extra_words {
        parts.push(BENIGN_WORDS.choose(rng).expect("non-empty").to_string());
    }
    parts.push(url);
    parts.join(" ")
}

/// A *subtle* spam payload: benign wording plus a benign-domain URL. It
/// evades the URL blacklist and the keyword rules; only human checking (or
/// behavioral features) can catch it.
pub fn subtle_spam_payload(rng: &mut StdRng) -> String {
    let words = rng.random_range(4..8);
    format!("{} {}", benign_sentence(rng, words), benign_url(rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn benign_sentence_has_requested_words() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = benign_sentence(&mut rng, 5);
        assert_eq!(s.split_whitespace().count(), 5);
    }

    #[test]
    fn malicious_urls_are_detected() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            assert!(is_malicious_url(&malicious_url(&mut rng)));
            assert!(!is_malicious_url(&benign_url(&mut rng)));
        }
    }

    #[test]
    fn spam_payload_contains_malicious_url() {
        let mut rng = StdRng::seed_from_u64(3);
        for &flavor in &SpamFlavor::ALL {
            let p = spam_payload(&mut rng, flavor);
            assert!(is_malicious_url(&p), "payload missing bad URL: {p}");
        }
    }

    #[test]
    fn flavors_have_distinct_corpora() {
        assert_ne!(SpamFlavor::Money.phrases(), SpamFlavor::Adult.phrases());
    }

    #[test]
    fn descriptions_are_nonempty() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(!organic_description(&mut rng).is_empty());
    }
}
