//! Hashtag categories and the trending-topic engine.
//!
//! The paper's C2 attributes cover eight topical hashtag categories
//! (*entertainment, general, business, tech, education, environment, social,
//! astrology*) plus "no hashtag"; its C3 attributes classify topics as
//! trending up, trending down, popular, or non-trending. The paper sources
//! its top-10 hashtag/topic lists from a hashtag-analytics provider — here
//! the [`TopicEngine`] plays that role, evolving per-topic "heat" hour by
//! hour and exposing the equivalent top-k queries.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The eight topical hashtag categories of Table I (C2). "No hashtag" is
/// represented by the *absence* of a category, not a variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TopicCategory {
    /// Movies, music, celebrities.
    Entertainment,
    /// Catch-all everyday chatter.
    General,
    /// Companies, markets, commerce.
    Business,
    /// Technology and gadgets.
    Tech,
    /// Schools, learning.
    Education,
    /// Climate, nature.
    Environment,
    /// Social causes and community.
    Social,
    /// Horoscopes and the like.
    Astrology,
}

impl TopicCategory {
    /// All categories in Table I order.
    pub const ALL: [TopicCategory; 8] = [
        TopicCategory::Entertainment,
        TopicCategory::General,
        TopicCategory::Business,
        TopicCategory::Tech,
        TopicCategory::Education,
        TopicCategory::Environment,
        TopicCategory::Social,
        TopicCategory::Astrology,
    ];

    /// Lowercase label used in hashtag names and reports.
    pub fn label(self) -> &'static str {
        match self {
            TopicCategory::Entertainment => "entertainment",
            TopicCategory::General => "general",
            TopicCategory::Business => "business",
            TopicCategory::Tech => "tech",
            TopicCategory::Education => "education",
            TopicCategory::Environment => "environment",
            TopicCategory::Social => "social",
            TopicCategory::Astrology => "astrology",
        }
    }
}

impl std::fmt::Display for TopicCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Trending state of a topic — the C3 attribute values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Trend {
    /// Heat rising quickly ("trending-up topics").
    Up,
    /// Heat falling quickly ("trending-down topics").
    Down,
    /// Sustained top-decile heat ("popular tweets").
    Popular,
    /// Everything else ("no-trending topics").
    Stable,
}

/// One hashtag topic tracked by the engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topic {
    /// Hashtag text without the `#`, e.g. `tech_gadget3`.
    pub name: String,
    /// Topical category.
    pub category: TopicCategory,
    /// Current attention level (arbitrary units, ≥ 0).
    pub heat: f64,
    /// Heat change during the last evolution step.
    pub momentum: f64,
    /// Current trend classification.
    pub trend: Trend,
}

/// The simulated hashtag-analytics provider: a pool of topics per category
/// whose heat evolves hourly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopicEngine {
    topics: Vec<Topic>,
}

/// Fraction of topics (by heat rank) classified [`Trend::Popular`].
const POPULAR_DECILE: f64 = 0.1;
/// Momentum threshold (relative to heat) separating Up/Down from Stable.
const TREND_THRESHOLD: f64 = 0.12;

impl TopicEngine {
    /// Creates `per_category` topics in every category with randomized
    /// initial heat.
    ///
    /// # Panics
    ///
    /// Panics if `per_category == 0`.
    pub fn new(per_category: usize, rng: &mut StdRng) -> Self {
        assert!(per_category > 0, "need at least one topic per category");
        let mut topics = Vec::with_capacity(per_category * TopicCategory::ALL.len());
        for &category in &TopicCategory::ALL {
            for i in 0..per_category {
                topics.push(Topic {
                    name: format!("{}_{}", category.label(), i),
                    category,
                    heat: rng.random_range(1.0..100.0),
                    momentum: 0.0,
                    trend: Trend::Stable,
                });
            }
        }
        let mut engine = Self { topics };
        engine.reclassify();
        engine
    }

    /// Advances the topic dynamics by one hour: heat follows a mean-reverting
    /// random walk with occasional viral bursts, then trends are
    /// reclassified.
    pub fn evolve(&mut self, rng: &mut StdRng) {
        for topic in &mut self.topics {
            let before = topic.heat;
            // Mean reversion toward 50 plus noise.
            let reversion = (50.0 - topic.heat) * 0.05;
            let noise = (rng.random::<f64>() - 0.5) * 12.0;
            // Occasional viral burst or collapse.
            let shock = if rng.random_bool(0.04) {
                rng.random_range(20.0..60.0)
            } else if rng.random_bool(0.04) {
                -rng.random_range(15.0..40.0)
            } else {
                0.0
            };
            topic.heat = (topic.heat + reversion + noise + shock).max(0.5);
            topic.momentum = topic.heat - before;
        }
        self.reclassify();
    }

    fn reclassify(&mut self) {
        // Popular = top decile by heat.
        let mut heats: Vec<f64> = self.topics.iter().map(|t| t.heat).collect();
        heats.sort_by(f64::total_cmp);
        let cut_index = ((heats.len() as f64) * (1.0 - POPULAR_DECILE)) as usize;
        let popular_cut = heats[cut_index.min(heats.len() - 1)];
        for topic in &mut self.topics {
            let relative = topic.momentum / topic.heat.max(1.0);
            topic.trend = if topic.heat >= popular_cut {
                Trend::Popular
            } else if relative > TREND_THRESHOLD {
                Trend::Up
            } else if relative < -TREND_THRESHOLD {
                Trend::Down
            } else {
                Trend::Stable
            };
        }
    }

    /// All topics.
    pub fn topics(&self) -> &[Topic] {
        &self.topics
    }

    /// The `k` hottest hashtags of a category (the provider's per-category
    /// "top 10" list).
    pub fn top_hashtags(&self, category: TopicCategory, k: usize) -> Vec<&str> {
        let mut in_cat: Vec<&Topic> = self
            .topics
            .iter()
            .filter(|t| t.category == category)
            .collect();
        in_cat.sort_by(|a, b| b.heat.total_cmp(&a.heat));
        in_cat
            .into_iter()
            .take(k)
            .map(|t| t.name.as_str())
            .collect()
    }

    /// The `k` hottest topics currently in trend state `trend`.
    pub fn trending(&self, trend: Trend, k: usize) -> Vec<&str> {
        let mut matching: Vec<&Topic> = self.topics.iter().filter(|t| t.trend == trend).collect();
        matching.sort_by(|a, b| b.heat.total_cmp(&a.heat));
        matching
            .into_iter()
            .take(k)
            .map(|t| t.name.as_str())
            .collect()
    }

    /// Looks a topic up by hashtag name.
    pub fn topic(&self, name: &str) -> Option<&Topic> {
        self.topics.iter().find(|t| t.name == name)
    }

    /// Samples a topic for an account with the given interests, weighted by
    /// heat (hot topics get talked about more). Falls back to any topic when
    /// `interests` is empty.
    pub fn sample_topic(&self, interests: &[TopicCategory], rng: &mut StdRng) -> &Topic {
        let pool: Vec<&Topic> = if interests.is_empty() {
            self.topics.iter().collect()
        } else {
            self.topics
                .iter()
                .filter(|t| interests.contains(&t.category))
                .collect()
        };
        debug_assert!(!pool.is_empty(), "topic pool cannot be empty");
        let total: f64 = pool.iter().map(|t| t.heat).sum();
        let mut draw = rng.random::<f64>() * total;
        for topic in &pool {
            draw -= topic.heat;
            if draw <= 0.0 {
                return topic;
            }
        }
        pool[pool.len() - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn engine(seed: u64) -> (TopicEngine, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let e = TopicEngine::new(12, &mut rng);
        (e, rng)
    }

    #[test]
    fn creates_topics_in_every_category() {
        let (e, _) = engine(1);
        assert_eq!(e.topics().len(), 12 * 8);
        for &cat in &TopicCategory::ALL {
            assert_eq!(e.topics().iter().filter(|t| t.category == cat).count(), 12);
        }
    }

    #[test]
    fn top_hashtags_are_sorted_by_heat() {
        let (e, _) = engine(2);
        let top = e.top_hashtags(TopicCategory::Tech, 5);
        assert_eq!(top.len(), 5);
        let heats: Vec<f64> = top.iter().map(|n| e.topic(n).unwrap().heat).collect();
        for w in heats.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn evolution_produces_all_trend_states_over_time() {
        let (mut e, mut rng) = engine(3);
        let mut seen_up = false;
        let mut seen_down = false;
        let mut seen_popular = false;
        for _ in 0..50 {
            e.evolve(&mut rng);
            seen_up |= e.topics().iter().any(|t| t.trend == Trend::Up);
            seen_down |= e.topics().iter().any(|t| t.trend == Trend::Down);
            seen_popular |= e.topics().iter().any(|t| t.trend == Trend::Popular);
        }
        assert!(seen_up, "never saw a trending-up topic");
        assert!(seen_down, "never saw a trending-down topic");
        assert!(seen_popular, "never saw a popular topic");
    }

    #[test]
    fn heat_stays_positive() {
        let (mut e, mut rng) = engine(4);
        for _ in 0..100 {
            e.evolve(&mut rng);
        }
        assert!(e.topics().iter().all(|t| t.heat > 0.0));
    }

    #[test]
    fn sample_topic_respects_interests() {
        let (e, mut rng) = engine(5);
        for _ in 0..50 {
            let t = e.sample_topic(&[TopicCategory::Astrology], &mut rng);
            assert_eq!(t.category, TopicCategory::Astrology);
        }
    }

    #[test]
    fn sample_topic_with_no_interests_uses_all() {
        let (e, mut rng) = engine(6);
        // Should not panic and should return valid topics.
        for _ in 0..20 {
            let t = e.sample_topic(&[], &mut rng);
            assert!(e.topic(&t.name).is_some());
        }
    }

    #[test]
    fn category_labels_match_paper() {
        let labels: Vec<&str> = TopicCategory::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(
            labels,
            vec![
                "entertainment",
                "general",
                "business",
                "tech",
                "education",
                "environment",
                "social",
                "astrology"
            ]
        );
    }
}
