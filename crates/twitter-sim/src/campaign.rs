//! Spam-campaign templates and member-account generation.
//!
//! A campaign mirrors what the paper's clustering passes key on: its member
//! accounts share a screen-name generator (one Σ-sequence shape), a profile
//! image template (near-identical dHash), a description template
//! (near-duplicate MinHash), and a payload corpus (near-duplicate tweets with
//! malicious URLs).

use ph_sketch::GrayImage;
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::account::{Account, AccountId, AccountKind, Behavior, CampaignId, Profile};
use crate::text::{SpamFlavor, CAMPAIGN_STEMS};
use crate::topics::TopicCategory;

/// A spam campaign: shared templates plus operating parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Campaign {
    /// Campaign id.
    pub id: CampaignId,
    /// Payload flavor (money scam, adult, promoter, phishing).
    pub flavor: SpamFlavor,
    /// Fixed stem all member screen names start with.
    pub name_stem: String,
    /// Length of the random middle segment of member names.
    pub name_middle_len: usize,
    /// Number of digits at the end of member names.
    pub name_digits: usize,
    /// Shared avatar template; members get noisy copies.
    pub image_template: GrayImage,
    /// Shared bio template; members get light token substitutions.
    pub description_template: String,
    /// Spam mentions each member attempts per active hour.
    pub spam_attempts_per_hour: f64,
    /// Mean minutes between a victim's post and the campaign's reaction
    /// (spammers react fast — the paper's *mention time* signal).
    pub reaction_mean_minutes: f64,
    /// Probability a member posts a benign camouflage tweet in an hour.
    pub camouflage_rate: f64,
    /// Template discipline in `[0, 1]`: the probability that a member
    /// follows the campaign's name/image/description templates and posts
    /// low-variation payloads. Sloppy (low-discipline) campaigns evade
    /// clustering and must be caught by rules or manual checking — the
    /// diversity behind the paper's Table III method split.
    pub discipline: f64,
    /// Probability a spam attempt is *subtle*: benign-looking text with a
    /// non-blacklisted URL, detectable only by human checking (and by
    /// behavioral features).
    pub subtle_rate: f64,
    /// Posting-source distribution of member accounts
    /// `[web, mobile, third-party, other]` — bot-heavy by default, shifted
    /// toward organic clients under behavioural drift.
    pub member_source_weights: [f64; 4],
}

/// serde can't derive for `SpamFlavor` (kept dependency-free in `text`), so
/// campaigns serialize the flavor by index.
impl Serialize for SpamFlavor {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_u8(SpamFlavor::ALL.iter().position(|f| f == self).unwrap_or(0) as u8)
    }
}

impl<'de> Deserialize<'de> for SpamFlavor {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let idx = u8::deserialize(d)? as usize;
        SpamFlavor::ALL
            .get(idx)
            .copied()
            .ok_or_else(|| serde::de::Error::custom("invalid spam flavor index"))
    }
}

impl Campaign {
    /// Creates a campaign with randomized templates.
    pub fn generate(id: CampaignId, rng: &mut StdRng) -> Self {
        let flavor = *SpamFlavor::ALL.choose(rng).expect("non-empty");
        let stem = *CAMPAIGN_STEMS.choose(rng).expect("non-empty");
        Self {
            id,
            flavor,
            name_stem: stem.to_string(),
            name_middle_len: rng.random_range(4..7),
            name_digits: rng.random_range(2..4),
            image_template: smooth_template(rng),
            description_template: format!(
                "official {stem} network best {stem} offers daily updates follow for more"
            ),
            spam_attempts_per_hour: rng.random_range(1.5..4.0),
            reaction_mean_minutes: rng.random_range(1.0..6.0),
            camouflage_rate: rng.random_range(0.05..0.25),
            discipline: rng.random_range(0.45..0.95),
            subtle_rate: rng.random_range(0.03..0.12),
            member_source_weights: [0.02, 0.08, 0.8, 0.1], // bot traffic is API-heavy
        }
    }

    /// Generates one member account following the campaign's templates.
    pub fn generate_member(&self, id: AccountId, rng: &mut StdRng) -> Account {
        // Fresh-ish accounts with follow-spam shape: many friends, few
        // followers, low list presence.
        let age_days = rng.random_range(5..150);
        let friends = rng.random_range(200..3_000);
        let followers = rng.random_range(1..120);
        let statuses = rng.random_range(50..2_500);
        // Sloppy members break the template on each axis independently.
        let templated_name = rng.random_bool(self.discipline);
        let templated_image = rng.random_bool(self.discipline);
        let templated_description = rng.random_bool(self.discipline);
        Account {
            profile: Profile {
                id,
                screen_name: if templated_name {
                    self.member_screen_name(rng)
                } else {
                    freehand_screen_name(&self.name_stem, rng)
                },
                display_name: self.name_stem.clone(),
                description: if templated_description {
                    self.member_description(rng)
                } else {
                    crate::text::organic_description(rng)
                },
                friends_count: friends,
                followers_count: followers,
                account_age_days: age_days,
                lists_count: rng.random_range(0..3),
                favorites_count: rng.random_range(0..200),
                statuses_count: statuses,
                verified: false,
                default_profile_image: rng.random_bool(0.25),
                profile_image: if templated_image {
                    self.member_image(rng)
                } else {
                    GrayImage::from_fn(24, 24, |_, _| rng.random())
                },
            },
            behavior: Behavior {
                posts_per_hour: rng.random_range(0.5..2.0),
                mention_probability: 0.9,
                reaction_latency_minutes: self.reaction_mean_minutes,
                source_weights: self.member_source_weights,
                retweet_probability: 0.05,
                quote_probability: 0.02,
                interests: vec![*TopicCategory::ALL.choose(rng).expect("non-empty")],
                // Per-member volume is Pareto-distributed: most accounts in
                // a campaign are low-and-slow, a few are firehoses. This is
                // what produces the paper's Figure 2 power law (>80% of
                // captured spammers observed with a single spam).
                spam_attempts_per_hour: member_spam_rate(self.spam_attempts_per_hour, rng),
                spam_flavor: Some(self.flavor),
            },
            kind: AccountKind::Campaign(self.id),
        }
    }

    /// `stem_xxxxxNN`: fixed stem, fixed-length random middle, fixed-width
    /// digits — every member shares one Σ-sequence shape.
    fn member_screen_name(&self, rng: &mut StdRng) -> String {
        let middle: String = (0..self.name_middle_len)
            .map(|_| (b'a' + rng.random_range(0..26)) as char)
            .collect();
        let digits: String = (0..self.name_digits)
            .map(|_| char::from_digit(rng.random_range(0..10), 10).expect("digit"))
            .collect();
        format!("{}_{middle}{digits}", self.name_stem)
    }

    /// Near-duplicate description: half the members use the exact template
    /// (the paper's MinHash-identity criterion is near-exact matching), the
    /// rest append one filler word.
    fn member_description(&self, rng: &mut StdRng) -> String {
        if rng.random_bool(0.5) {
            self.description_template.clone()
        } else {
            let filler = crate::text::BENIGN_WORDS.choose(rng).expect("non-empty");
            format!("{} {}", self.description_template, filler)
        }
    }

    /// Noisy copy of the image template (±3 per pixel).
    fn member_image(&self, rng: &mut StdRng) -> GrayImage {
        let t = &self.image_template;
        GrayImage::from_fn(t.width(), t.height(), |x, y| {
            let v = i16::from(t.get(x, y)) + rng.random_range(-3..=3);
            v.clamp(0, 255) as u8
        })
    }
}

/// Pareto-tailed per-member spam rate with the campaign rate as scale.
/// Median members attempt a handful of spams per day; the α ≈ 1.15 tail
/// produces rare firehose accounts.
fn member_spam_rate(campaign_rate: f64, rng: &mut StdRng) -> f64 {
    let u: f64 = rng.random::<f64>().max(1e-9);
    let heavy = u.powf(-1.0 / 1.15);
    (campaign_rate * 0.025 * heavy).clamp(0.01, 2.0)
}

/// A non-templated screen name for sloppy members: stem plus free-form
/// digits of varying width (different Σ-sequence per member).
fn freehand_screen_name(stem: &str, rng: &mut StdRng) -> String {
    format!("{stem}{}", rng.random_range(1..99_999))
}

/// A smooth, structured template image (sinusoidal bands): strong gradients
/// that survive ±3 noise under dHash.
fn smooth_template(rng: &mut StdRng) -> GrayImage {
    let fx = rng.random_range(0.2..0.9);
    let fy = rng.random_range(0.2..0.9);
    let phase = rng.random_range(0.0..std::f64::consts::TAU);
    GrayImage::from_fn(24, 24, |x, y| {
        let v = ((f64::from(x) * fx + f64::from(y) * fy + phase).sin() + 1.0) * 127.0;
        v as u8
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ph_sketch::{DHash128, MinHasher, NamePattern};
    use rand::SeedableRng;

    fn campaign(seed: u64) -> (Campaign, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut c = Campaign::generate(CampaignId(1), &mut rng);
        // Template-sharing tests need fully disciplined members.
        c.discipline = 1.0;
        (c, rng)
    }

    #[test]
    fn sloppy_campaign_breaks_templates() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut c = Campaign::generate(CampaignId(2), &mut rng);
        c.discipline = 0.0;
        let a = c.generate_member(AccountId(1), &mut rng);
        let b = c.generate_member(AccountId(2), &mut rng);
        // With zero discipline, avatars are independent noise.
        let d = ph_sketch::DHash128::of(&a.profile.profile_image)
            .hamming_distance(ph_sketch::DHash128::of(&b.profile.profile_image));
        assert!(d > 5, "sloppy avatars should not collide (distance {d})");
    }

    #[test]
    fn members_share_name_pattern() {
        let (c, mut rng) = campaign(1);
        let a = c.generate_member(AccountId(10), &mut rng);
        let b = c.generate_member(AccountId(11), &mut rng);
        assert_ne!(a.profile.screen_name, b.profile.screen_name);
        assert_eq!(
            NamePattern::of(&a.profile.screen_name),
            NamePattern::of(&b.profile.screen_name)
        );
    }

    #[test]
    fn members_share_near_identical_avatars() {
        let (c, mut rng) = campaign(2);
        let a = c.generate_member(AccountId(10), &mut rng);
        let b = c.generate_member(AccountId(11), &mut rng);
        let (ha, hb) = (
            DHash128::of(&a.profile.profile_image),
            DHash128::of(&b.profile.profile_image),
        );
        assert!(
            ha.hamming_distance(hb) < 5,
            "campaign avatars too far apart: {}",
            ha.hamming_distance(hb)
        );
    }

    #[test]
    fn members_have_near_duplicate_descriptions() {
        let (c, mut rng) = campaign(3);
        let a = c.generate_member(AccountId(10), &mut rng);
        let b = c.generate_member(AccountId(11), &mut rng);
        let hasher = MinHasher::new(64, 9);
        let sa = hasher.signature_of_text(&a.profile.description);
        let sb = hasher.signature_of_text(&b.profile.description);
        assert!(
            sa.estimate_jaccard(&sb) > 0.7,
            "campaign bios insufficiently similar: {}",
            sa.estimate_jaccard(&sb)
        );
    }

    #[test]
    fn members_are_marked_as_campaign_spammers() {
        let (c, mut rng) = campaign(4);
        let m = c.generate_member(AccountId(5), &mut rng);
        assert!(m.is_spammer());
        assert_eq!(m.campaign(), Some(CampaignId(1)));
        assert!(m.behavior.spam_attempts_per_hour > 0.0);
        assert!(m.behavior.spam_flavor.is_some());
    }

    #[test]
    fn bot_traffic_is_third_party_heavy() {
        let (c, mut rng) = campaign(5);
        let m = c.generate_member(AccountId(5), &mut rng);
        assert!(m.behavior.source_weights[2] > 0.5);
    }

    #[test]
    fn different_campaigns_have_distant_templates() {
        let mut rng = StdRng::seed_from_u64(6);
        let c1 = Campaign::generate(CampaignId(1), &mut rng);
        let c2 = Campaign::generate(CampaignId(2), &mut rng);
        let d = DHash128::of(&c1.image_template).hamming_distance(DHash128::of(&c2.image_template));
        assert!(d > 5, "templates collide: distance {d}");
    }

    #[test]
    fn campaign_generation_is_deterministic() {
        let (c1, _) = campaign(7);
        let (c2, _) = campaign(7);
        assert_eq!(c1, c2);
    }
}
