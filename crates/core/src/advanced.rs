//! The advanced pseudo-honeypot system (§V-E): re-deploy over the top-10
//! attributes by PGE, 10 nodes each — 100 nodes total.

use serde::{Deserialize, Serialize};

use crate::attributes::SampleAttribute;
use crate::monitor::RunnerConfig;
use crate::pge::PgeEntry;
use crate::selection::SelectorConfig;

/// Configuration of an advanced build.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdvancedConfig {
    /// How many top-PGE slots to redeploy over (paper: 10).
    pub top_slots: usize,
    /// Nodes per slot (paper: 10, for 100 nodes total).
    pub nodes_per_slot: usize,
}

impl Default for AdvancedConfig {
    fn default() -> Self {
        Self {
            top_slots: 10,
            nodes_per_slot: 10,
        }
    }
}

/// Picks the top slots from a PGE ranking.
///
/// # Panics
///
/// Panics if the ranking holds fewer entries than requested.
pub fn top_slots(ranking: &[PgeEntry], k: usize) -> Vec<SampleAttribute> {
    assert!(
        ranking.len() >= k,
        "ranking has {} entries, need {k}",
        ranking.len()
    );
    ranking.iter().take(k).map(|e| e.slot).collect()
}

/// Builds the runner configuration of the advanced system from a PGE
/// ranking produced by a standard (exploration) run.
pub fn advanced_runner_config(
    ranking: &[PgeEntry],
    config: &AdvancedConfig,
    seed: u64,
) -> RunnerConfig {
    RunnerConfig {
        slots: top_slots(ranking, config.top_slots),
        selector: SelectorConfig {
            accounts_per_slot: config.nodes_per_slot,
            ..Default::default()
        },
        switch_interval_hours: 1,
        seed,
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::ProfileAttribute;

    fn ranking() -> Vec<PgeEntry> {
        (0..12)
            .map(|i| PgeEntry {
                slot: SampleAttribute::profile(ProfileAttribute::ALL[i % 11], (i + 1) as f64),
                spammers: 100 - i,
                node_hours: 10.0,
                pge: (100 - i) as f64 / 10.0,
            })
            .collect()
    }

    #[test]
    fn top_slots_takes_the_head() {
        let top = top_slots(&ranking(), 3);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0], ranking()[0].slot);
    }

    #[test]
    #[should_panic(expected = "need 20")]
    fn too_few_entries_panics() {
        let _ = top_slots(&ranking(), 20);
    }

    #[test]
    fn advanced_config_builds_100_node_plan() {
        let cfg = advanced_runner_config(&ranking(), &AdvancedConfig::default(), 3);
        assert_eq!(cfg.slots.len(), 10);
        assert_eq!(cfg.selector.accounts_per_slot, 10);
        assert_eq!(cfg.switch_interval_hours, 1);
    }
}
