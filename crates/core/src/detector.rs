//! The learning-based spam detector (§IV-C): model selection over the five
//! Table IV algorithms and the Random Forest production classifier
//! (70 trees, depth cap 700).

use std::collections::HashSet;

use ph_exec::ExecConfig;
use ph_ml::cv::{compare_algorithms, CrossValidation};
use ph_ml::data::Dataset;
use ph_ml::flat::FlatForest;
use ph_ml::forest::{RandomForest, RandomForestConfig};
use ph_ml::tree::DecisionTreeConfig;
use ph_ml::{Algorithm, Classifier};
use ph_twitter_sim::engine::Engine;
use ph_twitter_sim::AccountId;
use serde::{Deserialize, Serialize};

use crate::features::{self, FeatureExtractor};
use crate::labeling::LabeledCollection;
use crate::monitor::CollectedTweet;

/// Detector configuration. Defaults follow the paper: RF with 70 trees,
/// each capped at depth 700.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// The algorithm deployed (the paper selects RF by cross-validation).
    pub algorithm: PaperAlgorithm,
    /// RF parameters used when `algorithm` is RF.
    pub forest: RandomForestConfig,
    /// Training seed.
    pub seed: u64,
    /// τ of the environment score.
    pub tau: f64,
}

/// Serde-friendly mirror of [`ph_ml::Algorithm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PaperAlgorithm {
    /// Decision tree.
    DecisionTree,
    /// k-nearest neighbours.
    KNearestNeighbors,
    /// Linear SVM.
    LinearSvm,
    /// Gradient boosting.
    GradientBoosting,
    /// Random forest (paper's choice).
    RandomForest,
}

impl From<PaperAlgorithm> for Algorithm {
    fn from(a: PaperAlgorithm) -> Algorithm {
        match a {
            PaperAlgorithm::DecisionTree => Algorithm::DecisionTree,
            PaperAlgorithm::KNearestNeighbors => Algorithm::KNearestNeighbors,
            PaperAlgorithm::LinearSvm => Algorithm::LinearSvm,
            PaperAlgorithm::GradientBoosting => Algorithm::GradientBoosting,
            PaperAlgorithm::RandomForest => Algorithm::RandomForest,
        }
    }
}

impl Default for DetectorConfig {
    fn default() -> Self {
        Self {
            algorithm: PaperAlgorithm::RandomForest,
            forest: RandomForestConfig {
                num_trees: 70,
                tree: DecisionTreeConfig {
                    max_depth: 700,
                    ..Default::default()
                },
                ..Default::default()
            },
            seed: 13,
            tau: crate::features::DEFAULT_TAU,
        }
    }
}

/// Builds the training matrix from a labeled collection: features are
/// extracted in stream order with environment-score feedback from the
/// labels (the online update of §IV-A). Unlabeled tweets (partial manual
/// coverage) are skipped.
///
/// Returns the dataset plus the collected-index of each row.
///
/// # Panics
///
/// Panics if no labeled tweets exist.
pub fn build_training_data(
    collected: &[CollectedTweet],
    labels: &LabeledCollection,
    engine: &Engine,
    tau: f64,
) -> (Dataset, Vec<usize>) {
    build_training_data_with(collected, labels, engine, tau, &ExecConfig::sequential())
}

/// [`build_training_data`] with the pure feature phase sharded across
/// `exec`'s workers. The label lookup and environment-score feedback fold
/// stays sequential (it is stream-order-dependent by design), so the
/// resulting dataset is identical to the sequential build at any thread
/// count.
///
/// # Panics
///
/// Panics if no labeled tweets exist.
pub fn build_training_data_with(
    collected: &[CollectedTweet],
    labels: &LabeledCollection,
    engine: &Engine,
    tau: f64,
    exec: &ExecConfig,
) -> (Dataset, Vec<usize>) {
    let _span = ph_telemetry::span("features.extract_training");
    let _phase = ph_trace::phase("features.extract_training");
    let rest = engine.rest();
    let mut matrix = features::pure_batch_matrix(collected, &rest, exec);
    let mut extractor = FeatureExtractor::with_tau(tau);
    let mut rows = Vec::new();
    let mut ys = Vec::new();
    let mut indices = Vec::new();
    for (i, c) in collected.iter().enumerate() {
        extractor.finish_into(c, matrix.row_mut(i));
        if let Some(label) = labels.tweet_labels[i] {
            rows.push(matrix.row(i).to_vec());
            ys.push(label.spam);
            indices.push(i);
            extractor.record_verdict(c.slot, label.spam);
        }
    }
    let dataset = Dataset::new(rows, ys).expect("labeled collection is non-empty and rectangular");
    (dataset, indices)
}

/// Cross-validates all five Table IV algorithms on a training set.
pub fn model_selection(data: &Dataset, folds: usize, seed: u64) -> Vec<CrossValidation> {
    compare_algorithms(data, folds, seed)
}

/// The outcome of classifying a monitored collection.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ClassificationOutcome {
    /// Per-tweet spam predictions, parallel to the collection.
    pub predictions: Vec<bool>,
    /// Accounts with at least one spam-predicted tweet.
    pub spammers: HashSet<AccountId>,
}

impl ClassificationOutcome {
    /// Number of tweets classified spam.
    pub fn num_spam(&self) -> usize {
        self.predictions.iter().filter(|&&p| p).count()
    }

    /// Number of classified spammer accounts.
    pub fn num_spammers(&self) -> usize {
        self.spammers.len()
    }
}

/// Classifier-confidence histogram: 20 uniform buckets over [0, 1].
/// The verdict still comes from `predict()` — the score is recorded
/// alongside, never thresholded, so classification behavior is
/// untouched by the instrumentation.
fn confidence_histogram() -> std::sync::Arc<ph_telemetry::Histogram> {
    let bounds: Vec<f64> = (1..=20).map(|i| i as f64 * 0.05).collect();
    ph_telemetry::histogram("detect.rf_confidence", &bounds)
}

/// Verdict-margin histogram: 20 uniform buckets over the absolute vote
/// margin `|2·score − 1|` (0 = split jury, 1 = unanimous). Recorded on
/// every verdict, like the confidence histogram.
fn margin_histogram() -> std::sync::Arc<ph_telemetry::Histogram> {
    let bounds: Vec<f64> = (1..=20).map(|i| i as f64 * 0.05).collect();
    ph_telemetry::histogram("verdict.margin", &bounds)
}

/// The trained production detector.
pub struct SpamDetector {
    model: Box<dyn Classifier>,
    /// The concrete flat forest when the algorithm is RF — the
    /// explanation path needs direct access to the tree structure that
    /// `Box<dyn Classifier>` erases.
    forest: Option<FlatForest>,
    tau: f64,
}

impl std::fmt::Debug for SpamDetector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpamDetector")
            .field("tau", &self.tau)
            .finish()
    }
}

impl SpamDetector {
    /// Trains the configured algorithm on a training set.
    pub fn train(config: &DetectorConfig, data: &Dataset) -> Self {
        let _span = ph_telemetry::span("ml.train");
        let _phase = ph_trace::phase("ml.train");
        let (model, flat): (Box<dyn Classifier>, Option<FlatForest>) = match config.algorithm {
            PaperAlgorithm::RandomForest => {
                // Train on the pointer forest, deploy the flattened SoA
                // layout: bit-identical predictions, no per-level enum
                // branch or pointer chase on the classify hot path.
                let forest = RandomForest::fit(&config.forest, data, config.seed);
                let flat = FlatForest::from_forest(&forest);
                (Box::new(flat.clone()), Some(flat))
            }
            other => (Algorithm::from(other).fit_default(data, config.seed), None),
        };
        if crate::observe::is_enabled() {
            // Capture the per-feature reference histograms this model
            // was trained against; the drift monitor scores live hours
            // against them.
            crate::observe::install_reference(crate::observe::FeatureReference::from_dataset(data));
        }
        Self {
            model,
            forest: flat,
            tau: config.tau,
        }
    }

    /// Classifies a monitored collection in stream order, feeding each
    /// verdict back into the environment score as the paper's detector
    /// does ("update its spam features automatically … once there are new
    /// spams captured").
    pub fn classify_collection(
        &self,
        collected: &[CollectedTweet],
        engine: &Engine,
    ) -> ClassificationOutcome {
        self.classify_stream(collected, engine)
    }

    /// Classifies tweets delivered one at a time — the streaming twin of
    /// [`SpamDetector::classify_collection`], O(1) in memory, for reading
    /// straight out of `ph-store`'s segment log without materializing the
    /// collection. Order matters: the environment-score feedback makes
    /// classification stream-order-dependent, so feed records in
    /// collection order (the log's append order).
    pub fn classify_stream<I>(&self, stream: I, engine: &Engine) -> ClassificationOutcome
    where
        I: IntoIterator,
        I::Item: std::borrow::Borrow<CollectedTweet>,
    {
        use std::borrow::Borrow as _;
        let _span = ph_telemetry::span("detect.classify");
        let _phase = ph_trace::phase("detect.classify");
        let rest = engine.rest();
        let confidence = confidence_histogram();
        let margin = margin_histogram();
        let mut extractor = FeatureExtractor::with_tau(self.tau);
        let mut outcome = ClassificationOutcome::default();
        for item in stream {
            let c = item.borrow();
            let features = extractor.extract(c, &rest);
            let spam = self.model.predict(&features);
            let score = self.model.predict_score(&features);
            confidence.record(score);
            margin.record((2.0 * score - 1.0).abs());
            extractor.record_verdict(c.slot, spam);
            outcome.predictions.push(spam);
            if spam {
                outcome.spammers.insert(c.tweet.author);
            }
        }
        ph_telemetry::cached_counter!("detect.tweets_classified")
            .add(outcome.predictions.len() as u64);
        ph_telemetry::cached_counter!("detect.spam_predicted").add(outcome.num_spam() as u64);
        outcome
    }

    /// Classifies a monitored collection with the pure feature phase
    /// sharded across `exec`'s workers. The predict + environment-score
    /// fold stays sequential — verdict feedback makes classification
    /// inherently stream-ordered — so the outcome equals
    /// [`SpamDetector::classify_collection`] exactly at any thread count.
    pub fn classify_batch(
        &self,
        collected: &[CollectedTweet],
        engine: &Engine,
        exec: &ExecConfig,
    ) -> ClassificationOutcome {
        let _span = ph_telemetry::span("detect.classify");
        let _phase = ph_trace::phase("detect.classify");
        let mut extractor = FeatureExtractor::with_tau(self.tau);
        let verdicts = self.classify_fold(&mut extractor, collected, engine, exec);
        let mut outcome = ClassificationOutcome::default();
        for (c, v) in collected.iter().zip(verdicts) {
            outcome.predictions.push(v.spam);
            if v.spam {
                outcome.spammers.insert(c.tweet.author);
            }
        }
        ph_telemetry::cached_counter!("detect.tweets_classified")
            .add(outcome.predictions.len() as u64);
        ph_telemetry::cached_counter!("detect.spam_predicted").add(outcome.num_spam() as u64);
        outcome
    }

    /// The shared classify fold: sharded pure-feature phase, then the
    /// sequential predict + environment-score feedback loop against the
    /// *caller's* extractor — which is what lets the streaming classifier
    /// carry extractor state across hourly batches while the batch path
    /// uses a fresh one.
    fn classify_fold(
        &self,
        extractor: &mut FeatureExtractor,
        collected: &[CollectedTweet],
        engine: &Engine,
        exec: &ExecConfig,
    ) -> Vec<Verdict> {
        let rest = engine.rest();
        let mut matrix = features::pure_batch_matrix(collected, &rest, exec);
        let confidence = confidence_histogram();
        let margin = margin_histogram();
        // Zero-cost when off: one relaxed load decides; the explainer's
        // node-value table is only built for observed batches.
        let observing = crate::observe::is_enabled();
        let explainer = if observing {
            self.forest.as_ref().map(FlatForest::explainer)
        } else {
            None
        };
        let mut verdicts = Vec::with_capacity(collected.len());
        for (i, c) in collected.iter().enumerate() {
            extractor.finish_into(c, matrix.row_mut(i));
            let row = matrix.row(i);
            let spam = self.model.predict(row);
            let score = self.model.predict_score(row);
            confidence.record(score);
            margin.record((2.0 * score - 1.0).abs());
            if observing {
                crate::observe::drift_observe(c.hour, row);
                if let Some(explainer) = &explainer {
                    crate::observe::record_explanation(
                        c.hour,
                        spam,
                        score,
                        &explainer.explain(row),
                    );
                }
            }
            extractor.record_verdict(c.slot, spam);
            verdicts.push(Verdict { spam, score });
        }
        verdicts
    }

    /// Classifies one pre-extracted feature vector.
    pub fn predict(&self, features: &[f64]) -> bool {
        self.model.predict(features)
    }
}

/// One live classification verdict: the binary call plus the classifier
/// confidence recorded alongside it (never thresholded).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Verdict {
    /// The spam prediction.
    pub spam: bool,
    /// Classifier confidence in [0, 1].
    pub score: f64,
}

/// The daemon's incremental classifier: a [`SpamDetector`] plus one
/// *persistent* [`FeatureExtractor`] whose environment-score state carries
/// across hourly batches. Classifying a run hour-by-hour through one
/// instance therefore yields exactly the verdict sequence of
/// [`SpamDetector::classify_batch`] over the whole collection at once —
/// the property the serve restart-equivalence contract rests on (a
/// resumed daemon rebuilds this state by replaying stored hours).
#[derive(Debug)]
pub struct StreamClassifier {
    detector: SpamDetector,
    extractor: FeatureExtractor,
}

impl StreamClassifier {
    /// Wraps a trained detector with fresh stream state (start of hour 0).
    pub fn new(detector: SpamDetector) -> Self {
        let extractor = FeatureExtractor::with_tau(detector.tau);
        Self {
            detector,
            extractor,
        }
    }

    /// The wrapped detector.
    pub fn detector(&self) -> &SpamDetector {
        &self.detector
    }

    /// Classifies one hour's collected batch in delivery order, carrying
    /// the environment-score state forward. Emits the same
    /// `detect.classify` span and `detect.tweets_classified` /
    /// `detect.spam_predicted` counters as the batch path.
    pub fn classify_hour(
        &mut self,
        collected: &[CollectedTweet],
        engine: &Engine,
        exec: &ExecConfig,
    ) -> Vec<Verdict> {
        let _span = ph_telemetry::span("detect.classify");
        let _phase = ph_trace::phase("detect.classify");
        let verdicts = self
            .detector
            .classify_fold(&mut self.extractor, collected, engine, exec);
        ph_telemetry::cached_counter!("detect.tweets_classified").add(verdicts.len() as u64);
        ph_telemetry::cached_counter!("detect.spam_predicted")
            .add(verdicts.iter().filter(|v| v.spam).count() as u64);
        verdicts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::{ProfileAttribute, SampleAttribute};
    use crate::labeling::pipeline::{label_collection, PipelineConfig};
    use crate::monitor::{Runner, RunnerConfig};
    use ph_twitter_sim::engine::SimConfig;

    fn pipeline_run() -> (Engine, Vec<CollectedTweet>, LabeledCollection) {
        let mut engine = Engine::new(SimConfig {
            seed: 71,
            num_organic: 600,
            num_campaigns: 4,
            accounts_per_campaign: 8,
            suspension_rate_per_hour: 0.02,
            ..Default::default()
        });
        let runner = Runner::new(RunnerConfig {
            slots: vec![
                SampleAttribute::profile(ProfileAttribute::ListsPerDay, 1.0),
                SampleAttribute::profile(ProfileAttribute::FollowersCount, 10_000.0),
            ],
            ..Default::default()
        });
        let report = runner.run(&mut engine, 50);
        let dataset = label_collection(&report.collected, &engine, &PipelineConfig::default());
        (engine, report.collected, dataset.labels)
    }

    #[test]
    fn training_data_has_58_features() {
        let (engine, collected, labels) = pipeline_run();
        let (data, indices) = build_training_data(&collected, &labels, &engine, 0.01);
        assert_eq!(data.num_features(), crate::features::FEATURE_COUNT);
        assert_eq!(data.len(), indices.len());
        assert!(data.num_positive() > 0, "no positive training examples");
        assert!(
            data.num_positive() < data.len(),
            "all-positive training set"
        );
    }

    #[test]
    fn detector_separates_spam_well() {
        let (engine, collected, labels) = pipeline_run();
        let (data, _) = build_training_data(&collected, &labels, &engine, 0.01);
        let detector = SpamDetector::train(
            &DetectorConfig {
                // Smaller forest for test speed; quality is still high.
                forest: RandomForestConfig {
                    num_trees: 15,
                    ..DetectorConfig::default().forest
                },
                ..Default::default()
            },
            &data,
        );
        let outcome = detector.classify_collection(&collected, &engine);
        assert_eq!(outcome.predictions.len(), collected.len());
        let gt = engine.ground_truth();
        let correct = collected
            .iter()
            .zip(&outcome.predictions)
            .filter(|(c, &p)| p == gt.is_spam(&c.tweet))
            .count();
        let accuracy = correct as f64 / collected.len() as f64;
        assert!(accuracy > 0.9, "detector accuracy {accuracy:.3}");
        assert!(outcome.num_spammers() > 0);
    }

    #[test]
    fn classify_stream_equals_classify_collection() {
        let (engine, collected, labels) = pipeline_run();
        let (data, _) = build_training_data(&collected, &labels, &engine, 0.01);
        let detector = SpamDetector::train(
            &DetectorConfig {
                forest: RandomForestConfig {
                    num_trees: 10,
                    ..DetectorConfig::default().forest
                },
                ..Default::default()
            },
            &data,
        );
        let batch = detector.classify_collection(&collected, &engine);
        // Owned one-at-a-time stream, as a segment-log reader yields.
        let streamed = detector.classify_stream(collected.iter().cloned(), &engine);
        assert_eq!(streamed, batch);
    }

    #[test]
    fn sharded_training_and_classification_match_sequential() {
        let (engine, collected, labels) = pipeline_run();
        let (data, indices) = build_training_data(&collected, &labels, &engine, 0.01);
        let exec = ExecConfig::with_threads(4);
        let (par_data, par_indices) =
            build_training_data_with(&collected, &labels, &engine, 0.01, &exec);
        assert_eq!(par_indices, indices);
        assert_eq!(par_data, data);

        let detector = SpamDetector::train(
            &DetectorConfig {
                forest: RandomForestConfig {
                    num_trees: 10,
                    ..DetectorConfig::default().forest
                },
                ..Default::default()
            },
            &data,
        );
        let sequential = detector.classify_collection(&collected, &engine);
        assert_eq!(
            detector.classify_batch(&collected, &engine, &exec),
            sequential
        );
    }

    #[test]
    fn hourly_stream_classifier_equals_one_shot_batch() {
        let (engine, collected, labels) = pipeline_run();
        let (data, _) = build_training_data(&collected, &labels, &engine, 0.01);
        let detector = SpamDetector::train(
            &DetectorConfig {
                forest: RandomForestConfig {
                    num_trees: 10,
                    ..DetectorConfig::default().forest
                },
                ..Default::default()
            },
            &data,
        );
        let exec = ExecConfig::sequential();
        let batch = detector.classify_batch(&collected, &engine, &exec);

        let detector2 = SpamDetector::train(
            &DetectorConfig {
                forest: RandomForestConfig {
                    num_trees: 10,
                    ..DetectorConfig::default().forest
                },
                ..Default::default()
            },
            &data,
        );
        let mut stream = StreamClassifier::new(detector2);
        let mut predictions = Vec::new();
        // Split by collection hour, as the daemon does.
        let mut i = 0;
        while i < collected.len() {
            let hour = collected[i].hour;
            let mut j = i;
            while j < collected.len() && collected[j].hour == hour {
                j += 1;
            }
            let verdicts = stream.classify_hour(&collected[i..j], &engine, &exec);
            predictions.extend(verdicts.into_iter().map(|v| v.spam));
            i = j;
        }
        assert_eq!(predictions, batch.predictions);
    }

    #[test]
    fn model_selection_runs_all_five() {
        let (engine, collected, labels) = pipeline_run();
        let (data, _) = build_training_data(&collected, &labels, &engine, 0.01);
        // Subsample for speed if large.
        let results = model_selection(&data, 3, 5);
        assert_eq!(results.len(), 5);
        let rf = results.last().unwrap();
        assert_eq!(rf.algorithm_name, "RF");
        assert!(
            rf.mean.accuracy > 0.85,
            "RF accuracy {:.3}",
            rf.mean.accuracy
        );
    }

    #[test]
    fn default_config_matches_paper() {
        let c = DetectorConfig::default();
        assert_eq!(c.forest.num_trees, 70);
        assert_eq!(c.forest.tree.max_depth, 700);
        assert_eq!(c.algorithm, PaperAlgorithm::RandomForest);
    }
}
