//! Decision observability: verdict explanations and per-feature drift
//! monitoring for the production detector.
//!
//! A verdict is normally a bare probability. This module makes the
//! *decision* inspectable after the fact:
//!
//! - **Explanations** — when enabled, every classified tweet gets a
//!   [`VerdictExplanation`]: the signed vote margin plus a fixed
//!   `[f64; 58]` attribution vector from the flat forest's Saabas-style
//!   path decomposition ([`ph_ml::flat::ForestExplainer`]).
//! - **Drift** — [`SpamDetector::train`](crate::detector::SpamDetector)
//!   captures per-feature reference histograms (fixed-bin, bounded by
//!   the 1st/99th percentile so outliers cannot stretch the bins) from
//!   its training matrix; a streaming [`DriftMonitor`] then scores every
//!   live hour against that reference with a per-feature population
//!   stability index (PSI), publishes `drift.feature.<i>.psi` gauges,
//!   and emits a typed [`TelemetryEvent::DriftAlarm`] journal event when
//!   a feature crosses the alarm threshold.
//!
//! # Cost when off
//!
//! Everything is gated behind one process-global flag read with a single
//! relaxed atomic load ([`is_enabled`]) — the same zero-overhead pattern
//! as `ph_prof` and `ph_trace`. Disabled, the classify hot path pays one
//! load per batch and allocates nothing.
//!
//! # Determinism
//!
//! Explanations and drift scores are produced inside the *sequential*
//! predict/feedback fold over a deterministic feature matrix, so the
//! captured records (and the `explain.log`/`drift.log` streams ph-store
//! derives from them) are byte-identical at any `--threads N`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

use ph_ml::data::Dataset;
use ph_ml::flat::Explanation;
use ph_telemetry::TelemetryEvent;

use crate::features::FEATURE_COUNT;

/// Interior histogram bins per feature; two more catch under/overflow.
pub const DRIFT_INTERIOR_BINS: usize = 10;

/// Total histogram bins per feature (interior + underflow + overflow).
pub const DRIFT_BINS: usize = DRIFT_INTERIOR_BINS + 2;

/// PSI above which a feature's hourly window raises a [`DriftAlarm`]
/// journal event. 0.25 is the conventional "significant shift" rule of
/// thumb for the population stability index.
pub const PSI_ALARM_THRESHOLD: f64 = 0.25;

/// Minimum rows an hourly window needs before its PSI scores may raise
/// alarms (tiny windows produce noisy scores; gauges are still set).
pub const MIN_ALARM_SAMPLES: u64 = 20;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns decision observability on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether decision observability is on. One relaxed load — cheap enough
/// for the classify hot path.
#[inline]
#[must_use]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// One explained verdict, parallel to the stored record at index `seq`.
#[derive(Debug, Clone, PartialEq)]
pub struct VerdictExplanation {
    /// Classification index — equals the store's segment-log record
    /// index, so a stored verdict and its explanation join on `seq`.
    pub seq: u64,
    /// Engine hour the tweet was collected.
    pub hour: u64,
    /// The binary verdict.
    pub spam: bool,
    /// Classifier confidence in [0, 1].
    pub score: f64,
    /// Signed vote margin `2·score − 1`.
    pub margin: f64,
    /// The forest's prior (mean expected root vote).
    pub baseline: f64,
    /// Signed probability delta attributed to each of the 58 features.
    pub attributions: [f64; FEATURE_COUNT],
}

impl VerdictExplanation {
    /// Feature indices sorted by descending `|attribution|`, ties broken
    /// by feature index; zero-attribution features are skipped.
    #[must_use]
    pub fn top_features(&self, k: usize) -> Vec<(usize, f64)> {
        let mut ranked: Vec<(usize, f64)> = self
            .attributions
            .iter()
            .copied()
            .enumerate()
            .filter(|&(_, a)| a != 0.0)
            .collect();
        ranked.sort_by(|a, b| {
            b.1.abs()
                .partial_cmp(&a.1.abs())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        ranked.truncate(k);
        ranked
    }
}

/// Per-feature fixed-bin reference histogram captured at train time.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureReference {
    /// `[lo, hi)` interior range per feature (1st/99th percentile of the
    /// training column, so outliers cannot stretch the bins).
    pub bounds: Vec<(f64, f64)>,
    /// Reference bin counts per feature.
    pub counts: Vec<[u64; DRIFT_BINS]>,
    /// Training rows binned.
    pub total: u64,
}

/// Sorted-column quantile (nearest-rank on the sorted copy).
fn quantile(sorted: &[f64], q: f64) -> f64 {
    let at = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[at.min(sorted.len() - 1)]
}

/// Which bin `x` falls in for interior range `[lo, hi)`: 0 is underflow,
/// `DRIFT_BINS - 1` overflow. NaN fails both range comparisons and its
/// float→int cast saturates to 0, so it lands in the first interior bin
/// deterministically.
fn bin_of(lo: f64, hi: f64, x: f64) -> usize {
    if x < lo {
        return 0;
    }
    if x >= hi {
        return DRIFT_BINS - 1;
    }
    let t = (x - lo) / (hi - lo) * DRIFT_INTERIOR_BINS as f64;
    1 + (t as usize).min(DRIFT_INTERIOR_BINS - 1)
}

impl FeatureReference {
    /// Captures the reference from a training matrix.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty (a trained detector always has rows).
    #[must_use]
    pub fn from_dataset(data: &Dataset) -> Self {
        let rows = data.rows();
        assert!(!rows.is_empty(), "cannot capture a reference from no rows");
        let width = data.num_features();
        let mut bounds = Vec::with_capacity(width);
        let mut column = Vec::with_capacity(rows.len());
        for f in 0..width {
            column.clear();
            column.extend(rows.iter().map(|r| r[f]));
            column.sort_by(f64::total_cmp);
            let lo = quantile(&column, 0.01);
            let mut hi = quantile(&column, 0.99);
            if hi.partial_cmp(&lo) != Some(std::cmp::Ordering::Greater) {
                // Degenerate (constant or NaN-heavy) column: widen so
                // the interior keeps a nonzero span.
                hi = lo + 1.0;
            }
            bounds.push((lo, hi));
        }
        let mut counts = vec![[0u64; DRIFT_BINS]; width];
        for row in rows {
            for (f, &(lo, hi)) in bounds.iter().enumerate() {
                counts[f][bin_of(lo, hi, row[f])] += 1;
            }
        }
        Self {
            bounds,
            counts,
            total: rows.len() as u64,
        }
    }

    /// PSI of a live window's bin counts for feature `f` against the
    /// reference. Laplace-smoothed so empty bins stay finite.
    #[must_use]
    pub fn psi(&self, f: usize, live: &[u64; DRIFT_BINS], live_total: u64) -> f64 {
        const EPS: f64 = 0.5;
        let ref_total = self.total as f64 + EPS * DRIFT_BINS as f64;
        let live_total = live_total as f64 + EPS * DRIFT_BINS as f64;
        let mut psi = 0.0;
        for (r, l) in self.counts[f].iter().zip(live) {
            let p = (*r as f64 + EPS) / ref_total;
            let q = (*l as f64 + EPS) / live_total;
            psi += (q - p) * (q / p).ln();
        }
        psi
    }

    /// Mean PSI across all features of `rows` treated as one window —
    /// the summary the adaptive detector journals around a retrain.
    #[must_use]
    pub fn mean_psi(&self, rows: &[Vec<f64>]) -> f64 {
        let width = self.bounds.len();
        let mut live = vec![[0u64; DRIFT_BINS]; width];
        for row in rows {
            for (f, &(lo, hi)) in self.bounds.iter().enumerate() {
                live[f][bin_of(lo, hi, row[f])] += 1;
            }
        }
        (0..width)
            .map(|f| self.psi(f, &live[f], rows.len() as u64))
            .sum::<f64>()
            / width as f64
    }
}

/// One finalized hourly window: PSI per feature.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftHourScores {
    /// Engine hour of the window.
    pub hour: u64,
    /// Rows the window held.
    pub samples: u64,
    /// PSI per feature against the train-time reference.
    pub psi: [f64; FEATURE_COUNT],
}

/// One alarm: a feature whose hourly PSI crossed the threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftAlarmRecord {
    /// Engine hour of the offending window.
    pub hour: u64,
    /// Drifting feature index.
    pub feature: u32,
    /// The PSI score that tripped the alarm.
    pub psi: f64,
}

/// Streaming per-hour drift scorer: feed it every classified row in
/// stream order; it windows by engine hour, scores each finished window
/// against the reference, sets `drift.feature.<i>.psi` gauges, and
/// journals a [`TelemetryEvent::DriftAlarm`] per threshold crossing.
#[derive(Debug)]
pub struct DriftMonitor {
    reference: FeatureReference,
    current_hour: Option<u64>,
    live: Vec<[u64; DRIFT_BINS]>,
    live_total: u64,
    hours: Vec<DriftHourScores>,
    alarms: Vec<DriftAlarmRecord>,
}

impl DriftMonitor {
    /// Wraps a train-time reference with empty live windows.
    #[must_use]
    pub fn new(reference: FeatureReference) -> Self {
        let width = reference.bounds.len();
        Self {
            reference,
            current_hour: None,
            live: vec![[0u64; DRIFT_BINS]; width],
            live_total: 0,
            hours: Vec::new(),
            alarms: Vec::new(),
        }
    }

    /// The wrapped reference.
    #[must_use]
    pub fn reference(&self) -> &FeatureReference {
        &self.reference
    }

    /// Observes one classified row. Rows must arrive in stream order
    /// (hours never decrease); an hour change finalizes the previous
    /// window.
    pub fn observe(&mut self, hour: u64, row: &[f64]) {
        if self.current_hour != Some(hour) {
            self.roll();
            self.current_hour = Some(hour);
        }
        for (f, &(lo, hi)) in self.reference.bounds.iter().enumerate() {
            self.live[f][bin_of(lo, hi, row[f])] += 1;
        }
        self.live_total += 1;
    }

    /// Finalizes the open window (call once after the last row).
    pub fn finish(&mut self) {
        self.roll();
        self.current_hour = None;
    }

    /// Finished hourly windows, in hour order.
    #[must_use]
    pub fn hours(&self) -> &[DriftHourScores] {
        &self.hours
    }

    /// Alarms raised so far, in (hour, feature) order.
    #[must_use]
    pub fn alarms(&self) -> &[DriftAlarmRecord] {
        &self.alarms
    }

    fn roll(&mut self) {
        let Some(hour) = self.current_hour else {
            return;
        };
        let width = self.reference.bounds.len();
        let mut psi = [0.0f64; FEATURE_COUNT];
        for (f, slot) in psi.iter_mut().enumerate().take(width.min(FEATURE_COUNT)) {
            let score = self.reference.psi(f, &self.live[f], self.live_total);
            *slot = score;
            ph_telemetry::gauge(&format!("drift.feature.{f}.psi")).set(score);
            if score > PSI_ALARM_THRESHOLD && self.live_total >= MIN_ALARM_SAMPLES {
                self.alarms.push(DriftAlarmRecord {
                    hour,
                    feature: f as u32,
                    psi: score,
                });
                ph_telemetry::journal_emit(TelemetryEvent::DriftAlarm {
                    hour,
                    feature: f as u64,
                    psi: score,
                });
            }
        }
        self.hours.push(DriftHourScores {
            hour,
            samples: self.live_total,
            psi,
        });
        for bins in &mut self.live {
            *bins = [0; DRIFT_BINS];
        }
        self.live_total = 0;
    }
}

/// The process-global observability state, mirroring the journal: the
/// classify fold appends here, the CLI snapshots at persist time.
#[derive(Default)]
struct ObserveState {
    records: Vec<VerdictExplanation>,
    monitor: Option<DriftMonitor>,
}

fn state() -> &'static Mutex<ObserveState> {
    static GLOBAL: OnceLock<Mutex<ObserveState>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(ObserveState::default()))
}

fn lock() -> std::sync::MutexGuard<'static, ObserveState> {
    state().lock().expect("observe lock poisoned")
}

/// Appends one explained verdict; `seq` is assigned in arrival order
/// (the sequential classify fold), matching the store's record index.
pub fn record_explanation(hour: u64, spam: bool, score: f64, explanation: &Explanation) {
    let mut attributions = [0.0f64; FEATURE_COUNT];
    let n = explanation.contributions.len().min(FEATURE_COUNT);
    attributions[..n].copy_from_slice(&explanation.contributions[..n]);
    let mut s = lock();
    let seq = s.records.len() as u64;
    s.records.push(VerdictExplanation {
        seq,
        hour,
        spam,
        score,
        margin: explanation.margin,
        baseline: explanation.baseline,
        attributions,
    });
}

/// Installs the train-time reference, replacing any previous monitor
/// (a retrain starts fresh windows against the new reference).
pub fn install_reference(reference: FeatureReference) {
    lock().monitor = Some(DriftMonitor::new(reference));
}

/// Feeds one classified row into the installed drift monitor (no-op
/// until a reference is installed).
pub fn drift_observe(hour: u64, row: &[f64]) {
    if let Some(monitor) = lock().monitor.as_mut() {
        monitor.observe(hour, row);
    }
}

/// Finalizes the monitor's open window (call before persisting).
pub fn drift_finalize() {
    if let Some(monitor) = lock().monitor.as_mut() {
        monitor.finish();
    }
}

/// Mean PSI of pre-extracted rows against the currently installed
/// reference, if any — the retrain before/after summary.
#[must_use]
pub fn mean_psi_of(rows: &[Vec<f64>]) -> Option<f64> {
    lock()
        .monitor
        .as_ref()
        .map(|m| m.reference().mean_psi(rows))
}

/// Copies out every explained verdict in classification order.
#[must_use]
pub fn explanations() -> Vec<VerdictExplanation> {
    lock().records.clone()
}

/// Copies out the explained verdicts with `seq >= start` — the slice a
/// streaming consumer (the serve daemon's hourly verdict flush) needs
/// without re-copying the whole history every hour.
#[must_use]
pub fn explanations_from(start: u64) -> Vec<VerdictExplanation> {
    let s = lock();
    let at = (start as usize).min(s.records.len());
    s.records[at..].to_vec()
}

/// Copies out the finished drift windows and alarms.
#[must_use]
pub fn drift_results() -> (Vec<DriftHourScores>, Vec<DriftAlarmRecord>) {
    let s = lock();
    match &s.monitor {
        Some(m) => (m.hours().to_vec(), m.alarms().to_vec()),
        None => (Vec::new(), Vec::new()),
    }
}

/// Clears all captured state (records, monitor, reference).
pub fn reset() {
    let mut s = lock();
    s.records.clear();
    s.monitor = None;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_dataset(shift: f64, n: usize) -> Dataset {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![i as f64 % 10.0 + shift, 1.0, (i % 3) as f64])
            .collect();
        let labels: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        Dataset::new(rows, labels).unwrap()
    }

    #[test]
    fn reference_bins_every_training_row() {
        let data = toy_dataset(0.0, 200);
        let reference = FeatureReference::from_dataset(&data);
        assert_eq!(reference.total, 200);
        assert_eq!(reference.bounds.len(), 3);
        for f in 0..3 {
            let binned: u64 = reference.counts[f].iter().sum();
            assert_eq!(binned, 200, "feature {f} lost rows");
        }
    }

    #[test]
    fn identical_window_scores_near_zero_shifted_scores_high() {
        let data = toy_dataset(0.0, 500);
        let reference = FeatureReference::from_dataset(&data);
        let same = reference.mean_psi(data.rows());
        assert!(same < 0.01, "self-PSI {same} should be ~0");
        let shifted = toy_dataset(40.0, 500);
        // Feature 0 moved far outside the reference range.
        let mut live = vec![[0u64; DRIFT_BINS]; 3];
        for row in shifted.rows() {
            for (f, &(lo, hi)) in reference.bounds.iter().enumerate() {
                live[f][bin_of(lo, hi, row[f])] += 1;
            }
        }
        let psi0 = reference.psi(0, &live[0], 500);
        assert!(psi0 > PSI_ALARM_THRESHOLD, "shifted PSI {psi0} too small");
        // Feature 1 is constant in both — no drift signal.
        let psi1 = reference.psi(1, &live[1], 500);
        assert!(psi1 < 0.01, "undrifted PSI {psi1} should be ~0");
    }

    #[test]
    fn monitor_windows_by_hour_and_raises_alarms() {
        let data = toy_dataset(0.0, 400);
        let mut monitor = DriftMonitor::new(FeatureReference::from_dataset(&data));
        // Hour 0: in-distribution. Hour 1: feature 0 shifted far out.
        for row in data.rows().iter().take(100) {
            monitor.observe(0, row);
        }
        for row in toy_dataset(40.0, 100).rows() {
            monitor.observe(1, row);
        }
        monitor.finish();
        assert_eq!(monitor.hours().len(), 2);
        assert_eq!(monitor.hours()[0].hour, 0);
        assert_eq!(monitor.hours()[0].samples, 100);
        assert!(monitor.hours()[0].psi[0] < 0.05);
        assert!(monitor.hours()[1].psi[0] > PSI_ALARM_THRESHOLD);
        assert!(
            monitor
                .alarms()
                .iter()
                .any(|a| a.hour == 1 && a.feature == 0),
            "no alarm for the shifted feature: {:?}",
            monitor.alarms()
        );
        assert!(
            monitor.alarms().iter().all(|a| a.hour != 0),
            "in-distribution hour raised an alarm"
        );
    }

    #[test]
    fn tiny_windows_score_but_do_not_alarm() {
        let data = toy_dataset(0.0, 200);
        let mut monitor = DriftMonitor::new(FeatureReference::from_dataset(&data));
        for row in toy_dataset(40.0, 5).rows() {
            monitor.observe(0, row);
        }
        monitor.finish();
        assert_eq!(monitor.hours().len(), 1);
        assert!(monitor.hours()[0].psi[0] > 0.0);
        assert!(monitor.alarms().is_empty(), "5-row window alarmed");
    }

    #[test]
    fn top_features_ranks_by_magnitude() {
        let mut attributions = [0.0f64; FEATURE_COUNT];
        attributions[3] = -0.4;
        attributions[10] = 0.1;
        attributions[20] = 0.25;
        let e = VerdictExplanation {
            seq: 0,
            hour: 0,
            spam: true,
            score: 0.9,
            margin: 0.8,
            baseline: 0.5,
            attributions,
        };
        let top: Vec<usize> = e.top_features(2).into_iter().map(|(f, _)| f).collect();
        assert_eq!(top, vec![3, 20]);
        assert_eq!(e.top_features(50).len(), 3, "zeros must be skipped");
    }

    #[test]
    fn nan_rows_bin_deterministically() {
        let data = toy_dataset(0.0, 100);
        let reference = FeatureReference::from_dataset(&data);
        let (lo, hi) = reference.bounds[0];
        assert_eq!(bin_of(lo, hi, f64::NAN), 1);
        assert_eq!(bin_of(lo, hi, f64::NEG_INFINITY), 0);
        assert_eq!(bin_of(lo, hi, f64::INFINITY), DRIFT_BINS - 1);
    }
}
