//! The 58-feature extraction of §IV-A: 16 sender-profile + 16
//! receiver-profile + 8 content + 18 behavioral features per collected
//! tweet.
//!
//! The extractor is *streaming*: behavioral aggregates (tweet/source
//! distributions, average intervals, reciprocity) are computed from the
//! tweets observed so far, exactly as an online monitor would, and the
//! environment score `f_score` updates as spam verdicts arrive
//! ("both `P_attr` and `f_score` will be updated once new spams are found").

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use ph_exec::ExecConfig;
use ph_twitter_sim::engine::RestApi;
use ph_twitter_sim::{AccountId, Profile, SimTime, Tweet, TweetKind};
use serde::{Deserialize, Serialize};

use crate::attributes::SampleAttribute;
use crate::monitor::CollectedTweet;

/// Total number of features.
pub const FEATURE_COUNT: usize = 58;

/// Default τ — the environment score assigned while an attribute group has
/// produced no spam yet.
pub const DEFAULT_TAU: f64 = 0.01;

/// Sentinel mention time (minutes) when a tweet carries no reaction
/// context; one full day, i.e. "slower than any real reaction we track".
pub const MENTION_TIME_SENTINEL: f64 = 1_440.0;

/// Names of all 58 features, in vector order.
pub fn feature_names() -> [&'static str; FEATURE_COUNT] {
    [
        // Sender profile (16).
        "s_friends",
        "s_followers",
        "s_age_days",
        "s_statuses",
        "s_statuses_per_day",
        "s_lists",
        "s_lists_per_day",
        "s_favorites_per_day",
        "s_favorites",
        "s_verified",
        "s_default_image",
        "s_screen_name_len",
        "s_display_name_len",
        "s_description_len",
        "s_description_emoji",
        "s_description_digits",
        // Receiver profile (16).
        "r_friends",
        "r_followers",
        "r_age_days",
        "r_statuses",
        "r_statuses_per_day",
        "r_lists",
        "r_lists_per_day",
        "r_favorites_per_day",
        "r_favorites",
        "r_verified",
        "r_default_image",
        "r_screen_name_len",
        "r_display_name_len",
        "r_description_len",
        "r_description_emoji",
        "r_description_digits",
        // Content (8).
        "c_repeated",
        "c_kind",
        "c_source",
        "c_hashtag_count",
        "c_mention_count",
        "c_length",
        "c_emoji_count",
        "c_digit_count",
        // Behavior (18).
        "b_reciprocity",
        "b_s_tweet_frac",
        "b_s_retweet_frac",
        "b_s_quote_frac",
        "b_r_tweet_frac",
        "b_r_retweet_frac",
        "b_r_quote_frac",
        "b_s_src_web",
        "b_s_src_mobile",
        "b_s_src_third",
        "b_s_src_other",
        "b_r_src_web",
        "b_r_src_mobile",
        "b_r_src_third",
        "b_r_src_other",
        "b_mention_time",
        "b_avg_tweet_interval",
        "b_environment_score",
    ]
}

/// Rolling per-account aggregates over the monitored stream.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
struct AccountStats {
    kind_counts: [u64; 3],
    source_counts: [u64; 4],
    /// Number of observed tweets.
    count: u64,
    /// Timestamp of the most recent observed tweet.
    last_at: Option<SimTime>,
    /// Sum of gaps between consecutive tweets, in minutes.
    gap_sum_minutes: f64,
    /// Number of gaps summed.
    gap_count: u64,
}

impl AccountStats {
    fn observe(&mut self, tweet: &Tweet) {
        self.kind_counts[kind_index(tweet.kind)] += 1;
        self.source_counts[tweet.source.index()] += 1;
        if let Some(last) = self.last_at {
            self.gap_sum_minutes += tweet.created_at.minutes_since(last) as f64;
            self.gap_count += 1;
        }
        self.last_at = Some(tweet.created_at);
        self.count += 1;
    }

    fn kind_fractions(&self) -> [f64; 3] {
        fractions3(&self.kind_counts)
    }

    fn source_fractions(&self) -> [f64; 4] {
        fractions4(&self.source_counts)
    }

    fn average_interval_minutes(&self) -> f64 {
        if self.gap_count == 0 {
            0.0
        } else {
            self.gap_sum_minutes / self.gap_count as f64
        }
    }
}

fn kind_index(kind: TweetKind) -> usize {
    match kind {
        TweetKind::Original => 0,
        TweetKind::Retweet => 1,
        TweetKind::Quote => 2,
    }
}

fn fractions3(counts: &[u64; 3]) -> [f64; 3] {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return [0.0; 3];
    }
    [
        counts[0] as f64 / total as f64,
        counts[1] as f64 / total as f64,
        counts[2] as f64 / total as f64,
    ]
}

fn fractions4(counts: &[u64; 4]) -> [f64; 4] {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return [0.0; 4];
    }
    let mut out = [0.0; 4];
    for (o, &c) in out.iter_mut().zip(counts) {
        *o = c as f64 / total as f64;
    }
    out
}

/// The group-likelihood environment score of §IV-A: per selection slot,
/// `p_i` = spams found / tweets collected, with τ while no spam is known.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnvironmentScore {
    tau: f64,
    stats: HashMap<SampleAttribute, (u64, u64)>,
}

impl EnvironmentScore {
    /// Creates an empty score table with the given τ.
    pub fn new(tau: f64) -> Self {
        Self {
            tau,
            stats: HashMap::new(),
        }
    }

    /// Records one verdict for a slot (spam or not).
    pub fn record(&mut self, slot: SampleAttribute, is_spam: bool) {
        let entry = self.stats.entry(slot).or_insert((0, 0));
        entry.1 += 1;
        if is_spam {
            entry.0 += 1;
        }
    }

    /// The score for a slot: its group likelihood if spam has been seen
    /// there, τ otherwise.
    pub fn score(&self, slot: &SampleAttribute) -> f64 {
        match self.stats.get(slot) {
            Some(&(spams, total)) if spams > 0 && total > 0 => spams as f64 / total as f64,
            _ => self.tau,
        }
    }

    /// The configured τ.
    pub fn tau(&self) -> f64 {
        self.tau
    }
}

impl Default for EnvironmentScore {
    fn default() -> Self {
        Self::new(DEFAULT_TAU)
    }
}

/// Streaming 58-feature extractor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureExtractor {
    sender: HashMap<AccountId, AccountStats>,
    receiver: HashMap<AccountId, AccountStats>,
    /// Conversation counts per unordered account pair.
    pairs: HashMap<(u32, u32), u64>,
    /// Seen-content fingerprints (normalized text hash → count).
    seen_texts: HashMap<u64, u64>,
    env: EnvironmentScore,
}

impl FeatureExtractor {
    /// Creates an extractor with the default τ.
    pub fn new() -> Self {
        Self::with_tau(DEFAULT_TAU)
    }

    /// Creates an extractor with an explicit τ.
    pub fn with_tau(tau: f64) -> Self {
        Self {
            sender: HashMap::new(),
            receiver: HashMap::new(),
            pairs: HashMap::new(),
            seen_texts: HashMap::new(),
            env: EnvironmentScore::new(tau),
        }
    }

    /// Extracts the 58-feature vector for one collected tweet, then folds
    /// the tweet into the rolling aggregates. Must be called in stream
    /// order.
    ///
    /// Equivalent to [`pure_features`] followed by
    /// [`FeatureExtractor::finish`] — the split the sharded pipeline uses
    /// to move the profile/content work onto worker threads.
    pub fn extract(&mut self, collected: &CollectedTweet, rest: &RestApi<'_>) -> Vec<f64> {
        self.finish(collected, pure_features(collected, rest))
    }

    /// Completes a [`PureFeatures`] vector into the full 58-feature vector
    /// by filling the stream-order-dependent slots (repeated-content flag,
    /// reciprocity, kind/source distributions, average interval,
    /// environment score), then folds the tweet into the rolling
    /// aggregates. Must be called in stream order with the same
    /// `collected` the pure phase saw.
    pub fn finish(&mut self, collected: &CollectedTweet, pure: PureFeatures) -> Vec<f64> {
        let mut features = pure.0.to_vec();
        self.finish_into(collected, &mut features);
        features
    }

    /// [`finish`](Self::finish) operating **in place** on a row that
    /// already holds the pure phase (e.g. a [`FeatureMatrix`] row): fills
    /// the stream-order-dependent slots and folds the tweet into the
    /// rolling aggregates without allocating a per-tweet vector.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `features.len() != FEATURE_COUNT`.
    pub fn finish_into(&mut self, collected: &CollectedTweet, features: &mut [f64]) {
        // Counter only — a span per tweet would dominate the extractor's
        // own cost in the inner loop; stage timing wraps the batch callers.
        ph_telemetry::cached_counter!("features.vectors_extracted").inc();
        let tweet = &collected.tweet;
        let sender_id = tweet.author;
        let receiver_id = (collected.node != sender_id).then_some(collected.node);

        debug_assert_eq!(features.len(), FEATURE_COUNT);

        let text_key = hash_text(&tweet.text);
        let repeated = self.seen_texts.get(&text_key).copied().unwrap_or(0) > 0;
        features[32] = if repeated { 1.0 } else { 0.0 };

        let reciprocity = receiver_id
            .map(|r| {
                self.pairs
                    .get(&pair_key(sender_id, r))
                    .copied()
                    .unwrap_or(0)
            })
            .unwrap_or(0);
        features[40] = reciprocity as f64;
        let s_stats = self.sender.entry(sender_id).or_default().clone();
        let r_stats = receiver_id
            .map(|r| self.receiver.entry(r).or_default().clone())
            .unwrap_or_default();
        features[41..44].copy_from_slice(&s_stats.kind_fractions());
        features[44..47].copy_from_slice(&r_stats.kind_fractions());
        features[47..51].copy_from_slice(&s_stats.source_fractions());
        features[51..55].copy_from_slice(&r_stats.source_fractions());
        features[56] = s_stats.average_interval_minutes();
        features[57] = self.env.score(&collected.slot);

        // Fold this tweet into the rolling state.
        *self.seen_texts.entry(text_key).or_insert(0) += 1;
        self.sender.entry(sender_id).or_default().observe(tweet);
        if let Some(r) = receiver_id {
            self.receiver.entry(r).or_default().observe(tweet);
            *self.pairs.entry(pair_key(sender_id, r)).or_insert(0) += 1;
        }
    }

    /// Feeds a spam verdict back into the environment score (call after the
    /// labeling pipeline or detector decides).
    pub fn record_verdict(&mut self, slot: SampleAttribute, is_spam: bool) {
        self.env.record(slot, is_spam);
    }

    /// The live environment-score table.
    pub fn environment(&self) -> &EnvironmentScore {
        &self.env
    }
}

impl Default for FeatureExtractor {
    fn default() -> Self {
        Self::new()
    }
}

/// The order-independent slice of a feature vector: sender/receiver
/// profiles, content shape, and mention time computed; every
/// stream-order-dependent slot left at 0.0 for
/// [`FeatureExtractor::finish`] to fill. Because [`pure_features`] reads
/// only the tweet and the REST facade — never extractor state — it can run
/// on any worker thread in any order.
///
/// Stored as a fixed `[f64; 58]` array: the pure phase performs **zero**
/// heap allocations per tweet (the old `Vec` layout paid one per vector),
/// which is what drops `prof.alloc.features.pure` from one-per-tweet to a
/// couple per exec chunk.
#[derive(Debug, Clone, PartialEq)]
pub struct PureFeatures(pub(crate) [f64; FEATURE_COUNT]);

impl PureFeatures {
    /// The 58 values in feature order.
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }
}

/// Computes the pure (stateless) phase of feature extraction for one
/// collected tweet. See [`PureFeatures`].
pub fn pure_features(collected: &CollectedTweet, rest: &RestApi<'_>) -> PureFeatures {
    let mut features = [0.0f64; FEATURE_COUNT];
    fill_pure_features(collected, rest, &mut features);
    PureFeatures(features)
}

/// Writes the pure phase into a caller-owned row (every slot is assigned,
/// so rows may be reused without re-zeroing).
fn fill_pure_features(collected: &CollectedTweet, rest: &RestApi<'_>, features: &mut [f64]) {
    debug_assert_eq!(features.len(), FEATURE_COUNT);
    let tweet = &collected.tweet;
    let sender_id = tweet.author;
    // Receiver = the crossed node when the tweet mentions it; a node's
    // own post has no receiver in the paper's sense.
    let receiver_id = (collected.node != sender_id).then_some(collected.node);

    // Sender profile (16).
    match rest.profile(sender_id) {
        Some(p) => write_profile(&mut features[0..16], p),
        None => features[0..16].fill(0.0),
    }
    // Receiver profile (16).
    match receiver_id.and_then(|id| rest.profile(id)) {
        Some(p) => write_profile(&mut features[16..32], p),
        None => features[16..32].fill(0.0),
    }

    // Content (8) — c_repeated (index 32) needs the seen-texts table.
    features[32] = 0.0;
    features[33] = kind_index(tweet.kind) as f64;
    features[34] = tweet.source.index() as f64;
    features[35] = tweet.hashtags.len() as f64;
    features[36] = tweet.mentions.len() as f64;
    features[37] = tweet.content_length() as f64;
    features[38] = tweet.emoji_count() as f64;
    features[39] = tweet.digit_count() as f64;

    // Behavior (18) — reciprocity (40) and the kind/source distributions
    // (41..55) are rolling aggregates; only mention time (55) is pure.
    features[40..55].fill(0.0);
    features[55] = match tweet.reacted_to_post_at {
        Some(t) => tweet.created_at.minutes_since(t) as f64,
        None => MENTION_TIME_SENTINEL,
    };
    features[56] = 0.0; // b_avg_tweet_interval
    features[57] = 0.0; // b_environment_score
}

/// Runs the pure extraction phase over a whole batch, sharded across
/// `exec`'s workers; output order matches `collected` order, so
/// `pure_batch(..)` zipped with [`FeatureExtractor::finish`] in stream
/// order reproduces per-tweet [`FeatureExtractor::extract`] exactly.
///
/// The stage is pure and CPU-heavy, so it declares
/// [`ph_exec::StageWeight::CpuBound`]: records deal round-robin across
/// every worker instead of collapsing onto the author-hash shards.
pub fn pure_batch(
    collected: &[CollectedTweet],
    rest: &RestApi<'_>,
    exec: &ExecConfig,
) -> Vec<PureFeatures> {
    let rest = *rest;
    ph_exec::run_weighted(
        exec,
        "features.pure",
        ph_exec::StageWeight::CpuBound,
        collected.iter().collect(),
        |c: &&CollectedTweet| u64::from(c.tweet.author.0),
        |_worker| move |c: &CollectedTweet| pure_features(c, &rest),
    )
}

/// A contiguous row-major feature matrix: `rows × FEATURE_COUNT` values in
/// one allocation, the columnar block the batch classifier kernels consume
/// without per-row pointer chasing.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FeatureMatrix {
    data: Vec<f64>,
    rows: usize,
}

impl FeatureMatrix {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// True when the matrix holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// One row as a feature slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * FEATURE_COUNT..(i + 1) * FEATURE_COUNT]
    }

    /// One row, mutable (the in-place target of
    /// [`FeatureExtractor::finish_into`]).
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * FEATURE_COUNT..(i + 1) * FEATURE_COUNT]
    }

    /// The whole matrix as one contiguous slice.
    pub fn data(&self) -> &[f64] {
        &self.data
    }
}

/// [`pure_batch`] assembled into one contiguous [`FeatureMatrix`]: a single
/// batch-sized allocation instead of one `Vec` per tweet.
pub fn pure_batch_matrix(
    collected: &[CollectedTweet],
    rest: &RestApi<'_>,
    exec: &ExecConfig,
) -> FeatureMatrix {
    let pure = pure_batch(collected, rest, exec);
    let mut data = Vec::with_capacity(pure.len() * FEATURE_COUNT);
    for p in &pure {
        data.extend_from_slice(&p.0);
    }
    FeatureMatrix {
        data,
        rows: pure.len(),
    }
}

fn write_profile(out: &mut [f64], p: &Profile) {
    out[0] = p.friends_count as f64;
    out[1] = p.followers_count as f64;
    out[2] = f64::from(p.account_age_days);
    out[3] = p.statuses_count as f64;
    out[4] = p.statuses_per_day();
    out[5] = p.lists_count as f64;
    out[6] = p.lists_per_day();
    out[7] = p.favorites_per_day();
    out[8] = p.favorites_count as f64;
    out[9] = if p.verified { 1.0 } else { 0.0 };
    out[10] = if p.default_profile_image { 1.0 } else { 0.0 };
    out[11] = p.screen_name.chars().count() as f64;
    out[12] = p.display_name.chars().count() as f64;
    out[13] = p.description.chars().count() as f64;
    out[14] = p.description.chars().filter(|c| !c.is_ascii()).count() as f64;
    out[15] = p.description.chars().filter(char::is_ascii_digit).count() as f64;
}

fn pair_key(a: AccountId, b: AccountId) -> (u32, u32) {
    if a.0 <= b.0 {
        (a.0, b.0)
    } else {
        (b.0, a.0)
    }
}

fn hash_text(text: &str) -> u64 {
    let mut hasher = DefaultHasher::new();
    text.hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::{ProfileAttribute, SampleAttribute};
    use crate::monitor::{CollectedTweet, TweetCategory};
    use ph_twitter_sim::engine::{Engine, SimConfig};
    use ph_twitter_sim::{TweetId, TweetSource};

    fn engine() -> Engine {
        Engine::new(SimConfig {
            seed: 3,
            num_organic: 50,
            num_campaigns: 1,
            accounts_per_campaign: 3,
            ..Default::default()
        })
    }

    fn slot() -> SampleAttribute {
        SampleAttribute::profile(ProfileAttribute::FriendsCount, 100.0)
    }

    fn collected(author: u32, node: u32, minute: u64, text: &str) -> CollectedTweet {
        let tweet = Tweet::observed(
            TweetId(minute),
            AccountId(author),
            SimTime::from_minutes(minute),
            TweetKind::Original,
            TweetSource::ThirdParty,
            text.to_string(),
            vec!["tech_0".into()],
            vec![AccountId(node)],
            vec![],
            Some(SimTime::from_minutes(minute.saturating_sub(3))),
        );
        CollectedTweet {
            tweet,
            category: TweetCategory::MentionOfNode,
            node: AccountId(node),
            slot: slot(),
            hour: minute / 60,
        }
    }

    #[test]
    fn feature_vector_has_58_named_features() {
        assert_eq!(feature_names().len(), FEATURE_COUNT);
        let e = engine();
        let mut fx = FeatureExtractor::new();
        let v = fx.extract(&collected(1, 2, 100, "hello world"), &e.rest());
        assert_eq!(v.len(), FEATURE_COUNT);
        assert!(v.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn repeated_content_flag_flips_on_second_sight() {
        let e = engine();
        let mut fx = FeatureExtractor::new();
        let v1 = fx.extract(&collected(1, 2, 100, "same text"), &e.rest());
        let v2 = fx.extract(&collected(3, 2, 105, "same text"), &e.rest());
        assert_eq!(v1[32], 0.0, "first sighting should not be repeated");
        assert_eq!(v2[32], 1.0, "second sighting should be repeated");
    }

    #[test]
    fn reciprocity_counts_prior_conversations() {
        let e = engine();
        let mut fx = FeatureExtractor::new();
        let first = fx.extract(&collected(1, 2, 100, "a"), &e.rest());
        let second = fx.extract(&collected(1, 2, 110, "b"), &e.rest());
        let third = fx.extract(&collected(2, 1, 120, "c"), &e.rest());
        assert_eq!(first[40], 0.0);
        assert_eq!(second[40], 1.0);
        // Pair key is unordered: the reply sees both prior tweets.
        assert_eq!(third[40], 2.0);
    }

    #[test]
    fn mention_time_is_reaction_gap() {
        let e = engine();
        let mut fx = FeatureExtractor::new();
        let v = fx.extract(&collected(1, 2, 100, "x"), &e.rest());
        assert_eq!(v[55], 3.0, "mention time should be the reaction gap");
    }

    #[test]
    fn average_interval_tracks_sender_gaps() {
        let e = engine();
        let mut fx = FeatureExtractor::new();
        fx.extract(&collected(1, 2, 100, "a"), &e.rest());
        fx.extract(&collected(1, 2, 110, "b"), &e.rest());
        let v = fx.extract(&collected(1, 2, 130, "c"), &e.rest());
        // Gaps so far: 10 → average 10.
        assert_eq!(v[56], 10.0);
    }

    #[test]
    fn environment_score_starts_at_tau_and_updates() {
        let e = engine();
        let mut fx = FeatureExtractor::with_tau(0.05);
        let v1 = fx.extract(&collected(1, 2, 100, "a"), &e.rest());
        assert_eq!(v1[57], 0.05);
        fx.record_verdict(slot(), true);
        fx.record_verdict(slot(), false);
        let v2 = fx.extract(&collected(3, 2, 140, "b"), &e.rest());
        assert!((v2[57] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn source_distribution_accumulates() {
        let e = engine();
        let mut fx = FeatureExtractor::new();
        fx.extract(&collected(1, 2, 100, "a"), &e.rest());
        let v = fx.extract(&collected(1, 2, 110, "b"), &e.rest());
        // The one prior tweet was ThirdParty → sender source dist = [0,0,1,0].
        assert_eq!(&v[47..51], &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn pure_batch_plus_finish_matches_extract_at_any_thread_count() {
        let e = engine();
        let batch: Vec<CollectedTweet> = (0u32..40)
            .map(|i| {
                collected(
                    i % 7,
                    (i % 5) + 10,
                    100 + u64::from(i) * 7,
                    &format!("text number {}", i % 9),
                )
            })
            .collect();
        let mut seq_fx = FeatureExtractor::new();
        let expected: Vec<Vec<f64>> = batch.iter().map(|c| seq_fx.extract(c, &e.rest())).collect();
        for threads in [1, 4] {
            let exec = ExecConfig::with_threads(threads);
            let pure = pure_batch(&batch, &e.rest(), &exec);
            let mut fx = FeatureExtractor::new();
            let got: Vec<Vec<f64>> = batch
                .iter()
                .zip(pure)
                .map(|(c, p)| fx.finish(c, p))
                .collect();
            assert_eq!(got, expected, "{threads}-thread pure phase diverged");
        }
    }

    #[test]
    fn node_own_activity_has_zero_receiver_block() {
        let e = engine();
        let mut fx = FeatureExtractor::new();
        let mut c = collected(2, 2, 100, "self post");
        c.category = TweetCategory::NodeActivity;
        c.tweet.mentions.clear();
        let v = fx.extract(&c, &e.rest());
        assert!(v[16..32].iter().all(|&x| x == 0.0));
    }
}
