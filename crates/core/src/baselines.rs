//! Comparison baselines: the random-account *non pseudo-honeypot* group and
//! a simulated traditional honeypot, plus the published Table VII rows.

use ph_sketch::GrayImage;
use ph_twitter_sim::account::{Account, AccountKind, Behavior};
use ph_twitter_sim::engine::Engine;
use ph_twitter_sim::{AccountId, Profile, TopicCategory};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::attributes::SampleAttribute;
use crate::monitor::{MonitorReport, Runner, RunnerConfig};
use crate::network::{NodeAssignment, PseudoHoneypotNetwork};
use crate::selection::select_random_network;

/// Runs the *non pseudo-honeypot* baseline: `nodes` random accounts,
/// re-drawn every switch interval, monitored for `hours`.
pub fn run_random_baseline(
    engine: &mut Engine,
    nodes: usize,
    hours: u64,
    seed: u64,
) -> MonitorReport {
    let runner = Runner::new(RunnerConfig {
        slots: Vec::new(),
        switch_interval_hours: 1,
        seed,
        ..Default::default()
    });
    runner.run_with_networks(engine, hours, |engine, round| {
        select_random_network(engine, nodes, seed.wrapping_add(round))
    })
}

/// A simulated traditional honeypot deployment: freshly created artificial
/// accounts with honeypot-typical profiles (young age, modest counts,
/// benign chatter) registered into the live network.
///
/// This is the paper's contrast class: honeypots cannot inherit an
/// attractive history — account age, list presence and follower mass must
/// be accumulated the slow way — which is exactly why their PGE is low.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HoneypotDeployment {
    /// Ids of the deployed honeypot accounts.
    pub accounts: Vec<AccountId>,
}

impl HoneypotDeployment {
    /// Creates `count` honeypot accounts inside the engine.
    pub fn deploy(engine: &mut Engine, count: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let accounts = (0..count)
            .map(|i| {
                let account = honeypot_account(&mut rng, i);
                engine.add_account(account)
            })
            .collect();
        Self { accounts }
    }

    /// Monitors the fixed honeypot set for `hours` (honeypots do not
    /// switch — that is the point).
    pub fn run(&self, engine: &mut Engine, hours: u64) -> MonitorReport {
        let slot = SampleAttribute::hashtag(None);
        let network = PseudoHoneypotNetwork::new(
            self.accounts
                .iter()
                .map(|&account| NodeAssignment { account, slot })
                .collect(),
            Vec::new(),
        );
        let runner = Runner::new(RunnerConfig {
            slots: Vec::new(),
            switch_interval_hours: u64::MAX, // never switch
            seed: 0,
            ..Default::default()
        });
        runner.run_with_networks(engine, hours, |_, _| network.clone())
    }
}

/// One honeypot account: the profile a fresh manual deployment can actually
/// have (the paper's honeypot literature uses young, modestly connected
/// accounts that post generated content).
fn honeypot_account(rng: &mut StdRng, index: usize) -> Account {
    let age = rng.random_range(1..30);
    Account {
        profile: Profile {
            id: AccountId(0), // assigned by the engine
            screen_name: format!("honeypot_{index:03}"),
            display_name: format!("hp{index}"),
            description: "just here to chat".into(),
            friends_count: rng.random_range(20..300),
            followers_count: rng.random_range(0..50),
            account_age_days: age,
            lists_count: 0,
            favorites_count: rng.random_range(0..100),
            statuses_count: rng.random_range(10..500),
            verified: false,
            default_profile_image: rng.random_bool(0.3),
            profile_image: GrayImage::from_fn(24, 24, |_, _| rng.random()),
        },
        behavior: Behavior {
            posts_per_hour: rng.random_range(0.3..1.0),
            mention_probability: 0.1,
            reaction_latency_minutes: 240.0,
            source_weights: [0.1, 0.1, 0.7, 0.1], // scripted posting
            retweet_probability: 0.3,
            quote_probability: 0.05,
            interests: vec![*TopicCategory::ALL.choose(rng).expect("non-empty")],
            spam_attempts_per_hour: 0.0,
            spam_flavor: None,
        },
        kind: AccountKind::Organic,
    }
}

/// One Table VII row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonRow {
    /// System name.
    pub name: String,
    /// Publication/experiment year.
    pub year: u32,
    /// Running duration, as reported.
    pub duration: String,
    /// Number of honeypot (or pseudo-honeypot) nodes.
    pub nodes: u64,
    /// Spams garnered, when reported.
    pub spams: Option<u64>,
    /// Spammers garnered, when reported.
    pub spammers: Option<u64>,
    /// PGE (spammers per node per hour).
    pub pge: f64,
}

/// The published honeypot rows of Table VII (constants from the paper).
pub fn published_rows() -> Vec<ComparisonRow> {
    vec![
        ComparisonRow {
            name: "Stringhini et al. [27]".into(),
            year: 2010,
            duration: "11 months".into(),
            nodes: 300,
            spams: None,
            spammers: Some(15_857),
            pge: 0.0067,
        },
        ComparisonRow {
            name: "Lee et al. [17]".into(),
            year: 2011,
            duration: "7 months".into(),
            nodes: 60,
            spams: None,
            spammers: Some(36_000),
            pge: 0.12,
        },
        ComparisonRow {
            name: "Yang et al. [38]".into(),
            year: 2014,
            duration: "5 months".into(),
            nodes: 96,
            spams: Some(17_000),
            spammers: Some(1_159),
            pge: 0.0034,
        },
        ComparisonRow {
            name: "Yang et al. [38] advanced".into(),
            year: 2014,
            duration: "10 days".into(),
            nodes: 10,
            spams: None,
            spammers: None,
            pge: 0.087,
        },
    ]
}

/// The paper's own advanced-system row (Table VII reference values).
pub fn paper_advanced_row() -> ComparisonRow {
    ComparisonRow {
        name: "Advanced pseudo-honeypot (paper)".into(),
        year: 2018,
        duration: "100 hours".into(),
        nodes: 100,
        spams: Some(339_553),
        spammers: Some(17_336),
        pge: 1.7336,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ph_twitter_sim::engine::SimConfig;

    fn engine() -> Engine {
        Engine::new(SimConfig {
            seed: 81,
            num_organic: 500,
            num_campaigns: 3,
            accounts_per_campaign: 8,
            ..Default::default()
        })
    }

    #[test]
    fn random_baseline_collects_something() {
        let mut e = engine();
        let report = run_random_baseline(&mut e, 50, 10, 1);
        assert_eq!(report.hours, 10);
        assert!(!report.collected.is_empty());
    }

    #[test]
    fn honeypot_deployment_registers_accounts() {
        let mut e = engine();
        let before = e.rest().num_accounts();
        let hp = HoneypotDeployment::deploy(&mut e, 20, 2);
        assert_eq!(e.rest().num_accounts(), before + 20);
        assert_eq!(hp.accounts.len(), 20);
        for &id in &hp.accounts {
            let p = e.rest().profile(id).unwrap();
            assert!(p.account_age_days < 30, "honeypots must be fresh");
            assert_eq!(p.lists_count, 0);
        }
    }

    #[test]
    fn honeypot_run_monitors_fixed_set() {
        let mut e = engine();
        let hp = HoneypotDeployment::deploy(&mut e, 10, 3);
        let report = hp.run(&mut e, 8);
        assert_eq!(report.hours, 8);
        for c in &report.collected {
            assert!(hp.accounts.contains(&c.node));
        }
    }

    #[test]
    fn published_rows_match_paper_constants() {
        let rows = published_rows();
        assert_eq!(rows.len(), 4);
        assert!((rows[0].pge - 0.0067).abs() < 1e-9);
        assert!((rows[1].pge - 0.12).abs() < 1e-9);
        assert!((rows[2].pge - 0.0034).abs() < 1e-9);
        let paper = paper_advanced_row();
        assert!((paper.pge - 1.7336).abs() < 1e-9);
        // The paper's headline claim: ≥ 19× the best published honeypot.
        let best = rows.iter().map(|r| r.pge).fold(0.0, f64::max);
        assert!(paper.pge / best >= 14.0); // 1.7336 / 0.12 ≈ 14.4 vs Lee
        assert!(paper.pge / 0.087 >= 19.0); // ≥19× vs Yang's advanced system
    }
}
