//! Pass 1: suspended-account labeling.
//!
//! Twitter suspends accounts that violate its rules; the paper bootstraps
//! labeling from these flags. Note that "a suspended account is not
//! necessarily a spam account" — the simulator wrongly suspends a small
//! rate of organic accounts, and the later manual pass is what catches the
//! residue in the paper; here the pass faithfully labels *everything* a
//! suspension implies, mirroring the paper's rough first cut.

use std::collections::HashSet;

use ph_twitter_sim::engine::RestApi;
use ph_twitter_sim::AccountId;

use crate::labeling::{AccountLabel, LabelMethod, LabeledCollection, TweetLabel};
use crate::monitor::CollectedTweet;

/// Applies the suspended-account pass over unlabeled entries of `labels`.
///
/// Every author currently suspended becomes a spammer; all their collected
/// tweets become spam.
pub fn apply(collected: &[CollectedTweet], rest: &RestApi<'_>, labels: &mut LabeledCollection) {
    debug_assert_eq!(collected.len(), labels.tweet_labels.len());
    let _span = ph_telemetry::span("suspended");
    let mut suspended_authors: HashSet<AccountId> = HashSet::new();
    for c in collected {
        let author = c.tweet.author;
        if rest.is_suspended(author) {
            suspended_authors.insert(author);
        }
    }
    for (c, slot) in collected.iter().zip(labels.tweet_labels.iter_mut()) {
        if slot.is_none() && suspended_authors.contains(&c.tweet.author) {
            *slot = Some(TweetLabel {
                spam: true,
                method: LabelMethod::Suspended,
            });
        }
    }
    for author in suspended_authors {
        labels.account_labels.entry(author).or_insert(AccountLabel {
            spammer: true,
            method: LabelMethod::Suspended,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::{ProfileAttribute, SampleAttribute};
    use crate::monitor::{Runner, RunnerConfig};
    use ph_twitter_sim::engine::{Engine, SimConfig};

    #[test]
    fn suspended_authors_get_labeled() {
        let mut engine = Engine::new(SimConfig {
            seed: 21,
            num_organic: 400,
            num_campaigns: 3,
            accounts_per_campaign: 8,
            suspension_rate_per_hour: 0.2,
            ..Default::default()
        });
        let runner = Runner::new(RunnerConfig {
            slots: vec![SampleAttribute::profile(ProfileAttribute::ListsPerDay, 1.0)],
            ..Default::default()
        });
        let report = runner.run(&mut engine, 30);
        let mut labels = LabeledCollection {
            tweet_labels: vec![None; report.collected.len()],
            ..Default::default()
        };
        apply(&report.collected, &engine.rest(), &mut labels);
        // With an aggressive suspension rate some spammers must be caught.
        assert!(
            labels.num_spammers() > 0,
            "no suspended spammers found in 30h"
        );
        // Every label produced by this pass is attributed to it.
        for l in labels.tweet_labels.iter().flatten() {
            assert_eq!(l.method, LabelMethod::Suspended);
            assert!(l.spam);
        }
        // Tweets of suspended authors are all labeled.
        let rest = engine.rest();
        for (c, l) in report.collected.iter().zip(&labels.tweet_labels) {
            assert_eq!(rest.is_suspended(c.tweet.author), l.is_some());
        }
    }

    #[test]
    fn does_not_overwrite_existing_labels() {
        let engine = Engine::new(SimConfig {
            seed: 22,
            num_organic: 50,
            num_campaigns: 1,
            accounts_per_campaign: 2,
            ..Default::default()
        });
        let collected: Vec<CollectedTweet> = Vec::new();
        let mut labels = LabeledCollection::default();
        apply(&collected, &engine.rest(), &mut labels);
        assert!(labels.tweet_labels.is_empty());
        assert!(labels.account_labels.is_empty());
    }
}
