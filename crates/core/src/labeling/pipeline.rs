//! The full labeling pipeline in paper order, with Table III accounting.

use ph_exec::ExecConfig;
use ph_twitter_sim::engine::Engine;
use serde::{Deserialize, Serialize};

use crate::labeling::clustering::{self, ClusteringConfig};
use crate::labeling::manual::{self, ManualConfig};
use crate::labeling::rules::{self, RuleConfig};
use crate::labeling::{suspended, LabeledCollection, LabelingSummary};
use crate::monitor::CollectedTweet;

/// Configuration of the four passes.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Clustering thresholds.
    pub clustering: ClusteringConfig,
    /// Rule thresholds.
    pub rules: RuleConfig,
    /// Manual-checking parameters.
    pub manual: ManualConfig,
}

/// The pipeline's complete output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroundTruthDataset {
    /// Per-tweet / per-account labels.
    pub labels: LabeledCollection,
    /// Table III summary.
    pub summary: LabelingSummary,
}

/// Runs suspended → clustering → rule-based → manual over a collection.
///
/// The engine provides both the REST facade (public data: suspension flags,
/// profiles) and, for the manual pass only, the ground-truth oracle that
/// stands in for the paper's human checkers.
pub fn label_collection(
    collected: &[CollectedTweet],
    engine: &Engine,
    config: &PipelineConfig,
) -> GroundTruthDataset {
    label_collection_with(collected, engine, config, &ExecConfig::sequential())
}

/// [`label_collection`] with the clustering pass's sketch computation
/// sharded across `exec`'s workers; labels are identical to the
/// sequential run at any thread count.
pub fn label_collection_with(
    collected: &[CollectedTweet],
    engine: &Engine,
    config: &PipelineConfig,
    exec: &ExecConfig,
) -> GroundTruthDataset {
    let _span = ph_telemetry::span("label");
    let _phase = ph_trace::phase("label");
    ph_telemetry::cached_counter!("label.tweets_labeled").add(collected.len() as u64);
    let mut labels = LabeledCollection {
        tweet_labels: vec![None; collected.len()],
        ..Default::default()
    };
    let rest = engine.rest();
    // Journal one event per pass with how many tweets it newly labeled.
    // Labels are thread-count-invariant, so these events are
    // deterministic and persist into the store journal.
    let mut assigned_before = 0usize;
    let emit_pass = |labels: &LabeledCollection, pass: &str, before: &mut usize| {
        let now = labels.tweet_labels.iter().filter(|l| l.is_some()).count();
        ph_telemetry::journal_emit(ph_telemetry::TelemetryEvent::LabelingPass {
            pass: pass.to_string(),
            labeled: (now - *before) as u64,
        });
        *before = now;
    };
    {
        let _pass = ph_trace::phase("label.suspended");
        suspended::apply(collected, &rest, &mut labels);
    }
    emit_pass(&labels, "suspended", &mut assigned_before);
    {
        let _pass = ph_trace::phase("label.clustering");
        clustering::apply_with(collected, &rest, &config.clustering, exec, &mut labels);
    }
    emit_pass(&labels, "clustering", &mut assigned_before);
    {
        let _pass = ph_trace::phase("label.rules");
        rules::apply(collected, &rest, &config.rules, &mut labels);
    }
    emit_pass(&labels, "rules", &mut assigned_before);
    {
        let _pass = ph_trace::phase("label.manual");
        manual::apply(
            collected,
            &engine.ground_truth(),
            &config.manual,
            &mut labels,
        );
    }
    emit_pass(&labels, "manual", &mut assigned_before);
    let summary = LabelingSummary::from_labels(&labels, collected.len());
    GroundTruthDataset { labels, summary }
}

/// Labels a collection delivered record-by-record by a fallible stream —
/// e.g. `ph-store`'s segment-log reader during `replay`.
///
/// Labeling is inherently batch (clustering compares tweets across the
/// whole collection), so the stream is materialized once here and then
/// labeled exactly as [`label_collection`]; the value is that log-replay
/// callers get the buffering and error plumbing in one place. Returns the
/// materialized collection alongside the dataset, since downstream
/// training needs the tweets in the same order the labels refer to.
///
/// # Errors
///
/// Returns the stream's first error, before any labeling runs.
pub fn label_collection_stream<I, E>(
    stream: I,
    engine: &Engine,
    config: &PipelineConfig,
) -> Result<(Vec<CollectedTweet>, GroundTruthDataset), E>
where
    I: IntoIterator<Item = Result<CollectedTweet, E>>,
{
    label_collection_stream_with(stream, engine, config, &ExecConfig::sequential())
}

/// [`label_collection_stream`] with the clustering pass sharded across
/// `exec`'s workers (see [`label_collection_with`]).
///
/// # Errors
///
/// Returns the stream's first error, before any labeling runs.
pub fn label_collection_stream_with<I, E>(
    stream: I,
    engine: &Engine,
    config: &PipelineConfig,
    exec: &ExecConfig,
) -> Result<(Vec<CollectedTweet>, GroundTruthDataset), E>
where
    I: IntoIterator<Item = Result<CollectedTweet, E>>,
{
    let collected: Vec<CollectedTweet> = stream.into_iter().collect::<Result<_, E>>()?;
    let dataset = label_collection_with(&collected, engine, config, exec);
    Ok((collected, dataset))
}

/// Renders the Table III summary as aligned text rows.
pub fn format_table3(summary: &LabelingSummary) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Total tweets: {}   Total users: {}\n",
        summary.total_tweets, summary.total_users
    ));
    out.push_str(&format!(
        "{:<16} {:>10} {:>12} {:>12} {:>12}\n",
        "Categories", "# spams", "% tweets", "# spammers", "% users"
    ));
    for row in &summary.rows {
        out.push_str(&format!(
            "{:<16} {:>10} {:>12.2} {:>12} {:>12.2}\n",
            row.method.label(),
            row.spams,
            row.spam_pct_of_tweets,
            row.spammers,
            row.spammer_pct_of_users
        ));
    }
    out.push_str(&format!(
        "{:<16} {:>10} {:>12.2} {:>12} {:>12.2}\n",
        "Total",
        summary.total_spams,
        100.0 * summary.total_spams as f64 / summary.total_tweets.max(1) as f64,
        summary.total_spammers,
        100.0 * summary.total_spammers as f64 / summary.total_users.max(1) as f64,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::{ProfileAttribute, SampleAttribute};
    use crate::labeling::LabelMethod;
    use crate::monitor::{Runner, RunnerConfig};
    use ph_twitter_sim::engine::SimConfig;

    fn run_pipeline() -> (Engine, Vec<CollectedTweet>, GroundTruthDataset) {
        let mut engine = Engine::new(SimConfig {
            seed: 61,
            num_organic: 600,
            num_campaigns: 4,
            accounts_per_campaign: 8,
            suspension_rate_per_hour: 0.02,
            ..Default::default()
        });
        let runner = Runner::new(RunnerConfig {
            slots: vec![
                SampleAttribute::profile(ProfileAttribute::ListsPerDay, 1.0),
                SampleAttribute::profile(ProfileAttribute::FollowersCount, 10_000.0),
                SampleAttribute::profile(ProfileAttribute::FavoritesCount, 200_000.0),
            ],
            ..Default::default()
        });
        let report = runner.run(&mut engine, 40);
        let dataset = label_collection(&report.collected, &engine, &PipelineConfig::default());
        (engine, report.collected, dataset)
    }

    #[test]
    fn pipeline_labels_everything_with_full_coverage() {
        let (_, collected, dataset) = run_pipeline();
        assert!(!collected.is_empty());
        assert!(dataset.labels.tweet_labels.iter().all(Option::is_some));
        assert_eq!(dataset.summary.total_tweets, collected.len());
    }

    #[test]
    fn labels_are_accurate_against_ground_truth() {
        let (engine, collected, dataset) = run_pipeline();
        let gt = engine.ground_truth();
        let correct = collected
            .iter()
            .zip(&dataset.labels.tweet_labels)
            .filter(|(c, l)| l.unwrap().spam == gt.is_spam(&c.tweet))
            .count();
        let accuracy = correct as f64 / collected.len() as f64;
        assert!(
            accuracy > 0.95,
            "pipeline ground truth too noisy: {accuracy:.3}"
        );
    }

    #[test]
    fn multiple_methods_contribute() {
        let (_, _, dataset) = run_pipeline();
        let contributing = LabelMethod::ALL
            .iter()
            .filter(|&&m| {
                dataset.labels.spam_by_method(m) > 0 || dataset.labels.spammers_by_method(m) > 0
            })
            .count();
        assert!(
            contributing >= 2,
            "only {contributing} labeling methods contributed"
        );
    }

    #[test]
    fn summary_rows_are_in_paper_order() {
        let (_, _, dataset) = run_pipeline();
        let methods: Vec<LabelMethod> = dataset.summary.rows.iter().map(|r| r.method).collect();
        assert_eq!(methods, LabelMethod::ALL.to_vec());
    }

    #[test]
    fn streamed_labeling_equals_batch() {
        let (engine, collected, dataset) = run_pipeline();
        let stream = collected.iter().cloned().map(Ok::<_, std::io::Error>);
        let (streamed_collection, streamed) =
            label_collection_stream(stream, &engine, &PipelineConfig::default()).unwrap();
        assert_eq!(streamed_collection, collected);
        assert_eq!(streamed, dataset);
    }

    #[test]
    fn streamed_labeling_propagates_stream_errors() {
        let (engine, collected, _) = run_pipeline();
        let stream = collected
            .iter()
            .cloned()
            .map(Ok)
            .chain([Err(std::io::Error::other("torn log"))]);
        let result = label_collection_stream(stream, &engine, &PipelineConfig::default());
        assert_eq!(result.unwrap_err().to_string(), "torn log");
    }

    #[test]
    fn table3_formats() {
        let (_, _, dataset) = run_pipeline();
        let text = format_table3(&dataset.summary);
        assert!(text.contains("Suspended"));
        assert!(text.contains("Human Labeling"));
        assert!(text.contains("Total"));
    }

    use ph_twitter_sim::engine::Engine;
}
