//! Pass 3: rule-based labeling.
//!
//! The paper's 11 spam rules reduce, on this substrate, to the signals the
//! generator emits: blacklisted URLs (rule 1), repetitive content from one
//! author (rules 2/5), deceptive/phishing wording (rule 3), quick-money
//! wording (rule 6), adult content (rule 7), bot/API posting with malicious
//! intent and malicious promoters (rules 8/9). Non-spam seeds come from
//! verified ("truthful") accounts.

use std::collections::{HashMap, HashSet};

use ph_sketch::shingle::normalize;
use ph_twitter_sim::engine::RestApi;
use ph_twitter_sim::text::{
    is_malicious_url, ADULT_PHRASES, MONEY_PHRASES, PHISHING_PHRASES, PROMOTER_PHRASES,
};
use ph_twitter_sim::AccountId;
use serde::{Deserialize, Serialize};

use crate::labeling::{AccountLabel, LabelMethod, LabeledCollection, TweetLabel};
use crate::monitor::CollectedTweet;

/// Rule thresholds.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RuleConfig {
    /// An author repeating the same normalized text this many times is
    /// spamming (rules 2/5).
    pub repetition_threshold: usize,
    /// Treat verified accounts as non-spam seeds.
    pub seed_verified_accounts: bool,
}

impl Default for RuleConfig {
    fn default() -> Self {
        Self {
            repetition_threshold: 3,
            seed_verified_accounts: true,
        }
    }
}

/// Which rule fired for a tweet (diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpamRule {
    /// Rule 1: malicious URL.
    MaliciousUrl,
    /// Rules 2/5: repetitive content.
    Repetition,
    /// Rule 3: deceptive / phishing wording.
    Deception,
    /// Rule 6: quick-money wording.
    MoneyGain,
    /// Rule 7: adult content.
    AdultContent,
    /// Rules 9/10: malicious promoter wording.
    Promoter,
}

/// Diagnostics from one rule pass.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RuleReport {
    /// Spam tweets newly labeled, per rule.
    pub fired: HashMap<SpamRule, usize>,
    /// Non-spam tweets labeled via seed accounts.
    pub seeded_nonspam: usize,
}

/// Checks the text-level rules against a single tweet's content.
pub fn spam_rule_for(text: &str, urls: &[String]) -> Option<SpamRule> {
    if urls.iter().any(|u| is_malicious_url(u)) || is_malicious_url(text) {
        return Some(SpamRule::MaliciousUrl);
    }
    let lower = text.to_lowercase();
    let hit = |corpus: &[&str]| corpus.iter().any(|p| lower.contains(p));
    // Quoted/reported spam wording ("this ad says: …") is conversational,
    // not promotional — rules target the promotional form with a link or
    // direct phrasing; a quoting prefix exempts it.
    let quoting = lower.contains("says:");
    if !quoting {
        if hit(PHISHING_PHRASES) {
            return Some(SpamRule::Deception);
        }
        if hit(MONEY_PHRASES) {
            return Some(SpamRule::MoneyGain);
        }
        if hit(ADULT_PHRASES) {
            return Some(SpamRule::AdultContent);
        }
        if hit(PROMOTER_PHRASES) {
            return Some(SpamRule::Promoter);
        }
    }
    None
}

/// Applies the rule pass over unlabeled entries.
pub fn apply(
    collected: &[CollectedTweet],
    rest: &RestApi<'_>,
    config: &RuleConfig,
    labels: &mut LabeledCollection,
) -> RuleReport {
    debug_assert_eq!(collected.len(), labels.tweet_labels.len());
    let _span = ph_telemetry::span("rules");
    let mut report = RuleReport::default();

    // Repetition counts per (author, normalized text).
    let mut repeats: HashMap<(AccountId, u64), usize> = HashMap::new();
    for c in collected {
        let key = (c.tweet.author, text_key(&c.tweet.text));
        *repeats.entry(key).or_insert(0) += 1;
    }
    let repetitive_keys: HashSet<(AccountId, u64)> = repeats
        .into_iter()
        .filter(|&(_, n)| n >= config.repetition_threshold)
        .map(|(k, _)| k)
        .collect();

    let mut spam_authors: HashSet<AccountId> = HashSet::new();
    for (c, slot) in collected.iter().zip(labels.tweet_labels.iter_mut()) {
        if slot.is_some() {
            continue;
        }
        // Seed non-spam: verified authors are truthful seeds.
        let verified = config.seed_verified_accounts
            && rest.profile(c.tweet.author).is_some_and(|p| p.verified);
        if verified {
            *slot = Some(TweetLabel {
                spam: false,
                method: LabelMethod::RuleBased,
            });
            report.seeded_nonspam += 1;
            continue;
        }
        let rule = spam_rule_for(&c.tweet.text, &c.tweet.urls).or_else(|| {
            repetitive_keys
                .contains(&(c.tweet.author, text_key(&c.tweet.text)))
                .then_some(SpamRule::Repetition)
        });
        if let Some(rule) = rule {
            *slot = Some(TweetLabel {
                spam: true,
                method: LabelMethod::RuleBased,
            });
            *report.fired.entry(rule).or_insert(0) += 1;
            spam_authors.insert(c.tweet.author);
        }
    }
    for author in spam_authors {
        labels.account_labels.entry(author).or_insert(AccountLabel {
            spammer: true,
            method: LabelMethod::RuleBased,
        });
    }
    // Seed accounts become labeled non-spammers.
    if config.seed_verified_accounts {
        let mut authors: Vec<AccountId> = collected.iter().map(|c| c.tweet.author).collect();
        authors.sort_unstable();
        authors.dedup();
        for author in authors {
            if rest.profile(author).is_some_and(|p| p.verified) {
                labels.account_labels.entry(author).or_insert(AccountLabel {
                    spammer: false,
                    method: LabelMethod::RuleBased,
                });
            }
        }
    }
    report
}

fn text_key(text: &str) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h = DefaultHasher::new();
    normalize(text).hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn malicious_url_rule_fires() {
        let rule = spam_rule_for(
            "check this http://phish-login.example/zzz",
            &["http://phish-login.example/zzz".to_string()],
        );
        assert_eq!(rule, Some(SpamRule::MaliciousUrl));
    }

    #[test]
    fn money_rule_fires_without_url() {
        let rule = spam_rule_for("double your money in one week guaranteed", &[]);
        assert_eq!(rule, Some(SpamRule::MoneyGain));
    }

    #[test]
    fn adult_and_promoter_rules_fire() {
        assert_eq!(
            spam_rule_for("hot singles in your area waiting", &[]),
            Some(SpamRule::AdultContent)
        );
        assert_eq!(
            spam_rule_for("buy 10000 followers cheap instant delivery", &[]),
            Some(SpamRule::Promoter)
        );
    }

    #[test]
    fn phishing_rule_fires() {
        assert_eq!(
            spam_rule_for("security alert unusual login confirm password", &[]),
            Some(SpamRule::Deception)
        );
    }

    #[test]
    fn quoted_spam_wording_is_exempt() {
        assert_eq!(
            spam_rule_for(
                "lol this ad says: free money no strings attached claim now",
                &[]
            ),
            None
        );
    }

    #[test]
    fn benign_text_does_not_fire() {
        assert_eq!(spam_rule_for("lovely sunset at the beach today", &[]), None);
        assert_eq!(
            spam_rule_for("reading a book about coffee https://blog.example/x", &[]),
            None
        );
    }

    #[test]
    fn end_to_end_rule_pass_labels_payloads() {
        use crate::attributes::{ProfileAttribute, SampleAttribute};
        use crate::monitor::{Runner, RunnerConfig};
        use ph_twitter_sim::engine::{Engine, SimConfig};

        let mut engine = Engine::new(SimConfig {
            seed: 41,
            num_organic: 400,
            num_campaigns: 3,
            accounts_per_campaign: 8,
            ..Default::default()
        });
        let runner = Runner::new(RunnerConfig {
            slots: vec![SampleAttribute::profile(ProfileAttribute::ListsPerDay, 1.0)],
            ..Default::default()
        });
        let report = runner.run(&mut engine, 25);
        let mut labels = LabeledCollection {
            tweet_labels: vec![None; report.collected.len()],
            ..Default::default()
        };
        let rule_report = apply(
            &report.collected,
            &engine.rest(),
            &RuleConfig::default(),
            &mut labels,
        );
        let gt = engine.ground_truth();
        let true_spam = report
            .collected
            .iter()
            .filter(|c| gt.is_spam(&c.tweet))
            .count();
        if true_spam > 0 {
            assert!(
                labels.num_spam() > 0,
                "rules labeled nothing despite {true_spam} true spams (fired: {:?})",
                rule_report.fired
            );
            // Rule-labeled spam should be overwhelmingly true spam.
            let correct = report
                .collected
                .iter()
                .zip(&labels.tweet_labels)
                .filter(|(c, l)| l.is_some_and(|l| l.spam) && gt.is_spam(&c.tweet))
                .count();
            let precision = correct as f64 / labels.num_spam() as f64;
            assert!(precision > 0.9, "rule precision {precision:.2}");
        }
    }
}
