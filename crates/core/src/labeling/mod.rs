//! Ground-truth labeling (§IV-B): suspended-account check → clustering →
//! rule-based labeling → manual refinement, with Table III accounting.

pub mod clustering;
pub mod manual;
pub mod pipeline;
pub mod rules;
pub mod suspended;

use std::collections::HashMap;

use ph_twitter_sim::AccountId;
use serde::{Deserialize, Serialize};

/// Which pass produced a label — the rows of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum LabelMethod {
    /// Author account is suspended.
    Suspended,
    /// Campaign-cluster propagation.
    Clustering,
    /// Keyword/URL/seed-account rules.
    RuleBased,
    /// Simulated manual checking.
    Manual,
}

impl LabelMethod {
    /// All methods in Table III row order.
    pub const ALL: [LabelMethod; 4] = [
        LabelMethod::Suspended,
        LabelMethod::Clustering,
        LabelMethod::RuleBased,
        LabelMethod::Manual,
    ];

    /// Row label matching the paper.
    pub fn label(self) -> &'static str {
        match self {
            LabelMethod::Suspended => "Suspended",
            LabelMethod::Clustering => "Clustering",
            LabelMethod::RuleBased => "Rule Based",
            LabelMethod::Manual => "Human Labeling",
        }
    }
}

impl std::fmt::Display for LabelMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A tweet-level label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TweetLabel {
    /// Spam or ham.
    pub spam: bool,
    /// Which pass decided.
    pub method: LabelMethod,
}

/// An account-level label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccountLabel {
    /// Spammer or normal.
    pub spammer: bool,
    /// Which pass decided.
    pub method: LabelMethod,
}

/// The outcome of the full labeling pipeline over one collected dataset.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LabeledCollection {
    /// Per-tweet labels, parallel to the input collection (`None` when the
    /// manual pass was configured with partial coverage).
    pub tweet_labels: Vec<Option<TweetLabel>>,
    /// Account labels for every author observed.
    pub account_labels: HashMap<AccountId, AccountLabel>,
}

impl LabeledCollection {
    /// Number of tweets labeled spam.
    pub fn num_spam(&self) -> usize {
        self.tweet_labels
            .iter()
            .filter(|l| l.is_some_and(|l| l.spam))
            .count()
    }

    /// Number of accounts labeled spammer.
    pub fn num_spammers(&self) -> usize {
        self.account_labels.values().filter(|l| l.spammer).count()
    }

    /// Spam tweets attributed to one pass.
    pub fn spam_by_method(&self, method: LabelMethod) -> usize {
        self.tweet_labels
            .iter()
            .filter(|l| l.is_some_and(|l| l.spam && l.method == method))
            .count()
    }

    /// Spammer accounts attributed to one pass.
    pub fn spammers_by_method(&self, method: LabelMethod) -> usize {
        self.account_labels
            .values()
            .filter(|l| l.spammer && l.method == method)
            .count()
    }
}

/// One row of the Table III summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodRow {
    /// The pass.
    pub method: LabelMethod,
    /// Spam tweets first labeled by this pass.
    pub spams: usize,
    /// As a percentage of all collected tweets.
    pub spam_pct_of_tweets: f64,
    /// Spammer accounts first labeled by this pass.
    pub spammers: usize,
    /// As a percentage of all observed users.
    pub spammer_pct_of_users: f64,
}

/// The Table III summary: per-method yields plus totals.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LabelingSummary {
    /// Rows in Table III order.
    pub rows: Vec<MethodRow>,
    /// Total collected tweets.
    pub total_tweets: usize,
    /// Total observed users.
    pub total_users: usize,
    /// Total labeled spams.
    pub total_spams: usize,
    /// Total labeled spammers.
    pub total_spammers: usize,
}

impl LabelingSummary {
    /// Builds the summary from a labeled collection.
    pub fn from_labels(labels: &LabeledCollection, total_tweets: usize) -> Self {
        let total_users = labels.account_labels.len();
        let rows = LabelMethod::ALL
            .iter()
            .map(|&method| {
                let spams = labels.spam_by_method(method);
                let spammers = labels.spammers_by_method(method);
                MethodRow {
                    method,
                    spams,
                    spam_pct_of_tweets: pct(spams, total_tweets),
                    spammers,
                    spammer_pct_of_users: pct(spammers, total_users),
                }
            })
            .collect();
        Self {
            rows,
            total_tweets,
            total_users,
            total_spams: labels.num_spam(),
            total_spammers: labels.num_spammers(),
        }
    }
}

fn pct(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        100.0 * num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_labels_match_paper_rows() {
        let labels: Vec<&str> = LabelMethod::ALL.iter().map(|m| m.label()).collect();
        assert_eq!(
            labels,
            vec!["Suspended", "Clustering", "Rule Based", "Human Labeling"]
        );
    }

    #[test]
    fn collection_counting() {
        let mut c = LabeledCollection {
            tweet_labels: vec![
                Some(TweetLabel {
                    spam: true,
                    method: LabelMethod::Suspended,
                }),
                Some(TweetLabel {
                    spam: false,
                    method: LabelMethod::Manual,
                }),
                None,
            ],
            account_labels: HashMap::new(),
        };
        c.account_labels.insert(
            AccountId(1),
            AccountLabel {
                spammer: true,
                method: LabelMethod::Clustering,
            },
        );
        assert_eq!(c.num_spam(), 1);
        assert_eq!(c.num_spammers(), 1);
        assert_eq!(c.spam_by_method(LabelMethod::Suspended), 1);
        assert_eq!(c.spam_by_method(LabelMethod::Manual), 0);
        assert_eq!(c.spammers_by_method(LabelMethod::Clustering), 1);
    }

    #[test]
    fn summary_percentages() {
        let mut c = LabeledCollection {
            tweet_labels: vec![
                Some(TweetLabel {
                    spam: true,
                    method: LabelMethod::Suspended,
                }),
                Some(TweetLabel {
                    spam: false,
                    method: LabelMethod::Manual,
                }),
            ],
            ..Default::default()
        };
        c.account_labels.insert(
            AccountId(1),
            AccountLabel {
                spammer: true,
                method: LabelMethod::Suspended,
            },
        );
        c.account_labels.insert(
            AccountId(2),
            AccountLabel {
                spammer: false,
                method: LabelMethod::Manual,
            },
        );
        let s = LabelingSummary::from_labels(&c, 2);
        assert_eq!(s.total_spams, 1);
        assert_eq!(s.total_spammers, 1);
        let suspended = &s.rows[0];
        assert!((suspended.spam_pct_of_tweets - 50.0).abs() < 1e-12);
        assert!((suspended.spammer_pct_of_users - 50.0).abs() < 1e-12);
    }
}
