//! Pass 4: simulated manual checking.
//!
//! The paper spends two weeks of human effort refining the roughly labeled
//! data into a reliable ground truth. On a synthetic substrate the human is
//! replaced by a calibrated noisy oracle over the simulator's true labels:
//! it inspects the remaining unlabeled tweets (and optionally audits the
//! rough labels) and answers correctly with configurable accuracy.

use ph_twitter_sim::engine::GroundTruth;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::labeling::{AccountLabel, LabelMethod, LabeledCollection, TweetLabel};
use crate::monitor::CollectedTweet;

/// Manual-checking parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ManualConfig {
    /// Probability the human answers correctly per item.
    pub accuracy: f64,
    /// Fraction of remaining unlabeled tweets actually inspected.
    pub coverage: f64,
    /// Also audit (and possibly fix) labels produced by earlier passes —
    /// the paper's "manual checking … in the labeled dataset". Audited
    /// labels keep their original method attribution when confirmed.
    pub audit_rough_labels: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ManualConfig {
    fn default() -> Self {
        Self {
            // On a ham-dominated stream even small human error rates mint
            // hundreds of false spams; two careful weeks (the paper's
            // budget) warrant a low per-item error rate.
            accuracy: 0.995,
            coverage: 1.0,
            audit_rough_labels: true,
            seed: 97,
        }
    }
}

/// Applies the manual pass.
pub fn apply(
    collected: &[CollectedTweet],
    oracle: &GroundTruth<'_>,
    config: &ManualConfig,
    labels: &mut LabeledCollection,
) {
    debug_assert_eq!(collected.len(), labels.tweet_labels.len());
    let _span = ph_telemetry::span("manual");
    assert!(
        (0.0..=1.0).contains(&config.accuracy) && (0.0..=1.0).contains(&config.coverage),
        "accuracy and coverage must be probabilities"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);

    for (c, slot) in collected.iter().zip(labels.tweet_labels.iter_mut()) {
        match slot {
            None => {
                if config.coverage >= 1.0 || rng.random_bool(config.coverage) {
                    let truth = oracle.is_spam(&c.tweet);
                    let answer = if rng.random_bool(config.accuracy) {
                        truth
                    } else {
                        !truth
                    };
                    *slot = Some(TweetLabel {
                        spam: answer,
                        method: LabelMethod::Manual,
                    });
                }
            }
            Some(label) if config.audit_rough_labels => {
                let truth = oracle.is_spam(&c.tweet);
                if label.spam != truth && rng.random_bool(config.accuracy) {
                    // The human catches the rough-label mistake; the fix is
                    // attributed to manual checking.
                    *slot = Some(TweetLabel {
                        spam: truth,
                        method: LabelMethod::Manual,
                    });
                }
            }
            Some(_) => {}
        }
    }

    // Account-level: any author with a spam tweet is a spammer; remaining
    // unlabeled authors are checked directly.
    let mut authors: Vec<ph_twitter_sim::AccountId> =
        collected.iter().map(|c| c.tweet.author).collect();
    authors.sort_unstable();
    authors.dedup();
    for author in authors {
        if labels.account_labels.contains_key(&author) {
            continue;
        }
        // One noisy spam label is weak evidence; two or more is decisive.
        // Single-spam authors get a direct (noisy) human check — otherwise
        // every manual-pass labeling error would mint a phantom spammer.
        let spam_tweet_count = collected
            .iter()
            .zip(&labels.tweet_labels)
            .filter(|(c, l)| c.tweet.author == author && l.is_some_and(|l| l.spam))
            .count();
        let spammer = if spam_tweet_count >= 2 {
            true
        } else {
            let truth = oracle.is_spammer(author);
            if rng.random_bool(config.accuracy) {
                truth
            } else {
                !truth
            }
        };
        labels.account_labels.insert(
            author,
            AccountLabel {
                spammer,
                method: LabelMethod::Manual,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::{ProfileAttribute, SampleAttribute};
    use crate::monitor::{Runner, RunnerConfig};
    use ph_twitter_sim::engine::{Engine, SimConfig};

    fn monitored() -> (Engine, Vec<CollectedTweet>) {
        let mut engine = Engine::new(SimConfig {
            seed: 51,
            num_organic: 300,
            num_campaigns: 2,
            accounts_per_campaign: 6,
            ..Default::default()
        });
        let runner = Runner::new(RunnerConfig {
            slots: vec![SampleAttribute::profile(ProfileAttribute::ListsPerDay, 1.0)],
            ..Default::default()
        });
        let report = runner.run(&mut engine, 15);
        (engine, report.collected)
    }

    #[test]
    fn full_coverage_labels_everything() {
        let (engine, collected) = monitored();
        let mut labels = LabeledCollection {
            tweet_labels: vec![None; collected.len()],
            ..Default::default()
        };
        apply(
            &collected,
            &engine.ground_truth(),
            &ManualConfig::default(),
            &mut labels,
        );
        assert!(labels.tweet_labels.iter().all(Option::is_some));
        // Every observed author is labeled.
        let mut authors: Vec<_> = collected.iter().map(|c| c.tweet.author).collect();
        authors.sort_unstable();
        authors.dedup();
        assert_eq!(labels.account_labels.len(), authors.len());
    }

    #[test]
    fn perfect_accuracy_matches_ground_truth() {
        let (engine, collected) = monitored();
        let mut labels = LabeledCollection {
            tweet_labels: vec![None; collected.len()],
            ..Default::default()
        };
        apply(
            &collected,
            &engine.ground_truth(),
            &ManualConfig {
                accuracy: 1.0,
                ..Default::default()
            },
            &mut labels,
        );
        let gt = engine.ground_truth();
        for (c, l) in collected.iter().zip(&labels.tweet_labels) {
            assert_eq!(l.unwrap().spam, gt.is_spam(&c.tweet));
        }
    }

    #[test]
    fn partial_coverage_leaves_gaps() {
        let (engine, collected) = monitored();
        if collected.len() < 20 {
            return; // not enough data to assert coverage statistics
        }
        let mut labels = LabeledCollection {
            tweet_labels: vec![None; collected.len()],
            ..Default::default()
        };
        apply(
            &collected,
            &engine.ground_truth(),
            &ManualConfig {
                coverage: 0.3,
                ..Default::default()
            },
            &mut labels,
        );
        let labeled = labels.tweet_labels.iter().filter(|l| l.is_some()).count();
        assert!(labeled < collected.len(), "coverage 0.3 labeled everything");
        assert!(labeled > 0, "coverage 0.3 labeled nothing");
    }

    #[test]
    fn audit_fixes_wrong_rough_labels() {
        let (engine, collected) = monitored();
        if collected.is_empty() {
            return;
        }
        let gt = engine.ground_truth();
        // Deliberately mislabel everything as the opposite of truth.
        let mut labels = LabeledCollection {
            tweet_labels: collected
                .iter()
                .map(|c| {
                    Some(TweetLabel {
                        spam: !gt.is_spam(&c.tweet),
                        method: LabelMethod::Suspended,
                    })
                })
                .collect(),
            ..Default::default()
        };
        apply(
            &collected,
            &gt,
            &ManualConfig {
                accuracy: 1.0,
                ..Default::default()
            },
            &mut labels,
        );
        for (c, l) in collected.iter().zip(&labels.tweet_labels) {
            let l = l.unwrap();
            assert_eq!(l.spam, gt.is_spam(&c.tweet));
            assert_eq!(l.method, LabelMethod::Manual, "fix must be attributed");
        }
    }

    #[test]
    #[should_panic(expected = "probabilities")]
    fn invalid_accuracy_panics() {
        let (engine, collected) = monitored();
        let mut labels = LabeledCollection {
            tweet_labels: vec![None; collected.len()],
            ..Default::default()
        };
        apply(
            &collected,
            &engine.ground_truth(),
            &ManualConfig {
                accuracy: 1.5,
                ..Default::default()
            },
            &mut labels,
        );
    }
}
