//! Pass 2: clustering-based labeling.
//!
//! Groups accounts by profile-image dHash (banded LSH + Hamming verify),
//! screen-name Σ-sequences, and description MinHash; groups tweets by
//! near-duplicate content inside 1-day windows; then propagates spam labels
//! through the groups per the paper's two rules:
//!
//! 1. if a user in a group is suspended (or already labeled a spammer), all
//!    users in the group are spammers;
//! 2. if a tweet in a group is labeled spam (or authored by a spammer), all
//!    tweets in the group are spam and their authors spammers.

use std::collections::{HashMap, HashSet};

use ph_exec::ExecConfig;
use ph_sketch::dhash::DHash128;
use ph_sketch::lsh::{bands_of_signature, bands_of_u128, BandIndex};
use ph_sketch::shingle::normalize;
use ph_sketch::{MinHasher, UnionFind};
use ph_twitter_sim::engine::RestApi;
use ph_twitter_sim::AccountId;
use serde::{Deserialize, Serialize};

use crate::labeling::{AccountLabel, LabelMethod, LabeledCollection, TweetLabel};
use crate::monitor::CollectedTweet;

/// Clustering thresholds (defaults follow the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusteringConfig {
    /// Images within this Hamming distance are near-duplicates (paper: 5,
    /// strict less-than).
    pub image_distance_threshold: u32,
    /// Minimum members for a screen-name pattern group (paper: 5).
    pub name_group_min: usize,
    /// Estimated-Jaccard threshold for near-duplicate descriptions.
    pub description_similarity: f64,
    /// Estimated-Jaccard threshold for near-duplicate tweets.
    pub tweet_similarity: f64,
    /// Tweet near-duplicate window (paper: 1 day).
    pub tweet_window_hours: u64,
    /// Minimum raw tweet length checked for duplication (paper: 20 chars).
    pub min_tweet_chars: usize,
    /// MinHash signature width.
    pub minhash_width: usize,
    /// MinHash seed.
    pub minhash_seed: u64,
}

impl Default for ClusteringConfig {
    fn default() -> Self {
        Self {
            image_distance_threshold: 5,
            name_group_min: 5,
            // The paper treats descriptions as identical when their minimum
            // hash values coincide — i.e., near-exact matching. A loose
            // threshold would chain template-ish organic bios into giant
            // components that one false suspension could condemn wholesale.
            description_similarity: 0.9,
            tweet_similarity: 0.8,
            tweet_window_hours: 24,
            min_tweet_chars: 20,
            minhash_width: 64,
            minhash_seed: 17,
        }
    }
}

/// Diagnostics from one clustering pass.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ClusterReport {
    /// Multi-member account groups found (by any signal).
    pub account_groups: usize,
    /// Multi-member tweet groups found.
    pub tweet_groups: usize,
    /// Spammer accounts newly labeled by propagation.
    pub newly_labeled_spammers: usize,
    /// Spam tweets newly labeled by propagation.
    pub newly_labeled_spam: usize,
}

/// Applies the clustering pass sequentially. Labels only entries that are
/// still unlabeled; earlier passes take precedence.
pub fn apply(
    collected: &[CollectedTweet],
    rest: &RestApi<'_>,
    config: &ClusteringConfig,
    labels: &mut LabeledCollection,
) -> ClusterReport {
    apply_with(collected, rest, config, &ExecConfig::sequential(), labels)
}

/// Applies the clustering pass, fanning the dHash / Σ-sequence / MinHash
/// sketch computation *and* the candidate-pair verify → union-find merge
/// ([`merge_candidate_pairs`]) out across `exec`'s workers. Candidate
/// generation stays sequential (band-index construction is cheap), and
/// components are invariant under pair partitioning, so the resulting
/// labels are identical to [`apply`] at any thread count.
pub fn apply_with(
    collected: &[CollectedTweet],
    rest: &RestApi<'_>,
    config: &ClusteringConfig,
    exec: &ExecConfig,
    labels: &mut LabeledCollection,
) -> ClusterReport {
    debug_assert_eq!(collected.len(), labels.tweet_labels.len());
    let _span = ph_telemetry::span("clustering");
    let mut report = ClusterReport::default();

    // ---- Account universe -------------------------------------------------
    let mut authors: Vec<AccountId> = collected.iter().map(|c| c.tweet.author).collect();
    authors.sort_unstable();
    authors.dedup();
    let author_index: HashMap<AccountId, usize> =
        authors.iter().enumerate().map(|(i, &id)| (id, i)).collect();
    let mut account_uf = UnionFind::new(authors.len());

    cluster_by_image(&authors, rest, config, exec, &mut account_uf);
    cluster_by_name(&authors, rest, config, exec, &mut account_uf);
    cluster_by_description(&authors, rest, config, exec, &mut account_uf);

    let account_groups = account_uf.components_with_min_size(2);
    report.account_groups = account_groups.len();

    // ---- Tweet universe ----------------------------------------------------
    let mut tweet_uf = UnionFind::new(collected.len());
    cluster_tweets(collected, config, exec, &mut tweet_uf);
    let tweet_groups = tweet_uf.components_with_min_size(2);
    report.tweet_groups = tweet_groups.len();

    // ---- Propagation to fixpoint -------------------------------------------
    let mut spammers: HashSet<AccountId> = labels
        .account_labels
        .iter()
        .filter(|(_, l)| l.spammer)
        .map(|(&id, _)| id)
        .collect();
    let mut spam_tweets: HashSet<usize> = labels
        .tweet_labels
        .iter()
        .enumerate()
        .filter(|(_, l)| l.is_some_and(|l| l.spam))
        .map(|(i, _)| i)
        .collect();

    loop {
        let mut changed = false;
        // Rule 1: "if a user in one group is suspended [or otherwise known
        // spam], we label all users in this group as spammers". Account
        // labels flow through account groups — their *other* tweets are
        // left for the later rule-based / manual passes, per the paper.
        for group in &account_groups {
            if group.iter().any(|&i| spammers.contains(&authors[i])) {
                for &i in group {
                    changed |= spammers.insert(authors[i]);
                }
            }
        }
        // Rule 2: "if a tweet in one group is labeled [spam], we label its
        // users and all tweets in this group as spammers and spams".
        for group in &tweet_groups {
            if group.iter().any(|&i| spam_tweets.contains(&i)) {
                for &i in group {
                    changed |= spam_tweets.insert(i);
                    changed |= spammers.insert(collected[i].tweet.author);
                }
            }
        }
        if !changed {
            break;
        }
    }

    // ---- Write back (first-label-wins) --------------------------------------
    for idx in spam_tweets {
        let slot = &mut labels.tweet_labels[idx];
        if slot.is_none() {
            *slot = Some(TweetLabel {
                spam: true,
                method: LabelMethod::Clustering,
            });
            report.newly_labeled_spam += 1;
        }
    }
    for id in spammers {
        use std::collections::hash_map::Entry;
        if let Entry::Vacant(e) = labels.account_labels.entry(id) {
            e.insert(AccountLabel {
                spammer: true,
                method: LabelMethod::Clustering,
            });
            report.newly_labeled_spammers += 1;
        }
    }
    let _ = author_index; // retained for clarity of the universe mapping
    report
}

/// Floor on candidate pairs per exec chunk in [`merge_candidate_pairs`].
/// The actual chunk size also scales with the pair count so that at most
/// ~4 chunks land on each worker: every chunk costs one O(universe)
/// local-union-find init plus one O(universe) absorb on the caller, so
/// unbounded chunk counts would swamp the verification work they carry.
const MERGE_PAIRS_PER_CHUNK: usize = 512;

/// Verifies candidate pairs and unions the survivors into `uf`, fanning
/// both the verification and the union-find construction across `exec`'s
/// workers — the parallel tail of every similarity pass.
///
/// Pairs are cut into fixed-size chunks; each worker verifies its chunks
/// and records survivors in a *local* [`UnionFind`] over the same
/// `universe`. The caller then absorbs the locals in chunk order
/// (deterministic shard-ordered fold). Connected components depend only on
/// the set of verified pairs — not on union order or chunk boundaries — so
/// the resulting groups are identical to the old sequential
/// verify-and-union loop at any thread count.
///
/// `verify` must be pure (it runs on worker threads, possibly concurrently
/// and in any order).
pub fn merge_candidate_pairs<F>(
    exec: &ExecConfig,
    stage: &str,
    universe: usize,
    pairs: Vec<(usize, usize)>,
    verify: F,
    uf: &mut UnionFind,
) where
    F: Fn(usize, usize) -> bool + Sync,
{
    if pairs.is_empty() {
        return;
    }
    // Bound the chunk count by ~4 per worker (one chunk total when
    // sequential), so the per-chunk O(universe) overhead stays a small
    // constant factor of the verification work. Chunk boundaries are
    // invisible in the result, so this sizing is a pure tuning knob.
    let threads = exec.resolve_threads().max(1);
    let per_chunk = pairs.len().div_ceil(threads * 4).max(MERGE_PAIRS_PER_CHUNK);
    let chunks: Vec<Vec<(usize, usize)>> = pairs
        .chunks(per_chunk)
        .map(<[(usize, usize)]>::to_vec)
        .collect();
    let locals: Vec<UnionFind> = ph_exec::run_weighted(
        exec,
        stage,
        ph_exec::StageWeight::CpuBound,
        chunks,
        |_chunk| 0,
        |_worker| {
            let verify = &verify;
            move |chunk: Vec<(usize, usize)>| {
                let mut local = UnionFind::new(universe);
                for (i, j) in chunk {
                    if verify(i, j) {
                        local.union(i, j);
                    }
                }
                local
            }
        },
    );
    for local in &locals {
        uf.absorb(local);
    }
}

/// Image clustering: 8-band LSH over the 128-bit dHash. A pair within
/// Hamming distance < 5 differs in ≤ 4 bits, so at least 4 of the 8
/// 16-bit bands match exactly — banding is recall-lossless here.
fn cluster_by_image(
    authors: &[AccountId],
    rest: &RestApi<'_>,
    config: &ClusteringConfig,
    exec: &ExecConfig,
    uf: &mut UnionFind,
) {
    let rest = *rest;
    let hashes: Vec<Option<DHash128>> = ph_exec::run(
        exec,
        "clustering.image_sketch",
        authors.to_vec(),
        |id: &AccountId| u64::from(id.0),
        |_worker| {
            move |id: AccountId| {
                let p = rest.profile(id)?;
                // Default (egg) avatars are identical platform-wide and
                // carry no campaign signal; skip them.
                if p.default_profile_image {
                    None
                } else {
                    Some(DHash128::of(&p.profile_image))
                }
            }
        },
    );
    let mut index = BandIndex::new();
    for (i, hash) in hashes.iter().enumerate() {
        let Some(h) = hash else { continue };
        let bits = ((h.horizontal_bits() as u128) << 64) | h.vertical_bits() as u128;
        index.insert(i, bands_of_u128(bits, 8));
    }
    merge_candidate_pairs(
        exec,
        "clustering.image_merge",
        authors.len(),
        index.candidate_pairs(),
        |i, j| match (hashes[i], hashes[j]) {
            (Some(hi), Some(hj)) => hi.hamming_distance(hj) < config.image_distance_threshold,
            _ => false,
        },
        uf,
    );
}

/// Screen-name grouping (groups of ≥ `name_group_min`).
///
/// The paper learns regular expressions with literal substrings (merchant
/// patterns); pure Σ-sequences are too generic — any `name+digits` shape
/// would pool unrelated organic users. The key is therefore the Σ-sequence
/// *plus* the lowercase 3-character prefix, approximating the constant stem
/// a learned regex would pin down.
fn cluster_by_name(
    authors: &[AccountId],
    rest: &RestApi<'_>,
    config: &ClusteringConfig,
    exec: &ExecConfig,
    uf: &mut UnionFind,
) {
    use ph_sketch::NamePattern;
    let rest = *rest;
    let keys: Vec<Option<(NamePattern, String)>> = ph_exec::run(
        exec,
        "clustering.name_sketch",
        authors.to_vec(),
        |id: &AccountId| u64::from(id.0),
        |_worker| {
            move |id: AccountId| {
                let profile = rest.profile(id)?;
                let name = &profile.screen_name;
                let prefix: String = name.chars().take(3).flat_map(char::to_lowercase).collect();
                Some((NamePattern::of(name), prefix))
            }
        },
    );
    let mut groups: HashMap<(NamePattern, String), Vec<usize>> = HashMap::new();
    for (i, key) in keys.into_iter().enumerate() {
        if let Some(key) = key {
            groups.entry(key).or_default().push(i);
        }
    }
    for members in groups.into_values() {
        if members.len() < config.name_group_min {
            continue;
        }
        for w in members.windows(2) {
            uf.union(w[0], w[1]);
        }
    }
}

/// Description MinHash grouping: 16 bands × 4 rows, verified at the
/// configured similarity.
fn cluster_by_description(
    authors: &[AccountId],
    rest: &RestApi<'_>,
    config: &ClusteringConfig,
    exec: &ExecConfig,
    uf: &mut UnionFind,
) {
    let hasher = MinHasher::new(config.minhash_width, config.minhash_seed);
    let rest = *rest;
    let signatures: Vec<Option<ph_sketch::MinHashSignature>> = ph_exec::run(
        exec,
        "clustering.description_sketch",
        authors.to_vec(),
        |id: &AccountId| u64::from(id.0),
        |_worker| {
            let hasher = &hasher;
            move |id: AccountId| {
                let p = rest.profile(id)?;
                let normalized = normalize(&p.description);
                if normalized.len() < 10 {
                    return None; // too short to be a meaningful template
                }
                Some(hasher.signature_of_text(&normalized))
            }
        },
    );
    let mut index = BandIndex::new();
    for (i, sig) in signatures.iter().enumerate() {
        let Some(s) = sig else { continue };
        index.insert(i, bands_of_signature(s.as_slice(), 4));
    }
    merge_candidate_pairs(
        exec,
        "clustering.description_merge",
        authors.len(),
        index.candidate_pairs(),
        |i, j| match (&signatures[i], &signatures[j]) {
            (Some(si), Some(sj)) => si.estimate_jaccard(sj) >= config.description_similarity,
            _ => false,
        },
        uf,
    );
}

/// Near-duplicate tweets inside rolling 1-day windows, MinHash-verified.
fn cluster_tweets(
    collected: &[CollectedTweet],
    config: &ClusteringConfig,
    exec: &ExecConfig,
    uf: &mut UnionFind,
) {
    let hasher = MinHasher::new(config.minhash_width, config.minhash_seed ^ 0x5eed);
    let signatures: Vec<Option<ph_sketch::MinHashSignature>> = ph_exec::run(
        exec,
        "clustering.tweet_sketch",
        collected.iter().collect(),
        |c: &&CollectedTweet| u64::from(c.tweet.author.0),
        |_worker| {
            let hasher = &hasher;
            move |c: &CollectedTweet| {
                if c.tweet.text.chars().count() < config.min_tweet_chars {
                    return None;
                }
                let normalized = normalize(&c.tweet.text);
                if normalized.is_empty() {
                    return None;
                }
                Some(hasher.signature_of_text(&normalized))
            }
        },
    );
    // The 1-day window participates in the band key so only same-window
    // tweets become candidates.
    let mut index = BandIndex::new();
    for (i, sig) in signatures.iter().enumerate() {
        let Some(sig) = sig else { continue };
        let window = collected[i].hour / config.tweet_window_hours.max(1);
        index.insert(
            i,
            bands_of_signature(sig.as_slice(), 4)
                .into_iter()
                .map(|(band, key)| (band, key ^ window.wrapping_mul(0x9e37_79b9))),
        );
    }
    merge_candidate_pairs(
        exec,
        "clustering.tweet_merge",
        collected.len(),
        index.candidate_pairs(),
        |i, j| {
            // Same-window check: the band-key mixing makes cross-window
            // collisions unlikely but not impossible.
            let wi = collected[i].hour / config.tweet_window_hours.max(1);
            let wj = collected[j].hour / config.tweet_window_hours.max(1);
            if wi != wj {
                return false;
            }
            match (&signatures[i], &signatures[j]) {
                (Some(si), Some(sj)) => si.estimate_jaccard(sj) >= config.tweet_similarity,
                _ => false,
            }
        },
        uf,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::{ProfileAttribute, SampleAttribute};
    use crate::labeling::suspended;
    use crate::monitor::{Runner, RunnerConfig};
    use ph_twitter_sim::engine::{Engine, SimConfig};

    fn monitored_engine() -> (Engine, Vec<CollectedTweet>) {
        let mut engine = Engine::new(SimConfig {
            seed: 31,
            num_organic: 500,
            num_campaigns: 4,
            accounts_per_campaign: 10,
            suspension_rate_per_hour: 0.03,
            ..Default::default()
        });
        let runner = Runner::new(RunnerConfig {
            slots: vec![
                SampleAttribute::profile(ProfileAttribute::ListsPerDay, 1.0),
                SampleAttribute::profile(ProfileAttribute::FollowersCount, 10_000.0),
                SampleAttribute::profile(ProfileAttribute::FriendsCount, 10_000.0),
            ],
            ..Default::default()
        });
        let report = runner.run(&mut engine, 40);
        (engine, report.collected)
    }

    #[test]
    fn clustering_expands_suspension_seeds() {
        let (engine, collected) = monitored_engine();
        assert!(!collected.is_empty());
        let mut labels = LabeledCollection {
            tweet_labels: vec![None; collected.len()],
            ..Default::default()
        };
        suspended::apply(&collected, &engine.rest(), &mut labels);
        let before = labels.num_spammers();
        let report = apply(
            &collected,
            &engine.rest(),
            &ClusteringConfig::default(),
            &mut labels,
        );
        let after = labels.num_spammers();
        assert!(
            after >= before,
            "clustering must never remove spammer labels"
        );
        // With 4 campaigns of 10 templated accounts, the clusters must
        // propagate beyond the suspended seeds.
        assert!(
            report.newly_labeled_spammers > 0,
            "clustering labeled no new spammers (groups: {}, seeds: {before})",
            report.account_groups
        );
    }

    #[test]
    fn clustering_finds_campaign_account_groups() {
        let (engine, collected) = monitored_engine();
        let mut labels = LabeledCollection {
            tweet_labels: vec![None; collected.len()],
            ..Default::default()
        };
        let report = apply(
            &collected,
            &engine.rest(),
            &ClusteringConfig::default(),
            &mut labels,
        );
        assert!(report.account_groups > 0, "no account clusters found");
    }

    #[test]
    fn propagated_labels_are_mostly_true_spammers() {
        let (engine, collected) = monitored_engine();
        let mut labels = LabeledCollection {
            tweet_labels: vec![None; collected.len()],
            ..Default::default()
        };
        suspended::apply(&collected, &engine.rest(), &mut labels);
        apply(
            &collected,
            &engine.rest(),
            &ClusteringConfig::default(),
            &mut labels,
        );
        let gt = engine.ground_truth();
        let labeled: Vec<_> = labels
            .account_labels
            .iter()
            .filter(|(_, l)| l.spammer)
            .collect();
        assert!(!labeled.is_empty());
        let correct = labeled.iter().filter(|(&id, _)| gt.is_spammer(id)).count();
        let precision = correct as f64 / labeled.len() as f64;
        assert!(
            precision > 0.8,
            "cluster-propagated labels too noisy: precision {precision:.2}"
        );
    }

    #[test]
    fn sharded_clustering_matches_sequential() {
        let (engine, collected) = monitored_engine();
        let mut seq_labels = LabeledCollection {
            tweet_labels: vec![None; collected.len()],
            ..Default::default()
        };
        suspended::apply(&collected, &engine.rest(), &mut seq_labels);
        let mut par_labels = seq_labels.clone();
        let seq_report = apply(
            &collected,
            &engine.rest(),
            &ClusteringConfig::default(),
            &mut seq_labels,
        );
        let par_report = apply_with(
            &collected,
            &engine.rest(),
            &ClusteringConfig::default(),
            &ExecConfig::with_threads(4),
            &mut par_labels,
        );
        assert_eq!(par_report, seq_report);
        assert_eq!(par_labels, seq_labels);
    }

    #[test]
    fn without_seeds_nothing_propagates_from_accounts_alone() {
        // No suspended seeds and no rule labels: propagation can only start
        // from pre-labeled spam, so the pass labels nothing.
        let (engine, collected) = monitored_engine();
        let mut labels = LabeledCollection {
            tweet_labels: vec![None; collected.len()],
            ..Default::default()
        };
        let report = apply(
            &collected,
            &engine.rest(),
            &ClusteringConfig::default(),
            &mut labels,
        );
        assert_eq!(report.newly_labeled_spam, 0);
        assert_eq!(report.newly_labeled_spammers, 0);
    }
}
