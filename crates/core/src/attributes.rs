//! The attribute taxonomy of Tables I and II.
//!
//! Pseudo-honeypot nodes are selected by attributes in three categories:
//!
//! - **C1 — profile-based**: 11 numeric profile attributes, each sampled at
//!   the 10 values of Table II,
//! - **C2 — hashtag-based**: the 8 topical categories plus *no hashtag*,
//! - **C3 — trending-based**: trending-up / trending-down / popular /
//!   no-trending topics.

use ph_twitter_sim::Profile;
use ph_twitter_sim::TopicCategory;
use serde::{Deserialize, Serialize};

/// The 11 profile-based attributes of Table II (category C1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ProfileAttribute {
    /// Attribute 1: friends count.
    FriendsCount,
    /// Attribute 2: follower count.
    FollowersCount,
    /// Attribute 3: total friends and followers.
    TotalFriendsFollowers,
    /// Attribute 4: ratio of friends over followers.
    FriendFollowerRatio,
    /// Attribute 5: account age in days.
    AccountAgeDays,
    /// Attribute 6: lists count.
    ListsCount,
    /// Attribute 7: favorites count.
    FavoritesCount,
    /// Attribute 8: status count.
    StatusesCount,
    /// Attribute 9: average lists joined per day.
    ListsPerDay,
    /// Attribute 10: average favorites per day.
    FavoritesPerDay,
    /// Attribute 11: average statuses per day.
    StatusesPerDay,
}

impl ProfileAttribute {
    /// All 11 attributes in Table II row order.
    pub const ALL: [ProfileAttribute; 11] = [
        ProfileAttribute::FriendsCount,
        ProfileAttribute::FollowersCount,
        ProfileAttribute::TotalFriendsFollowers,
        ProfileAttribute::FriendFollowerRatio,
        ProfileAttribute::AccountAgeDays,
        ProfileAttribute::ListsCount,
        ProfileAttribute::FavoritesCount,
        ProfileAttribute::StatusesCount,
        ProfileAttribute::ListsPerDay,
        ProfileAttribute::FavoritesPerDay,
        ProfileAttribute::StatusesPerDay,
    ];

    /// The attribute's Table II sample-value row.
    pub fn sample_values(self) -> &'static [f64] {
        use ph_twitter_sim::population::grids;
        match self {
            ProfileAttribute::FriendsCount => &grids::FRIENDS,
            ProfileAttribute::FollowersCount => &grids::FOLLOWERS,
            ProfileAttribute::TotalFriendsFollowers => &grids::TOTAL,
            ProfileAttribute::FriendFollowerRatio => &grids::RATIO,
            ProfileAttribute::AccountAgeDays => &grids::AGE_DAYS,
            ProfileAttribute::ListsCount => &grids::LISTS,
            ProfileAttribute::FavoritesCount => &grids::FAVORITES,
            ProfileAttribute::StatusesCount => &grids::STATUSES,
            ProfileAttribute::ListsPerDay => &grids::LISTS_PER_DAY,
            ProfileAttribute::FavoritesPerDay => &grids::FAVORITES_PER_DAY,
            ProfileAttribute::StatusesPerDay => &grids::STATUSES_PER_DAY,
        }
    }

    /// Reads the attribute's value off a public profile.
    pub fn value_of(self, profile: &Profile) -> f64 {
        match self {
            ProfileAttribute::FriendsCount => profile.friends_count as f64,
            ProfileAttribute::FollowersCount => profile.followers_count as f64,
            ProfileAttribute::TotalFriendsFollowers => profile.total_friends_followers() as f64,
            ProfileAttribute::FriendFollowerRatio => profile.friend_follower_ratio(),
            ProfileAttribute::AccountAgeDays => f64::from(profile.account_age_days),
            ProfileAttribute::ListsCount => profile.lists_count as f64,
            ProfileAttribute::FavoritesCount => profile.favorites_count as f64,
            ProfileAttribute::StatusesCount => profile.statuses_count as f64,
            ProfileAttribute::ListsPerDay => profile.lists_per_day(),
            ProfileAttribute::FavoritesPerDay => profile.favorites_per_day(),
            ProfileAttribute::StatusesPerDay => profile.statuses_per_day(),
        }
    }

    /// Human-readable label matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            ProfileAttribute::FriendsCount => "friends count",
            ProfileAttribute::FollowersCount => "followers count",
            ProfileAttribute::TotalFriendsFollowers => "total friends and followers",
            ProfileAttribute::FriendFollowerRatio => "ratio of friends and followers",
            ProfileAttribute::AccountAgeDays => "account age (days)",
            ProfileAttribute::ListsCount => "lists count",
            ProfileAttribute::FavoritesCount => "favorites count",
            ProfileAttribute::StatusesCount => "statuses count",
            ProfileAttribute::ListsPerDay => "average of lists per day",
            ProfileAttribute::FavoritesPerDay => "average of favorites per day",
            ProfileAttribute::StatusesPerDay => "average of statuses per day",
        }
    }
}

impl std::fmt::Display for ProfileAttribute {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The trending-based attribute values of category C3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TrendAttribute {
    /// Recently active in a trending-up topic.
    TrendingUp,
    /// Recently active in a trending-down topic.
    TrendingDown,
    /// Recently active in a popular topic.
    Popular,
    /// Posting, but in no trending topic.
    NonTrending,
}

impl TrendAttribute {
    /// All four trending attributes in Table I order.
    pub const ALL: [TrendAttribute; 4] = [
        TrendAttribute::TrendingUp,
        TrendAttribute::TrendingDown,
        TrendAttribute::Popular,
        TrendAttribute::NonTrending,
    ];

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            TrendAttribute::TrendingUp => "trending up",
            TrendAttribute::TrendingDown => "trending down",
            TrendAttribute::Popular => "popular tweets",
            TrendAttribute::NonTrending => "no trending",
        }
    }
}

impl std::fmt::Display for TrendAttribute {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// An attribute of any category — the unit the paper's per-attribute
/// statistics (Table V, Figures 3–5) aggregate over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AttributeKind {
    /// C1: a profile attribute.
    Profile(ProfileAttribute),
    /// C2: a topical hashtag category; `None` = the *no hashtag* attribute.
    Hashtag(Option<TopicCategory>),
    /// C3: a trending attribute.
    Trending(TrendAttribute),
}

impl AttributeKind {
    /// All 24 attributes (11 + 9 + 4) in Table I order.
    pub fn all() -> Vec<AttributeKind> {
        let mut out: Vec<AttributeKind> = ProfileAttribute::ALL
            .iter()
            .map(|&p| AttributeKind::Profile(p))
            .collect();
        out.extend(
            TopicCategory::ALL
                .iter()
                .map(|&c| AttributeKind::Hashtag(Some(c))),
        );
        out.push(AttributeKind::Hashtag(None));
        out.extend(
            TrendAttribute::ALL
                .iter()
                .map(|&t| AttributeKind::Trending(t)),
        );
        out
    }

    /// Human-readable label.
    pub fn label(&self) -> String {
        match self {
            AttributeKind::Profile(p) => p.label().to_string(),
            AttributeKind::Hashtag(Some(c)) => format!("hashtag: {c}"),
            AttributeKind::Hashtag(None) => "no hashtag".to_string(),
            AttributeKind::Trending(t) => t.label().to_string(),
        }
    }
}

impl std::fmt::Display for AttributeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// A concrete selection slot: an attribute, plus (for profile attributes)
/// the Table II sample value targeted. This is the unit PGE ranks in
/// Table VI ("Joining 1 lists per day", "Having 10k followers", …).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SampleAttribute {
    /// The attribute.
    pub kind: AttributeKind,
    /// The targeted sample value (profile attributes only).
    pub sample_value: Option<f64>,
}

impl SampleAttribute {
    /// A profile-attribute slot at a sample value.
    pub fn profile(attr: ProfileAttribute, value: f64) -> Self {
        Self {
            kind: AttributeKind::Profile(attr),
            sample_value: Some(value),
        }
    }

    /// A hashtag-category slot (`None` = no hashtag).
    pub fn hashtag(category: Option<TopicCategory>) -> Self {
        Self {
            kind: AttributeKind::Hashtag(category),
            sample_value: None,
        }
    }

    /// A trending slot.
    pub fn trending(trend: TrendAttribute) -> Self {
        Self {
            kind: AttributeKind::Trending(trend),
            sample_value: None,
        }
    }

    /// All 123 standard slots: 11 × 10 profile samples + 9 hashtag + 4
    /// trending — the full Table I/II selection plan.
    pub fn standard_slots() -> Vec<SampleAttribute> {
        let mut slots = Vec::new();
        for &attr in &ProfileAttribute::ALL {
            for &value in attr.sample_values() {
                slots.push(SampleAttribute::profile(attr, value));
            }
        }
        for &cat in &TopicCategory::ALL {
            slots.push(SampleAttribute::hashtag(Some(cat)));
        }
        slots.push(SampleAttribute::hashtag(None));
        for &t in &TrendAttribute::ALL {
            slots.push(SampleAttribute::trending(t));
        }
        slots
    }

    /// Stable map key (f64 sample values are grid constants, so exact
    /// bit-equality is well-defined).
    pub fn key(&self) -> (AttributeKind, u64) {
        (self.kind, self.sample_value.unwrap_or(-1.0).to_bits())
    }

    /// A Table VI-style description, e.g. `"average of lists per day = 1"`.
    pub fn describe(&self) -> String {
        match self.sample_value {
            Some(v) => format!("{} = {}", self.kind, trim_float(v)),
            None => self.kind.label(),
        }
    }
}

impl Eq for SampleAttribute {}

impl std::hash::Hash for SampleAttribute {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.key().hash(state);
    }
}

impl std::fmt::Display for SampleAttribute {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.describe())
    }
}

fn trim_float(v: f64) -> String {
    if (v.fract()).abs() < 1e-9 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}

/// Relative tolerance used when matching a profile value to a sample value.
pub const MATCH_TOLERANCE_REL: f64 = 0.15;

/// Absolute tolerance floor for small sample values.
pub const MATCH_TOLERANCE_ABS: f64 = 0.01;

/// True when `value` matches sample `target` within the selection
/// tolerances.
pub fn matches_sample(value: f64, target: f64) -> bool {
    (value - target).abs() <= (target * MATCH_TOLERANCE_REL).max(MATCH_TOLERANCE_ABS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_24_attributes() {
        assert_eq!(AttributeKind::all().len(), 24);
    }

    #[test]
    fn standard_slots_match_paper_network_plan() {
        let slots = SampleAttribute::standard_slots();
        // 110 profile sample slots + 9 hashtag + 4 trending.
        assert_eq!(slots.len(), 123);
        let profile_slots = slots
            .iter()
            .filter(|s| matches!(s.kind, AttributeKind::Profile(_)))
            .count();
        assert_eq!(profile_slots, 110);
    }

    #[test]
    fn every_profile_attribute_has_ten_sample_values() {
        for &attr in &ProfileAttribute::ALL {
            assert_eq!(attr.sample_values().len(), 10, "{attr}");
        }
    }

    #[test]
    fn value_of_reads_profile() {
        use ph_sketch::GrayImage;
        use ph_twitter_sim::AccountId;
        let p = Profile {
            id: AccountId(0),
            screen_name: "x".into(),
            display_name: "x".into(),
            description: String::new(),
            friends_count: 30,
            followers_count: 60,
            account_age_days: 10,
            lists_count: 5,
            favorites_count: 100,
            statuses_count: 50,
            verified: false,
            default_profile_image: false,
            profile_image: GrayImage::new(9, 9),
        };
        assert_eq!(ProfileAttribute::FriendsCount.value_of(&p), 30.0);
        assert_eq!(ProfileAttribute::TotalFriendsFollowers.value_of(&p), 90.0);
        assert!((ProfileAttribute::FriendFollowerRatio.value_of(&p) - 0.5).abs() < 1e-12);
        assert!((ProfileAttribute::ListsPerDay.value_of(&p) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sample_matching_tolerances() {
        assert!(matches_sample(10_400.0, 10_000.0));
        assert!(!matches_sample(12_000.0, 10_000.0));
        assert!(matches_sample(0.105, 0.1));
        assert!(!matches_sample(0.2, 0.1));
        // Absolute floor lets tiny targets match nearby values.
        assert!(matches_sample(0.012, 0.01));
    }

    #[test]
    fn sample_attribute_keys_are_stable() {
        let a = SampleAttribute::profile(ProfileAttribute::FriendsCount, 10.0);
        let b = SampleAttribute::profile(ProfileAttribute::FriendsCount, 10.0);
        let c = SampleAttribute::profile(ProfileAttribute::FriendsCount, 50.0);
        assert_eq!(a, b);
        assert_eq!(a.key(), b.key());
        assert_ne!(a.key(), c.key());
    }

    #[test]
    fn describe_formats() {
        let s = SampleAttribute::profile(ProfileAttribute::ListsPerDay, 1.0);
        assert_eq!(s.describe(), "average of lists per day = 1");
        assert_eq!(SampleAttribute::hashtag(None).describe(), "no hashtag");
        assert_eq!(
            SampleAttribute::trending(TrendAttribute::Popular).describe(),
            "popular tweets"
        );
    }
}
