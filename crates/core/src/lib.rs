//! Pseudo-honeypot: efficient and scalable spam sniffing over existing
//! social-network accounts.
//!
//! This crate implements the primary contribution of *Pseudo-Honeypot:
//! Toward Efficient and Scalable Spam Sniffer* (DSN 2019) on top of the
//! [`ph_twitter_sim`] substrate:
//!
//! 1. [`attributes`] — the 24-attribute taxonomy (Tables I/II),
//! 2. [`selection`] — attribute-based node selection with Active/Dormant
//!    screening (§III-B/D),
//! 3. [`monitor`] — hourly-switched streaming collection (§III-E),
//! 4. [`features`] — the 58-feature extraction (§IV-A),
//! 5. [`labeling`] — suspended/clustering/rule-based/manual ground-truth
//!    labeling with Table III accounting (§IV-B),
//! 6. [`detector`] — Table IV model selection + the RF production detector
//!    (§IV-C),
//! 7. [`pge`] — per-attribute statistics and the PGE metric (§V-E),
//! 8. [`advanced`] — the top-10-attribute advanced system (§V-E),
//! 9. [`baselines`] — random-account and traditional-honeypot baselines,
//!    plus the published Table VII rows.
//!
//! # Example: a complete sniffing campaign
//!
//! ```
//! use ph_core::attributes::{ProfileAttribute, SampleAttribute};
//! use ph_core::labeling::pipeline::{label_collection, PipelineConfig};
//! use ph_core::monitor::{Runner, RunnerConfig};
//! use ph_twitter_sim::engine::{Engine, SimConfig};
//!
//! let mut engine = Engine::new(SimConfig {
//!     num_organic: 400,
//!     num_campaigns: 2,
//!     accounts_per_campaign: 6,
//!     ..Default::default()
//! });
//! let runner = Runner::new(RunnerConfig {
//!     slots: vec![SampleAttribute::profile(ProfileAttribute::ListsPerDay, 1.0)],
//!     ..Default::default()
//! });
//! let report = runner.run(&mut engine, 10);
//! let ground_truth = label_collection(&report.collected, &engine, &PipelineConfig::default());
//! assert_eq!(ground_truth.labels.tweet_labels.len(), report.collected.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod advanced;
pub mod attributes;
pub mod baselines;
pub mod detector;
pub mod drift;
pub mod features;
pub mod labeling;
pub mod monitor;
pub mod network;
pub mod observe;
pub mod pge;
pub mod selection;

pub use attributes::{AttributeKind, ProfileAttribute, SampleAttribute, TrendAttribute};
pub use detector::{DetectorConfig, SpamDetector, StreamClassifier, Verdict};
pub use features::{FeatureExtractor, FEATURE_COUNT};
pub use monitor::{CollectedTweet, MonitorReport, Runner, RunnerConfig, StreamMonitor};
pub use network::PseudoHoneypotNetwork;
pub use pge::{overall_pge, pge_ranking, PgeEntry};
pub use selection::{select_network, select_random_network, SelectorConfig};
