//! Per-attribute statistics and the Pseudo-honeypot Garner Efficiency
//! metric (§V-E):
//!
//! ```text
//! PGE_i = N_i / (G_i · T_i)
//! ```
//!
//! spammers garnered per pseudo-honeypot node per hour, the quantity
//! Tables VI and VII rank.

use std::collections::{HashMap, HashSet};

use ph_twitter_sim::AccountId;
use serde::{Deserialize, Serialize};

use crate::attributes::{AttributeKind, SampleAttribute};
use crate::monitor::{CollectedTweet, MonitorReport};

/// Tweets / spams / spammers observed under one aggregation key.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SlotStats {
    /// Tweets collected.
    pub tweets: u64,
    /// Tweets classified (or labeled) spam.
    pub spams: u64,
    /// Distinct accounts behind those spam tweets.
    pub spammers: HashSet<AccountId>,
}

impl SlotStats {
    /// Number of distinct spammers.
    pub fn num_spammers(&self) -> usize {
        self.spammers.len()
    }
}

/// Aggregates per selection slot (attribute + sample value).
///
/// # Panics
///
/// Panics if `spam_flags` is not parallel to `collected`.
pub fn per_slot_stats(
    collected: &[CollectedTweet],
    spam_flags: &[bool],
) -> HashMap<SampleAttribute, SlotStats> {
    assert_eq!(collected.len(), spam_flags.len(), "flags not parallel");
    let mut out: HashMap<SampleAttribute, SlotStats> = HashMap::new();
    for (c, &spam) in collected.iter().zip(spam_flags) {
        let stats = out.entry(c.slot).or_default();
        stats.tweets += 1;
        if spam {
            stats.spams += 1;
            stats.spammers.insert(c.tweet.author);
        }
    }
    out
}

/// Aggregates per attribute (all sample values pooled) — the granularity of
/// Table V and Figures 3–5.
pub fn per_attribute_stats(
    collected: &[CollectedTweet],
    spam_flags: &[bool],
) -> HashMap<AttributeKind, SlotStats> {
    assert_eq!(collected.len(), spam_flags.len(), "flags not parallel");
    let mut out: HashMap<AttributeKind, SlotStats> = HashMap::new();
    for (c, &spam) in collected.iter().zip(spam_flags) {
        let stats = out.entry(c.slot.kind).or_default();
        stats.tweets += 1;
        if spam {
            stats.spams += 1;
            stats.spammers.insert(c.tweet.author);
        }
    }
    out
}

/// One ranked PGE row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PgeEntry {
    /// The slot.
    pub slot: SampleAttribute,
    /// `N_i`: distinct spammers garnered under the slot.
    pub spammers: usize,
    /// `G_i · T_i`: node-hours spent on the slot.
    pub node_hours: f64,
    /// The PGE value.
    pub pge: f64,
}

/// Computes the PGE ranking (descending) over a monitoring report and a
/// parallel spam-flag vector.
pub fn pge_ranking(report: &MonitorReport, spam_flags: &[bool]) -> Vec<PgeEntry> {
    pge_ranking_with_min(report, spam_flags, 0.0)
}

/// Like [`pge_ranking`], dropping slots with fewer than `min_node_hours`
/// node-hours of observation. Short runs leave barely-filled slots whose
/// one lucky capture would otherwise top the ranking; the paper's 700-hour
/// run does not have this problem, scaled-down regenerations do.
pub fn pge_ranking_with_min(
    report: &MonitorReport,
    spam_flags: &[bool],
    min_node_hours: f64,
) -> Vec<PgeEntry> {
    let per_slot = per_slot_stats(&report.collected, spam_flags);
    let mut entries: Vec<PgeEntry> = per_slot
        .into_iter()
        .filter_map(|(slot, stats)| {
            let node_hours = report.node_hours.get(&slot).copied().unwrap_or(0.0);
            if node_hours <= 0.0 || node_hours < min_node_hours {
                return None;
            }
            let spammers = stats.num_spammers();
            Some(PgeEntry {
                slot,
                spammers,
                node_hours,
                pge: spammers as f64 / node_hours,
            })
        })
        .collect();
    entries.sort_by(|a, b| {
        b.pge
            .total_cmp(&a.pge)
            .then_with(|| b.spammers.cmp(&a.spammers))
            .then_with(|| a.slot.key().cmp(&b.slot.key()))
    });
    entries
}

/// One hour's aggregate over a collection — the row grain of the
/// `inspect` subcommand's per-hour PGE table.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct HourStats {
    /// Monitored hour index (0-based).
    pub hour: u64,
    /// Tweets collected during the hour.
    pub tweets: u64,
    /// Tweets flagged spam during the hour.
    pub spams: u64,
    /// Distinct accounts behind the hour's spam tweets.
    pub spammers: u64,
}

/// Aggregates a collection hour by hour into a dense vector of `hours`
/// rows (hours with no traffic yield all-zero rows). Collected tweets
/// carry the *absolute* engine hour, so `hour_offset` (the ground-truth
/// warmup length for a standard run) rebases them onto monitored hours;
/// tweets outside `hour_offset..hour_offset + hours` are ignored.
///
/// # Panics
///
/// Panics if `spam_flags` is not parallel to `collected`.
pub fn per_hour_stats(
    collected: &[CollectedTweet],
    spam_flags: &[bool],
    hours: u64,
    hour_offset: u64,
) -> Vec<HourStats> {
    assert_eq!(collected.len(), spam_flags.len(), "flags not parallel");
    let mut rows: Vec<HourStats> = (0..hours)
        .map(|hour| HourStats {
            hour,
            ..Default::default()
        })
        .collect();
    let mut spammers: Vec<HashSet<AccountId>> = vec![HashSet::new(); hours as usize];
    for (c, &spam) in collected.iter().zip(spam_flags) {
        let Some(hour) = c.hour.checked_sub(hour_offset) else {
            continue;
        };
        let Some(row) = rows.get_mut(hour as usize) else {
            continue;
        };
        row.tweets += 1;
        if spam {
            row.spams += 1;
            spammers[hour as usize].insert(c.tweet.author);
        }
    }
    for (row, set) in rows.iter_mut().zip(&spammers) {
        row.spammers = set.len() as u64;
    }
    rows
}

/// Per-hour, per-attribute PGE with node-hours amortized evenly across the
/// run: each attribute's total node-hours (all sample values pooled) is
/// divided by `hours` to estimate its hourly observation budget, and each
/// hour's distinct spammers are scored against that budget.
///
/// Exact per-hour node-hours are not recoverable after the fact (the
/// monitor accrues them per switch interval, not per hour), so this is an
/// amortized diagnostic series — fine for trend inspection, not for
/// re-deriving Table VI. Attributes with zero node-hours are omitted.
/// Returned vectors are dense over `0..hours`, rebased from absolute
/// engine hours by `hour_offset` as in [`per_hour_stats`].
///
/// # Panics
///
/// Panics if `spam_flags` is not parallel to `collected`.
pub fn per_hour_attribute_pge(
    collected: &[CollectedTweet],
    spam_flags: &[bool],
    node_hours: &HashMap<SampleAttribute, f64>,
    hours: u64,
    hour_offset: u64,
) -> HashMap<AttributeKind, Vec<f64>> {
    assert_eq!(collected.len(), spam_flags.len(), "flags not parallel");
    if hours == 0 {
        return HashMap::new();
    }
    let mut budget: HashMap<AttributeKind, f64> = HashMap::new();
    for (slot, nh) in node_hours {
        *budget.entry(slot.kind).or_insert(0.0) += nh;
    }
    let mut spammers: HashMap<AttributeKind, Vec<HashSet<AccountId>>> = HashMap::new();
    for (c, &spam) in collected.iter().zip(spam_flags) {
        let Some(hour) = c.hour.checked_sub(hour_offset) else {
            continue;
        };
        if spam && hour < hours {
            spammers
                .entry(c.slot.kind)
                .or_insert_with(|| vec![HashSet::new(); hours as usize])[hour as usize]
                .insert(c.tweet.author);
        }
    }
    budget
        .into_iter()
        .filter(|&(_, total)| total > 0.0)
        .map(|(kind, total)| {
            let hourly = total / hours as f64;
            let values = match spammers.get(&kind) {
                Some(sets) => sets.iter().map(|s| s.len() as f64 / hourly).collect(),
                None => vec![0.0; hours as usize],
            };
            (kind, values)
        })
        .collect()
}

/// Overall PGE of a whole run: distinct spammers per node-hour, the
/// quantity compared against honeypot systems in Table VII.
pub fn overall_pge(report: &MonitorReport, spam_flags: &[bool]) -> f64 {
    assert_eq!(
        report.collected.len(),
        spam_flags.len(),
        "flags not parallel"
    );
    let spammers: HashSet<AccountId> = report
        .collected
        .iter()
        .zip(spam_flags)
        .filter(|&(_, &spam)| spam)
        .map(|(c, _)| c.tweet.author)
        .collect();
    let node_hours: f64 = report.node_hours.values().sum();
    if node_hours <= 0.0 {
        0.0
    } else {
        spammers.len() as f64 / node_hours
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::ProfileAttribute;
    use crate::monitor::TweetCategory;
    use ph_twitter_sim::{SimTime, Tweet, TweetId, TweetKind, TweetSource};

    fn collected(author: u32, slot: SampleAttribute) -> CollectedTweet {
        CollectedTweet {
            tweet: Tweet::observed(
                TweetId(u64::from(author)),
                AccountId(author),
                SimTime::EPOCH,
                TweetKind::Original,
                TweetSource::Web,
                "text".into(),
                vec![],
                vec![AccountId(0)],
                vec![],
                None,
            ),
            category: TweetCategory::MentionOfNode,
            node: AccountId(0),
            slot,
            hour: 0,
        }
    }

    fn slot_a() -> SampleAttribute {
        SampleAttribute::profile(ProfileAttribute::ListsPerDay, 1.0)
    }

    fn slot_b() -> SampleAttribute {
        SampleAttribute::profile(ProfileAttribute::FriendsCount, 10.0)
    }

    #[test]
    fn slot_stats_count_distinct_spammers() {
        let data = vec![
            collected(1, slot_a()),
            collected(1, slot_a()),
            collected(2, slot_a()),
            collected(3, slot_b()),
        ];
        let flags = vec![true, true, true, false];
        let stats = per_slot_stats(&data, &flags);
        assert_eq!(stats[&slot_a()].tweets, 3);
        assert_eq!(stats[&slot_a()].spams, 3);
        assert_eq!(stats[&slot_a()].num_spammers(), 2);
        assert_eq!(stats[&slot_b()].spams, 0);
    }

    #[test]
    fn attribute_stats_pool_sample_values() {
        let other_value = SampleAttribute::profile(ProfileAttribute::ListsPerDay, 0.5);
        let data = vec![collected(1, slot_a()), collected(2, other_value)];
        let flags = vec![true, true];
        let stats = per_attribute_stats(&data, &flags);
        let kind = AttributeKind::Profile(ProfileAttribute::ListsPerDay);
        assert_eq!(stats[&kind].tweets, 2);
        assert_eq!(stats[&kind].num_spammers(), 2);
    }

    #[test]
    fn pge_is_spammers_per_node_hour() {
        let mut report = MonitorReport {
            collected: vec![collected(1, slot_a()), collected(2, slot_a())],
            ..Default::default()
        };
        report.node_hours.insert(slot_a(), 10.0);
        let ranking = pge_ranking(&report, &[true, true]);
        assert_eq!(ranking.len(), 1);
        assert_eq!(ranking[0].spammers, 2);
        assert!((ranking[0].pge - 0.2).abs() < 1e-12);
    }

    #[test]
    fn ranking_is_descending() {
        let mut report = MonitorReport {
            collected: vec![
                collected(1, slot_a()),
                collected(2, slot_a()),
                collected(3, slot_b()),
            ],
            ..Default::default()
        };
        report.node_hours.insert(slot_a(), 10.0);
        report.node_hours.insert(slot_b(), 10.0);
        let ranking = pge_ranking(&report, &[true, true, true]);
        assert_eq!(ranking[0].slot, slot_a());
        assert!(ranking[0].pge >= ranking[1].pge);
    }

    #[test]
    fn overall_pge_pools_everything() {
        let mut report = MonitorReport {
            collected: vec![collected(1, slot_a()), collected(1, slot_b())],
            ..Default::default()
        };
        report.node_hours.insert(slot_a(), 5.0);
        report.node_hours.insert(slot_b(), 5.0);
        // Same spammer under two slots counts once overall.
        let pge = overall_pge(&report, &[true, true]);
        assert!((pge - 0.1).abs() < 1e-12);
    }

    #[test]
    fn zero_node_hours_is_zero_pge() {
        let report = MonitorReport::default();
        assert_eq!(overall_pge(&report, &[]), 0.0);
    }

    fn collected_at(author: u32, slot: SampleAttribute, hour: u64) -> CollectedTweet {
        CollectedTweet {
            hour,
            ..collected(author, slot)
        }
    }

    #[test]
    fn per_hour_stats_is_dense_and_counts_distinct_spammers() {
        let data = vec![
            collected_at(1, slot_a(), 0),
            collected_at(1, slot_a(), 0),
            collected_at(2, slot_a(), 2),
            collected_at(3, slot_b(), 2),
            collected_at(4, slot_b(), 9), // past `hours`, ignored
        ];
        let flags = vec![true, true, true, false, true];
        let stats = per_hour_stats(&data, &flags, 3, 0);
        assert_eq!(stats.len(), 3);
        assert_eq!(
            stats[0],
            HourStats {
                hour: 0,
                tweets: 2,
                spams: 2,
                spammers: 1,
            }
        );
        assert_eq!(
            stats[1],
            HourStats {
                hour: 1,
                ..Default::default()
            }
        );
        assert_eq!(stats[2].tweets, 2);
        assert_eq!(stats[2].spams, 1);
        assert_eq!(stats[2].spammers, 1);
    }

    #[test]
    fn per_hour_attribute_pge_amortizes_node_hours() {
        let data = vec![
            collected_at(1, slot_a(), 0),
            collected_at(2, slot_a(), 0),
            collected_at(3, slot_a(), 1),
        ];
        let flags = vec![true, true, true];
        // 8 node-hours over 2 hours → 4 node-hours per hour.
        let node_hours: HashMap<SampleAttribute, f64> = [(slot_a(), 8.0)].into_iter().collect();
        let pge = per_hour_attribute_pge(&data, &flags, &node_hours, 2, 0);
        let values = &pge[&slot_a().kind];
        assert_eq!(values.len(), 2);
        assert!((values[0] - 2.0 / 4.0).abs() < 1e-12);
        assert!((values[1] - 1.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn per_hour_attribute_pge_skips_unobserved_attributes() {
        let data = vec![collected_at(1, slot_a(), 0)];
        let node_hours: HashMap<SampleAttribute, f64> =
            [(slot_a(), 0.0), (slot_b(), 4.0)].into_iter().collect();
        let pge = per_hour_attribute_pge(&data, &[true], &node_hours, 1, 0);
        assert!(!pge.contains_key(&slot_a().kind), "zero budget must drop");
        assert_eq!(pge[&slot_b().kind], vec![0.0]);
    }

    #[test]
    fn per_hour_helpers_tolerate_empty_runs() {
        assert!(per_hour_stats(&[], &[], 0, 0).is_empty());
        assert!(per_hour_attribute_pge(&[], &[], &HashMap::new(), 0, 0).is_empty());
    }
}
