//! Attribute-based pseudo-honeypot node selection (§III-B to §III-D).
//!
//! Selection screens the account directory through the public REST facade
//! only: profile attributes for C1 slots, recent public hashtag usage
//! against the analytics provider's top-k lists for C2/C3 slots, and the
//! paper's Active/Dormant screening (§III-D) to keep the network portable
//! over accounts that still attract attention.

use std::collections::HashSet;

use ph_twitter_sim::engine::Engine;
use ph_twitter_sim::topics::Trend;
use ph_twitter_sim::AccountId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::attributes::{matches_sample, AttributeKind, SampleAttribute, TrendAttribute};
use crate::network::{NodeAssignment, PseudoHoneypotNetwork};

/// Selection parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectorConfig {
    /// Accounts selected per slot (paper: 10 per profile sample value, 100
    /// per topical attribute — expressed here as per-slot quotas).
    pub accounts_per_slot: usize,
    /// Enable the Active/Dormant screening of §III-D.
    pub active_only: bool,
    /// An account is Dormant when it has not posted within this window.
    pub dormant_after_hours: u64,
    /// Size of the top-k hashtag/topic lists consulted for C2/C3 matching
    /// (the paper uses the provider's top 10).
    pub top_k: usize,
    /// Prefer candidates drawing the most recent mention attention — the
    /// paper's portability strategy of "smartly drop[ping] the ineffective
    /// ones, always keeping those that attract spammers' interests the
    /// most" (§III-A/D). When false, candidates are picked uniformly.
    pub rank_by_attention: bool,
}

impl Default for SelectorConfig {
    fn default() -> Self {
        Self {
            accounts_per_slot: 10,
            active_only: true,
            dormant_after_hours: 24,
            top_k: 10,
            rank_by_attention: true,
        }
    }
}

/// Selects a pseudo-honeypot network over the given slots.
///
/// Each account is assigned to at most one slot ("each account satisfying
/// at least one attribute", 2,400 *distinct* nodes). Candidates per slot
/// are shuffled with `seed` before picking, so repeated hourly selections
/// rotate through the eligible population (the paper's portability
/// property).
pub fn select_network(
    engine: &Engine,
    slots: &[SampleAttribute],
    config: &SelectorConfig,
    seed: u64,
) -> PseudoHoneypotNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    let rest = engine.rest();
    let topics = engine.topics();
    let now_hours = engine.now().whole_hours();

    // Pre-compute the top-k lists once per selection round.
    let top_by_category: Vec<(ph_twitter_sim::TopicCategory, HashSet<String>)> =
        ph_twitter_sim::TopicCategory::ALL
            .iter()
            .map(|&c| {
                (
                    c,
                    topics
                        .top_hashtags(c, config.top_k)
                        .into_iter()
                        .map(str::to_string)
                        .collect(),
                )
            })
            .collect();
    let top_trending = |t: Trend| -> HashSet<String> {
        topics
            .trending(t, config.top_k)
            .into_iter()
            .map(str::to_string)
            .collect()
    };
    let up = top_trending(Trend::Up);
    let down = top_trending(Trend::Down);
    let popular = top_trending(Trend::Popular);
    let any_trending: HashSet<String> = up.union(&down).cloned().chain(popular.clone()).collect();

    // One pass over the directory computes all topical/activity facts, so
    // the per-slot scans below are branch-and-compare only. This is what
    // keeps a full selection round fast enough to run every simulated hour
    // ("the account screening is extremely fast", §III-B).
    struct Facts {
        eligible: bool,
        posted: bool,
        no_hashtags: bool,
        category: [bool; 8],
        trending_up: bool,
        trending_down: bool,
        popular: bool,
        any_trending: bool,
    }
    let facts: Vec<Facts> = rest
        .profiles()
        .map(|profile| {
            let id = profile.id;
            let activity = rest.activity(id);
            let active = if !config.active_only {
                true
            } else {
                match activity.last_post_at {
                    Some(t) => {
                        now_hours.saturating_sub(t.whole_hours()) <= config.dormant_after_hours
                    }
                    // Early in a simulation nobody has posted yet; treat
                    // unknown history as eligible rather than starving
                    // selection.
                    None => now_hours < config.dormant_after_hours,
                }
            };
            let tags = rest.recent_hashtags(id);
            let mut category = [false; 8];
            for (slot, (_, top)) in category.iter_mut().zip(&top_by_category) {
                *slot = tags.iter().any(|h| top.contains(h));
            }
            Facts {
                eligible: active && !rest.is_suspended(id),
                posted: activity.last_post_at.is_some(),
                no_hashtags: tags.is_empty(),
                category,
                trending_up: tags.iter().any(|h| up.contains(h)),
                trending_down: tags.iter().any(|h| down.contains(h)),
                popular: tags.iter().any(|h| popular.contains(h)),
                any_trending: tags.iter().any(|h| any_trending.contains(h)),
            }
        })
        .collect();

    let mut taken: HashSet<AccountId> = HashSet::new();
    let mut nodes = Vec::new();
    let mut shortfalls = Vec::new();

    for slot in slots {
        let mut candidates: Vec<AccountId> = Vec::new();
        for (profile, f) in rest.profiles().zip(&facts) {
            let id = profile.id;
            if !f.eligible || taken.contains(&id) {
                continue;
            }
            let matches = match slot.kind {
                AttributeKind::Profile(attr) => {
                    let target = slot.sample_value.expect("profile slot has sample value");
                    matches_sample(attr.value_of(profile), target)
                }
                AttributeKind::Hashtag(Some(category)) => {
                    let index = ph_twitter_sim::TopicCategory::ALL
                        .iter()
                        .position(|&c| c == category)
                        .expect("category is in ALL");
                    f.category[index]
                }
                AttributeKind::Hashtag(None) => f.posted && f.no_hashtags,
                AttributeKind::Trending(t) => match t {
                    TrendAttribute::TrendingUp => f.trending_up,
                    TrendAttribute::TrendingDown => f.trending_down,
                    TrendAttribute::Popular => f.popular,
                    TrendAttribute::NonTrending => f.posted && !f.any_trending,
                },
            };
            if matches {
                candidates.push(id);
            }
        }
        candidates.shuffle(&mut rng);
        if config.rank_by_attention {
            // Stable sort after the shuffle: attention decides, ties rotate.
            candidates.sort_by(|&a, &b| {
                let ma = rest.activity(a).recent_mentions_per_hour;
                let mb = rest.activity(b).recent_mentions_per_hour;
                mb.total_cmp(&ma)
            });
        }
        let quota = config.accounts_per_slot;
        if candidates.len() < quota {
            shortfalls.push((*slot, quota - candidates.len()));
        }
        for id in candidates.into_iter().take(quota) {
            taken.insert(id);
            nodes.push(NodeAssignment {
                account: id,
                slot: *slot,
            });
        }
    }
    PseudoHoneypotNetwork::new(nodes, shortfalls)
}

/// Selects `count` random, non-suspended accounts — the paper's *non
/// pseudo-honeypot* comparison group (§V-E). Assignments carry a synthetic
/// "no hashtag" slot purely so they fit the same network type.
pub fn select_random_network(engine: &Engine, count: usize, seed: u64) -> PseudoHoneypotNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    let rest = engine.rest();
    let mut ids: Vec<AccountId> = rest
        .profiles()
        .map(|p| p.id)
        .filter(|&id| !rest.is_suspended(id))
        .collect();
    ids.shuffle(&mut rng);
    let slot = SampleAttribute::hashtag(None);
    let nodes = ids
        .into_iter()
        .take(count)
        .map(|account| NodeAssignment { account, slot })
        .collect();
    PseudoHoneypotNetwork::new(nodes, Vec::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::ProfileAttribute;
    use ph_twitter_sim::engine::SimConfig;

    fn engine(hours: u64) -> Engine {
        let mut e = Engine::new(SimConfig {
            seed: 11,
            num_organic: 1_500,
            num_campaigns: 2,
            accounts_per_campaign: 5,
            ..Default::default()
        });
        e.run_hours(hours);
        e
    }

    #[test]
    fn profile_slots_select_matching_accounts() {
        let e = engine(0);
        let slots = vec![
            SampleAttribute::profile(ProfileAttribute::FriendsCount, 100.0),
            SampleAttribute::profile(ProfileAttribute::FollowersCount, 1_000.0),
        ];
        let net = select_network(&e, &slots, &SelectorConfig::default(), 1);
        assert!(!net.is_empty());
        let rest = e.rest();
        for node in net.nodes() {
            let p = rest.profile(node.account).unwrap();
            match node.slot.kind {
                AttributeKind::Profile(attr) => {
                    assert!(matches_sample(
                        attr.value_of(p),
                        node.slot.sample_value.unwrap()
                    ));
                }
                _ => panic!("unexpected slot kind"),
            }
        }
    }

    #[test]
    fn accounts_are_not_double_assigned() {
        let e = engine(0);
        let net = select_network(
            &e,
            &SampleAttribute::standard_slots(),
            &SelectorConfig::default(),
            2,
        );
        let ids = net.account_ids();
        let distinct: HashSet<_> = ids.iter().collect();
        assert_eq!(ids.len(), distinct.len(), "duplicate node assignment");
    }

    #[test]
    fn standard_network_fills_most_profile_slots() {
        let e = engine(0);
        let net = select_network(
            &e,
            &SampleAttribute::standard_slots(),
            &SelectorConfig::default(),
            3,
        );
        // 123 slots × 10 = 1,230 max. Topical slots need posting history
        // (hour 0 has none for hashtag matching), so expect at least the
        // profile side to fill substantially.
        assert!(
            net.len() >= 800,
            "only {} nodes selected (shortfalls: {:?})",
            net.len(),
            net.shortfalls().len()
        );
    }

    #[test]
    fn hashtag_slots_fill_after_warmup() {
        let e = engine(8);
        let slots: Vec<SampleAttribute> = ph_twitter_sim::TopicCategory::ALL
            .iter()
            .map(|&c| SampleAttribute::hashtag(Some(c)))
            .collect();
        let net = select_network(&e, &slots, &SelectorConfig::default(), 4);
        assert!(
            net.len() >= slots.len(),
            "topical selection too sparse: {} nodes",
            net.len()
        );
    }

    #[test]
    fn trending_slots_fill_after_warmup() {
        let e = engine(12);
        let slots: Vec<SampleAttribute> = TrendAttribute::ALL
            .iter()
            .map(|&t| SampleAttribute::trending(t))
            .collect();
        let net = select_network(&e, &slots, &SelectorConfig::default(), 5);
        let sizes = net.slot_sizes();
        // Non-trending accounts always exist; the others depend on current
        // topic dynamics but should mostly be found after 12 hours.
        assert!(
            sizes
                .get(&SampleAttribute::trending(TrendAttribute::NonTrending))
                .copied()
                .unwrap_or(0)
                > 0
        );
        assert!(net.len() > 10);
    }

    #[test]
    fn selection_is_seed_deterministic_and_rotates() {
        let e = engine(2);
        let slots = vec![SampleAttribute::profile(
            ProfileAttribute::FriendsCount,
            100.0,
        )];
        // Uniform picking isolates the seed-driven rotation property
        // (attention ranking would pin the order to observed mentions).
        let config = SelectorConfig {
            rank_by_attention: false,
            ..Default::default()
        };
        let a = select_network(&e, &slots, &config, 7);
        let b = select_network(&e, &slots, &config, 7);
        let c = select_network(&e, &slots, &config, 8);
        assert_eq!(a, b);
        assert_ne!(
            a.account_ids(),
            c.account_ids(),
            "different seeds should rotate node sets"
        );
    }

    #[test]
    fn attention_ranking_prefers_mentioned_accounts() {
        let e = engine(10);
        let slots = vec![SampleAttribute::profile(
            ProfileAttribute::FriendsCount,
            100.0,
        )];
        let ranked = select_network(&e, &slots, &SelectorConfig::default(), 7);
        let uniform = select_network(
            &e,
            &slots,
            &SelectorConfig {
                rank_by_attention: false,
                ..Default::default()
            },
            7,
        );
        let rest = e.rest();
        let mean_attention = |net: &crate::network::PseudoHoneypotNetwork| {
            let ids = net.account_ids();
            ids.iter()
                .map(|&id| rest.activity(id).recent_mentions_per_hour)
                .sum::<f64>()
                / ids.len().max(1) as f64
        };
        assert!(
            mean_attention(&ranked) >= mean_attention(&uniform),
            "ranked selection should not have less attention than uniform"
        );
    }

    #[test]
    fn dormant_accounts_are_screened_out() {
        let mut e = Engine::new(SimConfig {
            seed: 12,
            num_organic: 400,
            num_campaigns: 1,
            accounts_per_campaign: 3,
            ..Default::default()
        });
        e.run_hours(30);
        let slots = vec![SampleAttribute::profile(
            ProfileAttribute::FriendsCount,
            100.0,
        )];
        let strict = SelectorConfig {
            dormant_after_hours: 2,
            ..Default::default()
        };
        let lax = SelectorConfig {
            active_only: false,
            ..Default::default()
        };
        let strict_net = select_network(&e, &slots, &strict, 1);
        let lax_net = select_network(&e, &slots, &lax, 1);
        // Strict screening can only shrink the candidate pool.
        assert!(strict_net.len() <= lax_net.len());
        let rest = e.rest();
        for node in strict_net.nodes() {
            let last = rest.activity(node.account).last_post_at.unwrap();
            assert!(e.now().whole_hours() - last.whole_hours() <= 2);
        }
    }

    #[test]
    fn random_network_has_requested_size() {
        let e = engine(1);
        let net = select_random_network(&e, 100, 9);
        assert_eq!(net.len(), 100);
        let distinct: HashSet<_> = net.account_ids().into_iter().collect();
        assert_eq!(distinct.len(), 100);
    }
}
