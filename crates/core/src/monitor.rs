//! Pseudo-honeypot monitoring (§III-E): hourly-switched streaming
//! collection of the tweets crossing the node set.
//!
//! The runner owns the selection/switch/poll loop: every `switch_interval`
//! hours it re-selects the node set (portability, §III-D), re-points the
//! streaming filter, steps the engine, and tags every collected tweet with
//! the slot of the node it crossed — the key that all per-attribute
//! statistics (Tables V–VI, Figures 3–5) aggregate over.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};

use ph_exec::{ExecConfig, LongLivedStage};
use ph_twitter_sim::engine::Engine;
use ph_twitter_sim::{AccountId, Tweet};
use serde::{Deserialize, Serialize};

use crate::attributes::SampleAttribute;
use crate::network::PseudoHoneypotNetwork;
use crate::selection::{select_network, SelectorConfig};

/// Which of the paper's three collection categories a tweet falls into
/// (§III-E). Categories (2) and (3) are distinguished only *after*
/// classification, so the monitor records them jointly as `MentionOfNode`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TweetCategory {
    /// Category (1): activity of a pseudo-honeypot account itself.
    NodeActivity,
    /// Categories (2)/(3): another account mentioning a node.
    MentionOfNode,
}

/// One collected tweet with its monitoring context.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollectedTweet {
    /// The tweet as delivered by the streaming API.
    pub tweet: Tweet,
    /// Collection category.
    pub category: TweetCategory,
    /// The node the tweet crossed: the mentioned node for
    /// [`TweetCategory::MentionOfNode`], the author for
    /// [`TweetCategory::NodeActivity`].
    pub node: AccountId,
    /// The slot that node was selected for at collection time.
    pub slot: SampleAttribute,
    /// Hour (since simulation start) of collection.
    pub hour: u64,
}

/// Everything a monitoring run produced.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MonitorReport {
    /// Collected tweets in delivery order.
    pub collected: Vec<CollectedTweet>,
    /// Node-hours accumulated per slot (`G_i · T_i` of the PGE formula).
    pub node_hours: HashMap<SampleAttribute, f64>,
    /// Total hours monitored.
    pub hours: u64,
    /// Tweets shed by the streaming buffer (0 unless overloaded).
    pub dropped: u64,
}

impl MonitorReport {
    /// Distinct accounts observed (authors of collected tweets).
    pub fn unique_authors(&self) -> usize {
        self.collected
            .iter()
            .map(|c| c.tweet.author)
            .collect::<HashSet<AccountId>>()
            .len()
    }

    /// Collected tweets whose category is `MentionOfNode`.
    pub fn mentions(&self) -> impl Iterator<Item = &CollectedTweet> {
        self.collected
            .iter()
            .filter(|c| c.category == TweetCategory::MentionOfNode)
    }

    /// Folds a later run segment into this report: collected tweets are
    /// appended in order, `node_hours` accumulate per slot, and `hours` /
    /// `dropped` add up — the semantics a resumed run needs so that
    /// `run(k)` merged with `run(N−k)` equals `run(N)`.
    pub fn merge(&mut self, later: &MonitorReport) {
        self.collected.extend(later.collected.iter().cloned());
        for (slot, node_hours) in &later.node_hours {
            *self.node_hours.entry(*slot).or_insert(0.0) += node_hours;
        }
        self.hours += later.hours;
        self.dropped += later.dropped;
    }
}

/// Configuration of a monitoring run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunnerConfig {
    /// Slots to select each round (defaults to the full Table I/II plan).
    pub slots: Vec<SampleAttribute>,
    /// Selection parameters.
    pub selector: SelectorConfig,
    /// Hours between node-set switches (paper: 1).
    pub switch_interval_hours: u64,
    /// Seed for selection rotation.
    pub seed: u64,
    /// Streaming buffer capacity (tweets). Small values simulate a slow
    /// consumer: the stream sheds the oldest buffered tweets, counted in
    /// [`MonitorReport::dropped`].
    pub buffer_capacity: usize,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        Self {
            slots: SampleAttribute::standard_slots(),
            selector: SelectorConfig::default(),
            switch_interval_hours: 1,
            seed: 7,
            buffer_capacity: ph_twitter_sim::api::DEFAULT_QUEUE_CAPACITY,
        }
    }
}

/// Resumable cursor of a partially completed monitoring run.
///
/// The runner updates the cursor at every hour boundary; a durable sink
/// (`ph-store`) checkpoints it so a crashed run can continue from the last
/// completed hour. Everything else a resume needs — the engine itself — is
/// reconstructed deterministically by replaying the simulation up to
/// [`RunState::next_hour`] from the original seed.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RunState {
    /// Next run-relative hour index to simulate (`0..total_hours`).
    pub next_hour: u64,
    /// Switch rounds completed so far (selection-seed offset).
    pub round: u64,
    /// Current node-set membership, sorted by account id so serialized
    /// checkpoints are byte-stable. Restoring it lets a resume that lands
    /// mid-switch-interval re-point the streaming filter without
    /// re-selecting (re-selection at the later engine state would pick a
    /// different network).
    pub membership: Vec<(AccountId, SampleAttribute)>,
}

/// Where a monitoring run delivers its progress.
///
/// The in-memory default ([`MemorySink`]) makes [`Runner::run`] behave as
/// it always has; `ph-store`'s durable sink appends every tweet to a
/// segment log and checkpoints the [`RunState`] hourly.
pub trait MonitorSink {
    /// Called once per collected tweet, in delivery order.
    ///
    /// # Errors
    ///
    /// Durable sinks surface I/O failures; the runner aborts the segment.
    fn on_tweet(&mut self, collected: &CollectedTweet) -> std::io::Result<()>;

    /// Called with every tweet of one delivery batch (one simulated hour),
    /// in delivery order. The default forwards record-by-record to
    /// [`MonitorSink::on_tweet`]; durable sinks override it to amortize
    /// framing and syscalls across the batch.
    ///
    /// # Errors
    ///
    /// Durable sinks surface I/O failures; the runner aborts the segment.
    fn on_batch(&mut self, batch: &[CollectedTweet]) -> std::io::Result<()> {
        for collected in batch {
            self.on_tweet(collected)?;
        }
        Ok(())
    }

    /// Called at the end of every simulated hour with the updated cursor
    /// and the segment report accumulated so far.
    ///
    /// # Errors
    ///
    /// Durable sinks surface I/O failures; the runner aborts the segment.
    fn on_hour(&mut self, state: &RunState, segment: &MonitorReport) -> std::io::Result<()>;

    /// Whether the runner should also keep collected tweets in the
    /// in-memory report. Durable sinks return `false` so arbitrarily long
    /// runs stay O(1) in memory.
    fn retain_in_memory(&self) -> bool {
        true
    }
}

/// The no-op sink behind the classic in-memory [`Runner::run`].
#[derive(Debug, Clone, Copy, Default)]
pub struct MemorySink;

impl MonitorSink for MemorySink {
    fn on_tweet(&mut self, _collected: &CollectedTweet) -> std::io::Result<()> {
        Ok(())
    }

    fn on_hour(&mut self, _state: &RunState, _segment: &MonitorReport) -> std::io::Result<()> {
        Ok(())
    }
}

/// Bucket edges for the tweets-collected-per-hour distribution:
/// 1, 2, 5 × powers of ten up to 100k, overflow above.
fn per_hour_volume_buckets() -> Vec<f64> {
    let mut buckets = Vec::with_capacity(18);
    let mut decade = 1.0;
    while decade <= 100_000.0 {
        for mult in [1.0, 2.0, 5.0] {
            buckets.push(decade * mult);
        }
        decade *= 10.0;
    }
    buckets
}

/// Applies one switch round to the run cursor and segment accounting:
/// membership replaced (sorted into the checkpointable cursor), the
/// `AttributeSwitch` journal event emitted, node-hours accrued for the
/// coming interval. Shared by the batch loop and the streaming monitor so
/// both record the identical switch history.
fn apply_switch(
    config: &RunnerConfig,
    state: &mut RunState,
    segment: &mut MonitorReport,
    network: &PseudoHoneypotNetwork,
    hour_index: u64,
    total_hours: u64,
) -> HashMap<AccountId, SampleAttribute> {
    state.round += 1;
    let membership = network.membership();
    state.membership = membership.iter().map(|(&a, &s)| (a, s)).collect();
    state.membership.sort_by_key(|&(a, _)| a.0);
    ph_telemetry::journal_emit(ph_telemetry::TelemetryEvent::AttributeSwitch {
        hour: hour_index,
        round: state.round - 1,
        nodes: membership.len() as u64,
    });
    let interval = config
        .switch_interval_hours
        .max(1)
        .min(total_hours - hour_index) as f64;
    for (slot, count) in network.slot_sizes() {
        *segment.node_hours.entry(slot).or_insert(0.0) += count as f64 * interval;
    }
    membership
}

/// Per-hour telemetry shared by the batch loop and the streaming monitor:
/// collected counter, per-hour series, the `HourTick` journal event, and
/// the live progress line.
fn record_hour_telemetry(
    hour_index: u64,
    total_hours: u64,
    collected_this_hour: u64,
    dropped_this_hour: u64,
    segment_collected: u64,
    segment_dropped: u64,
) {
    ph_telemetry::cached_counter!("monitor.tweets_collected").add(collected_this_hour);
    ph_telemetry::series("monitor.collected").add(hour_index, collected_this_hour as f64);
    ph_telemetry::series("monitor.dropped").add(hour_index, dropped_this_hour as f64);
    ph_telemetry::journal_emit(ph_telemetry::TelemetryEvent::HourTick {
        hour: hour_index,
        collected: collected_this_hour,
        dropped: dropped_this_hour,
    });
    // Alert rules are evaluated at every hour boundary — batch and
    // streaming alike. With none installed this is one relaxed atomic
    // load; transitions are edge-triggered, so callers that re-evaluate
    // after recording more per-hour data (the daemon does, once latency
    // for the hour is known) see exactly one event per transition.
    ph_telemetry::alert_evaluate(hour_index);
    if ph_telemetry::progress_enabled() {
        ph_telemetry::progress_update(&format!(
            "{} hour {}/{} · {} tweets · {} shed",
            ph_telemetry::progress_bar(hour_index + 1, total_hours, 24),
            hour_index + 1,
            total_hours,
            segment_collected,
            segment_dropped
        ));
    }
}

/// End-of-segment telemetry shared by the batch loop and the streaming
/// monitor: total-dropped counter, shed warning, per-slot node-hour gauges.
fn finish_segment_telemetry(segment: &MonitorReport, buffer_capacity: usize) {
    ph_telemetry::progress_done();
    ph_telemetry::cached_counter!("monitor.tweets_dropped").add(segment.dropped);
    if segment.dropped > 0 {
        ph_telemetry::log_warn!(
            "streaming buffer shed {} tweets (capacity {})",
            segment.dropped,
            buffer_capacity
        );
    }
    for (slot, node_hours) in &segment.node_hours {
        ph_telemetry::gauge(&format!("monitor.node_hours.{slot}")).set(*node_hours);
    }
}

/// The monitoring runner. See the module docs for the loop structure.
#[derive(Debug, Clone)]
pub struct Runner {
    config: RunnerConfig,
    exec: ExecConfig,
    /// Cooperative stop request, checked at hour boundaries. Lives on the
    /// runner (not the serializable [`RunnerConfig`]) so signal handlers
    /// can ask a run to checkpoint-and-exit between hours.
    stop: Option<Arc<AtomicBool>>,
}

impl Runner {
    /// Creates a sequential runner.
    pub fn new(config: RunnerConfig) -> Self {
        Self::with_exec(config, ExecConfig::sequential())
    }

    /// Creates a runner that shards per-hour categorization across the
    /// given execution configuration. Collected output is byte-identical
    /// to [`Runner::new`] at any thread count (see `ph-exec`).
    pub fn with_exec(config: RunnerConfig, exec: ExecConfig) -> Self {
        Self {
            config,
            exec,
            stop: None,
        }
    }

    /// Attaches a cooperative stop flag: once set (e.g. by a SIGINT
    /// handler), [`Runner::run_segment`] stops cleanly at the next hour
    /// boundary — every completed hour fully delivered to the sink, the
    /// cursor pointing at the first unsimulated hour — so the run can be
    /// resumed exactly like one bounded by `segment_hours`.
    #[must_use]
    pub fn with_stop_flag(mut self, stop: Arc<AtomicBool>) -> Self {
        self.stop = Some(stop);
        self
    }

    /// Whether the attached stop flag (if any) has been raised.
    pub fn stop_requested(&self) -> bool {
        self.stop
            .as_ref()
            .is_some_and(|flag| flag.load(Ordering::Relaxed))
    }

    /// The configuration.
    pub fn config(&self) -> &RunnerConfig {
        &self.config
    }

    /// The execution configuration.
    pub fn exec(&self) -> &ExecConfig {
        &self.exec
    }

    /// Monitors `engine` for `hours` hours, switching the node set every
    /// `switch_interval_hours`.
    pub fn run(&self, engine: &mut Engine, hours: u64) -> MonitorReport {
        self.run_with_networks(engine, hours, self.standard_networks())
    }

    /// Monitors with an externally supplied network per switch round —
    /// used by the baselines (random node sets, fixed honeypot sets).
    pub fn run_with_networks<F>(
        &self,
        engine: &mut Engine,
        hours: u64,
        make_network: F,
    ) -> MonitorReport
    where
        F: FnMut(&Engine, u64) -> PseudoHoneypotNetwork,
    {
        let mut state = RunState::default();
        self.run_segment(
            engine,
            &mut state,
            hours,
            hours,
            make_network,
            &mut MemorySink,
        )
        .expect("in-memory monitoring cannot fail")
    }

    /// Monitors `engine` from [`RunState::next_hour`] for up to
    /// `segment_hours` hours of a `total_hours`-hour run, delivering every
    /// collected tweet and every hour boundary to `sink`.
    ///
    /// Hour indices, switch rounds, and node-hour accrual are all relative
    /// to the *whole* run, so `run_segment(k)` followed by a restored
    /// `run_segment(N−k)` — on an engine deterministically fast-forwarded
    /// to hour `k` — produces, merged, exactly the report (and exactly the
    /// tweet stream) of an uninterrupted `run(N)`.
    ///
    /// Returns the report of **this segment only**; accumulate across
    /// segments with [`MonitorReport::merge`]. When the sink declines
    /// in-memory retention the returned `collected` stays empty.
    ///
    /// # Errors
    ///
    /// Propagates sink I/O errors; the segment stops at the failed hour.
    pub fn run_segment<F, S>(
        &self,
        engine: &mut Engine,
        state: &mut RunState,
        total_hours: u64,
        segment_hours: u64,
        mut make_network: F,
        sink: &mut S,
    ) -> std::io::Result<MonitorReport>
    where
        F: FnMut(&Engine, u64) -> PseudoHoneypotNetwork,
        S: MonitorSink,
    {
        let _run_span = ph_telemetry::span("monitor.run");
        let _run_phase = ph_trace::phase("monitor.run");
        let switch_latency = ph_telemetry::histogram(
            "monitor.switch_latency_ms",
            &ph_telemetry::default_latency_buckets_ms(),
        );
        let tweets_per_hour =
            ph_telemetry::histogram("monitor.tweets_per_hour", &per_hour_volume_buckets());

        let streaming = engine.streaming();
        let subscription = streaming.track_mentions_with_capacity([], self.config.buffer_capacity);
        let mut membership: HashMap<AccountId, SampleAttribute> =
            state.membership.iter().copied().collect();
        if !membership.is_empty() {
            // Resumed mid-interval: re-point the stream at the node set the
            // checkpoint recorded.
            streaming
                .set_filter(subscription, membership.keys().copied())
                .expect("subscription is open");
        }
        let mut segment = MonitorReport::default();
        let start = state.next_hour;
        let end = total_hours.min(start.saturating_add(segment_hours));
        let mut segment_collected = 0u64;
        let mut dropped_before = 0u64;

        for hour_index in start..end {
            if self.stop_requested() {
                break;
            }
            if hour_index % self.config.switch_interval_hours.max(1) == 0 {
                let switch_span = ph_telemetry::span("switch");
                let _switch_phase = ph_trace::phase("monitor.switch");
                let network = make_network(engine, state.round);
                membership = apply_switch(
                    &self.config,
                    state,
                    &mut segment,
                    &network,
                    hour_index,
                    total_hours,
                );
                streaming
                    .set_filter(subscription, membership.keys().copied())
                    .expect("subscription is open");
                switch_latency.record(switch_span.elapsed_ms());
            }
            let hour = engine.now().whole_hours();
            engine.step_hour();
            let polled: Vec<Tweet> = streaming.poll(subscription).expect("subscription is open");
            // Categorization is a pure per-tweet function of the (fixed for
            // this hour) membership map, so it shards freely by author; the
            // ordered merge hands the batch back in delivery order, making
            // the sink see the identical stream at any thread count.
            let members = &membership;
            let batch: Vec<CollectedTweet> = ph_exec::run(
                &self.exec,
                "monitor.categorize",
                polled,
                |tweet: &Tweet| u64::from(tweet.author.0),
                |_worker| |tweet: Tweet| Self::categorize(tweet, members, hour),
            )
            .into_iter()
            .flatten()
            .collect();
            sink.on_batch(&batch)?;
            let collected_this_hour = batch.len() as u64;
            if sink.retain_in_memory() {
                segment.collected.extend(batch);
            }
            tweets_per_hour.record(collected_this_hour as f64);
            segment.hours += 1;
            segment.dropped = streaming.dropped(subscription).unwrap_or(0);
            let dropped_this_hour = segment.dropped - dropped_before;
            dropped_before = segment.dropped;
            segment_collected += collected_this_hour;
            record_hour_telemetry(
                hour_index,
                total_hours,
                collected_this_hour,
                dropped_this_hour,
                segment_collected,
                segment.dropped,
            );
            state.next_hour = hour_index + 1;
            sink.on_hour(state, &segment)?;
        }
        finish_segment_telemetry(&segment, self.config.buffer_capacity);
        streaming.close(subscription);
        Ok(segment)
    }

    /// The standard selection strategy as a `make_network` closure: slot
    /// plan + selector from the config, selection seed rotated per round.
    /// [`Runner::run`] and the store-backed resumable runs share it so a
    /// resumed run re-selects exactly as the original would have.
    pub fn standard_networks(&self) -> impl FnMut(&Engine, u64) -> PseudoHoneypotNetwork + '_ {
        move |engine, round| {
            select_network(
                engine,
                &self.config.slots,
                &self.config.selector,
                self.config.seed.wrapping_add(round),
            )
        }
    }

    /// Tags one delivered tweet with node/slot context.
    fn categorize(
        tweet: Tweet,
        membership: &HashMap<AccountId, SampleAttribute>,
        hour: u64,
    ) -> Option<CollectedTweet> {
        // Mention of a node takes precedence (categories (2)/(3)); a node's
        // own posts are category (1).
        if let Some((&node, &slot)) = tweet
            .mentions
            .iter()
            .find_map(|m| membership.get_key_value(m))
        {
            return Some(CollectedTweet {
                tweet,
                category: TweetCategory::MentionOfNode,
                node,
                slot,
                hour,
            });
        }
        if let Some((&node, &slot)) = membership.get_key_value(&tweet.author) {
            return Some(CollectedTweet {
                tweet,
                category: TweetCategory::NodeActivity,
                node,
                slot,
                hour,
            });
        }
        // Raced a filter switch: delivered under the previous node set.
        None
    }
}

/// Shared context the persistent categorize workers read: the membership
/// map of the current switch round and the absolute hour being collected.
/// The daemon updates it between batches (batches are synchronous, so
/// writers never race the workers).
struct CategorizeCtx {
    membership: HashMap<AccountId, SampleAttribute>,
    hour: u64,
}

/// The daemon-facing twin of [`Runner::run_segment`]: the same hourly
/// switch → step → categorize → account cycle, but driven by *externally
/// delivered* tweets (a socket ingest queue) instead of an engine-attached
/// subscription poll, and running the categorize stage on a persistent
/// [`LongLivedStage`] worker pool instead of a per-hour scoped pool.
///
/// The engine passed to [`begin_hour`](StreamMonitor::begin_hour) is the
/// daemon's *replica*: a deterministic re-simulation stepped once per
/// wire-marked hour so that network selection and REST lookups see exactly
/// the state the producer's engine had. Because the shared
/// [`apply_switch`] / [`record_hour_telemetry`] helpers do the bookkeeping,
/// the journal, series, and checkpoint stream are shaped identically to a
/// batch run — `inspect` works on a serve store unchanged.
///
/// There is no streaming filter to re-point: the producer sends the full
/// firehose and categorization itself drops non-members (the same
/// predicate the filtered subscription applies engine-side, so the
/// collected set is identical).
pub struct StreamMonitor {
    runner: Runner,
    total_hours: u64,
    state: RunState,
    segment: MonitorReport,
    ctx: Arc<RwLock<CategorizeCtx>>,
    stage: LongLivedStage<Tweet, Option<CollectedTweet>>,
    segment_collected: u64,
    mid_hour: bool,
}

impl StreamMonitor {
    /// A monitor starting from hour 0 of a `total_hours` run.
    pub fn new(runner: Runner, total_hours: u64) -> Self {
        Self::resume(runner, total_hours, RunState::default())
    }

    /// Resumes from a checkpointed cursor: the restored membership
    /// re-arms categorization mid-switch-interval exactly as
    /// [`Runner::run_segment`] re-points the streaming filter.
    pub fn resume(runner: Runner, total_hours: u64, state: RunState) -> Self {
        let ctx = Arc::new(RwLock::new(CategorizeCtx {
            membership: state.membership.iter().copied().collect(),
            hour: 0,
        }));
        let worker_ctx = Arc::clone(&ctx);
        let stage = LongLivedStage::new(
            runner.exec(),
            "monitor.categorize",
            |tweet: &Tweet| u64::from(tweet.author.0),
            move |_worker| {
                let ctx = Arc::clone(&worker_ctx);
                move |tweet: Tweet| {
                    let ctx = ctx.read().expect("categorize context poisoned");
                    Runner::categorize(tweet, &ctx.membership, ctx.hour)
                }
            },
        );
        Self {
            runner,
            total_hours,
            state,
            segment: MonitorReport::default(),
            ctx,
            stage,
            segment_collected: 0,
            mid_hour: false,
        }
    }

    /// The run cursor (checkpointed by the sink at every hour boundary).
    pub fn state(&self) -> &RunState {
        &self.state
    }

    /// The report accumulated by this monitor instance (one segment).
    pub fn segment(&self) -> &MonitorReport {
        &self.segment
    }

    /// Whole-run hour count.
    pub fn total_hours(&self) -> u64 {
        self.total_hours
    }

    /// Whether every hour of the run has been processed.
    pub fn complete(&self) -> bool {
        self.state.next_hour >= self.total_hours
    }

    /// Opens the next hour: performs the switch round if one is due
    /// (selecting on `engine` *before* stepping, like the batch loop) and
    /// steps the engine into the hour. Call exactly once before each
    /// [`finish_hour`](StreamMonitor::finish_hour); the window between the
    /// two is where the daemon re-labels evaluation sidecars from the
    /// freshly stepped replica.
    ///
    /// # Panics
    ///
    /// Panics if the run is already complete or an hour is already open.
    pub fn begin_hour(&mut self, engine: &mut Engine) {
        assert!(
            !self.mid_hour,
            "begin_hour called twice without finish_hour"
        );
        assert!(!self.complete(), "begin_hour past the end of the run");
        let hour_index = self.state.next_hour;
        let config = self.runner.config().clone();
        if hour_index.is_multiple_of(config.switch_interval_hours.max(1)) {
            let switch_span = ph_telemetry::span("switch");
            let _switch_phase = ph_trace::phase("monitor.switch");
            let network = select_network(
                engine,
                &config.slots,
                &config.selector,
                config.seed.wrapping_add(self.state.round),
            );
            let membership = apply_switch(
                &config,
                &mut self.state,
                &mut self.segment,
                &network,
                hour_index,
                self.total_hours,
            );
            self.ctx
                .write()
                .expect("categorize context poisoned")
                .membership = membership;
            ph_telemetry::histogram(
                "monitor.switch_latency_ms",
                &ph_telemetry::default_latency_buckets_ms(),
            )
            .record(switch_span.elapsed_ms());
        }
        let hour = engine.now().whole_hours();
        engine.step_hour();
        self.ctx.write().expect("categorize context poisoned").hour = hour;
        self.mid_hour = true;
    }

    /// Closes the hour opened by [`begin_hour`](StreamMonitor::begin_hour):
    /// categorizes the delivered tweets on the persistent worker pool,
    /// hands the batch and the advanced cursor to the sink, and accounts
    /// `shed` tweets dropped by the ingest queue this hour. Returns the
    /// categorized batch in delivery order (the classifier's input).
    ///
    /// # Errors
    ///
    /// Propagates sink I/O failures; a dead worker pool surfaces as an
    /// `io::Error` of kind `Other`.
    ///
    /// # Panics
    ///
    /// Panics if no hour is open.
    pub fn finish_hour<S: MonitorSink>(
        &mut self,
        delivered: Vec<Tweet>,
        shed: u64,
        sink: &mut S,
    ) -> std::io::Result<Vec<CollectedTweet>> {
        assert!(self.mid_hour, "finish_hour without begin_hour");
        self.mid_hour = false;
        let hour_index = self.state.next_hour;
        let batch: Vec<CollectedTweet> = self
            .stage
            .process_batch(delivered)
            .map_err(std::io::Error::other)?
            .into_iter()
            .flatten()
            .collect();
        sink.on_batch(&batch)?;
        let collected_this_hour = batch.len() as u64;
        if sink.retain_in_memory() {
            self.segment.collected.extend(batch.iter().cloned());
        }
        ph_telemetry::histogram("monitor.tweets_per_hour", &per_hour_volume_buckets())
            .record(collected_this_hour as f64);
        self.segment.hours += 1;
        self.segment.dropped += shed;
        self.segment_collected += collected_this_hour;
        record_hour_telemetry(
            hour_index,
            self.total_hours,
            collected_this_hour,
            shed,
            self.segment_collected,
            self.segment.dropped,
        );
        self.state.next_hour = hour_index + 1;
        sink.on_hour(&self.state, &self.segment)?;
        Ok(batch)
    }

    /// End-of-segment telemetry (total sheds, node-hour gauges). Call once
    /// when the daemon drains — whether the run completed or was stopped.
    pub fn finish(&mut self, queue_capacity: usize) {
        finish_segment_telemetry(&self.segment, queue_capacity);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::ProfileAttribute;
    use ph_twitter_sim::engine::SimConfig;

    fn engine() -> Engine {
        Engine::new(SimConfig {
            seed: 5,
            num_organic: 800,
            num_campaigns: 3,
            accounts_per_campaign: 8,
            ..Default::default()
        })
    }

    fn small_runner(seed: u64) -> Runner {
        Runner::new(RunnerConfig {
            slots: vec![
                SampleAttribute::profile(ProfileAttribute::FriendsCount, 1_000.0),
                SampleAttribute::profile(ProfileAttribute::FollowersCount, 1_000.0),
                SampleAttribute::profile(ProfileAttribute::ListsPerDay, 1.0),
            ],
            seed,
            ..Default::default()
        })
    }

    #[test]
    fn run_collects_tweets_crossing_nodes() {
        let mut e = engine();
        let report = small_runner(1).run(&mut e, 12);
        assert_eq!(report.hours, 12);
        assert!(!report.collected.is_empty(), "nothing collected");
        for c in &report.collected {
            match c.category {
                TweetCategory::NodeActivity => assert_eq!(c.tweet.author, c.node),
                TweetCategory::MentionOfNode => {
                    assert!(c.tweet.mentions_account(c.node));
                }
            }
        }
    }

    #[test]
    fn node_hours_accrue_per_slot() {
        let mut e = engine();
        let report = small_runner(2).run(&mut e, 6);
        // 3 slots × up to 10 nodes × 6 hours.
        let total: f64 = report.node_hours.values().sum();
        assert!(total > 0.0);
        assert!(total <= 3.0 * 10.0 * 6.0 + 1e-9);
    }

    #[test]
    fn switching_rotates_node_sets() {
        let mut e1 = engine();
        let hourly = Runner::new(RunnerConfig {
            switch_interval_hours: 1,
            ..small_runner(3).config().clone()
        });
        let r1 = hourly.run(&mut e1, 8);
        // Nodes observed across hours should include more distinct accounts
        // than a single selection round (rotation).
        let mut nodes: Vec<AccountId> = r1.collected.iter().map(|c| c.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        assert!(
            nodes.len() > 10,
            "hourly switching produced only {} distinct nodes",
            nodes.len()
        );
    }

    #[test]
    fn spam_is_collected() {
        let mut e = engine();
        let report = small_runner(4).run(&mut e, 20);
        let gt = e.ground_truth();
        let spam = report
            .collected
            .iter()
            .filter(|c| gt.is_spam(&c.tweet))
            .count();
        assert!(spam > 0, "honeypot caught no spam in 20 hours");
    }

    #[test]
    fn unique_authors_counts_distinct() {
        let mut e = engine();
        let report = small_runner(5).run(&mut e, 10);
        assert!(report.unique_authors() > 0);
        assert!(report.unique_authors() <= report.collected.len());
    }

    #[test]
    fn sharded_runner_report_equals_sequential() {
        let mut e1 = engine();
        let sequential = small_runner(7).run(&mut e1, 12);
        for threads in [2, 4] {
            let mut e2 = engine();
            let runner = Runner::with_exec(
                small_runner(7).config().clone(),
                ExecConfig::with_threads(threads),
            );
            assert_eq!(
                runner.run(&mut e2, 12),
                sequential,
                "{threads}-thread monitoring diverged"
            );
        }
    }

    #[test]
    fn default_capacity_sheds_nothing() {
        let mut e = engine();
        let report = small_runner(6).run(&mut e, 12);
        assert_eq!(report.dropped, 0);
    }

    #[test]
    fn tiny_buffer_sheds_and_accounts_drops() {
        let capacity = 2;
        let hours = 12;
        let mut e = engine();
        let runner = Runner::new(RunnerConfig {
            buffer_capacity: capacity,
            ..small_runner(6).config().clone()
        });
        let report = runner.run(&mut e, hours);
        // Identical engine + selection seed as `default_capacity_sheds_nothing`,
        // which collects far more than 2 tweets/hour — so a 2-slot buffer
        // must shed, and every shed tweet must be accounted in `dropped`.
        assert!(report.dropped > 0, "tiny buffer shed nothing");
        assert!(
            report.collected.len() <= capacity * hours as usize,
            "polled more than capacity per hour: {}",
            report.collected.len()
        );
        // Cross-check against the unshed run: delivered + dropped covers at
        // least everything the unshed run delivered.
        let mut e2 = engine();
        let full = small_runner(6).run(&mut e2, hours);
        assert!(
            report.collected.len() as u64 + report.dropped >= full.collected.len() as u64,
            "shed accounting lost tweets: {} delivered + {} dropped < {} total",
            report.collected.len(),
            report.dropped,
            full.collected.len()
        );
    }

    #[test]
    fn merged_report_accumulates_dropped_and_node_hours() {
        let slot_a = SampleAttribute::profile(ProfileAttribute::FriendsCount, 1_000.0);
        let slot_b = SampleAttribute::profile(ProfileAttribute::ListsPerDay, 1.0);
        let mut base = MonitorReport {
            node_hours: [(slot_a, 10.0), (slot_b, 4.0)].into_iter().collect(),
            hours: 5,
            dropped: 3,
            ..Default::default()
        };
        let later = MonitorReport {
            node_hours: [(slot_a, 2.5)].into_iter().collect(),
            hours: 7,
            dropped: 9,
            ..Default::default()
        };
        base.merge(&later);
        assert_eq!(base.hours, 12);
        assert_eq!(base.dropped, 12);
        assert_eq!(base.node_hours[&slot_a], 12.5);
        assert_eq!(base.node_hours[&slot_b], 4.0);
        assert!(base.collected.is_empty());
    }

    #[test]
    fn segmented_run_merges_to_uninterrupted_run() {
        let runner = small_runner(11);
        let mut full_engine = engine();
        let full = runner.run(&mut full_engine, 12);

        let mut seg_engine = engine();
        let mut state = RunState::default();
        let mut merged = runner
            .run_segment(
                &mut seg_engine,
                &mut state,
                12,
                5,
                runner.standard_networks(),
                &mut MemorySink,
            )
            .unwrap();
        assert_eq!(state.next_hour, 5);
        let tail = runner
            .run_segment(
                &mut seg_engine,
                &mut state,
                12,
                7,
                runner.standard_networks(),
                &mut MemorySink,
            )
            .unwrap();
        merged.merge(&tail);
        assert_eq!(merged, full);
    }

    #[test]
    fn crashed_run_resumes_on_a_fast_forwarded_engine() {
        // switch_interval 3 with a crash at hour 4 forces the resume to
        // restore the checkpointed membership (re-selecting at the
        // fast-forwarded engine state would pick a different node set).
        let runner = Runner::new(RunnerConfig {
            switch_interval_hours: 3,
            ..small_runner(12).config().clone()
        });
        let mut full_engine = engine();
        let full = runner.run(&mut full_engine, 10);

        // First 4 hours, then "crash": only the RunState and the segment
        // report survive.
        let mut first_engine = engine();
        let mut state = RunState::default();
        let mut merged = runner
            .run_segment(
                &mut first_engine,
                &mut state,
                10,
                4,
                runner.standard_networks(),
                &mut MemorySink,
            )
            .unwrap();
        drop(first_engine);

        // Resume: rebuild the engine deterministically and continue.
        let mut resumed_engine = engine();
        resumed_engine.run_hours(state.next_hour);
        let tail = runner
            .run_segment(
                &mut resumed_engine,
                &mut state,
                10,
                u64::MAX,
                runner.standard_networks(),
                &mut MemorySink,
            )
            .unwrap();
        merged.merge(&tail);
        assert_eq!(merged, full);
    }

    /// Drives a [`StreamMonitor`] the way the daemon does — firehose tap,
    /// explicit hour boundaries — and returns its segment report.
    fn stream_monitor_run(runner: Runner, hours: u64) -> (RunState, MonitorReport) {
        let mut e = engine();
        let streaming = e.streaming();
        let fh = streaming.firehose_with_capacity(ph_twitter_sim::api::DEFAULT_QUEUE_CAPACITY);
        let mut monitor = StreamMonitor::new(runner, hours);
        while !monitor.complete() {
            monitor.begin_hour(&mut e);
            let delivered = streaming.poll(fh).unwrap();
            monitor.finish_hour(delivered, 0, &mut MemorySink).unwrap();
        }
        monitor.finish(0);
        (monitor.state().clone(), monitor.segment().clone())
    }

    #[test]
    fn stream_monitor_matches_the_batch_runner() {
        let runner = small_runner(21);
        let mut batch_engine = engine();
        let full = runner.run(&mut batch_engine, 10);
        let (state, report) = stream_monitor_run(runner, 10);
        assert_eq!(state.next_hour, 10);
        assert_eq!(report, full);
    }

    #[test]
    fn stream_monitor_is_thread_count_invariant() {
        let sequential = stream_monitor_run(small_runner(22), 8).1;
        for threads in [2, 4] {
            let runner = Runner::with_exec(
                small_runner(22).config().clone(),
                ExecConfig::with_threads(threads),
            );
            assert_eq!(
                stream_monitor_run(runner, 8).1,
                sequential,
                "{threads}-thread stream monitor diverged"
            );
        }
    }

    #[test]
    fn stream_monitor_resumes_mid_switch_interval() {
        // switch_interval 3, stop at hour 4: the resumed monitor must
        // restore the checkpointed membership rather than re-selecting.
        let runner = Runner::new(RunnerConfig {
            switch_interval_hours: 3,
            ..small_runner(23).config().clone()
        });
        let mut full_engine = engine();
        let full = runner.run(&mut full_engine, 10);

        let mut e1 = engine();
        let s1 = e1.streaming();
        let fh1 = s1.firehose_with_capacity(ph_twitter_sim::api::DEFAULT_QUEUE_CAPACITY);
        let mut first = StreamMonitor::new(runner.clone(), 10);
        for _ in 0..4 {
            first.begin_hour(&mut e1);
            let delivered = s1.poll(fh1).unwrap();
            first.finish_hour(delivered, 0, &mut MemorySink).unwrap();
        }
        let state = first.state().clone();
        let mut merged = first.segment().clone();
        drop(first);
        drop(e1);

        // Resume on a fast-forwarded engine (firehose opened *after* the
        // fast-forward so replayed hours don't leak into the tap).
        let mut e2 = engine();
        e2.run_hours(state.next_hour);
        let s2 = e2.streaming();
        let fh2 = s2.firehose_with_capacity(ph_twitter_sim::api::DEFAULT_QUEUE_CAPACITY);
        let mut resumed = StreamMonitor::resume(runner, 10, state);
        while !resumed.complete() {
            resumed.begin_hour(&mut e2);
            let delivered = s2.poll(fh2).unwrap();
            resumed.finish_hour(delivered, 0, &mut MemorySink).unwrap();
        }
        merged.merge(resumed.segment());
        assert_eq!(merged, full);
    }

    #[test]
    fn stop_flag_halts_run_segment_at_an_hour_boundary() {
        let stop = Arc::new(AtomicBool::new(false));
        let runner = small_runner(24).with_stop_flag(Arc::clone(&stop));
        let mut e = engine();
        let mut state = RunState::default();

        struct StopAfter {
            stop: Arc<AtomicBool>,
            hours: u64,
        }
        impl MonitorSink for StopAfter {
            fn on_tweet(&mut self, _c: &CollectedTweet) -> std::io::Result<()> {
                Ok(())
            }
            fn on_hour(&mut self, state: &RunState, _s: &MonitorReport) -> std::io::Result<()> {
                if state.next_hour >= self.hours {
                    self.stop.store(true, Ordering::Relaxed);
                }
                Ok(())
            }
        }
        let mut sink = StopAfter {
            stop: Arc::clone(&stop),
            hours: 3,
        };
        let report = runner
            .run_segment(
                &mut e,
                &mut state,
                12,
                u64::MAX,
                runner.standard_networks(),
                &mut sink,
            )
            .unwrap();
        assert!(runner.stop_requested());
        assert_eq!(state.next_hour, 3, "did not stop at the flagged boundary");
        assert_eq!(report.hours, 3);

        // The stopped run resumes exactly like a crash-resumed one.
        let full = small_runner(24).run(&mut engine(), 12);
        let mut resumed_engine = engine();
        resumed_engine.run_hours(state.next_hour);
        let resumed = small_runner(24)
            .run_segment(
                &mut resumed_engine,
                &mut state,
                12,
                u64::MAX,
                small_runner(24).standard_networks(),
                &mut MemorySink,
            )
            .unwrap();
        let mut merged = report;
        merged.merge(&resumed);
        assert_eq!(merged, full);
    }

    #[test]
    fn run_with_external_networks_uses_them() {
        let mut e = engine();
        let fixed = crate::selection::select_random_network(&e, 50, 9);
        let runner = Runner::new(RunnerConfig {
            switch_interval_hours: 1_000, // never re-switch within the run
            ..RunnerConfig::default()
        });
        let report = runner.run_with_networks(&mut e, 6, |_, _| fixed.clone());
        let allowed: std::collections::HashSet<AccountId> =
            fixed.account_ids().into_iter().collect();
        for c in &report.collected {
            assert!(allowed.contains(&c.node));
        }
    }
}
