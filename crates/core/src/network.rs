//! The pseudo-honeypot network: a set of selected parasitic accounts, each
//! assigned to the selection slot it satisfies.

use std::collections::HashMap;

use ph_twitter_sim::AccountId;
use serde::{Deserialize, Serialize};

use crate::attributes::SampleAttribute;

/// One selected node: the harnessed account and the slot that selected it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeAssignment {
    /// The parasitic account.
    pub account: AccountId,
    /// The slot (attribute + sample value) it was selected for.
    pub slot: SampleAttribute,
}

/// A pseudo-honeypot network — the paper's hourly-switched node set
/// (2,400 nodes in the standard build: 10 accounts × 110 profile sample
/// slots + 100 × 13 topical slots).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PseudoHoneypotNetwork {
    nodes: Vec<NodeAssignment>,
    /// Slots that could not be filled to their quota, with the missing
    /// count (diagnostics; the paper's population always fills them).
    shortfalls: Vec<(SampleAttribute, usize)>,
}

impl PseudoHoneypotNetwork {
    /// Builds a network from explicit assignments.
    pub fn new(nodes: Vec<NodeAssignment>, shortfalls: Vec<(SampleAttribute, usize)>) -> Self {
        Self { nodes, shortfalls }
    }

    /// All assignments.
    pub fn nodes(&self) -> &[NodeAssignment] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes were selected.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Unfilled quota diagnostics.
    pub fn shortfalls(&self) -> &[(SampleAttribute, usize)] {
        &self.shortfalls
    }

    /// Distinct harnessed account ids (a node is selected for exactly one
    /// slot, so this is just the node list order).
    pub fn account_ids(&self) -> Vec<AccountId> {
        self.nodes.iter().map(|n| n.account).collect()
    }

    /// Per-slot node counts (the `G_i` of the PGE formula).
    pub fn slot_sizes(&self) -> HashMap<SampleAttribute, usize> {
        let mut sizes: HashMap<SampleAttribute, usize> = HashMap::new();
        for node in &self.nodes {
            *sizes.entry(node.slot).or_insert(0) += 1;
        }
        sizes
    }

    /// The slot a given account was selected for, if it is a node.
    pub fn slot_of(&self, account: AccountId) -> Option<&SampleAttribute> {
        self.nodes
            .iter()
            .find(|n| n.account == account)
            .map(|n| &n.slot)
    }

    /// Fast membership/slot lookup table.
    pub fn membership(&self) -> HashMap<AccountId, SampleAttribute> {
        self.nodes.iter().map(|n| (n.account, n.slot)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::{ProfileAttribute, TrendAttribute};

    fn network() -> PseudoHoneypotNetwork {
        let slot_a = SampleAttribute::profile(ProfileAttribute::FriendsCount, 10.0);
        let slot_b = SampleAttribute::trending(TrendAttribute::TrendingUp);
        PseudoHoneypotNetwork::new(
            vec![
                NodeAssignment {
                    account: AccountId(1),
                    slot: slot_a,
                },
                NodeAssignment {
                    account: AccountId(2),
                    slot: slot_a,
                },
                NodeAssignment {
                    account: AccountId(3),
                    slot: slot_b,
                },
            ],
            vec![(slot_b, 7)],
        )
    }

    #[test]
    fn membership_and_lookup() {
        let n = network();
        assert_eq!(n.len(), 3);
        assert_eq!(
            n.account_ids(),
            vec![AccountId(1), AccountId(2), AccountId(3)]
        );
        assert_eq!(
            n.slot_of(AccountId(3)),
            Some(&SampleAttribute::trending(TrendAttribute::TrendingUp))
        );
        assert_eq!(n.slot_of(AccountId(9)), None);
    }

    #[test]
    fn slot_sizes_count_assignments() {
        let n = network();
        let sizes = n.slot_sizes();
        assert_eq!(
            sizes[&SampleAttribute::profile(ProfileAttribute::FriendsCount, 10.0)],
            2
        );
        assert_eq!(
            sizes[&SampleAttribute::trending(TrendAttribute::TrendingUp)],
            1
        );
    }

    #[test]
    fn shortfalls_are_reported() {
        let n = network();
        assert_eq!(n.shortfalls().len(), 1);
        assert_eq!(n.shortfalls()[0].1, 7);
    }

    #[test]
    fn empty_network() {
        let n = PseudoHoneypotNetwork::default();
        assert!(n.is_empty());
        assert!(n.slot_sizes().is_empty());
    }
}
