//! Adapting to spammer drift (§IV-C future work).
//!
//! The paper's proposed strategy: "keep track of the spammers' tastes in
//! real time … update its spam features automatically … meanwhile, the
//! ground truth training dataset also keeps updating". This module
//! implements that loop as an [`AdaptiveDetector`]: it classifies the live
//! stream with the current model, accumulates recent traffic in a rolling
//! window, periodically re-labels the window with the §IV-B pipeline and
//! retrains. The `ablation_drift` bench compares it against a frozen
//! detector across a simulated taste flip.

use ph_twitter_sim::engine::Engine;
use serde::{Deserialize, Serialize};

use crate::detector::{build_training_data, DetectorConfig, SpamDetector};
use crate::labeling::pipeline::{label_collection, PipelineConfig};
use crate::monitor::CollectedTweet;

/// Retraining policy of the adaptive detector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// Hours between retraining rounds.
    pub retrain_interval_hours: u64,
    /// Rolling training window: only tweets from the last this-many hours
    /// are re-labeled and learned from.
    pub window_hours: u64,
    /// Detector hyper-parameters.
    pub detector: DetectorConfig,
    /// Labeling-pipeline configuration used at each retraining round.
    pub pipeline: PipelineConfig,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self {
            retrain_interval_hours: 12,
            window_hours: 48,
            detector: DetectorConfig::default(),
            pipeline: PipelineConfig::default(),
        }
    }
}

/// A detector that retrains itself on a rolling, freshly labeled window.
pub struct AdaptiveDetector {
    config: AdaptiveConfig,
    detector: Option<SpamDetector>,
    window: Vec<CollectedTweet>,
    last_trained_hour: Option<u64>,
    retrain_count: usize,
}

impl std::fmt::Debug for AdaptiveDetector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaptiveDetector")
            .field("window_len", &self.window.len())
            .field("retrain_count", &self.retrain_count)
            .field("trained", &self.detector.is_some())
            .finish()
    }
}

impl AdaptiveDetector {
    /// Creates an untrained adaptive detector; the first retraining round
    /// happens as soon as a window is available.
    pub fn new(config: AdaptiveConfig) -> Self {
        Self {
            config,
            detector: None,
            window: Vec::new(),
            last_trained_hour: None,
            retrain_count: 0,
        }
    }

    /// Number of completed retraining rounds.
    pub fn retrain_count(&self) -> usize {
        self.retrain_count
    }

    /// True once a model has been trained.
    pub fn is_trained(&self) -> bool {
        self.detector.is_some()
    }

    /// Processes one batch of freshly collected tweets at `hour`:
    /// classifies them with the current model (all-ham before the first
    /// training round), extends the rolling window, and retrains when the
    /// interval has elapsed.
    pub fn process(&mut self, batch: &[CollectedTweet], engine: &Engine, hour: u64) -> Vec<bool> {
        let predictions = match &self.detector {
            Some(d) => d.classify_collection(batch, engine).predictions,
            None => vec![false; batch.len()],
        };
        self.window.extend(batch.iter().cloned());
        let horizon = hour.saturating_sub(self.config.window_hours);
        self.window.retain(|c| c.hour >= horizon);

        let due = match self.last_trained_hour {
            None => !self.window.is_empty(),
            Some(at) => hour.saturating_sub(at) >= self.config.retrain_interval_hours,
        };
        if due && !self.window.is_empty() {
            self.retrain(engine, hour);
            self.last_trained_hour = Some(hour);
        }
        predictions
    }

    /// Re-labels the window with the full pipeline and fits a fresh model.
    /// Skipped (silently) when the window only contains one class — there
    /// is nothing to separate yet.
    ///
    /// With decision observability on, the round is journaled as a
    /// [`ph_telemetry::TelemetryEvent::DriftRetrain`] carrying the
    /// window's mean PSI against the old reference (how far the world
    /// had drifted) and against the refreshed one (how much the retrain
    /// recovered).
    fn retrain(&mut self, engine: &Engine, hour: u64) {
        let ground_truth = label_collection(&self.window, engine, &self.config.pipeline);
        let spam = ground_truth.labels.num_spam();
        let labeled = ground_truth
            .labels
            .tweet_labels
            .iter()
            .filter(|l| l.is_some())
            .count();
        if spam == 0 || spam == labeled {
            return;
        }
        let (data, _) = build_training_data(
            &self.window,
            &ground_truth.labels,
            engine,
            self.config.detector.tau,
        );
        let psi_before = crate::observe::mean_psi_of(data.rows());
        // Training installs the fresh reference when observability is on.
        self.detector = Some(SpamDetector::train(&self.config.detector, &data));
        self.retrain_count += 1;
        if crate::observe::is_enabled() {
            let psi_after = crate::observe::mean_psi_of(data.rows()).unwrap_or(0.0);
            ph_telemetry::journal_emit(ph_telemetry::TelemetryEvent::DriftRetrain {
                hour,
                round: self.retrain_count as u64,
                psi_before: psi_before.unwrap_or(0.0),
                psi_after,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::{ProfileAttribute, SampleAttribute};
    use crate::monitor::{Runner, RunnerConfig};
    use ph_ml::forest::RandomForestConfig;
    use ph_twitter_sim::engine::SimConfig;

    fn engine() -> Engine {
        Engine::new(SimConfig {
            seed: 91,
            num_organic: 500,
            num_campaigns: 3,
            accounts_per_campaign: 10,
            ..Default::default()
        })
    }

    fn small_adaptive() -> AdaptiveDetector {
        AdaptiveDetector::new(AdaptiveConfig {
            retrain_interval_hours: 8,
            window_hours: 24,
            detector: DetectorConfig {
                forest: RandomForestConfig {
                    num_trees: 8,
                    ..DetectorConfig::default().forest
                },
                ..Default::default()
            },
            ..Default::default()
        })
    }

    #[test]
    fn adaptive_detector_trains_and_classifies() {
        let mut engine = engine();
        let runner = Runner::new(RunnerConfig {
            slots: vec![SampleAttribute::profile(ProfileAttribute::ListsPerDay, 1.0)],
            ..Default::default()
        });
        let mut adaptive = small_adaptive();
        let mut total = 0usize;
        for round in 0..4 {
            let report = runner.run(&mut engine, 8);
            let hour = engine.now().whole_hours();
            let predictions = adaptive.process(&report.collected, &engine, hour);
            assert_eq!(predictions.len(), report.collected.len());
            total += report.collected.len();
            if round == 0 {
                // Before the first training round, everything is ham.
                assert!(predictions.iter().all(|&p| !p));
            }
        }
        assert!(total > 0);
        assert!(adaptive.is_trained(), "never trained in 32 hours");
        assert!(adaptive.retrain_count() >= 2, "too few retraining rounds");
    }

    #[test]
    fn window_is_bounded() {
        let mut engine = engine();
        let runner = Runner::new(RunnerConfig {
            slots: vec![SampleAttribute::profile(
                ProfileAttribute::FollowersCount,
                10_000.0,
            )],
            ..Default::default()
        });
        let mut adaptive = AdaptiveDetector::new(AdaptiveConfig {
            window_hours: 5,
            retrain_interval_hours: 100, // never retrain in this test
            ..AdaptiveConfig::default()
        });
        for _ in 0..4 {
            let report = runner.run(&mut engine, 5);
            let hour = engine.now().whole_hours();
            adaptive.process(&report.collected, &engine, hour);
            for c in &adaptive.window {
                assert!(hour - c.hour <= 5, "window retained stale tweets");
            }
        }
    }

    #[test]
    fn untrained_detector_reports_status() {
        let adaptive = small_adaptive();
        assert!(!adaptive.is_trained());
        assert_eq!(adaptive.retrain_count(), 0);
        assert!(format!("{adaptive:?}").contains("retrain_count"));
    }
}
