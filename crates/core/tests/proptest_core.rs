//! Property-based tests for pseudo-honeypot core invariants.

use proptest::prelude::*;

use ph_core::attributes::{
    matches_sample, AttributeKind, ProfileAttribute, SampleAttribute, TrendAttribute,
};
use ph_core::features::EnvironmentScore;
use ph_core::monitor::{CollectedTweet, MonitorReport, TweetCategory};
use ph_core::pge::{overall_pge, per_attribute_stats, per_slot_stats, pge_ranking};
use ph_twitter_sim::{AccountId, SimTime, Tweet, TweetId, TweetKind, TweetSource};

fn any_slot() -> impl Strategy<Value = SampleAttribute> {
    prop_oneof![
        (0usize..11, 0usize..10).prop_map(|(a, v)| {
            let attr = ProfileAttribute::ALL[a];
            SampleAttribute::profile(attr, attr.sample_values()[v])
        }),
        (0usize..4).prop_map(|t| SampleAttribute::trending(TrendAttribute::ALL[t])),
        Just(SampleAttribute::hashtag(None)),
    ]
}

fn collected(author: u32, slot: SampleAttribute, hour: u64) -> CollectedTweet {
    CollectedTweet {
        tweet: Tweet::observed(
            TweetId(u64::from(author) * 1000 + hour),
            AccountId(author),
            SimTime::from_hours(hour),
            TweetKind::Original,
            TweetSource::Web,
            "content".into(),
            vec![],
            vec![AccountId(0)],
            vec![],
            None,
        ),
        category: TweetCategory::MentionOfNode,
        node: AccountId(0),
        slot,
        hour,
    }
}

proptest! {
    /// Sample matching is reflexive on grid values and symmetric-ish in
    /// tolerance: a value within the band matches, far outside never does.
    #[test]
    fn sample_matching_tolerance_band(
        attr_index in 0usize..11,
        value_index in 0usize..10,
        wobble in -0.5f64..0.5,
    ) {
        let attr = ProfileAttribute::ALL[attr_index];
        let target = attr.sample_values()[value_index];
        prop_assert!(matches_sample(target, target));
        let value = target * (1.0 + wobble);
        let within = wobble.abs() <= 0.15;
        if within {
            prop_assert!(matches_sample(value, target));
        }
        if wobble.abs() > 0.35 && target > 0.2 {
            prop_assert!(!matches_sample(value, target));
        }
    }

    /// Slot keys are injective over the standard slot set.
    #[test]
    fn standard_slot_keys_are_unique(_x in 0..1) {
        let slots = SampleAttribute::standard_slots();
        let mut keys: Vec<_> = slots.iter().map(SampleAttribute::key).collect();
        keys.sort();
        let before = keys.len();
        keys.dedup();
        prop_assert_eq!(before, keys.len());
    }

    /// Environment score is always τ before any spam, and equals the spam
    /// fraction afterwards.
    #[test]
    fn environment_score_is_a_frequency(
        slot in any_slot(),
        verdicts in proptest::collection::vec(any::<bool>(), 0..50),
        tau in 0.001f64..0.2,
    ) {
        let mut env = EnvironmentScore::new(tau);
        prop_assert_eq!(env.score(&slot), tau);
        for &v in &verdicts {
            env.record(slot, v);
        }
        let spams = verdicts.iter().filter(|&&v| v).count();
        if spams == 0 {
            prop_assert_eq!(env.score(&slot), tau);
        } else {
            let expected = spams as f64 / verdicts.len() as f64;
            prop_assert!((env.score(&slot) - expected).abs() < 1e-12);
        }
    }

    /// Per-slot and per-attribute aggregations conserve tweet and spam
    /// counts; overall PGE never exceeds spam-author count per node-hour.
    #[test]
    fn aggregation_conservation(
        entries in proptest::collection::vec(
            (1u32..40, 0usize..5, 0u64..30, any::<bool>()),
            1..80,
        ),
    ) {
        let slots = [
            SampleAttribute::profile(ProfileAttribute::FriendsCount, 10.0),
            SampleAttribute::profile(ProfileAttribute::ListsPerDay, 1.0),
            SampleAttribute::hashtag(None),
            SampleAttribute::trending(TrendAttribute::Popular),
            SampleAttribute::profile(ProfileAttribute::AccountAgeDays, 1000.0),
        ];
        let collected_vec: Vec<CollectedTweet> = entries
            .iter()
            .map(|&(author, s, hour, _)| collected(author, slots[s], hour))
            .collect();
        let flags: Vec<bool> = entries.iter().map(|&(_, _, _, f)| f).collect();

        let per_slot = per_slot_stats(&collected_vec, &flags);
        let per_attr = per_attribute_stats(&collected_vec, &flags);
        let slot_tweets: u64 = per_slot.values().map(|s| s.tweets).sum();
        let attr_tweets: u64 = per_attr.values().map(|s| s.tweets).sum();
        prop_assert_eq!(slot_tweets as usize, collected_vec.len());
        prop_assert_eq!(attr_tweets as usize, collected_vec.len());
        let slot_spams: u64 = per_slot.values().map(|s| s.spams).sum();
        prop_assert_eq!(slot_spams as usize, flags.iter().filter(|&&f| f).count());

        // PGE consistency over a synthetic report.
        let mut report = MonitorReport {
            collected: collected_vec,
            ..Default::default()
        };
        for slot in &slots {
            report.node_hours.insert(*slot, 10.0);
        }
        let ranking = pge_ranking(&report, &flags);
        for entry in &ranking {
            prop_assert!(entry.pge >= 0.0);
            prop_assert!(
                (entry.pge - entry.spammers as f64 / entry.node_hours).abs() < 1e-12
            );
        }
        // Ranking is monotonically non-increasing.
        for pair in ranking.windows(2) {
            prop_assert!(pair[0].pge >= pair[1].pge);
        }
        let overall = overall_pge(&report, &flags);
        prop_assert!(overall >= 0.0);
    }

    /// Attribute labels are unique and stable.
    #[test]
    fn attribute_labels_unique(_x in 0..1) {
        let mut labels: Vec<String> =
            AttributeKind::all().iter().map(|k| k.label()).collect();
        prop_assert_eq!(labels.len(), 24);
        labels.sort();
        let before = labels.len();
        labels.dedup();
        prop_assert_eq!(before, labels.len());
    }
}
