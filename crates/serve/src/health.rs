//! The daemon's degradation state, as `/healthz` reports it.
//!
//! Health is a set of named degradation reasons: the stage watchdog
//! raises one per stalled stage, the SLO plumbing one per firing alert
//! rule. While the set is non-empty `/healthz` answers
//! `503 Service Unavailable` with the joined reasons; when the last
//! reason clears it goes back to `200 ok`. Sources are keyed, so a
//! watchdog recovery cannot clear an SLO breach or vice versa.
//!
//! Process-global (like the telemetry registries) so the HTTP server
//! needs no plumbing from the daemon loop; `serve.health.degraded`
//! mirrors the state as a gauge for scrapes that only watch `/metrics`.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

fn reasons() -> &'static Mutex<BTreeMap<String, String>> {
    static GLOBAL: OnceLock<Mutex<BTreeMap<String, String>>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn update_gauge(map: &BTreeMap<String, String>) {
    ph_telemetry::gauge("serve.health.degraded").set(if map.is_empty() { 0.0 } else { 1.0 });
}

/// Raises (or updates) the degradation reason for `source`.
pub fn degrade(source: &str, reason: &str) {
    let mut map = reasons().lock().expect("health state poisoned");
    map.insert(source.to_string(), reason.to_string());
    update_gauge(&map);
}

/// Clears `source`'s degradation, if any.
pub fn clear(source: &str) {
    let mut map = reasons().lock().expect("health state poisoned");
    map.remove(source);
    update_gauge(&map);
}

/// The joined degradation reasons, or `None` when healthy.
#[must_use]
pub fn status() -> Option<String> {
    let map = reasons().lock().expect("health state poisoned");
    if map.is_empty() {
        return None;
    }
    Some(
        map.iter()
            .map(|(source, reason)| format!("{source}: {reason}"))
            .collect::<Vec<_>>()
            .join("; "),
    )
}

/// Clears every reason (a fresh daemon session starts healthy).
pub fn reset() {
    let mut map = reasons().lock().expect("health state poisoned");
    map.clear();
    update_gauge(&map);
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use std::sync::MutexGuard;

    // Health is process-global; serialize the tests that reset it.
    pub(crate) fn lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn reasons_join_sorted_and_clear_per_source() {
        let _guard = lock();
        reset();
        assert_eq!(status(), None);
        degrade("watchdog.classify", "stage stalled");
        degrade("slo.p99", "p99 612ms > 250ms");
        assert_eq!(
            status().unwrap(),
            "slo.p99: p99 612ms > 250ms; watchdog.classify: stage stalled"
        );
        clear("slo.p99");
        assert_eq!(status().unwrap(), "watchdog.classify: stage stalled");
        clear("watchdog.classify");
        assert_eq!(status(), None);
        assert_eq!(ph_telemetry::gauge("serve.health.degraded").get(), 0.0);
    }

    #[test]
    fn degrade_overwrites_the_same_source() {
        let _guard = lock();
        reset();
        degrade("slo.p99", "first");
        degrade("slo.p99", "second");
        assert_eq!(status().unwrap(), "slo.p99: second");
        assert_eq!(ph_telemetry::gauge("serve.health.degraded").get(), 1.0);
        reset();
    }
}
