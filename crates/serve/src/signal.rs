//! SIGINT/SIGTERM → a cooperative stop flag.
//!
//! The daemon (and the batch `sniff` loop, via
//! [`ph_core::monitor::Runner::with_stop_flag`]) polls an
//! `Arc<AtomicBool>` at hour boundaries; this module is the one place in
//! the workspace allowed to touch `signal(2)` to raise that flag. The
//! handler body is a pair of atomic stores on `'static` data —
//! async-signal-safe (no allocation, no locking; the `OnceLock` is
//! initialized by [`install`] before any handler can run, so the handler
//! side is a lock-free `get`).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

const SIGINT: i32 = 2;
const SIGQUIT: i32 = 3;
const SIGTERM: i32 = 15;

/// The shared flag handed to pollers. Lives in a `OnceLock` because the
/// pollers want an `Arc` they can clone into worker structs.
static FLAG: OnceLock<Arc<AtomicBool>> = OnceLock::new();

/// Raised by the handler in addition to the shared `Arc` — a plain
/// static so [`triggered`] never depends on initialization order.
static DELIVERED: AtomicBool = AtomicBool::new(false);

/// Raised by the SIGQUIT handler: a request to dump the flight
/// recorder, *not* to stop. The daemon polls [`take_dump_request`]
/// between frames, writes `flight.log`, and keeps running.
static DUMP_REQUESTED: AtomicBool = AtomicBool::new(false);

fn flag() -> &'static Arc<AtomicBool> {
    FLAG.get_or_init(|| Arc::new(AtomicBool::new(false)))
}

extern "C" fn handle(_signum: i32) {
    DELIVERED.store(true, Ordering::SeqCst);
    if let Some(stop) = FLAG.get() {
        stop.store(true, Ordering::SeqCst);
    }
}

extern "C" fn handle_quit(_signum: i32) {
    DUMP_REQUESTED.store(true, Ordering::SeqCst);
}

#[allow(unsafe_code)]
mod sys {
    pub type Handler = extern "C" fn(i32);
    extern "C" {
        fn signal(signum: i32, handler: Handler) -> usize;
    }
    pub fn install(signum: i32, handler: Handler) {
        // SAFETY: registering a handler whose body performs only atomic
        // stores on `'static` data — the textbook async-signal-safe
        // handler. The previous disposition is intentionally discarded.
        unsafe {
            signal(signum, handler);
        }
    }
}

/// Registers SIGINT and SIGTERM handlers and returns the shared stop
/// flag they raise. Idempotent; later calls return the same flag.
pub fn install() -> Arc<AtomicBool> {
    let stop = Arc::clone(flag());
    sys::install(SIGINT, handle);
    sys::install(SIGTERM, handle);
    stop
}

/// Whether a SIGINT/SIGTERM has been delivered since [`install`].
#[must_use]
pub fn triggered() -> bool {
    DELIVERED.load(Ordering::SeqCst) || flag().load(Ordering::SeqCst)
}

/// Registers the SIGQUIT handler that raises the flight-dump request
/// flag. Idempotent. Kept separate from [`install`] so the dump hook
/// can exist without hijacking SIGINT/SIGTERM (e.g. in tests).
pub fn install_dump() {
    sys::install(SIGQUIT, handle_quit);
}

/// Consumes a pending flight-dump request (SIGQUIT since the last
/// call), returning whether one was pending.
pub fn take_dump_request() -> bool {
    DUMP_REQUESTED.swap(false, Ordering::SeqCst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_is_idempotent_and_flag_starts_lowered() {
        let a = install();
        let b = install();
        assert!(Arc::ptr_eq(&a, &b));
        // Can't safely raise a real signal inside the test harness
        // (other tests share the process), but the flag wiring is
        // observable: raising the Arc shows through `triggered`.
        a.store(true, Ordering::SeqCst);
        assert!(triggered());
        a.store(false, Ordering::SeqCst);
    }
}
