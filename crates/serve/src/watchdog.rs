//! The stage watchdog: wall-clock sampling of ph-exec heartbeats.
//!
//! A background thread samples [`ph_exec::heartbeats_snapshot`] every
//! `interval`. A stage that is *busy* (a batch in flight) whose
//! progress counter has not moved for `ticks` consecutive samples is
//! declared stalled: the watchdog emits a
//! [`ph_telemetry::TelemetryEvent::StageStalled`] journal event
//! (diagnostic — it reaches the flight recorder and the in-process
//! journal, never `journal.log`), flips `/healthz` to degraded via
//! [`crate::health`], and dumps the flight ring into the store so the
//! hang is diagnosable even if the process is later killed -9. When the
//! stage makes progress again (or goes idle), the degradation clears
//! and a recovery note lands in the flight ring.
//!
//! Idle stages never trip: a daemon legitimately sits between hour
//! boundaries for as long as the producer pleases. Only "busy and
//! flatlined" is a stall.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use ph_telemetry::{journal_emit, log_warn, TelemetryEvent};

use crate::health;

/// When to declare a stall.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Consecutive no-progress samples (of a busy stage) before the
    /// trip.
    pub ticks: u64,
    /// Sampling interval.
    pub interval: Duration,
}

impl Default for WatchdogConfig {
    /// 40 ticks × 250 ms: a stage must sit busy-but-flat for 10 s.
    fn default() -> Self {
        WatchdogConfig {
            ticks: 40,
            interval: Duration::from_millis(250),
        }
    }
}

#[derive(Default)]
struct StageState {
    last_progress: u64,
    stale_ticks: u64,
    tripped: bool,
}

/// A running watchdog thread. Dropping (or [`shutdown`](Watchdog::shutdown))
/// stops and joins it.
pub struct Watchdog {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Watchdog {
    /// Starts sampling. `dump_dir` is the store directory the flight
    /// ring is dumped into on a trip (`None` = record events only).
    #[must_use]
    pub fn spawn(config: WatchdogConfig, dump_dir: Option<PathBuf>) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let loop_stop = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let mut states: HashMap<String, StageState> = HashMap::new();
            while !loop_stop.load(Ordering::SeqCst) {
                std::thread::sleep(config.interval);
                for hb in ph_exec::heartbeats_snapshot() {
                    let state = states.entry(hb.stage.clone()).or_default();
                    let flat = hb.progress == state.last_progress;
                    state.last_progress = hb.progress;
                    if hb.busy && flat {
                        state.stale_ticks += 1;
                        if state.stale_ticks >= config.ticks && !state.tripped {
                            state.tripped = true;
                            journal_emit(TelemetryEvent::StageStalled {
                                stage: hb.stage.clone(),
                                ticks: state.stale_ticks,
                            });
                            log_warn!(
                                "watchdog: stage '{}' stalled ({} ticks without progress)",
                                hb.stage,
                                state.stale_ticks
                            );
                            health::degrade(
                                &format!("watchdog.{}", hb.stage),
                                &format!(
                                    "stage stalled: no progress across {} ticks",
                                    state.stale_ticks
                                ),
                            );
                            if let Some(dir) = &dump_dir {
                                if let Err(e) =
                                    ph_store::write_flight(dir, &ph_telemetry::flight_snapshot())
                                {
                                    log_warn!("watchdog: flight dump failed: {e}");
                                }
                            }
                        }
                    } else {
                        state.stale_ticks = 0;
                        if state.tripped {
                            state.tripped = false;
                            ph_telemetry::flight_note(
                                "stage_recovered",
                                &format!("stage '{}' making progress again", hb.stage),
                            );
                            health::clear(&format!("watchdog.{}", hb.stage));
                        }
                    }
                }
            }
        });
        Watchdog {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the sampling loop and joins the thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> WatchdogConfig {
        WatchdogConfig {
            ticks: 3,
            interval: Duration::from_millis(5),
        }
    }

    fn wait_until(what: &str, mut ok: impl FnMut() -> bool) {
        for _ in 0..400 {
            if ok() {
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("timed out waiting for {what}");
    }

    #[test]
    fn busy_flatlined_stage_trips_then_recovers() {
        let _guard = crate::health::tests::lock();
        crate::health::reset();
        let dir = std::env::temp_dir().join(format!("ph-serve-watchdog-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let stage = "test.serve.watchdog";
        let hb = ph_exec::heartbeat(stage);
        let mut dog = Watchdog::spawn(fast(), Some(dir.clone()));

        // Idle: never trips, however long we wait.
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(crate::health::status(), None);

        // Busy and flat: trips, degrades, and dumps the flight ring.
        hb.begin_batch();
        wait_until("the watchdog trip", || {
            crate::health::status().is_some_and(|s| s.contains(stage))
        });
        assert!(
            ph_telemetry::journal_snapshot().iter().any(|e| matches!(
                &e.event,
                TelemetryEvent::StageStalled { stage: s, .. } if s == stage
            )),
            "StageStalled journal event missing"
        );
        wait_until("the flight dump", || {
            ph_store::read_flight(&dir)
                .is_ok_and(|entries| entries.iter().any(|e| e.kind == "stage_stalled"))
        });

        // Progress: clears the degradation.
        hb.bump();
        wait_until("the recovery", || crate::health::status().is_none());
        hb.end_batch();
        dog.shutdown();
        dog.shutdown(); // idempotent
        let _ = std::fs::remove_dir_all(&dir);
    }
}
