//! The bounded ingest queue between socket readers and the pipeline.
//!
//! Mirrors the simulator's own streaming-buffer semantics
//! ([`ph_twitter_sim::api`]): when the daemon falls behind the wire, the
//! *oldest buffered tweet* is shed and counted — the freshest traffic
//! survives, exactly like the engine-side subscription queue. Control
//! frames (hour boundaries, shutdown) are never shed: losing a tweet
//! degrades the collection, losing a boundary would desynchronize the
//! replica engine from the producer.
//!
//! This is also where the latency SLO's clock starts: with
//! [`crate::slo`] enabled, [`push`](IngestQueue::push) stamps each
//! frame with a monotonic ingest tick ([`crate::slo::tick_now_ns`])
//! that rides alongside it to [`pop_timeout`](IngestQueue::pop_timeout),
//! so ingest→verdict latency covers queueing as well as
//! classification. Disabled (the default), the stamp is one relaxed
//! atomic load and a constant `0`.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use ph_twitter_sim::wire::StreamFrame;

struct Inner {
    frames: VecDeque<(StreamFrame, u64)>,
    shed: u64,
    shed_unclaimed: u64,
}

/// A bounded MPSC frame queue with oldest-tweet shedding.
pub struct IngestQueue {
    capacity: usize,
    inner: Mutex<Inner>,
    ready: Condvar,
}

impl IngestQueue {
    /// A queue holding at most `capacity` frames (floored at 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                frames: VecDeque::new(),
                shed: 0,
                shed_unclaimed: 0,
            }),
            ready: Condvar::new(),
        }
    }

    /// Enqueues a frame without blocking. At capacity, the oldest
    /// buffered *tweet* frame is dropped to make room (and counted);
    /// control frames are always admitted even if that means running
    /// over capacity momentarily (there is at most one boundary per
    /// producer hour — they cannot accumulate unboundedly).
    pub fn push(&self, frame: StreamFrame) {
        let tick = if crate::slo::is_enabled() {
            crate::slo::tick_now_ns()
        } else {
            0
        };
        let mut inner = self.inner.lock().expect("ingest queue poisoned");
        if inner.frames.len() >= self.capacity && matches!(frame, StreamFrame::Tweet(_)) {
            let oldest_tweet = inner
                .frames
                .iter()
                .position(|(f, _)| matches!(f, StreamFrame::Tweet(_)));
            // When only control frames are buffered, admit the tweet
            // anyway rather than shedding a boundary.
            if let Some(at) = oldest_tweet {
                inner.frames.remove(at);
                inner.shed += 1;
                inner.shed_unclaimed += 1;
            }
        }
        inner.frames.push_back((frame, tick));
        ph_telemetry::gauge("serve.ingest.depth").set(inner.frames.len() as f64);
        drop(inner);
        self.ready.notify_one();
    }

    /// Dequeues the next frame and its ingest tick (0 when SLO stamping
    /// is off), waiting up to `timeout` for one to arrive. `None` means
    /// the wait timed out — the caller polls its stop flag and comes
    /// back.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<(StreamFrame, u64)> {
        let mut inner = self.inner.lock().expect("ingest queue poisoned");
        if inner.frames.is_empty() {
            let (guard, _timeout_result) = self
                .ready
                .wait_timeout(inner, timeout)
                .expect("ingest queue poisoned");
            inner = guard;
        }
        let frame = inner.frames.pop_front();
        if frame.is_some() {
            ph_telemetry::gauge("serve.ingest.depth").set(inner.frames.len() as f64);
        }
        frame
    }

    /// Total tweets shed since creation.
    #[must_use]
    pub fn shed_count(&self) -> u64 {
        self.inner.lock().expect("ingest queue poisoned").shed
    }

    /// Tweets shed since the last call — the per-hour accounting the
    /// monitor folds into its report.
    pub fn take_shed(&self) -> u64 {
        let mut inner = self.inner.lock().expect("ingest queue poisoned");
        std::mem::take(&mut inner.shed_unclaimed)
    }

    /// Frames currently buffered.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.inner
            .lock()
            .expect("ingest queue poisoned")
            .frames
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ph_twitter_sim::account::AccountId;
    use ph_twitter_sim::time::SimTime;
    use ph_twitter_sim::tweet::{Tweet, TweetId, TweetKind, TweetSource};

    fn tweet(id: u64) -> StreamFrame {
        StreamFrame::Tweet(Tweet::observed(
            TweetId(id),
            AccountId(1),
            SimTime::from_minutes(0),
            TweetKind::Original,
            TweetSource::Web,
            String::new(),
            vec![],
            vec![],
            vec![],
            None,
        ))
    }

    fn id_of(frame: &StreamFrame) -> u64 {
        match frame {
            StreamFrame::Tweet(t) => t.id.0,
            _ => panic!("not a tweet"),
        }
    }

    #[test]
    fn sheds_oldest_tweet_at_capacity_keeping_the_newest() {
        let q = IngestQueue::new(2);
        q.push(tweet(1));
        q.push(tweet(2));
        q.push(tweet(3));
        assert_eq!(q.shed_count(), 1);
        assert_eq!(q.take_shed(), 1);
        assert_eq!(q.take_shed(), 0);
        let (a, _) = q.pop_timeout(Duration::from_millis(10)).unwrap();
        let (b, _) = q.pop_timeout(Duration::from_millis(10)).unwrap();
        assert_eq!((id_of(&a), id_of(&b)), (2, 3));
    }

    #[test]
    fn control_frames_are_never_shed() {
        let q = IngestQueue::new(2);
        q.push(StreamFrame::HourBoundary { hour: 0 });
        q.push(tweet(1));
        q.push(tweet(2)); // sheds tweet 1, not the boundary
        assert_eq!(q.shed_count(), 1);
        assert!(matches!(
            q.pop_timeout(Duration::from_millis(10)),
            Some((StreamFrame::HourBoundary { hour: 0 }, _))
        ));
        let (frame, _) = q.pop_timeout(Duration::from_millis(10)).unwrap();
        assert_eq!(id_of(&frame), 2);
    }

    #[test]
    fn pop_times_out_on_an_empty_queue() {
        let q = IngestQueue::new(4);
        assert!(q.pop_timeout(Duration::from_millis(5)).is_none());
    }

    #[test]
    fn pop_wakes_on_a_concurrent_push() {
        let q = std::sync::Arc::new(IngestQueue::new(4));
        let q2 = std::sync::Arc::clone(&q);
        let pusher = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            q2.push(StreamFrame::Shutdown);
        });
        let got = q.pop_timeout(Duration::from_secs(5));
        pusher.join().unwrap();
        assert!(matches!(got, Some((StreamFrame::Shutdown, _))));
    }

    #[test]
    fn ticks_are_zero_when_slo_is_off_and_monotone_when_on() {
        let q = IngestQueue::new(8);
        crate::slo::set_enabled(false);
        q.push(tweet(1));
        let (_, tick) = q.pop_timeout(Duration::from_millis(10)).unwrap();
        assert_eq!(tick, 0);
        crate::slo::set_enabled(true);
        q.push(tweet(2));
        q.push(tweet(3));
        crate::slo::set_enabled(false);
        let (_, a) = q.pop_timeout(Duration::from_millis(10)).unwrap();
        let (_, b) = q.pop_timeout(Duration::from_millis(10)).unwrap();
        assert!(a >= 1, "stamped tick must be nonzero");
        assert!(b >= a, "ticks are monotone in push order");
    }
}
