//! The open-loop load generator / feed client.
//!
//! A deterministic producer: rebuilds the manifest's engine, fast-forwards
//! over the ground-truth window (and any already-monitored hours), taps
//! the firehose, and streams every tweet of every remaining hour over a
//! socket as wire frames, closing each hour with an [`StreamFrame::HourBoundary`]
//! marker and the run with [`StreamFrame::Shutdown`].
//!
//! *Open-loop* means pacing is against the wall clock, not the consumer:
//! with `rate` events/second, event *n* is sent at `start + n/rate`
//! regardless of how far the daemon has fallen behind — the shedding
//! ingest queue, not producer backoff, absorbs overload (the
//! Pseudo-Honeypot paper's scalability claim is about surviving the
//! firehose, so the harness must not flow-control it away). `rate = 0`
//! streams as fast as the socket accepts.
//!
//! The hidden ground-truth labels never cross the wire: tweet frames are
//! encoded by [`ph_twitter_sim::wire`], which omits the label field
//! entirely — the daemon rebuilds evaluation sidecars from its own
//! replica engine.

use std::io::{self, Write};
use std::time::{Duration, Instant};

use ph_store::Manifest;
use ph_telemetry::{log_info, log_warn};
use ph_twitter_sim::engine::{Engine, SimConfig};
use ph_twitter_sim::wire::{write_stream_frame, StreamFrame};

use crate::listener::{connect, BindAddr};

/// How often [`connect_with_retry`] tries before giving up.
pub const CONNECT_ATTEMPTS: u32 = 8;

/// First retry delay; doubles per attempt, capped at
/// [`CONNECT_BACKOFF_CAP`].
pub const CONNECT_BACKOFF: Duration = Duration::from_millis(50);

/// Ceiling on the exponential backoff between connect attempts.
pub const CONNECT_BACKOFF_CAP: Duration = Duration::from_secs(2);

/// Whether a connect failure is worth retrying: the daemon may simply
/// not be listening *yet* (racing a fresh daemon's bind, or a Unix
/// socket path not created yet).
fn connect_retryable(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::ConnectionRefused
            | io::ErrorKind::NotFound
            | io::ErrorKind::AddrNotAvailable
    )
}

/// [`connect`] with bounded exponential backoff: up to
/// [`CONNECT_ATTEMPTS`] tries, 50 ms doubling to a 2 s cap (≈6.3 s
/// total), retrying only the not-listening-yet error kinds. Anything
/// else — and the last attempt's failure — propagates unchanged.
///
/// # Errors
///
/// The final attempt's error once retries are exhausted, or the first
/// non-retryable connect failure.
pub fn connect_with_retry(addr: &BindAddr) -> io::Result<Box<dyn Write + Send>> {
    let mut delay = CONNECT_BACKOFF;
    for attempt in 1..=CONNECT_ATTEMPTS {
        match connect(addr) {
            Ok(out) => return Ok(out),
            Err(e) if attempt < CONNECT_ATTEMPTS && connect_retryable(&e) => {
                log_warn!(
                    "feed: connect to {addr} failed ({e}); retry {attempt}/{} in {:?}",
                    CONNECT_ATTEMPTS - 1,
                    delay
                );
                std::thread::sleep(delay);
                delay = (delay * 2).min(CONNECT_BACKOFF_CAP);
            }
            Err(e) => return Err(e),
        }
    }
    unreachable!("the final attempt either returned or propagated")
}

/// What to generate and how fast.
#[derive(Debug, Clone)]
pub struct FeedConfig {
    /// The run being produced (engine seeds, scale, hour counts).
    pub manifest: Manifest,
    /// First run-relative hour to send (a resumed daemon's `next_hour`).
    pub start_hour: u64,
    /// One past the last run-relative hour to send (usually
    /// `manifest.hours`).
    pub end_hour: u64,
    /// Target events/second; `0` = unpaced.
    pub rate: f64,
}

/// What a feed run delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeedSummary {
    /// Tweet frames written.
    pub tweets: u64,
    /// Hour markers written.
    pub hours: u64,
}

/// Builds the producer engine and streams `config`'s hours to `addr`.
///
/// # Errors
///
/// Propagates connect/write failures (a daemon that goes away mid-feed
/// surfaces as a broken pipe).
pub fn feed(addr: &BindAddr, config: &FeedConfig) -> io::Result<FeedSummary> {
    let m = &config.manifest;
    let mut engine = Engine::new(SimConfig {
        seed: m.sim_seed,
        num_organic: m.organic as usize,
        num_campaigns: m.campaigns as usize,
        accounts_per_campaign: m.per_campaign as usize,
        drift: m.drift_schedule(),
        ..Default::default()
    });
    // Fast-forward over the ground-truth window plus already-delivered
    // hours; determinism makes the tap identical to never having
    // disconnected.
    engine.run_hours(m.gt_hours + config.start_hour);
    let streaming = engine.streaming();
    let tap = streaming.firehose_with_capacity(m.buffer_capacity as usize);

    let mut out = connect_with_retry(addr)?;
    log_info!(
        "loadgen: feeding hours {}..{} to {addr} at {}",
        config.start_hour,
        config.end_hour,
        if config.rate > 0.0 {
            format!("{} events/s", config.rate)
        } else {
            "full speed".to_string()
        }
    );
    let started = Instant::now();
    let mut sent = 0u64;
    let mut hours = 0u64;
    for hour in config.start_hour..config.end_hour {
        engine.step_hour();
        let tweets = streaming.poll(tap).map_err(io::Error::other)?;
        for tweet in tweets {
            if config.rate > 0.0 {
                let target = started + Duration::from_secs_f64(sent as f64 / config.rate);
                let now = Instant::now();
                if target > now {
                    std::thread::sleep(target - now);
                }
            }
            write_stream_frame(&mut out, &StreamFrame::Tweet(tweet))?;
            sent += 1;
        }
        write_stream_frame(&mut out, &StreamFrame::HourBoundary { hour })?;
        out.flush()?;
        hours += 1;
        ph_telemetry::counter("serve.loadgen.hours").inc();
    }
    write_stream_frame(&mut out, &StreamFrame::Shutdown)?;
    out.flush()?;
    ph_telemetry::counter("serve.loadgen.tweets").add(sent);
    streaming.close(tap);
    Ok(FeedSummary {
        tweets: sent,
        hours,
    })
}

/// [`feed`] on a background thread, logging instead of propagating
/// errors — the in-daemon load generator must not take the daemon down
/// when the daemon itself closes the connection during a drain.
pub fn spawn_feed(addr: BindAddr, config: FeedConfig) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || match feed(&addr, &config) {
        Ok(summary) => log_info!(
            "loadgen: delivered {} tweets over {} hours",
            summary.tweets,
            summary.hours
        ),
        Err(e) => log_warn!("loadgen stopped: {e}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_retries_until_a_late_binding_listener_appears() {
        let path = std::env::temp_dir().join(format!("ph-feed-retry-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let bind_path = path.clone();
        // The listener shows up only after the first attempts have
        // already failed with NotFound.
        let listener = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(120));
            let listener = std::os::unix::net::UnixListener::bind(&bind_path).unwrap();
            let _conn = listener.accept().unwrap();
        });
        let addr = BindAddr::Unix(path.clone());
        let mut out = connect_with_retry(&addr).expect("retry should outlast the late bind");
        out.flush().unwrap();
        drop(out);
        listener.join().unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn only_not_listening_yet_errors_are_retryable() {
        for kind in [
            io::ErrorKind::ConnectionRefused,
            io::ErrorKind::NotFound,
            io::ErrorKind::AddrNotAvailable,
        ] {
            assert!(connect_retryable(&io::Error::from(kind)), "{kind:?}");
        }
        assert!(!connect_retryable(&io::Error::from(
            io::ErrorKind::PermissionDenied
        )));
    }
}
