//! Ingest→verdict latency SLOs.
//!
//! When `--slo pQQ:MS` is on, every frame entering the ingest queue is
//! stamped with a monotonic tick ([`tick_now_ns`], nanoseconds since a
//! process-global origin), and the daemon measures each tweet's latency
//! when its verdict is durably flushed — wire + queue + buffering +
//! classification, the whole ingest-to-verdict path. Per hour the
//! daemon records the batch into the cumulative `serve.latency_ms`
//! histogram, refreshes the `serve.latency_ms.{p50,p95,p99}` quantile
//! gauges (exact order statistics over the hour, not bucket
//! interpolation), writes the same quantiles as per-hour series, and
//! lets the alert engine compare the targeted quantile's series against
//! the SLO limit (rule `slo.pQQ`).
//!
//! Off (the default) the only residue is one relaxed atomic load per
//! queue push — the same zero-cost-when-off discipline as `--explain`
//! and `--trace`. Latency is wall-clock data: everything recorded here
//! lands in gauges/series (outside the byte-stability contract), never
//! in the persisted journal.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use ph_telemetry::{AlertKind, AlertRule};

/// The histogram / gauge / series name prefix for ingest→verdict
/// latency.
pub const LATENCY_METRIC: &str = "serve.latency_ms";

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns ingest-tick stamping on or off (process-global).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether stamping is on — one relaxed load, the hot-path gate.
#[must_use]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Monotonic nanoseconds since the first call in this process. `0` is
/// reserved for "not stamped".
#[must_use]
pub fn tick_now_ns() -> u64 {
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    let origin = *ORIGIN.get_or_init(Instant::now);
    (origin.elapsed().as_nanos() as u64).max(1)
}

/// A parsed `--slo` target: `p99:250` = "hourly p99 ingest→verdict
/// latency must stay at or under 250 ms".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloTarget {
    /// The targeted quantile (0.50, 0.95, or 0.99).
    pub quantile: f64,
    /// The quantile's label (`"p50"`, `"p95"`, `"p99"`).
    pub label: &'static str,
    /// The limit, in milliseconds.
    pub target_ms: f64,
}

impl SloTarget {
    /// Parses `pQQ:MS` (e.g. `p99:250`, `p95:40.5`).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown quantiles or
    /// non-positive / non-numeric limits.
    pub fn parse(spec: &str) -> Result<SloTarget, String> {
        let (quantile_part, ms_part) = spec
            .split_once(':')
            .ok_or_else(|| format!("expected QUANTILE:MS (e.g. p99:250), got '{spec}'"))?;
        let (quantile, label) = match quantile_part {
            "p50" => (0.50, "p50"),
            "p95" => (0.95, "p95"),
            "p99" => (0.99, "p99"),
            other => return Err(format!("unknown quantile '{other}' (use p50, p95, or p99)")),
        };
        let target_ms: f64 = ms_part
            .parse()
            .map_err(|_| format!("'{ms_part}' is not a number of milliseconds"))?;
        if !(target_ms > 0.0 && target_ms.is_finite()) {
            return Err(format!("the SLO limit must be positive, got {target_ms}"));
        }
        Ok(SloTarget {
            quantile,
            label,
            target_ms,
        })
    }

    /// The per-hour series the SLO's alert rule watches.
    #[must_use]
    pub fn series_name(&self) -> String {
        format!("{LATENCY_METRIC}.{}", self.label)
    }

    /// The alert rule enforcing this target: a threshold over the
    /// targeted quantile's per-hour series, named `slo.<label>`.
    #[must_use]
    pub fn rule(&self) -> AlertRule {
        AlertRule {
            name: format!("slo.{}", self.label),
            series: self.series_name(),
            limit: self.target_ms,
            kind: AlertKind::Threshold,
        }
    }
}

/// Exact interpolated quantile over unsorted samples (`q` in `[0,1]`).
/// Returns 0.0 for an empty slice.
#[must_use]
pub fn exact_quantile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Records one hour's ingest→verdict latencies: cumulative histogram,
/// live quantile gauges, and the per-hour quantile series the alert
/// rule reads. Returns the hour's `(p50, p95, p99)`.
pub fn record_hour(hour: u64, latencies_ms: &[f64]) -> (f64, f64, f64) {
    let hist = ph_telemetry::histogram(LATENCY_METRIC, &ph_telemetry::default_latency_buckets_ms());
    for &ms in latencies_ms {
        hist.record(ms);
    }
    let (p50, p95, p99) = (
        exact_quantile(latencies_ms, 0.50),
        exact_quantile(latencies_ms, 0.95),
        exact_quantile(latencies_ms, 0.99),
    );
    for (label, value) in [("p50", p50), ("p95", p95), ("p99", p99)] {
        ph_telemetry::gauge(&format!("{LATENCY_METRIC}.{label}")).set(value);
        ph_telemetry::series(&format!("{LATENCY_METRIC}.{label}")).set(hour, value);
    }
    (p50, p95, p99)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_the_documented_quantiles() {
        assert_eq!(
            SloTarget::parse("p99:250").unwrap(),
            SloTarget {
                quantile: 0.99,
                label: "p99",
                target_ms: 250.0
            }
        );
        assert_eq!(SloTarget::parse("p50:1.5").unwrap().quantile, 0.50);
        assert_eq!(SloTarget::parse("p95:40").unwrap().label, "p95");
    }

    #[test]
    fn parse_rejects_malformed_specs_with_a_reason() {
        for bad in ["", "p99", "p42:10", "p99:-5", "p99:NaN", "p99:inf", "p99:x"] {
            assert!(SloTarget::parse(bad).is_err(), "'{bad}' parsed");
        }
    }

    #[test]
    fn the_rule_targets_the_quantile_series() {
        let rule = SloTarget::parse("p95:120").unwrap().rule();
        assert_eq!(rule.name, "slo.p95");
        assert_eq!(rule.series, "serve.latency_ms.p95");
        assert_eq!(rule.limit, 120.0);
        assert_eq!(rule.kind, AlertKind::Threshold);
    }

    #[test]
    fn exact_quantiles_interpolate() {
        let samples = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(exact_quantile(&samples, 0.0), 1.0);
        assert_eq!(exact_quantile(&samples, 1.0), 4.0);
        assert_eq!(exact_quantile(&samples, 0.5), 2.5);
        assert_eq!(exact_quantile(&[], 0.5), 0.0);
        assert_eq!(exact_quantile(&[7.0], 0.99), 7.0);
    }

    #[test]
    fn ticks_are_monotone_and_never_zero() {
        let a = tick_now_ns();
        let b = tick_now_ns();
        assert!(a >= 1);
        assert!(b >= a);
    }

    #[test]
    fn record_hour_updates_gauges_and_series() {
        let latencies: Vec<f64> = (1..=100).map(f64::from).collect();
        let (p50, _p95, p99) = record_hour(7, &latencies);
        assert_eq!(p50, 50.5);
        assert!((p99 - 99.01).abs() < 1e-9);
        let points = ph_telemetry::series("serve.latency_ms.p99").points();
        assert!(points.iter().any(|&(h, v)| h == 7 && v == p99));
    }
}
