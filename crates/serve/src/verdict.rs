//! The live verdict stream: one NDJSON line per stored tweet.
//!
//! Line format (stable field order, one object per line):
//!
//! ```json
//! {"seq":17,"hour":3,"tweet":90312,"author":451,"spam":true,"score":0.8142857142857143}
//! ```
//!
//! `seq` is the tweet's index in the store's segment log — the verdict
//! stream and the record log advance in lockstep, which is what makes
//! restarts exact: on `--resume` the file is truncated to the first
//! `record_count` lines (classification may have outrun the last
//! checkpoint, or crashed before flushing), the warm-up replay rewrites
//! any missing prefix lines, and appending continues from there. The
//! concatenated stream across any number of restarts is byte-identical
//! to an uninterrupted run — `tests/serve_soak.rs` holds this pin.
//!
//! With `--explain` the line gains two trailing fields — the signed vote
//! margin and the strongest attributions by absolute delta:
//!
//! ```json
//! {"seq":17,…,"score":0.81,"margin":0.62,"top_features":[{"feature":"no_lists","delta":0.21}]}
//! ```
//!
//! Without the flag the bytes are identical to the plain format above.

use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, BufWriter, Seek, Write};
use std::path::Path;

use ph_core::detector::Verdict;
use ph_core::features::feature_names;
use ph_core::monitor::CollectedTweet;
use ph_core::observe::VerdictExplanation;

/// Attributions carried on an explained verdict line.
pub const TOP_FEATURES_PER_LINE: usize = 5;

/// Appends NDJSON verdict lines with a monotone sequence number.
pub struct VerdictWriter {
    out: BufWriter<File>,
    seq: u64,
}

impl VerdictWriter {
    /// Creates (truncating) a fresh verdict stream at `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn create(path: &Path) -> io::Result<Self> {
        Ok(Self {
            out: BufWriter::new(File::create(path)?),
            seq: 0,
        })
    }

    /// Reopens an existing stream for a resumed run: keeps the first
    /// `min(existing lines, keep)` lines, truncates the rest, and
    /// positions the writer to append. Returns the writer and the number
    /// of lines kept — the warm-up replay writes lines `kept..keep`
    /// itself (they were computed but never flushed before the stop).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures. A missing file is treated as empty.
    pub fn resume(path: &Path, keep: u64) -> io::Result<(Self, u64)> {
        if !path.exists() {
            return Ok((Self::create(path)?, 0));
        }
        let mut kept = 0u64;
        let mut keep_bytes = 0u64;
        {
            let mut reader = BufReader::new(File::open(path)?);
            let mut line = String::new();
            while kept < keep {
                line.clear();
                let n = reader.read_line(&mut line)?;
                if n == 0 || !line.ends_with('\n') {
                    // EOF or a torn final line (crashed mid-write):
                    // everything from here on is rewritten by warm-up.
                    break;
                }
                kept += 1;
                keep_bytes += n as u64;
            }
        }
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(keep_bytes)?;
        file.seek(io::SeekFrom::End(0))?;
        Ok((
            Self {
                out: BufWriter::new(file),
                seq: kept,
            },
            kept,
        ))
    }

    /// The sequence number the next appended line will carry.
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.seq
    }

    fn write_prefix(&mut self, collected: &CollectedTweet, verdict: Verdict) -> io::Result<()> {
        write!(
            self.out,
            "{{\"seq\":{},\"hour\":{},\"tweet\":{},\"author\":{},\"spam\":{},\"score\":{}",
            self.seq,
            collected.hour,
            collected.tweet.id.0,
            collected.tweet.author.0,
            verdict.spam,
            verdict.score
        )
    }

    /// Appends one verdict line for `collected` (its absolute engine
    /// hour rides along) and advances the sequence.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn append(&mut self, collected: &CollectedTweet, verdict: Verdict) -> io::Result<()> {
        self.write_prefix(collected, verdict)?;
        writeln!(self.out, "}}")?;
        self.seq += 1;
        Ok(())
    }

    /// Appends one *explained* verdict line: the plain fields plus
    /// `margin` and the top [`TOP_FEATURES_PER_LINE`] attributions.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn append_explained(
        &mut self,
        collected: &CollectedTweet,
        verdict: Verdict,
        explanation: &VerdictExplanation,
    ) -> io::Result<()> {
        self.write_prefix(collected, verdict)?;
        let names = feature_names();
        let mut tops = String::new();
        for (i, (f, delta)) in explanation
            .top_features(TOP_FEATURES_PER_LINE)
            .into_iter()
            .enumerate()
        {
            if i > 0 {
                tops.push(',');
            }
            let _ = write!(tops, "{{\"feature\":\"{}\",\"delta\":{delta}}}", names[f]);
        }
        writeln!(
            self.out,
            ",\"margin\":{},\"top_features\":[{tops}]}}",
            explanation.margin
        )?;
        self.seq += 1;
        Ok(())
    }

    /// Flushes buffered lines to the file (called at hour boundaries so
    /// `tail -f` observes whole hours).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ph_core::attributes::{ProfileAttribute, SampleAttribute};
    use ph_core::monitor::TweetCategory;
    use ph_twitter_sim::account::AccountId;
    use ph_twitter_sim::time::SimTime;
    use ph_twitter_sim::tweet::{Tweet, TweetId, TweetKind, TweetSource};

    fn collected(id: u64, hour: u64) -> CollectedTweet {
        CollectedTweet {
            tweet: Tweet::observed(
                TweetId(id),
                AccountId(7),
                SimTime::from_hours(hour),
                TweetKind::Original,
                TweetSource::Web,
                String::new(),
                vec![],
                vec![],
                vec![],
                None,
            ),
            category: TweetCategory::NodeActivity,
            node: AccountId(7),
            slot: SampleAttribute::profile(ProfileAttribute::FriendsCount, 1_000.0),
            hour,
        }
    }

    fn verdict(spam: bool) -> Verdict {
        Verdict { spam, score: 0.25 }
    }

    fn temp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ph-serve-verdict-{}-{name}", std::process::id()))
    }

    #[test]
    fn lines_carry_monotone_seqs_and_stable_fields() {
        let path = temp("basic");
        let mut w = VerdictWriter::create(&path).unwrap();
        w.append(&collected(11, 2), verdict(true)).unwrap();
        w.append(&collected(12, 2), verdict(false)).unwrap();
        w.flush().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            text,
            "{\"seq\":0,\"hour\":2,\"tweet\":11,\"author\":7,\"spam\":true,\"score\":0.25}\n\
             {\"seq\":1,\"hour\":2,\"tweet\":12,\"author\":7,\"spam\":false,\"score\":0.25}\n"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn explained_lines_extend_the_plain_format() {
        use ph_core::features::FEATURE_COUNT;
        let path = temp("explained");
        let mut attributions = [0.0f64; FEATURE_COUNT];
        attributions[0] = 0.25;
        attributions[3] = -0.5;
        let explanation = VerdictExplanation {
            seq: 0,
            hour: 2,
            spam: true,
            score: 0.25,
            margin: -0.5,
            baseline: 0.5,
            attributions,
        };
        let mut w = VerdictWriter::create(&path).unwrap();
        w.append_explained(&collected(11, 2), verdict(true), &explanation)
            .unwrap();
        w.flush().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let names = feature_names();
        assert_eq!(
            text,
            format!(
                "{{\"seq\":0,\"hour\":2,\"tweet\":11,\"author\":7,\"spam\":true,\"score\":0.25,\
                 \"margin\":-0.5,\"top_features\":[\
                 {{\"feature\":\"{}\",\"delta\":-0.5}},\
                 {{\"feature\":\"{}\",\"delta\":0.25}}]}}\n",
                names[3], names[0]
            )
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_truncates_to_keep_and_continues_the_sequence() {
        let path = temp("resume");
        let mut w = VerdictWriter::create(&path).unwrap();
        for i in 0..5 {
            w.append(&collected(i, 0), verdict(false)).unwrap();
        }
        w.flush().unwrap();
        drop(w);
        // Store rolled back to 3 records: keep 3 lines, drop 2.
        let (mut w, kept) = VerdictWriter::resume(&path, 3).unwrap();
        assert_eq!(kept, 3);
        assert_eq!(w.next_seq(), 3);
        w.append(&collected(90, 1), verdict(true)).unwrap();
        w.flush().unwrap();
        let lines: Vec<String> = std::fs::read_to_string(&path)
            .unwrap()
            .lines()
            .map(String::from)
            .collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[3].starts_with("{\"seq\":3,"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_past_a_short_or_torn_file_reports_what_it_kept() {
        let path = temp("short");
        let mut w = VerdictWriter::create(&path).unwrap();
        w.append(&collected(1, 0), verdict(false)).unwrap();
        w.flush().unwrap();
        drop(w);
        // Simulate a crash mid-write: a torn final line without newline.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"seq\":1,\"hour\":0,\"twe").unwrap();
        }
        // Store says 3 records exist; only 1 whole line survived.
        let (w, kept) = VerdictWriter::resume(&path, 3).unwrap();
        assert_eq!(kept, 1);
        assert_eq!(w.next_seq(), 1);
        drop(w);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1, "torn tail not truncated: {text}");
        assert!(text.ends_with('\n'));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_of_a_missing_file_starts_fresh() {
        let path = temp("missing");
        let _ = std::fs::remove_file(&path);
        let (w, kept) = VerdictWriter::resume(&path, 10).unwrap();
        assert_eq!((kept, w.next_seq()), (0, 0));
        let _ = std::fs::remove_file(&path);
    }
}
