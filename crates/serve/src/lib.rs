//! `ph-serve` — the long-lived sniffer daemon.
//!
//! Everything else in the workspace runs the pipeline as a *batch*: an
//! engine is driven for N hours, the collection is classified, and the
//! process exits. This crate turns the same monitor → extract → classify
//! dataflow into a *service* fed by a live event source:
//!
//! - [`listener`] accepts line-of-frames connections (TCP or Unix
//!   socket) carrying the [`ph_twitter_sim::wire`] stream-frame
//!   protocol: tweets interleaved with hour-boundary markers.
//! - [`queue`] is the bounded ingest queue between the socket readers
//!   and the pipeline; when the daemon falls behind, the oldest buffered
//!   tweets are shed (and accounted) — control frames never are.
//! - [`daemon`] owns the deterministic *replica* engine: the same
//!   simulation the producer runs, stepped once per wire-marked hour, so
//!   network selection, REST lookups, and ground-truth sidecars see
//!   exactly the producer's world without any labels crossing the wire.
//! - [`verdict`] streams one NDJSON verdict line per stored tweet with a
//!   monotone sequence number that survives restarts.
//! - [`http`] serves the existing Prometheus registry at `/metrics`
//!   (text format 0.0.4) plus a `/healthz` liveness probe.
//! - [`loadgen`] is the built-in open-loop producer: a deterministic
//!   engine paced at a configurable events/second, feeding the daemon's
//!   own socket — one binary soaks itself.
//! - [`signal`] converts SIGINT/SIGTERM into a cooperative stop flag;
//!   the daemon drains at the next hour boundary, forces a checkpoint,
//!   and a later `--resume` continues mid-run with a byte-identical
//!   verdict stream. SIGQUIT is separate: it requests a flight-recorder
//!   dump and the daemon keeps running.
//! - [`slo`] is the ingest→verdict latency SLO: `--slo p99:250` stamps
//!   every queued frame with a monotonic tick, folds per-hour latency
//!   quantiles into gauges/series, and installs an alert rule over the
//!   targeted quantile. Off, the residue is one relaxed atomic load.
//! - [`health`] is the keyed degradation set behind `/healthz`: the
//!   watchdog and the SLO alert raise and clear named reasons, and the
//!   probe flips 200 ⇄ 503 accordingly.
//! - [`watchdog`] samples [`ph_exec`] stage heartbeats on a wall-clock
//!   cadence and declares a busy-but-flatlined stage stalled: journal
//!   event, degraded health, and a flight-recorder dump into the store.
//!
//! The crate-level invariant is the workspace's usual one, extended to
//! service lifetimes: *stop anywhere, resume, and the concatenated
//! outputs are byte-identical to never having stopped* — enforced by
//! `tests/serve_soak.rs` in the workspace root.

#![warn(missing_docs)]
// `signal` registers real signal(2) handlers, which needs one `extern
// "C"` block; everything else in the crate is forbidden from unsafe.
#![deny(unsafe_code)]

pub mod daemon;
pub mod health;
pub mod http;
pub mod listener;
pub mod loadgen;
pub mod queue;
pub mod signal;
pub mod slo;
pub mod verdict;
pub mod watchdog;

pub use daemon::{run, LoadgenConfig, ServeConfig, ServeOutcome, ThrottleConfig};
pub use http::MetricsServer;
pub use listener::BindAddr;
pub use queue::IngestQueue;
pub use slo::SloTarget;
pub use watchdog::{Watchdog, WatchdogConfig};
