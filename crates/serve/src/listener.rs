//! Socket ingestion: TCP and Unix-socket listeners feeding the ingest
//! queue with decoded stream frames.
//!
//! One accept thread per listener (non-blocking accept polled against a
//! shutdown flag), one reader thread per connection. Readers use the
//! self-delimiting [`ph_twitter_sim::wire`] framing: a clean EOF ends
//! the connection silently, a torn frame is logged and drops the
//! connection (the producer re-sends the hour on its next connect — the
//! daemon never processes a partial hour, so nothing desynchronizes).

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use ph_telemetry::{log_info, log_warn};
use ph_twitter_sim::wire::read_stream_frame;

use crate::queue::IngestQueue;

/// How often blocked accept/read loops re-check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// A parsed ingest address: anything containing a `/` is a Unix-socket
/// path, anything else is a TCP `host:port`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BindAddr {
    /// TCP `host:port`.
    Tcp(String),
    /// Unix-domain socket path.
    Unix(PathBuf),
}

impl BindAddr {
    /// Parses an address string: `127.0.0.1:7007` is TCP,
    /// `/run/ph/ingest.sock` (any string with a `/`) is a Unix socket.
    #[must_use]
    pub fn parse(s: &str) -> Self {
        if s.contains('/') {
            BindAddr::Unix(PathBuf::from(s))
        } else {
            BindAddr::Tcp(s.to_string())
        }
    }
}

impl std::fmt::Display for BindAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BindAddr::Tcp(addr) => write!(f, "{addr}"),
            BindAddr::Unix(path) => write!(f, "{}", path.display()),
        }
    }
}

/// A running ingest listener. Dropping it does *not* stop the threads —
/// call [`Listener::shutdown`] (idempotent) for a clean join.
pub struct Listener {
    /// The actually bound address (TCP port 0 is resolved here).
    pub addr: BindAddr,
    stop: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    unix_path: Option<PathBuf>,
}

impl Listener {
    /// Binds `addr` and starts the accept loop feeding `queue`.
    ///
    /// # Errors
    ///
    /// Propagates bind failures. A pre-existing Unix socket file is
    /// removed first (the daemon owns its socket path).
    pub fn spawn(addr: &BindAddr, queue: Arc<IngestQueue>) -> io::Result<Self> {
        let stop = Arc::new(AtomicBool::new(false));
        match addr {
            BindAddr::Tcp(spec) => {
                let listener = TcpListener::bind(spec)?;
                let bound = BindAddr::Tcp(listener.local_addr()?.to_string());
                listener.set_nonblocking(true)?;
                let accept_stop = Arc::clone(&stop);
                let handle = std::thread::spawn(move || {
                    accept_loop(
                        &accept_stop,
                        || match listener.accept() {
                            Ok((conn, _)) => Some(Ok(Conn::Tcp(conn))),
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => None,
                            Err(e) => Some(Err(e)),
                        },
                        &queue,
                    );
                });
                log_info!("ingest listener on tcp {bound}");
                Ok(Self {
                    addr: bound,
                    stop,
                    accept_handle: Some(handle),
                    unix_path: None,
                })
            }
            BindAddr::Unix(path) => {
                if path.exists() {
                    std::fs::remove_file(path)?;
                }
                let listener = UnixListener::bind(path)?;
                listener.set_nonblocking(true)?;
                let accept_stop = Arc::clone(&stop);
                let handle = std::thread::spawn(move || {
                    accept_loop(
                        &accept_stop,
                        || match listener.accept() {
                            Ok((conn, _)) => Some(Ok(Conn::Unix(conn))),
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => None,
                            Err(e) => Some(Err(e)),
                        },
                        &queue,
                    );
                });
                log_info!("ingest listener on unix socket {}", path.display());
                Ok(Self {
                    addr: BindAddr::Unix(path.clone()),
                    stop,
                    accept_handle: Some(handle),
                    unix_path: Some(path.clone()),
                })
            }
        }
    }

    /// Stops accepting, joins the accept thread, and removes the Unix
    /// socket file if one was bound. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        if let Some(path) = self.unix_path.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

enum Conn {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

fn accept_loop(
    stop: &AtomicBool,
    mut accept: impl FnMut() -> Option<io::Result<Conn>>,
    queue: &Arc<IngestQueue>,
) {
    let mut readers: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match accept() {
            Some(Ok(conn)) => {
                ph_telemetry::counter("serve.ingest.connections").inc();
                let queue = Arc::clone(queue);
                readers.push(std::thread::spawn(move || read_loop(conn, &queue)));
            }
            Some(Err(e)) => {
                log_warn!("ingest accept failed: {e}");
                std::thread::sleep(POLL_INTERVAL);
            }
            None => std::thread::sleep(POLL_INTERVAL),
        }
    }
    // Reader threads exit on their own at peer EOF; joining here would
    // hang shutdown on an idle-but-connected producer, so they are left
    // to finish with the process. The queue they hold is Arc-shared.
}

/// One connection's read loop: decode frames until EOF or a torn frame.
///
/// Reads block without a timeout: a timeout firing mid-frame would lose
/// the partially read length prefix and desynchronize the stream. The
/// thread exits at peer EOF; an idle producer pins only this one thread,
/// which dies with the process.
fn read_loop(conn: Conn, queue: &Arc<IngestQueue>) {
    let mut reader = io::BufReader::new(conn);
    loop {
        match read_stream_frame(&mut reader) {
            Ok(Some(frame)) => queue.push(frame),
            Ok(None) => return, // clean EOF
            Err(e) => {
                ph_telemetry::counter("serve.ingest.torn_connections").inc();
                log_warn!("ingest connection dropped: {e}");
                return;
            }
        }
    }
}

/// Connects to a daemon's ingest socket, returning a buffered writer the
/// producer streams frames into.
///
/// # Errors
///
/// Propagates connect failures.
pub fn connect(addr: &BindAddr) -> io::Result<Box<dyn Write + Send>> {
    Ok(match addr {
        BindAddr::Tcp(spec) => Box::new(io::BufWriter::new(TcpStream::connect(spec)?)),
        BindAddr::Unix(path) => Box::new(io::BufWriter::new(UnixStream::connect(path)?)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ph_twitter_sim::wire::{write_stream_frame, StreamFrame};

    #[test]
    fn parse_distinguishes_tcp_from_unix() {
        assert_eq!(
            BindAddr::parse("127.0.0.1:7007"),
            BindAddr::Tcp("127.0.0.1:7007".into())
        );
        assert_eq!(
            BindAddr::parse("/tmp/x.sock"),
            BindAddr::Unix(PathBuf::from("/tmp/x.sock"))
        );
        assert_eq!(
            BindAddr::parse("./rel.sock"),
            BindAddr::Unix(PathBuf::from("./rel.sock"))
        );
    }

    #[test]
    fn tcp_roundtrip_frames_land_on_the_queue() {
        let queue = Arc::new(IngestQueue::new(64));
        let mut listener =
            Listener::spawn(&BindAddr::Tcp("127.0.0.1:0".into()), Arc::clone(&queue)).unwrap();
        let mut conn = connect(&listener.addr).unwrap();
        write_stream_frame(&mut conn, &StreamFrame::HourBoundary { hour: 3 }).unwrap();
        write_stream_frame(&mut conn, &StreamFrame::Shutdown).unwrap();
        conn.flush().unwrap();
        drop(conn);
        assert!(matches!(
            queue.pop_timeout(Duration::from_secs(5)),
            Some((StreamFrame::HourBoundary { hour: 3 }, _))
        ));
        assert!(matches!(
            queue.pop_timeout(Duration::from_secs(5)),
            Some((StreamFrame::Shutdown, _))
        ));
        listener.shutdown();
    }

    #[test]
    fn unix_socket_roundtrip_and_stale_file_rebind() {
        let path = std::env::temp_dir().join(format!("ph-serve-ltest-{}.sock", std::process::id()));
        let queue = Arc::new(IngestQueue::new(64));
        // Bind twice: the second spawn must clear the first's socket file.
        let mut first = Listener::spawn(&BindAddr::Unix(path.clone()), Arc::clone(&queue)).unwrap();
        first.shutdown();
        let mut listener =
            Listener::spawn(&BindAddr::Unix(path.clone()), Arc::clone(&queue)).unwrap();
        let mut conn = connect(&listener.addr).unwrap();
        write_stream_frame(&mut conn, &StreamFrame::HourBoundary { hour: 9 }).unwrap();
        conn.flush().unwrap();
        drop(conn);
        assert!(matches!(
            queue.pop_timeout(Duration::from_secs(5)),
            Some((StreamFrame::HourBoundary { hour: 9 }, _))
        ));
        listener.shutdown();
        assert!(!path.exists(), "socket file not cleaned up");
    }
}
