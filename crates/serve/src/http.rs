//! The daemon's HTTP observability endpoint.
//!
//! Two routes, zero dependencies:
//!
//! - `GET /metrics` — the live telemetry registry rendered by
//!   [`ph_telemetry::to_prometheus`], served with the exposition-format
//!   content type `text/plain; version=0.0.4` Prometheus expects.
//! - `GET /healthz` — `200 ok` while the daemon is healthy; while any
//!   [`crate::health`] degradation reason is raised (a stalled stage, a
//!   firing SLO alert) it answers `503 Service Unavailable` with the
//!   joined reasons, so probes and load balancers see the state without
//!   parsing `/metrics`.
//!
//! Every response closes its connection (`Connection: close`): a scrape
//! is one short-lived socket, so there is no keep-alive state machine.
//! The accept loop stays non-blocking and hands each connection to its
//! own short-lived thread — a slow, stalled, or half-open client
//! (bounded further by a per-read timeout *and* an overall request
//! deadline) can never block the listener or a concurrent scrape.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ph_telemetry::log_info;

/// The Prometheus text exposition format version served by `/metrics`.
pub const METRICS_CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// How often the accept loop re-checks the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Per-`read(2)` timeout on a request socket.
const READ_TIMEOUT: Duration = Duration::from_secs(2);

/// Overall deadline for receiving one request's head — bounds clients
/// that drip one byte per [`READ_TIMEOUT`].
const REQUEST_DEADLINE: Duration = Duration::from_secs(5);

/// A running metrics/health HTTP server.
pub struct MetricsServer {
    /// The bound `host:port` (port 0 in the request is resolved here).
    pub addr: String,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and starts serving.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn spawn(addr: &str) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let bound = listener.local_addr()?.to_string();
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let loop_stop = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            while !loop_stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((conn, _)) => {
                        // One short-lived thread per connection: the
                        // deadline bounds its lifetime, and the accept
                        // loop goes straight back to listening even
                        // when a client stalls mid-request.
                        std::thread::spawn(move || {
                            let _ = serve_one(conn);
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(POLL_INTERVAL);
                    }
                    Err(_) => std::thread::sleep(POLL_INTERVAL),
                }
            }
        });
        log_info!("metrics endpoint on http://{bound}/metrics");
        Ok(Self {
            addr: bound,
            stop,
            handle: Some(handle),
        })
    }

    /// Stops the accept loop and joins the server thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Reads one request line (with a per-read timeout and an overall
/// deadline) and answers it.
fn serve_one(mut conn: TcpStream) -> io::Result<()> {
    conn.set_read_timeout(Some(READ_TIMEOUT))?;
    let deadline = Instant::now() + REQUEST_DEADLINE;
    // Read until the header terminator (or the buffer fills, or the
    // deadline passes) — only the request line matters, but draining
    // headers avoids a TCP RST race on clients that are still writing
    // when we respond.
    let mut buf = [0u8; 4096];
    let mut len = 0;
    while len < buf.len() && Instant::now() < deadline {
        let n = match conn.read(&mut buf[len..]) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::TimedOut => break,
            Err(e) => return Err(e),
        };
        len += n;
        if buf[..len].windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
    }
    let request = String::from_utf8_lossy(&buf[..len]);
    let path = request
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1));
    ph_telemetry::counter("serve.http.requests").inc();
    match path {
        Some("/metrics") => {
            let body = ph_telemetry::to_prometheus(
                &ph_telemetry::snapshot(),
                &ph_telemetry::series_snapshot(),
            );
            respond(&mut conn, "200 OK", METRICS_CONTENT_TYPE, &body)
        }
        Some("/healthz") => match crate::health::status() {
            None => respond(&mut conn, "200 OK", "text/plain", "ok\n"),
            Some(reasons) => respond(
                &mut conn,
                "503 Service Unavailable",
                "text/plain",
                &format!("degraded: {reasons}\n"),
            ),
        },
        Some(_) => respond(&mut conn, "404 Not Found", "text/plain", "not found\n"),
        // No parseable request line (empty read, a stalled client, or
        // line noise): answer 400 rather than inventing a path.
        None => respond(&mut conn, "400 Bad Request", "text/plain", "bad request\n"),
    }
}

fn respond(conn: &mut TcpStream, status: &str, content_type: &str, body: &str) -> io::Result<()> {
    write!(
        conn,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    conn.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: &str, path: &str) -> String {
        let mut conn = TcpStream::connect(addr).unwrap();
        write!(conn, "GET {path} HTTP/1.1\r\nHost: {addr}\r\n\r\n").unwrap();
        let mut response = String::new();
        conn.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn metrics_endpoint_serves_prometheus_with_the_pinned_content_type() {
        ph_telemetry::counter("serve.test.http_metric").inc();
        let server = MetricsServer::spawn("127.0.0.1:0").unwrap();
        let response = get(&server.addr, "/metrics");
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
        // The exposition-format content type, pinned: Prometheus rejects
        // scrape targets that drop the version parameter.
        assert!(
            response.contains("Content-Type: text/plain; version=0.0.4\r\n"),
            "missing pinned content type in: {response}"
        );
        assert!(response.contains("ph_serve_test_http_metric"), "{response}");
    }

    #[test]
    fn healthz_answers_ok_and_unknown_paths_404() {
        let _guard = crate::health::tests::lock();
        crate::health::reset();
        let mut server = MetricsServer::spawn("127.0.0.1:0").unwrap();
        let health = get(&server.addr, "/healthz");
        assert!(health.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(health.ends_with("ok\n"));
        let missing = get(&server.addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404 Not Found\r\n"));
        server.shutdown();
        server.shutdown(); // idempotent
    }

    #[test]
    fn healthz_flips_to_503_while_degraded_and_recovers() {
        let _guard = crate::health::tests::lock();
        crate::health::reset();
        let server = MetricsServer::spawn("127.0.0.1:0").unwrap();
        crate::health::degrade("slo.p99", "p99 612.0 ms > 250.0 ms limit");
        let degraded = get(&server.addr, "/healthz");
        assert!(
            degraded.starts_with("HTTP/1.1 503 Service Unavailable\r\n"),
            "{degraded}"
        );
        assert!(
            degraded.ends_with("degraded: slo.p99: p99 612.0 ms > 250.0 ms limit\n"),
            "{degraded}"
        );
        crate::health::clear("slo.p99");
        let recovered = get(&server.addr, "/healthz");
        assert!(recovered.starts_with("HTTP/1.1 200 OK\r\n"), "{recovered}");
    }

    #[test]
    fn an_unparseable_request_line_gets_a_400() {
        let server = MetricsServer::spawn("127.0.0.1:0").unwrap();
        let mut conn = TcpStream::connect(&server.addr).unwrap();
        conn.write_all(b"\r\n\r\n").unwrap();
        let mut response = String::new();
        conn.read_to_string(&mut response).unwrap();
        assert!(
            response.starts_with("HTTP/1.1 400 Bad Request\r\n"),
            "{response}"
        );
    }

    #[test]
    fn a_stalled_client_does_not_block_a_concurrent_scrape() {
        let server = MetricsServer::spawn("127.0.0.1:0").unwrap();
        // Connect and send half a request line, then stall without
        // closing: the per-connection thread sits in its read timeout.
        let mut stalled = TcpStream::connect(&server.addr).unwrap();
        stalled.write_all(b"GET /met").unwrap();
        std::thread::sleep(Duration::from_millis(30));
        // A concurrent scrape must complete promptly regardless.
        let started = Instant::now();
        let response = get(&server.addr, "/metrics");
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
        assert!(
            started.elapsed() < READ_TIMEOUT,
            "scrape was serialized behind the stalled client"
        );
        drop(stalled);
    }

    #[test]
    fn a_client_closing_mid_request_is_answered_not_crashed() {
        let server = MetricsServer::spawn("127.0.0.1:0").unwrap();
        {
            let mut conn = TcpStream::connect(&server.addr).unwrap();
            conn.write_all(b"GET /healthz HTT").unwrap();
            // Dropped here: half a request line then an orderly close.
        }
        // The server thread must survive; prove it with a normal scrape.
        let response = get(&server.addr, "/metrics");
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
    }
}
