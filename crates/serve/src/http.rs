//! The daemon's HTTP observability endpoint.
//!
//! Two routes, zero dependencies:
//!
//! - `GET /metrics` — the live telemetry registry rendered by
//!   [`ph_telemetry::to_prometheus`], served with the exposition-format
//!   content type `text/plain; version=0.0.4` Prometheus expects.
//! - `GET /healthz` — `200 ok` while the daemon is running.
//!
//! Every response closes its connection (`Connection: close`): a scrape
//! is one short-lived socket, which keeps the server a single thread
//! with a non-blocking accept loop — no keep-alive state machine.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use ph_telemetry::log_info;

/// The Prometheus text exposition format version served by `/metrics`.
pub const METRICS_CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// How often the accept loop re-checks the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// A running metrics/health HTTP server.
pub struct MetricsServer {
    /// The bound `host:port` (port 0 in the request is resolved here).
    pub addr: String,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and starts serving.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn spawn(addr: &str) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let bound = listener.local_addr()?.to_string();
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let loop_stop = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            while !loop_stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((conn, _)) => {
                        // Serve inline: responses are small and the
                        // registry snapshot is the slow part anyway.
                        let _ = serve_one(conn);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(POLL_INTERVAL);
                    }
                    Err(_) => std::thread::sleep(POLL_INTERVAL),
                }
            }
        });
        log_info!("metrics endpoint on http://{bound}/metrics");
        Ok(Self {
            addr: bound,
            stop,
            handle: Some(handle),
        })
    }

    /// Stops the accept loop and joins the server thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Reads one request line and answers it.
fn serve_one(mut conn: TcpStream) -> io::Result<()> {
    conn.set_read_timeout(Some(Duration::from_secs(2)))?;
    // Read until the header terminator (or the buffer fills) — only the
    // request line matters, but draining headers avoids a TCP RST race
    // on clients that are still writing when we respond.
    let mut buf = [0u8; 4096];
    let mut len = 0;
    while len < buf.len() {
        let n = match conn.read(&mut buf[len..]) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::TimedOut => break,
            Err(e) => return Err(e),
        };
        len += n;
        if buf[..len].windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
    }
    let request = String::from_utf8_lossy(&buf[..len]);
    let path = request
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("/");
    ph_telemetry::counter("serve.http.requests").inc();
    match path {
        "/metrics" => {
            let body = ph_telemetry::to_prometheus(
                &ph_telemetry::snapshot(),
                &ph_telemetry::series_snapshot(),
            );
            respond(&mut conn, "200 OK", METRICS_CONTENT_TYPE, &body)
        }
        "/healthz" => respond(&mut conn, "200 OK", "text/plain", "ok\n"),
        _ => respond(&mut conn, "404 Not Found", "text/plain", "not found\n"),
    }
}

fn respond(conn: &mut TcpStream, status: &str, content_type: &str, body: &str) -> io::Result<()> {
    write!(
        conn,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    conn.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: &str, path: &str) -> String {
        let mut conn = TcpStream::connect(addr).unwrap();
        write!(conn, "GET {path} HTTP/1.1\r\nHost: {addr}\r\n\r\n").unwrap();
        let mut response = String::new();
        conn.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn metrics_endpoint_serves_prometheus_with_the_pinned_content_type() {
        ph_telemetry::counter("serve.test.http_metric").inc();
        let server = MetricsServer::spawn("127.0.0.1:0").unwrap();
        let response = get(&server.addr, "/metrics");
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
        // The exposition-format content type, pinned: Prometheus rejects
        // scrape targets that drop the version parameter.
        assert!(
            response.contains("Content-Type: text/plain; version=0.0.4\r\n"),
            "missing pinned content type in: {response}"
        );
        assert!(response.contains("ph_serve_test_http_metric"), "{response}");
    }

    #[test]
    fn healthz_answers_ok_and_unknown_paths_404() {
        let mut server = MetricsServer::spawn("127.0.0.1:0").unwrap();
        let health = get(&server.addr, "/healthz");
        assert!(health.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(health.ends_with("ok\n"));
        let missing = get(&server.addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404 Not Found\r\n"));
        server.shutdown();
        server.shutdown(); // idempotent
    }
}
