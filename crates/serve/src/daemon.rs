//! The daemon: a long-lived monitor → extract → classify pipeline fed by
//! wire frames.
//!
//! # The two-engine design
//!
//! The producer (a [`crate::loadgen`] feed or any external process
//! speaking the wire protocol) owns one deterministic engine and streams
//! its firehose. The daemon owns a second engine — the **replica** —
//! built from the same manifest and stepped exactly once per wire-marked
//! hour. Because the simulation is deterministic, the replica's world
//! state (profiles, suspensions, trends, ground truth) is identical to
//! the producer's at every boundary, which gives the daemon three things
//! the wire deliberately does not carry:
//!
//! 1. **Network selection**: the hourly attribute switch reads the
//!    replica *before* stepping into the hour, exactly like the batch
//!    runner.
//! 2. **REST context**: feature extraction and classification look up
//!    author profiles on the replica.
//! 3. **Evaluation sidecars**: ground-truth labels never cross the wire
//!    (decoded tweets always arrive unlabeled), so each hour the daemon
//!    polls its replica's own firehose and re-stamps the delivered
//!    tweets from the replica's oracle before they are stored — stored
//!    bytes match a batch run's exactly.
//!
//! # Restart equivalence
//!
//! Hour boundaries — not wall clocks — define batch composition, so a
//! stop + `--resume` replays into the same hourly batches however the
//! frames were timed. On resume the daemon rebuilds classifier state by
//! replaying the stored log hour-by-hour through the same
//! [`StreamClassifier`] (classification is stream-order-dependent via
//! environment-score feedback), truncates the verdict stream to the
//! records the recovered store actually holds, rewrites whatever prefix
//! the stop tore off, and appends from there: the concatenated verdict
//! stream is byte-identical to an uninterrupted run. Stale hour markers
//! (a producer re-sending already-checkpointed hours) are skipped with
//! their tweets; a marker *gap* is a protocol violation and fatal.

use std::cmp::Ordering as CmpOrdering;
use std::collections::HashMap;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ph_core::detector::{build_training_data_with, DetectorConfig, SpamDetector, StreamClassifier};
use ph_core::features::DEFAULT_TAU;
use ph_core::labeling::pipeline::{label_collection_with, PipelineConfig};
use ph_core::monitor::{
    CollectedTweet, MonitorReport, RunState, Runner, RunnerConfig, StreamMonitor,
};
use ph_exec::ExecConfig;
use ph_store::{Manifest, Store, StoreConfig, StoreWriter};
use ph_telemetry::{log_info, log_warn, TelemetryEvent};
use ph_twitter_sim::engine::{Engine, SimConfig};
use ph_twitter_sim::tweet::{Tweet, TweetId};
use ph_twitter_sim::wire::StreamFrame;

use crate::http::MetricsServer;
use crate::listener::{BindAddr, Listener};
use crate::loadgen::{spawn_feed, FeedConfig};
use crate::queue::IngestQueue;
use crate::slo::SloTarget;
use crate::verdict::VerdictWriter;
use crate::watchdog::{Watchdog, WatchdogConfig};

/// How long one queue pop waits before the stop flag is re-checked.
const POP_TIMEOUT: Duration = Duration::from_millis(100);

/// File written into the store directory with the resolved endpoint
/// addresses (`ingest=…`, `http=…`) once the daemon is accepting.
pub const ENDPOINTS_FILE: &str = "ENDPOINTS";

/// Drop guard pairing [`ph_exec::Heartbeat::begin_batch`] with
/// `end_batch` across the `?`-heavy hour-boundary block.
struct HourDone<'a>(&'a ph_exec::Heartbeat);

impl Drop for HourDone<'_> {
    fn drop(&mut self) {
        self.0.end_batch();
    }
}

/// In-daemon load generation settings.
#[derive(Debug, Clone, Copy)]
pub struct LoadgenConfig {
    /// Target events/second; `0` = unpaced.
    pub rate: f64,
}

/// A deterministic per-hour slowdown for health soak tests: the daemon
/// sleeps `ms` milliseconds inside each of the first `hours` hour
/// boundaries, inflating ingest→verdict latency enough to breach a
/// tight SLO — and then recovers, because later hours are unthrottled.
#[derive(Debug, Clone, Copy)]
pub struct ThrottleConfig {
    /// Sleep per throttled hour, in milliseconds.
    pub ms: u64,
    /// Hours `0..hours` are throttled; the rest run at full speed.
    pub hours: u64,
}

/// Everything [`run`] needs.
pub struct ServeConfig {
    /// Store directory (created fresh, or resumed with `resume`).
    pub dir: PathBuf,
    /// Run shape for a fresh store; ignored (with a warning upstream) on
    /// resume, where the stored manifest pins everything.
    pub manifest: Manifest,
    /// Continue a previous run from its last checkpoint.
    pub resume: bool,
    /// Store tuning (checkpoint cadence, segment size, sync policy).
    pub store: StoreConfig,
    /// Dataflow threading for categorize/extract/classify stages.
    pub exec: ExecConfig,
    /// Ingest socket to bind (TCP `host:port` or Unix path).
    pub listen: BindAddr,
    /// HTTP endpoint to bind for `/metrics` + `/healthz`; `None`
    /// disables it.
    pub http: Option<String>,
    /// Verdict stream path; `None` → `<dir>/verdicts.ndjson`.
    pub verdicts: Option<PathBuf>,
    /// Run the built-in producer against our own socket.
    pub loadgen: Option<LoadgenConfig>,
    /// Cooperative stop flag ([`crate::signal::install`] wires
    /// SIGINT/SIGTERM to it); checked between frames, honored at hour
    /// granularity.
    pub stop: Arc<AtomicBool>,
    /// Drain after this many hours *this session* — the deterministic
    /// stand-in for a mid-run signal in tests.
    pub stop_after_hours: Option<u64>,
    /// Decision observability: explained NDJSON verdicts (`margin` +
    /// `top_features` fields), per-feature drift monitoring, and the
    /// `explain.log`/`drift.log` streams persisted beside the journal.
    pub explain: bool,
    /// Ingest→verdict latency SLO (`--slo p99:250`): stamp queued
    /// frames, record per-hour latency quantiles, and alert when the
    /// targeted quantile breaches. `None` = off, zero-cost.
    pub slo: Option<SloTarget>,
    /// Stage-watchdog sensitivity: declare a busy stage stalled after
    /// this many 250 ms samples without progress. `0` disables the
    /// watchdog.
    pub watchdog_ticks: u64,
    /// Test-only deterministic slowdown; see [`ThrottleConfig`].
    pub throttle: Option<ThrottleConfig>,
}

/// What a daemon session did.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// Monitored hours now complete (whole run, not just this session).
    pub hours_done: u64,
    /// The run's total hours per the manifest.
    pub total_hours: u64,
    /// Records in the segment log at exit.
    pub records: u64,
    /// Verdict lines in the stream at exit.
    pub verdicts: u64,
    /// Tweets shed by the ingest queue this session.
    pub shed: u64,
    /// True when the session drained before completing the run (the
    /// store checkpoint makes `resume` continue it).
    pub stopped_early: bool,
    /// Resolved ingest address.
    pub ingest_addr: String,
    /// Resolved HTTP address, when enabled.
    pub http_addr: Option<String>,
}

fn engine_for(manifest: &Manifest) -> Engine {
    Engine::new(SimConfig {
        seed: manifest.sim_seed,
        num_organic: manifest.organic as usize,
        num_campaigns: manifest.campaigns as usize,
        accounts_per_campaign: manifest.per_campaign as usize,
        drift: manifest.drift_schedule(),
        ..Default::default()
    })
}

/// Phases 1–2, identical to the batch CLI: ground-truth collection over
/// `gt_hours`, labeling, and Random-Forest training — leaving `engine`
/// stepped to the monitoring start.
fn train_detector(
    engine: &mut Engine,
    runner: &Runner,
    gt_hours: u64,
    exec: &ExecConfig,
) -> SpamDetector {
    log_info!("serve: phase 1 — ground truth, standard network, {gt_hours} h…");
    let train_report = runner.run(engine, gt_hours);
    let ground_truth = label_collection_with(
        &train_report.collected,
        engine,
        &PipelineConfig::default(),
        exec,
    );
    log_info!("serve: phase 2 — training the Random Forest detector…");
    let (data, _) = build_training_data_with(
        &train_report.collected,
        &ground_truth.labels,
        engine,
        DEFAULT_TAU,
        exec,
    );
    SpamDetector::train(&DetectorConfig::default(), &data)
}

fn open_store(config: &ServeConfig) -> io::Result<(Store, MonitorReport, RunState, Manifest)> {
    if config.resume {
        let r = Store::open_resume(&config.dir, config.store)?;
        log_info!(
            "serve: resuming {}: {} of {} h done, {} records on log ({} bytes truncated in recovery)",
            config.dir.display(),
            r.state.next_hour,
            r.manifest.hours,
            r.store.record_count(),
            r.recovery.truncated_bytes
        );
        Ok((r.store, r.report, r.state, r.manifest))
    } else {
        let store = Store::create(&config.dir, config.manifest, config.store)?;
        Ok((
            store,
            MonitorReport::default(),
            RunState::default(),
            config.manifest,
        ))
    }
}

/// Replays the stored log hour-by-hour through the classifier: steps the
/// replica across every already-monitored hour, rebuilds the
/// stream-order-dependent extractor state, and rewrites verdict lines
/// the previous session computed but never durably flushed.
fn warm_up(
    engine: &mut Engine,
    classifier: &mut StreamClassifier,
    exec: &ExecConfig,
    store: &Store,
    state: &RunState,
    verdicts: &mut VerdictWriter,
    kept_lines: u64,
) -> io::Result<()> {
    let records: Vec<CollectedTweet> = store
        .reader()?
        .collect::<io::Result<Vec<CollectedTweet>>>()?;
    log_info!(
        "serve: warm-up — replaying {} stored records over {} hours…",
        records.len(),
        state.next_hour
    );
    let mut base = 0usize;
    for _ in 0..state.next_hour {
        let absolute_hour = engine.now().whole_hours();
        engine.step_hour();
        let mut end = base;
        while end < records.len() && records[end].hour == absolute_hour {
            end += 1;
        }
        let batch = &records[base..end];
        let hour_verdicts = classifier.classify_hour(batch, engine, exec);
        // With observability on, the replay re-recorded an explanation
        // per record (seq = record index), so rewritten lines carry the
        // same explain fields an uninterrupted run would have flushed.
        let explanations = if ph_core::observe::is_enabled() {
            ph_core::observe::explanations_from(base as u64)
        } else {
            Vec::new()
        };
        for (offset, (collected, verdict)) in batch.iter().zip(&hour_verdicts).enumerate() {
            if (base + offset) as u64 >= kept_lines {
                match explanations.get(offset) {
                    Some(e) => verdicts.append_explained(collected, *verdict, e)?,
                    None => verdicts.append(collected, *verdict)?,
                }
            }
        }
        base = end;
    }
    verdicts.flush()?;
    if base != records.len() {
        log_warn!(
            "serve: {} stored records fall outside the checkpointed hours",
            records.len() - base
        );
    }
    Ok(())
}

/// Runs the daemon to completion (or a requested stop). See the module
/// docs for the architecture.
///
/// # Errors
///
/// Propagates store/socket I/O failures and wire-protocol violations
/// (an hour-marker gap).
pub fn run(config: ServeConfig) -> io::Result<ServeOutcome> {
    let _span = ph_telemetry::span("serve");
    if config.explain {
        ph_core::observe::set_enabled(true);
    }
    // Service-health setup. Each session starts healthy with a fresh
    // flight ring; the SLO alert rule (when targeted) replaces any
    // rule set a previous in-process session installed.
    crate::health::reset();
    ph_telemetry::flight_reset();
    crate::slo::set_enabled(config.slo.is_some());
    if let Some(target) = &config.slo {
        ph_telemetry::alert_reset();
        ph_telemetry::alert_install(target.rule());
        log_info!(
            "serve: latency SLO armed — hourly {} must stay ≤ {} ms",
            target.label,
            target.target_ms
        );
    }
    let (mut store, prior, state, manifest) = open_store(&config)?;

    let exec = config.exec.clone();
    let mut engine = engine_for(&manifest);
    let runner = Runner::with_exec(
        RunnerConfig {
            seed: manifest.runner_seed,
            buffer_capacity: manifest.buffer_capacity as usize,
            ..Default::default()
        },
        exec.clone(),
    );
    let detector = train_detector(&mut engine, &runner, manifest.gt_hours, &exec);
    let mut classifier = StreamClassifier::new(detector);

    let verdict_path = config
        .verdicts
        .clone()
        .unwrap_or_else(|| config.dir.join("verdicts.ndjson"));
    let mut verdicts = if config.resume {
        let (mut writer, kept) = VerdictWriter::resume(&verdict_path, store.record_count())?;
        warm_up(
            &mut engine,
            &mut classifier,
            &exec,
            &store,
            &state,
            &mut writer,
            kept,
        )?;
        writer
    } else {
        VerdictWriter::create(&verdict_path)?
    };

    // The replica's own firehose tap, opened only now so neither the
    // ground-truth window nor replayed hours leak into it.
    let streaming = engine.streaming();
    let tap = streaming.firehose_with_capacity(manifest.buffer_capacity as usize);

    let queue = Arc::new(IngestQueue::new(manifest.buffer_capacity as usize));
    let mut listener = Listener::spawn(&config.listen, Arc::clone(&queue))?;
    let http = match &config.http {
        Some(addr) => Some(MetricsServer::spawn(addr)?),
        None => None,
    };
    let ingest_addr = listener.addr.to_string();
    let http_addr = http.as_ref().map(|h| h.addr.clone());
    std::fs::write(
        config.dir.join(ENDPOINTS_FILE),
        format!(
            "ingest={ingest_addr}\nhttp={}\n",
            http_addr.as_deref().unwrap_or("-")
        ),
    )?;
    ph_telemetry::gauge("serve.hours_total").set(manifest.hours as f64);
    ph_telemetry::gauge("serve.hours_done").set(state.next_hour as f64);

    if let Some(loadgen) = &config.loadgen {
        // Self-soak: the producer connects to our own freshly bound
        // socket and streams the remaining hours. Detached — it ends at
        // its own Shutdown frame or a broken pipe when we drain first.
        drop(spawn_feed(
            listener.addr.clone(),
            FeedConfig {
                manifest,
                start_hour: state.next_hour,
                end_hour: manifest.hours,
                rate: loadgen.rate,
            },
        ));
    }

    let mut watchdog = if config.watchdog_ticks > 0 {
        Some(Watchdog::spawn(
            WatchdogConfig {
                ticks: config.watchdog_ticks,
                ..WatchdogConfig::default()
            },
            Some(config.dir.clone()),
        ))
    } else {
        None
    };
    // The daemon loop's own heartbeat: busy while an hour boundary is
    // being processed, progressing once per completed hour — so a hang
    // inside classify/flush trips the watchdog like any exec stage.
    let hour_hb = ph_exec::heartbeat("serve.hour");

    let mut monitor = StreamMonitor::resume(runner, manifest.hours, state);
    let session_start_hour = monitor.state().next_hour;
    let mut stopped_early = false;
    let mut producer_done = false;
    let mut buffered: Vec<Tweet> = Vec::new();
    let mut ingest_ticks: HashMap<TweetId, u64> = HashMap::new();
    {
        let mut writer: StoreWriter<'_> = store.writer(&prior);
        while !monitor.complete() {
            if crate::signal::take_dump_request() {
                // SIGQUIT = dump-and-continue: snapshot the flight ring
                // into the store, keep serving.
                match ph_store::write_flight(&config.dir, &ph_telemetry::flight_snapshot()) {
                    Ok(()) => log_info!(
                        "serve: SIGQUIT — flight recorder dumped to {}",
                        config.dir.join(ph_store::FLIGHT_FILE).display()
                    ),
                    Err(e) => log_warn!("serve: flight dump failed: {e}"),
                }
            }
            let hours_this_session = monitor.state().next_hour - session_start_hour;
            if config.stop.load(Ordering::SeqCst)
                || config
                    .stop_after_hours
                    .is_some_and(|n| hours_this_session >= n)
            {
                stopped_early = true;
                break;
            }
            let Some((frame, ingest_tick)) = queue.pop_timeout(POP_TIMEOUT) else {
                if producer_done && config.loadgen.is_some() && queue.depth() == 0 {
                    // Our own producer finished early (it errors out on
                    // a drain, never silently under-delivers) — without
                    // this the self-soak would idle forever.
                    stopped_early = true;
                    break;
                }
                continue;
            };
            match frame {
                StreamFrame::Tweet(tweet) => {
                    if ingest_tick != 0 {
                        ingest_ticks.insert(tweet.id, ingest_tick);
                    }
                    buffered.push(tweet);
                }
                StreamFrame::Shutdown => producer_done = true,
                StreamFrame::HourBoundary { hour } => {
                    match hour.cmp(&monitor.state().next_hour) {
                        CmpOrdering::Less => {
                            // A producer replaying already-checkpointed
                            // hours (it restarted from an older cursor):
                            // drop the duplicate hour wholesale.
                            buffered.clear();
                            ingest_ticks.clear();
                        }
                        CmpOrdering::Greater => {
                            return Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                format!(
                                    "hour marker gap: producer announced hour {hour} but hour {} is next",
                                    monitor.state().next_hour
                                ),
                            ));
                        }
                        CmpOrdering::Equal => {
                            hour_hb.begin_batch();
                            // Releases "busy" even when an error below
                            // propagates out of the loop — a stale busy
                            // heartbeat would false-trip a later
                            // session's watchdog.
                            let _hour_done = HourDone(&hour_hb);
                            if let Some(throttle) = &config.throttle {
                                if hour < throttle.hours {
                                    std::thread::sleep(Duration::from_millis(throttle.ms));
                                }
                            }
                            monitor.begin_hour(&mut engine);
                            // Re-stamp evaluation sidecars from the
                            // replica's oracle — the wire carries none.
                            let replica_tweets = streaming.poll(tap).map_err(io::Error::other)?;
                            let oracle = engine.ground_truth();
                            let truth: HashMap<TweetId, bool> = replica_tweets
                                .iter()
                                .map(|t| (t.id, oracle.is_spam(t)))
                                .collect();
                            for tweet in &mut buffered {
                                let spam = truth.get(&tweet.id).copied().unwrap_or(false);
                                tweet.set_evaluation_sidecar_spam(spam);
                            }
                            let shed = queue.take_shed();
                            if shed > 0 {
                                ph_telemetry::counter("serve.ingest.shed").add(shed);
                            }
                            let delivered = std::mem::take(&mut buffered);
                            let batch = monitor.finish_hour(delivered, shed, &mut writer)?;
                            let start_seq = verdicts.next_seq();
                            let hour_verdicts = classifier.classify_hour(&batch, &engine, &exec);
                            let explanations = if config.explain {
                                ph_core::observe::explanations_from(start_seq)
                            } else {
                                Vec::new()
                            };
                            for (i, (collected, verdict)) in
                                batch.iter().zip(&hour_verdicts).enumerate()
                            {
                                match explanations.get(i) {
                                    Some(e) => verdicts.append_explained(collected, *verdict, e)?,
                                    None => verdicts.append(collected, *verdict)?,
                                }
                            }
                            verdicts.flush()?;
                            if config.slo.is_some() {
                                // The verdicts are durable — the
                                // ingest→verdict clock stops here.
                                let now = crate::slo::tick_now_ns();
                                let taken = std::mem::take(&mut ingest_ticks);
                                let latencies: Vec<f64> = batch
                                    .iter()
                                    .filter_map(|c| taken.get(&c.tweet.id))
                                    .map(|&tick| now.saturating_sub(tick) as f64 / 1e6)
                                    .collect();
                                crate::slo::record_hour(hour, &latencies);
                                // Re-evaluate now that this hour's
                                // quantiles exist; transitions are
                                // edge-triggered, so the earlier
                                // in-monitor evaluation cannot have
                                // consumed them.
                                for event in ph_telemetry::alert_evaluate(hour) {
                                    match event {
                                        TelemetryEvent::SloBreach {
                                            rule, value, limit, ..
                                        } => crate::health::degrade(
                                            &rule,
                                            &format!("{value:.1} ms > {limit:.1} ms limit"),
                                        ),
                                        TelemetryEvent::SloRecovered { rule, .. } => {
                                            crate::health::clear(&rule);
                                        }
                                        _ => {}
                                    }
                                }
                            }
                            hour_hb.bump();
                            ph_telemetry::counter("serve.verdicts").add(batch.len() as u64);
                            ph_telemetry::gauge("serve.hours_done")
                                .set(monitor.state().next_hour as f64);
                            ph_telemetry::progress_update(&format!(
                                "serve: hour {}/{} done",
                                monitor.state().next_hour,
                                manifest.hours
                            ));
                        }
                    }
                }
            }
        }
        if stopped_early {
            // A partial hour is discarded — its boundary never arrived,
            // so the producer re-sends the whole hour after resume. The
            // forced checkpoint is what lets a between-intervals stop
            // resume from the last *completed* hour.
            if !buffered.is_empty() {
                log_info!(
                    "serve: discarding {} tweets of the unfinished hour (re-sent on resume)",
                    buffered.len()
                );
                buffered.clear();
            }
            writer.checkpoint_now(monitor.state(), monitor.segment())?;
        }
    }
    monitor.finish(manifest.buffer_capacity as usize);
    if let Some(dog) = watchdog.as_mut() {
        dog.shutdown();
    }
    listener.shutdown();
    drop(http);
    streaming.close(tap);
    store.sync()?;

    // The durable observability record, shaped exactly like a batch
    // run's so `inspect` renders serve stores unchanged.
    if config.explain {
        // Before the journal snapshot: finalizing the open drift window
        // may raise its last alarms.
        ph_core::observe::drift_finalize();
    }
    let journal = ph_telemetry::journal_snapshot();
    let points = ph_telemetry::run_series_points(monitor.state().next_hour.saturating_sub(1));
    store.write_telemetry(&journal, &points)?;
    if config.explain {
        ph_store::write_explain(&config.dir, &ph_core::observe::explanations())?;
        let (drift_hours, drift_alarms) = ph_core::observe::drift_results();
        ph_store::write_drift(&config.dir, &drift_hours, &drift_alarms)?;
    }

    let outcome = ServeOutcome {
        hours_done: monitor.state().next_hour,
        total_hours: manifest.hours,
        records: store.record_count(),
        verdicts: verdicts.next_seq(),
        shed: queue.shed_count(),
        stopped_early: stopped_early && !monitor.complete(),
        ingest_addr,
        http_addr,
    };
    verdicts.flush()?;
    log_info!(
        "serve: {} of {} h done, {} records, {} verdicts, {} shed{}",
        outcome.hours_done,
        outcome.total_hours,
        outcome.records,
        outcome.verdicts,
        outcome.shed,
        if outcome.stopped_early {
            " — stopped early, resumable"
        } else {
            ""
        }
    );
    Ok(outcome)
}
