//! `ph-trace` — opt-in causal timeline tracing for the pseudo-honeypot
//! dataflow.
//!
//! The journal and series streams (PR 4) and the allocation profiler
//! (PR 5) answer "how much" per stage; this crate answers **when** and
//! **what was it waiting on**. The ph-exec stage driver feeds it
//! per-worker per-batch begin/end intervals, backpressure-stall
//! intervals, ordered-merge wait intervals, and a low-rate channel-depth
//! sampler; the pipeline adds coarse [`phase`] spans (RF training,
//! labeling passes, per-hour monitoring). The result exports two ways:
//! Chrome trace-event JSON loadable in Perfetto ([`chrome`]) and a
//! framed+CRC'd `trace.log` persisted by ph-store, from which
//! [`timeline::analyze`] computes busy/stall/idle fractions, parallel
//! efficiency, and the serialized chain bounding the run.
//!
//! # Overhead discipline
//!
//! Identical to `ph_prof`: a process-global relaxed [`AtomicBool`] gate.
//! Disabled, every hook is one relaxed load (the stage driver checks
//! once per stage invocation, not per record). Enabled, events are
//! `Copy` structs pushed into **thread-local fixed-capacity buffers** —
//! no locks, no allocation after the buffer's one-time reservation, and
//! never a block: a full buffer drops the event and bumps a shared
//! counter ([`dropped`]), because a tracer that perturbs the schedule it
//! records is worse than one that loses tail events. Buffers are drained
//! into the global sink at stage teardown ([`flush_thread`]), off the
//! hot path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod timeline;

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Events each thread can buffer before drop-and-count kicks in
/// (~1 MiB per recording thread at 32 bytes per compact event).
pub const THREAD_BUFFER_CAPACITY: usize = 32_768;

static ENABLED: AtomicBool = AtomicBool::new(false);
static DROPPED: AtomicU64 = AtomicU64::new(0);

/// Turns event recording on. The first call also pins the trace epoch —
/// all timestamps are microseconds since that instant.
pub fn enable() {
    let _ = epoch();
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns event recording off (already-buffered events are kept).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether tracing is currently enabled. One relaxed atomic load; the
/// stage driver calls this once per stage invocation and skips every
/// other hook when it returns false.
#[must_use]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the trace epoch (pinned at first [`enable`]).
#[must_use]
pub fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// An interned stage (or phase) name: a small copyable handle recorded
/// into compact events instead of the string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageId(u16);

fn names() -> &'static Mutex<Vec<String>> {
    static NAMES: OnceLock<Mutex<Vec<String>>> = OnceLock::new();
    NAMES.get_or_init(|| Mutex::new(Vec::new()))
}

/// Interns `name`, returning its handle. Called once per stage
/// *invocation* (not per event), so the mutex + linear scan are off the
/// hot path. If the table ever saturates `u16` (65 535 distinct names),
/// later names collapse onto slot 0 rather than failing.
#[must_use]
pub fn stage_id(name: &str) -> StageId {
    let mut names = names().lock().expect("trace names lock poisoned");
    if let Some(i) = names.iter().position(|n| n == name) {
        return StageId(i as u16);
    }
    if names.len() >= usize::from(u16::MAX) {
        return StageId(0);
    }
    names.push(name.to_string());
    StageId((names.len() - 1) as u16)
}

/// Compact event kinds (also the `trace.log` discriminants — keep in
/// sync with `ph-store`'s trace codec).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Stage,
    Batch,
    Stall,
    MergeWait,
    Depth,
    Phase,
}

/// The fixed-size `Copy` record that lands in thread-local buffers.
/// Field meaning varies by kind; see [`TraceEvent`] for the resolved
/// public model.
#[derive(Debug, Clone, Copy)]
struct Compact {
    kind: Kind,
    stage: StageId,
    /// worker | shard | (unused)
    lane: u32,
    /// items | pending | depth | workers
    extra: u64,
    start_us: u64,
    dur_us: u64,
}

std::thread_local! {
    // `const` init: touching the buffer never runs lazy initialization
    // on the recording path.
    static BUFFER: RefCell<Vec<Compact>> = const { RefCell::new(Vec::new()) };
}

fn sink() -> &'static Mutex<Vec<Compact>> {
    static SINK: OnceLock<Mutex<Vec<Compact>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(Vec::new()))
}

fn push(event: Compact) {
    let ok = BUFFER.try_with(|b| {
        let mut b = b.borrow_mut();
        if b.capacity() == 0 {
            b.reserve_exact(THREAD_BUFFER_CAPACITY);
        }
        if b.len() < THREAD_BUFFER_CAPACITY {
            b.push(event);
            true
        } else {
            false // full: drop, never block or reallocate
        }
    });
    if !ok.unwrap_or(false) {
        DROPPED.fetch_add(1, Ordering::Relaxed);
    }
}

/// Moves the current thread's buffered events into the global sink.
/// Stage teardown calls this (workers at exit, the driver after the
/// merge); it is cheap when the buffer is empty.
pub fn flush_thread() {
    let drained = BUFFER.try_with(|b| std::mem::take(&mut *b.borrow_mut()));
    if let Ok(drained) = drained {
        if !drained.is_empty() {
            sink()
                .lock()
                .expect("trace sink lock poisoned")
                .extend(drained);
        }
    }
}

/// Events dropped so far to full thread buffers.
#[must_use]
pub fn dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Clears the sink, the current thread's buffer, and the drop counter
/// (interned names are kept). For tests and for multi-run processes
/// that want per-run traces.
pub fn reset() {
    let _ = BUFFER.try_with(|b| b.borrow_mut().clear());
    sink().lock().expect("trace sink lock poisoned").clear();
    DROPPED.store(0, Ordering::Relaxed);
}

/// Records one processed batch: `worker` ran `items` records in
/// `[start_us, start_us + dur_us)`.
pub fn record_batch(stage: StageId, worker: u32, start_us: u64, dur_us: u64, items: u32) {
    push(Compact {
        kind: Kind::Batch,
        stage,
        lane: worker,
        extra: u64::from(items),
        start_us,
        dur_us,
    });
}

/// Records a backpressure stall: the feeder blocked `dur_us` sending to
/// `shard`'s full input channel.
pub fn record_stall(stage: StageId, shard: u32, start_us: u64, dur_us: u64) {
    push(Compact {
        kind: Kind::Stall,
        stage,
        lane: shard,
        extra: 0,
        start_us,
        dur_us,
    });
}

/// Records an ordered-merge wait: the merger blocked `dur_us` for the
/// next output chunk with `pending` records parked in the reorder
/// buffer.
pub fn record_merge_wait(stage: StageId, start_us: u64, dur_us: u64, pending: u32) {
    push(Compact {
        kind: Kind::MergeWait,
        stage,
        lane: 0,
        extra: u64::from(pending),
        start_us,
        dur_us,
    });
}

/// Records a queue-depth sample for `shard`'s input channel (the
/// low-rate sampler in the feeder).
pub fn record_depth(stage: StageId, shard: u32, at_us: u64, depth: u32) {
    push(Compact {
        kind: Kind::Depth,
        stage,
        lane: shard,
        extra: u64::from(depth),
        start_us: at_us,
        dur_us: 0,
    });
}

/// Records the whole-stage envelope: one `run()` invocation covering
/// `items` records across `workers` workers.
pub fn record_stage(stage: StageId, start_us: u64, dur_us: u64, workers: u32, items: u64) {
    push(Compact {
        kind: Kind::Stage,
        stage,
        lane: workers,
        extra: items,
        start_us,
        dur_us,
    });
}

/// RAII guard for a pipeline phase span (see [`phase`]).
#[derive(Debug)]
pub struct PhaseGuard {
    /// `None` when tracing was off at open time (inert guard).
    open: Option<(StageId, u64)>,
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        if let Some((stage, start_us)) = self.open.take() {
            push(Compact {
                kind: Kind::Phase,
                stage,
                lane: 0,
                extra: 0,
                start_us,
                dur_us: now_us().saturating_sub(start_us),
            });
        }
    }
}

/// Opens a coarse pipeline-phase span (`ml.train`, `label.clustering`,
/// per-hour `monitor.hour` …) closed when the guard drops. Phases are
/// what makes the serialized portions of the run — code that never
/// enters the sharded driver — visible on the timeline. No-op (one
/// relaxed load) when tracing is off.
#[must_use]
pub fn phase(name: &str) -> PhaseGuard {
    if !is_enabled() {
        return PhaseGuard { open: None };
    }
    PhaseGuard {
        open: Some((stage_id(name), now_us())),
    }
}

/// One resolved trace event, ready for export or analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A whole-stage envelope: one sharded-driver invocation.
    Stage {
        /// Stage name.
        name: String,
        /// Start, µs since trace epoch.
        start_us: u64,
        /// Duration, µs.
        dur_us: u64,
        /// Worker-thread count for the invocation (1 = sequential).
        workers: u32,
        /// Records processed.
        items: u64,
    },
    /// One worker batch (a chunk of records processed back to back).
    Batch {
        /// Stage name.
        name: String,
        /// Worker index (0-based; the sequential path is worker 0).
        worker: u32,
        /// Start, µs since trace epoch.
        start_us: u64,
        /// Duration, µs.
        dur_us: u64,
        /// Records in the batch.
        items: u32,
    },
    /// A feeder backpressure stall on a full input channel.
    Stall {
        /// Stage name.
        name: String,
        /// Shard whose channel was full.
        shard: u32,
        /// Start, µs since trace epoch.
        start_us: u64,
        /// How long the feeder blocked, µs.
        dur_us: u64,
    },
    /// The ordered merger waiting for the next output chunk.
    MergeWait {
        /// Stage name.
        name: String,
        /// Start, µs since trace epoch.
        start_us: u64,
        /// How long the merger blocked, µs.
        dur_us: u64,
        /// Records parked in the reorder buffer at the time.
        pending: u32,
    },
    /// A low-rate input-queue depth sample.
    Depth {
        /// Stage name.
        name: String,
        /// Shard sampled.
        shard: u32,
        /// Sample time, µs since trace epoch.
        at_us: u64,
        /// Queue depth, in chunks.
        depth: u32,
    },
    /// A coarse pipeline phase ([`phase`]).
    Phase {
        /// Phase name.
        name: String,
        /// Start, µs since trace epoch.
        start_us: u64,
        /// Duration, µs.
        dur_us: u64,
    },
}

impl TraceEvent {
    /// The stage/phase name.
    #[must_use]
    pub fn name(&self) -> &str {
        match self {
            TraceEvent::Stage { name, .. }
            | TraceEvent::Batch { name, .. }
            | TraceEvent::Stall { name, .. }
            | TraceEvent::MergeWait { name, .. }
            | TraceEvent::Depth { name, .. }
            | TraceEvent::Phase { name, .. } => name,
        }
    }

    /// Event start time (sample time for depth events), µs since epoch.
    #[must_use]
    pub fn start_us(&self) -> u64 {
        match self {
            TraceEvent::Stage { start_us, .. }
            | TraceEvent::Batch { start_us, .. }
            | TraceEvent::Stall { start_us, .. }
            | TraceEvent::MergeWait { start_us, .. }
            | TraceEvent::Phase { start_us, .. } => *start_us,
            TraceEvent::Depth { at_us, .. } => *at_us,
        }
    }

    /// Event end time, µs since epoch (== start for point samples).
    #[must_use]
    pub fn end_us(&self) -> u64 {
        match self {
            TraceEvent::Stage {
                start_us, dur_us, ..
            }
            | TraceEvent::Batch {
                start_us, dur_us, ..
            }
            | TraceEvent::Stall {
                start_us, dur_us, ..
            }
            | TraceEvent::MergeWait {
                start_us, dur_us, ..
            }
            | TraceEvent::Phase {
                start_us, dur_us, ..
            } => start_us.saturating_add(*dur_us),
            TraceEvent::Depth { at_us, .. } => *at_us,
        }
    }
}

/// A captured timeline: resolved events (sorted by start time) plus the
/// count of events lost to full thread buffers.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceLog {
    /// Events, sorted by start time.
    pub events: Vec<TraceEvent>,
    /// Events dropped to the fixed-capacity buffers (overflow policy:
    /// drop-and-count, never block).
    pub dropped: u64,
}

impl TraceLog {
    /// Wraps pre-resolved events (sorting them by start time), e.g.
    /// events read back from a store's `trace.log`.
    #[must_use]
    pub fn from_events(mut events: Vec<TraceEvent>, dropped: u64) -> Self {
        events.sort_by_key(TraceEvent::start_us);
        TraceLog { events, dropped }
    }
}

fn resolve(compact: &[Compact]) -> Vec<TraceEvent> {
    let names: Vec<String> = names().lock().expect("trace names lock poisoned").clone();
    let name_of = |id: StageId| {
        names
            .get(usize::from(id.0))
            .cloned()
            .unwrap_or_else(|| format!("stage#{}", id.0))
    };
    compact
        .iter()
        .map(|c| match c.kind {
            Kind::Stage => TraceEvent::Stage {
                name: name_of(c.stage),
                start_us: c.start_us,
                dur_us: c.dur_us,
                workers: c.lane,
                items: c.extra,
            },
            Kind::Batch => TraceEvent::Batch {
                name: name_of(c.stage),
                worker: c.lane,
                start_us: c.start_us,
                dur_us: c.dur_us,
                items: c.extra as u32,
            },
            Kind::Stall => TraceEvent::Stall {
                name: name_of(c.stage),
                shard: c.lane,
                start_us: c.start_us,
                dur_us: c.dur_us,
            },
            Kind::MergeWait => TraceEvent::MergeWait {
                name: name_of(c.stage),
                start_us: c.start_us,
                dur_us: c.dur_us,
                pending: c.extra as u32,
            },
            Kind::Depth => TraceEvent::Depth {
                name: name_of(c.stage),
                shard: c.lane,
                at_us: c.start_us,
                depth: c.extra as u32,
            },
            Kind::Phase => TraceEvent::Phase {
                name: name_of(c.stage),
                start_us: c.start_us,
                dur_us: c.dur_us,
            },
        })
        .collect()
}

/// A point-in-time copy of everything recorded so far (the current
/// thread's buffer is flushed first; other threads' unflushed buffers
/// are not visible until their stage teardown flushes them).
#[must_use]
pub fn snapshot() -> TraceLog {
    flush_thread();
    let compact = sink().lock().expect("trace sink lock poisoned").clone();
    TraceLog::from_events(resolve(&compact), dropped())
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tracing state is process-global and tests run concurrently, so
    // each test uses unique stage names and asserts on its own events
    // only (never on global counts another test may move).

    fn events_named(log: &TraceLog, name: &str) -> Vec<TraceEvent> {
        log.events
            .iter()
            .filter(|e| e.name() == name)
            .cloned()
            .collect()
    }

    #[test]
    fn disabled_phase_records_nothing() {
        disable();
        {
            let _p = phase("test.trace.off");
        }
        enable();
        assert!(events_named(&snapshot(), "test.trace.off").is_empty());
    }

    #[test]
    fn batch_events_roundtrip_through_snapshot() {
        enable();
        let id = stage_id("test.trace.batch");
        record_batch(id, 3, 100, 50, 32);
        let got = events_named(&snapshot(), "test.trace.batch");
        assert_eq!(
            got,
            vec![TraceEvent::Batch {
                name: "test.trace.batch".to_string(),
                worker: 3,
                start_us: 100,
                dur_us: 50,
                items: 32,
            }]
        );
    }

    #[test]
    fn phases_measure_their_scope() {
        enable();
        let before = now_us();
        {
            let _p = phase("test.trace.phase");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let got = events_named(&snapshot(), "test.trace.phase");
        assert_eq!(got.len(), 1);
        let TraceEvent::Phase {
            start_us, dur_us, ..
        } = &got[0]
        else {
            panic!("not a phase: {:?}", got[0]);
        };
        assert!(*start_us >= before);
        assert!(*dur_us >= 1_000, "phase dur {dur_us}µs < slept 2ms");
    }

    #[test]
    fn worker_thread_events_arrive_after_flush() {
        enable();
        let id = stage_id("test.trace.thread");
        std::thread::scope(|s| {
            s.spawn(|| {
                record_batch(id, 0, 1, 2, 3);
                flush_thread();
            });
        });
        assert_eq!(events_named(&snapshot(), "test.trace.thread").len(), 1);
    }

    #[test]
    fn interning_is_stable_per_name() {
        let a = stage_id("test.trace.intern.a");
        let b = stage_id("test.trace.intern.b");
        assert_ne!(a, b);
        assert_eq!(a, stage_id("test.trace.intern.a"));
    }

    #[test]
    fn snapshot_sorts_by_start_time() {
        enable();
        let id = stage_id("test.trace.sorted");
        record_batch(id, 0, 900_000_000, 10, 1);
        record_batch(id, 0, 800_000_000, 10, 1);
        let got = events_named(&snapshot(), "test.trace.sorted");
        let starts: Vec<u64> = got.iter().map(TraceEvent::start_us).collect();
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(starts, sorted);
    }
}
