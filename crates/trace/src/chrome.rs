//! Chrome trace-event JSON export, loadable in Perfetto or
//! `about://tracing`.
//!
//! Mapping: every traced stage becomes one *process* (pid), with its
//! feeder on tid 0, workers on tid 1..=W, and the ordered merger on a
//! high tid — so each stage renders as a block of per-worker tracks.
//! Coarse pipeline phases live in a dedicated `pipeline` process (pid
//! 0). Queue-depth samples and reorder-buffer occupancy become counter
//! tracks (`ph: "C"`) on their stage's process. Timestamps are the
//! trace's native microseconds, which is exactly the unit the format
//! expects.

use crate::{TraceEvent, TraceLog};

/// The merger's tid within a stage process (larger than any plausible
/// worker index so it sorts last).
const MERGE_TID: u32 = 9_999;

/// Escapes a string for a JSON string literal (quotes not included).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// pid for a stage name: phases are pid 0, stages 1.. in first-seen
/// order over `pids`.
fn pid_of(pids: &mut Vec<String>, name: &str) -> usize {
    if let Some(i) = pids.iter().position(|n| n == name) {
        return i + 1;
    }
    pids.push(name.to_string());
    pids.len()
}

/// Renders a trace as Chrome trace-event JSON (the `traceEvents` array
/// form). One complete (`"X"`) slice per batch / stall / merge wait /
/// stage envelope / phase, counter (`"C"`) tracks for queue depths and
/// reorder-buffer occupancy, and metadata (`"M"`) records naming every
/// process and thread.
#[must_use]
pub fn to_chrome_json(log: &TraceLog) -> String {
    let mut pids: Vec<String> = Vec::new();
    let mut tids: Vec<(usize, u32, String)> = Vec::new(); // (pid, tid, label)
    let note_tid = |tids: &mut Vec<(usize, u32, String)>, pid: usize, tid: u32, label: String| {
        if !tids.iter().any(|(p, t, _)| *p == pid && *t == tid) {
            tids.push((pid, tid, label));
        }
    };
    let mut slices: Vec<String> = Vec::new();
    for event in &log.events {
        match event {
            TraceEvent::Stage {
                name,
                start_us,
                dur_us,
                workers,
                items,
            } => {
                let pid = pid_of(&mut pids, name);
                note_tid(&mut tids, pid, 0, "feeder".to_string());
                slices.push(format!(
                    r#"{{"name":"stage","cat":"stage","ph":"X","pid":{pid},"tid":0,"ts":{start_us},"dur":{dur_us},"args":{{"workers":{workers},"items":{items}}}}}"#
                ));
            }
            TraceEvent::Batch {
                name,
                worker,
                start_us,
                dur_us,
                items,
            } => {
                let pid = pid_of(&mut pids, name);
                let tid = worker + 1;
                note_tid(&mut tids, pid, tid, format!("worker {worker}"));
                slices.push(format!(
                    r#"{{"name":"batch","cat":"batch","ph":"X","pid":{pid},"tid":{tid},"ts":{start_us},"dur":{dur_us},"args":{{"items":{items}}}}}"#
                ));
            }
            TraceEvent::Stall {
                name,
                shard,
                start_us,
                dur_us,
            } => {
                let pid = pid_of(&mut pids, name);
                note_tid(&mut tids, pid, 0, "feeder".to_string());
                slices.push(format!(
                    r#"{{"name":"stall","cat":"stall","ph":"X","pid":{pid},"tid":0,"ts":{start_us},"dur":{dur_us},"args":{{"shard":{shard}}}}}"#
                ));
            }
            TraceEvent::MergeWait {
                name,
                start_us,
                dur_us,
                pending,
            } => {
                let pid = pid_of(&mut pids, name);
                note_tid(&mut tids, pid, MERGE_TID, "merge".to_string());
                slices.push(format!(
                    r#"{{"name":"merge wait","cat":"merge","ph":"X","pid":{pid},"tid":{MERGE_TID},"ts":{start_us},"dur":{dur_us},"args":{{"pending":{pending}}}}}"#
                ));
                slices.push(format!(
                    r#"{{"name":"merge_pending","ph":"C","pid":{pid},"ts":{},"args":{{"pending":{pending}}}}}"#,
                    start_us.saturating_add(*dur_us)
                ));
            }
            TraceEvent::Depth {
                name,
                shard,
                at_us,
                depth,
            } => {
                let pid = pid_of(&mut pids, name);
                slices.push(format!(
                    r#"{{"name":"queue_depth.shard{shard}","ph":"C","pid":{pid},"ts":{at_us},"args":{{"depth":{depth}}}}}"#
                ));
            }
            TraceEvent::Phase {
                name,
                start_us,
                dur_us,
            } => {
                slices.push(format!(
                    r#"{{"name":"{}","cat":"phase","ph":"X","pid":0,"tid":0,"ts":{start_us},"dur":{dur_us}}}"#,
                    esc(name)
                ));
            }
        }
    }

    let mut meta: Vec<String> = Vec::new();
    meta.push(r#"{"name":"process_name","ph":"M","pid":0,"args":{"name":"pipeline"}}"#.to_string());
    meta.push(
        r#"{"name":"thread_name","ph":"M","pid":0,"tid":0,"args":{"name":"phases"}}"#.to_string(),
    );
    for (i, name) in pids.iter().enumerate() {
        meta.push(format!(
            r#"{{"name":"process_name","ph":"M","pid":{},"args":{{"name":"{}"}}}}"#,
            i + 1,
            esc(name)
        ));
    }
    for (pid, tid, label) in &tids {
        meta.push(format!(
            r#"{{"name":"thread_name","ph":"M","pid":{pid},"tid":{tid},"args":{{"name":"{}"}}}}"#,
            esc(label)
        ));
    }

    let mut out = String::new();
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for piece in meta.iter().chain(slices.iter()) {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('\n');
        out.push_str(piece);
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\",\"otherData\":{");
    out.push_str(&format!("\"dropped_events\":{}", log.dropped));
    out.push_str("}}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> TraceLog {
        TraceLog::from_events(
            vec![
                TraceEvent::Stage {
                    name: "features.pure".to_string(),
                    start_us: 10,
                    dur_us: 90,
                    workers: 2,
                    items: 64,
                },
                TraceEvent::Batch {
                    name: "features.pure".to_string(),
                    worker: 0,
                    start_us: 12,
                    dur_us: 30,
                    items: 32,
                },
                TraceEvent::Batch {
                    name: "features.pure".to_string(),
                    worker: 1,
                    start_us: 14,
                    dur_us: 35,
                    items: 32,
                },
                TraceEvent::Stall {
                    name: "features.pure".to_string(),
                    shard: 1,
                    start_us: 20,
                    dur_us: 5,
                },
                TraceEvent::MergeWait {
                    name: "features.pure".to_string(),
                    start_us: 40,
                    dur_us: 8,
                    pending: 3,
                },
                TraceEvent::Depth {
                    name: "features.pure".to_string(),
                    shard: 0,
                    at_us: 15,
                    depth: 2,
                },
                TraceEvent::Phase {
                    name: "ml.train".to_string(),
                    start_us: 100,
                    dur_us: 400,
                },
            ],
            2,
        )
    }

    #[test]
    fn export_names_every_process_and_worker_track() {
        let json = to_chrome_json(&sample_log());
        assert!(json.contains(r#""name":"features.pure""#), "{json}");
        assert!(json.contains(r#""name":"worker 0""#), "{json}");
        assert!(json.contains(r#""name":"worker 1""#), "{json}");
        assert!(json.contains(r#""name":"merge""#), "{json}");
        assert!(json.contains(r#""name":"queue_depth.shard0""#), "{json}");
        assert!(json.contains(r#""name":"ml.train""#), "{json}");
        assert!(json.contains(r#""dropped_events":2"#), "{json}");
    }

    #[test]
    fn phases_live_on_pid_zero_and_stages_do_not() {
        let json = to_chrome_json(&sample_log());
        assert!(
            json.contains(r#""name":"ml.train","cat":"phase","ph":"X","pid":0"#),
            "{json}"
        );
        assert!(
            json.contains(r#""name":"batch","cat":"batch","ph":"X","pid":1"#),
            "{json}"
        );
    }

    #[test]
    fn hostile_names_are_escaped() {
        let log = TraceLog::from_events(
            vec![TraceEvent::Phase {
                name: "bad\"name\\with\nnewline".to_string(),
                start_us: 0,
                dur_us: 1,
            }],
            0,
        );
        let json = to_chrome_json(&log);
        assert!(json.contains(r#"bad\"name\\with\nnewline"#), "{json}");
        assert!(!json.contains("bad\"name"), "raw quote leaked: {json}");
    }

    #[test]
    fn empty_log_is_still_valid_json_shape() {
        let json = to_chrome_json(&TraceLog::default());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains(r#""dropped_events":0"#));
    }
}
