//! Critical-path analysis over a captured [`TraceLog`]: per-stage
//! busy/stall/idle wall-clock fractions, overall parallel efficiency,
//! and the serialized phase chain that bounds the run — the automated
//! answer to "why does `--threads N` barely beat `--threads 1`".

use crate::{TraceEvent, TraceLog};

/// Aggregated driver-level accounting for one exec stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageReport {
    /// Stage name.
    pub name: String,
    /// `run()` invocations observed.
    pub invocations: u64,
    /// Largest worker count across invocations.
    pub workers: u32,
    /// Total stage-envelope wall time, µs.
    pub wall_us: u64,
    /// Total worker busy time (Σ batch durations), µs.
    pub busy_us: u64,
    /// Total feeder backpressure-stall time, µs.
    pub stall_us: u64,
    /// Total ordered-merge wait time, µs.
    pub merge_wait_us: u64,
    /// Records processed.
    pub items: u64,
}

impl StageReport {
    /// Fraction of the stage's worker-seconds spent busy:
    /// `busy / (wall × workers)`.
    #[must_use]
    pub fn busy_frac(&self) -> f64 {
        if self.wall_us == 0 || self.workers == 0 {
            return 0.0;
        }
        self.busy_us as f64 / (self.wall_us as f64 * f64::from(self.workers))
    }

    /// Fraction of the stage's wall time the feeder spent stalled on
    /// backpressure.
    #[must_use]
    pub fn stall_frac(&self) -> f64 {
        if self.wall_us == 0 {
            return 0.0;
        }
        (self.stall_us as f64 / self.wall_us as f64).min(1.0)
    }

    /// Fraction of worker-seconds not accounted busy (idle: waiting on
    /// input, the merge, or simply unused workers).
    #[must_use]
    pub fn idle_frac(&self) -> f64 {
        (1.0 - self.busy_frac()).max(0.0)
    }

    /// Effective parallelism: average concurrently-busy workers
    /// (`busy / wall`). A value near 1.0 means the stage ran serially
    /// no matter how many workers it had.
    #[must_use]
    pub fn effective_parallelism(&self) -> f64 {
        if self.wall_us == 0 {
            return 0.0;
        }
        self.busy_us as f64 / self.wall_us as f64
    }
}

/// Aggregated accounting for one pipeline phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseReport {
    /// Phase name.
    pub name: String,
    /// Phase spans observed.
    pub invocations: u64,
    /// Total phase wall time, µs.
    pub wall_us: u64,
    /// Wall time not covered by nested phases, µs (what this phase
    /// *itself* contributes to the serialized chain).
    pub exclusive_us: u64,
    /// Worker busy time overlapping the phase's spans, µs.
    pub busy_us: u64,
}

impl PhaseReport {
    /// Average concurrently-busy exec workers while the phase ran.
    #[must_use]
    pub fn parallelism(&self) -> f64 {
        if self.wall_us == 0 {
            return 0.0;
        }
        self.busy_us as f64 / self.wall_us as f64
    }

    /// Whether the phase is effectively serialized: during its wall
    /// time the exec workers averaged ≤ ~1.2 busy workers (1.0 is a
    /// pure sequential loop; 0.0 is non-exec code like RF training).
    #[must_use]
    pub fn serialized(&self) -> bool {
        self.parallelism() < 1.2
    }
}

/// One link of the top-level serialized chain: a phase span not nested
/// inside any other phase, in run order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainLink {
    /// Phase name.
    pub name: String,
    /// Start, µs since trace epoch.
    pub start_us: u64,
    /// Duration, µs.
    pub dur_us: u64,
}

/// The full timeline analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineReport {
    /// End-to-end traced wall time (first event start → last end), µs.
    pub run_wall_us: u64,
    /// Largest worker count any stage invocation used (≥ 1).
    pub max_workers: u32,
    /// Total worker busy time across every stage, µs.
    pub total_busy_us: u64,
    /// `Σ busy / (run_wall × max_workers)` — 1.0 means every worker was
    /// busy for the whole run; the gap to 1.0 is the headroom
    /// parallelism is not exploiting.
    pub parallel_efficiency: f64,
    /// Per-stage accounting, widest wall time first.
    pub stages: Vec<StageReport>,
    /// Per-phase accounting, largest exclusive time first — the ranked
    /// "why t0 ≈ t1" list.
    pub phases: Vec<PhaseReport>,
    /// Top-level phase spans in run order (the serialized chain
    /// bounding the run).
    pub chain: Vec<ChainLink>,
    /// Wall time covered by no top-level phase, µs.
    pub uncovered_us: u64,
    /// Events lost to buffer overflow while recording.
    pub dropped: u64,
}

fn overlap(a_start: u64, a_end: u64, b_start: u64, b_end: u64) -> u64 {
    a_end.min(b_end).saturating_sub(a_start.max(b_start))
}

/// Total length of the union of `intervals` (merged, so overlaps count
/// once).
fn union_len(mut intervals: Vec<(u64, u64)>) -> u64 {
    intervals.sort_unstable();
    let mut total = 0u64;
    let mut cursor = 0u64;
    let mut open = false;
    for (start, end) in intervals {
        if !open || start > cursor {
            total += end.saturating_sub(start);
            cursor = end;
            open = true;
        } else if end > cursor {
            total += end - cursor;
            cursor = end;
        }
    }
    total
}

/// Analyzes a captured trace into the timeline report. Deterministic in
/// the input log; safe on empty logs (all-zero report).
#[must_use]
pub fn analyze(log: &TraceLog) -> TimelineReport {
    let mut min_start = u64::MAX;
    let mut max_end = 0u64;
    for e in &log.events {
        min_start = min_start.min(e.start_us());
        max_end = max_end.max(e.end_us());
    }
    let run_wall_us = if min_start == u64::MAX {
        0
    } else {
        max_end - min_start
    };

    // --- Per-stage aggregation -------------------------------------
    let mut stages: Vec<StageReport> = Vec::new();
    let stage_mut = |stages: &mut Vec<StageReport>, name: &str| -> usize {
        if let Some(i) = stages.iter().position(|s| s.name == name) {
            return i;
        }
        stages.push(StageReport {
            name: name.to_string(),
            invocations: 0,
            workers: 0,
            wall_us: 0,
            busy_us: 0,
            stall_us: 0,
            merge_wait_us: 0,
            items: 0,
        });
        stages.len() - 1
    };
    let mut batches: Vec<(u64, u64)> = Vec::new(); // (start, end) of every batch
    let mut max_workers = 1u32;
    for e in &log.events {
        match e {
            TraceEvent::Stage {
                name,
                dur_us,
                workers,
                items,
                ..
            } => {
                let i = stage_mut(&mut stages, name);
                stages[i].invocations += 1;
                stages[i].workers = stages[i].workers.max(*workers);
                stages[i].wall_us += dur_us;
                stages[i].items += items;
                max_workers = max_workers.max(*workers);
            }
            TraceEvent::Batch {
                name,
                start_us,
                dur_us,
                ..
            } => {
                let i = stage_mut(&mut stages, name);
                stages[i].busy_us += dur_us;
                batches.push((*start_us, start_us.saturating_add(*dur_us)));
            }
            TraceEvent::Stall { name, dur_us, .. } => {
                let i = stage_mut(&mut stages, name);
                stages[i].stall_us += dur_us;
            }
            TraceEvent::MergeWait { name, dur_us, .. } => {
                let i = stage_mut(&mut stages, name);
                stages[i].merge_wait_us += dur_us;
            }
            TraceEvent::Depth { .. } | TraceEvent::Phase { .. } => {}
        }
    }
    let total_busy_us: u64 = stages.iter().map(|s| s.busy_us).sum();
    stages.sort_by(|a, b| b.wall_us.cmp(&a.wall_us).then(a.name.cmp(&b.name)));

    // --- Phase spans: nesting, exclusivity, chain ------------------
    struct Span {
        name: String,
        start: u64,
        end: u64,
    }
    let spans: Vec<Span> = log
        .events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Phase {
                name,
                start_us,
                dur_us,
            } => Some(Span {
                name: name.clone(),
                start: *start_us,
                end: start_us.saturating_add(*dur_us),
            }),
            _ => None,
        })
        .collect();
    // A span is nested when some *other* span properly contains it
    // (ties broken by index so identical intervals don't hide each
    // other).
    let contained_in = |i: usize| -> Option<usize> {
        let s = &spans[i];
        spans.iter().enumerate().position(|(j, o)| {
            j != i
                && o.start <= s.start
                && s.end <= o.end
                && (o.end - o.start > s.end - s.start || j < i)
        })
    };
    let mut phases: Vec<PhaseReport> = Vec::new();
    let phase_mut = |phases: &mut Vec<PhaseReport>, name: &str| -> usize {
        if let Some(i) = phases.iter().position(|p| p.name == name) {
            return i;
        }
        phases.push(PhaseReport {
            name: name.to_string(),
            invocations: 0,
            wall_us: 0,
            exclusive_us: 0,
            busy_us: 0,
        });
        phases.len() - 1
    };
    let mut chain: Vec<ChainLink> = Vec::new();
    for (i, span) in spans.iter().enumerate() {
        let nested: Vec<(u64, u64)> = spans
            .iter()
            .enumerate()
            .filter(|&(j, o)| j != i && contained_in(j) == Some(i) && o.end > o.start)
            .map(|(_, o)| (o.start, o.end))
            .collect();
        let wall = span.end - span.start;
        let exclusive = wall.saturating_sub(union_len(nested));
        let busy: u64 = batches
            .iter()
            .map(|&(bs, be)| overlap(span.start, span.end, bs, be))
            .sum();
        let p = phase_mut(&mut phases, &span.name);
        phases[p].invocations += 1;
        phases[p].wall_us += wall;
        phases[p].exclusive_us += exclusive;
        phases[p].busy_us += busy;
        if contained_in(i).is_none() {
            chain.push(ChainLink {
                name: span.name.clone(),
                start_us: span.start,
                dur_us: wall,
            });
        }
    }
    chain.sort_by_key(|l| l.start_us);
    phases.sort_by(|a, b| {
        b.exclusive_us
            .cmp(&a.exclusive_us)
            .then(a.name.cmp(&b.name))
    });
    let covered = union_len(
        chain
            .iter()
            .map(|l| (l.start_us, l.start_us.saturating_add(l.dur_us)))
            .collect(),
    );
    let uncovered_us = run_wall_us.saturating_sub(covered);

    let parallel_efficiency = if run_wall_us == 0 {
        0.0
    } else {
        (total_busy_us as f64 / (run_wall_us as f64 * f64::from(max_workers))).min(1.0)
    };

    TimelineReport {
        run_wall_us,
        max_workers,
        total_busy_us,
        parallel_efficiency,
        stages,
        phases,
        chain,
        uncovered_us,
        dropped: log.dropped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log(events: Vec<TraceEvent>) -> TraceLog {
        TraceLog::from_events(events, 0)
    }

    #[test]
    fn empty_log_analyzes_to_zeroes() {
        let r = analyze(&log(vec![]));
        assert_eq!(r.run_wall_us, 0);
        assert_eq!(r.parallel_efficiency, 0.0);
        assert!(r.stages.is_empty());
        assert!(r.chain.is_empty());
    }

    #[test]
    fn busy_and_stall_fractions_add_up() {
        // One stage, 2 workers, 100µs wall; workers busy 60+40µs; the
        // feeder stalled 10µs.
        let r = analyze(&log(vec![
            TraceEvent::Stage {
                name: "s".to_string(),
                start_us: 0,
                dur_us: 100,
                workers: 2,
                items: 10,
            },
            TraceEvent::Batch {
                name: "s".to_string(),
                worker: 0,
                start_us: 0,
                dur_us: 60,
                items: 5,
            },
            TraceEvent::Batch {
                name: "s".to_string(),
                worker: 1,
                start_us: 0,
                dur_us: 40,
                items: 5,
            },
            TraceEvent::Stall {
                name: "s".to_string(),
                shard: 0,
                start_us: 70,
                dur_us: 10,
            },
        ]));
        let s = &r.stages[0];
        assert_eq!(s.wall_us, 100);
        assert_eq!(s.busy_us, 100);
        assert!((s.busy_frac() - 0.5).abs() < 1e-9, "{}", s.busy_frac());
        assert!((s.stall_frac() - 0.1).abs() < 1e-9);
        assert!((s.idle_frac() - 0.5).abs() < 1e-9);
        assert!((s.effective_parallelism() - 1.0).abs() < 1e-9);
        // Whole run: 100µs wall, 2 workers, 100µs busy → 0.5.
        assert!((r.parallel_efficiency - 0.5).abs() < 1e-9);
    }

    #[test]
    fn serialized_phase_is_flagged_and_parallel_phase_is_not() {
        let r = analyze(&log(vec![
            // A phase with zero exec batch coverage: RF training.
            TraceEvent::Phase {
                name: "ml.train".to_string(),
                start_us: 0,
                dur_us: 1_000,
            },
            // A phase fully covered by 2 concurrent workers.
            TraceEvent::Phase {
                name: "classify".to_string(),
                start_us: 1_000,
                dur_us: 500,
            },
            TraceEvent::Batch {
                name: "s".to_string(),
                worker: 0,
                start_us: 1_000,
                dur_us: 500,
                items: 1,
            },
            TraceEvent::Batch {
                name: "s".to_string(),
                worker: 1,
                start_us: 1_000,
                dur_us: 500,
                items: 1,
            },
        ]));
        let train = r.phases.iter().find(|p| p.name == "ml.train").unwrap();
        let classify = r.phases.iter().find(|p| p.name == "classify").unwrap();
        assert!(train.serialized(), "{train:?}");
        assert!((train.parallelism() - 0.0).abs() < 1e-9);
        assert!(!classify.serialized(), "{classify:?}");
        assert!((classify.parallelism() - 2.0).abs() < 1e-9);
        // ml.train dominates the ranked list.
        assert_eq!(r.phases[0].name, "ml.train");
    }

    #[test]
    fn nested_phases_yield_exclusive_time_and_a_top_level_chain() {
        let r = analyze(&log(vec![
            TraceEvent::Phase {
                name: "label".to_string(),
                start_us: 0,
                dur_us: 100,
            },
            TraceEvent::Phase {
                name: "label.suspended".to_string(),
                start_us: 10,
                dur_us: 30,
            },
            TraceEvent::Phase {
                name: "label.clustering".to_string(),
                start_us: 40,
                dur_us: 50,
            },
            TraceEvent::Phase {
                name: "train".to_string(),
                start_us: 100,
                dur_us: 40,
            },
        ]));
        let label = r.phases.iter().find(|p| p.name == "label").unwrap();
        assert_eq!(label.wall_us, 100);
        assert_eq!(label.exclusive_us, 20); // 100 − (30 + 50)
        let chain: Vec<&str> = r.chain.iter().map(|l| l.name.as_str()).collect();
        assert_eq!(chain, vec!["label", "train"]);
        assert_eq!(r.uncovered_us, 0);
    }

    #[test]
    fn uncovered_time_is_reported() {
        let r = analyze(&log(vec![
            TraceEvent::Phase {
                name: "a".to_string(),
                start_us: 0,
                dur_us: 10,
            },
            TraceEvent::Batch {
                name: "s".to_string(),
                worker: 0,
                start_us: 90,
                dur_us: 10,
                items: 1,
            },
        ]));
        assert_eq!(r.run_wall_us, 100);
        assert_eq!(r.uncovered_us, 90);
    }

    #[test]
    fn identical_twin_spans_do_not_hide_each_other() {
        // Two phases with the exact same interval: exactly one is
        // top-level; the other nests under it (no double chain entry,
        // no infinite mutual containment).
        let r = analyze(&log(vec![
            TraceEvent::Phase {
                name: "outer".to_string(),
                start_us: 0,
                dur_us: 50,
            },
            TraceEvent::Phase {
                name: "inner".to_string(),
                start_us: 0,
                dur_us: 50,
            },
        ]));
        assert_eq!(r.chain.len(), 1);
        assert_eq!(r.uncovered_us, 0);
    }
}
