//! Property-based coverage of the `BENCH_*.json` codec: encode → decode
//! is exact for any finite report, and the decoder never panics on
//! malformed input — it returns `Err` for garbage and either outcome
//! (but no crash) for structure-preserving mutations of valid files.

use proptest::prelude::*;

use ph_prof::{compare, BenchMeta, BenchReport, DiffConfig};

/// Samples in a realistic millisecond range. The codec's exactness
/// guarantee is for finite values, which `0.001..100_000.0` stays in.
fn sample_vec() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.001f64..100_000.0, 0..20)
}

fn meta(threads: u64, seed: u64, quick: bool) -> BenchMeta {
    BenchMeta {
        rustc: "rustc 1.95.0 (prop test)".to_string(),
        threads,
        seed,
        crate_version: "0.1.0".to_string(),
        mode: if quick { "quick" } else { "full" }.to_string(),
    }
}

proptest! {
    /// Any report built from finite samples encodes to JSON that decodes
    /// back to an equal report (floats use shortest-round-trip `Display`,
    /// so equality is exact, not approximate).
    #[test]
    fn encode_decode_round_trips_exactly(
        samples in sample_vec(),
        scenario in "[a-z_]{1,24}",
        warmup in 0u64..10,
        threads in 0u64..16,
        seed in 0u64..1_000_000,
        quick: bool,
    ) {
        let report = BenchReport::from_samples(
            &scenario,
            warmup,
            samples,
            meta(threads, seed, quick),
        );
        let text = report.to_json();
        let back = BenchReport::from_json(&text);
        prop_assert!(back.is_ok(), "round-trip failed: {:?}", back.err());
        prop_assert_eq!(back.expect("checked"), report);
    }

    /// A decoded report always survives a self-diff: derived stats are
    /// consistent enough for `compare` to accept the file against itself
    /// with a non-regression verdict.
    #[test]
    fn decoded_reports_self_diff_clean(samples in sample_vec(), seed in 0u64..1000) {
        let report = BenchReport::from_samples("prop_scenario", 1, samples, meta(1, seed, true));
        let back = BenchReport::from_json(&report.to_json()).expect("round-trips");
        let cmp = compare(&back, &back, &DiffConfig::default());
        prop_assert!(cmp.is_ok(), "self-compare failed: {:?}", cmp.err());
        let cmp = cmp.expect("checked");
        prop_assert!(
            cmp.verdict != ph_prof::Verdict::Regression,
            "self-diff regressed: {:?}",
            cmp
        );
    }

    /// Arbitrary non-JSON bytes never panic the decoder — they yield a
    /// `ParseError` (random text is never a valid schema-1 report).
    #[test]
    fn garbage_input_errors_without_panicking(text in "[ -~\n\t]{0,200}") {
        prop_assert!(BenchReport::from_json(&text).is_err());
    }

    /// JSON-flavored garbage (brackets, quotes, colons, digits — the
    /// characters most likely to reach deep parser states) also never
    /// panics. A parse success is allowed only if it's a real report.
    #[test]
    fn json_shaped_garbage_never_panics(text in "[{}\\[\\]\",:0-9a-z.eE+-]{0,120}") {
        let _ = BenchReport::from_json(&text);
    }

    /// Truncating a valid document at any byte boundary never panics:
    /// every proper prefix is either rejected or (for the full length)
    /// accepted.
    #[test]
    fn truncated_documents_never_panic(
        samples in sample_vec(),
        cut_permille in 0u64..1000,
    ) {
        let text = BenchReport::from_samples("trunc", 1, samples, meta(1, 42, true)).to_json();
        let cut = (text.len() as u64 * cut_permille / 1000) as usize;
        // Stay on a UTF-8 boundary (the JSON here is ASCII, but be safe).
        let mut cut = cut.min(text.len());
        while !text.is_char_boundary(cut) {
            cut -= 1;
        }
        let prefix = &text[..cut];
        if cut < text.len() {
            prop_assert!(BenchReport::from_json(prefix).is_err());
        }
    }

    /// Single-byte corruption of a valid document never panics, and any
    /// document that still parses keeps finite summary stats (the
    /// decoder's finiteness validation holds under mutation).
    #[test]
    fn mutated_documents_never_panic(
        samples in proptest::collection::vec(0.001f64..1000.0, 1..8),
        pos_permille in 0u64..1000,
        replacement in "[ -~]",
    ) {
        let text = BenchReport::from_samples("mutate", 1, samples, meta(1, 42, true)).to_json();
        let pos = ((text.len() as u64 * pos_permille / 1000) as usize).min(text.len() - 1);
        let mut mutated = text.into_bytes();
        mutated[pos] = replacement.as_bytes()[0];
        let Ok(mutated) = String::from_utf8(mutated) else {
            return Ok(()); // can't happen for ASCII, but don't assume
        };
        if let Ok(report) = BenchReport::from_json(&mutated) {
            prop_assert!(report.median.is_finite());
            prop_assert!(report.iqr.is_finite());
            prop_assert!(report.samples.iter().all(|s| s.is_finite()));
        }
    }
}
