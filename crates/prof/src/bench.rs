//! The stable `BENCH_<scenario>.json` baseline schema, its codec, and
//! the order statistics used by the harness.
//!
//! # File format (schema version 1)
//!
//! ```json
//! {
//!   "schema": 1,
//!   "scenario": "feature_extraction",
//!   "unit": "ms",
//!   "warmup": 1,
//!   "samples": [12.1, 11.9, 12.4],
//!   "median": 12.1,
//!   "iqr": 0.5,
//!   "min": 11.9,
//!   "max": 12.4,
//!   "meta": {
//!     "rustc": "rustc 1.95.0",
//!     "threads": 1,
//!     "seed": 42,
//!     "crate_version": "0.1.0",
//!     "mode": "quick"
//!   }
//! }
//! ```
//!
//! The contract: `schema` is bumped on any incompatible change, every
//! field above is required, `samples` holds the raw post-warmup
//! measurements in run order (finite, milliseconds), and the summary
//! stats are derived from `samples` at write time. Floats are emitted
//! with Rust's shortest-round-trip `Display`, so encode → decode is
//! exact for finite values.

use std::fmt::Write as _;

/// Current on-disk schema version.
pub const SCHEMA_VERSION: u64 = 1;

/// Canonical baseline file name for a scenario: `BENCH_<scenario>.json`.
#[must_use]
pub fn bench_file_name(scenario: &str) -> String {
    format!("BENCH_{scenario}.json")
}

/// Build/run metadata recorded with every baseline so files from
/// different machines or configurations are comparable (or visibly
/// not).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchMeta {
    /// `rustc --version` of the build.
    pub rustc: String,
    /// Worker thread count the scenario ran with (0 = all cores).
    pub threads: u64,
    /// Deterministic seed the scenario ran with.
    pub seed: u64,
    /// Workspace crate version.
    pub crate_version: String,
    /// Harness mode: `"quick"` or `"full"`.
    pub mode: String,
}

/// One scenario's recorded benchmark: raw samples plus derived summary
/// statistics and build metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Schema version (see [`SCHEMA_VERSION`]).
    pub schema: u64,
    /// Scenario name (also names the file, via [`bench_file_name`]).
    pub scenario: String,
    /// Unit of every sample; currently always `"ms"`.
    pub unit: String,
    /// Warmup iterations discarded before sampling.
    pub warmup: u64,
    /// Raw post-warmup wall-time samples, in run order.
    pub samples: Vec<f64>,
    /// Median of `samples`.
    pub median: f64,
    /// Inter-quartile range (p75 − p25) of `samples`.
    pub iqr: f64,
    /// Fastest sample.
    pub min: f64,
    /// Slowest sample.
    pub max: f64,
    /// Build/run metadata.
    pub meta: BenchMeta,
}

/// Decode failure: the input is not a schema-1 bench report. Never a
/// panic — malformed bytes, wrong types, or missing fields all land
/// here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid bench report: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Median of `xs` (0 when empty). Does not require sorted input.
#[must_use]
pub fn median(xs: &[f64]) -> f64 {
    percentile_of(xs, 50.0)
}

/// Inter-quartile range (p75 − p25) of `xs`; 0 when empty.
#[must_use]
pub fn iqr(xs: &[f64]) -> f64 {
    percentile_of(xs, 75.0) - percentile_of(xs, 25.0)
}

/// Linear-interpolated percentile (`p` in 0..=100) of **sorted** input;
/// 0 when empty.
#[must_use]
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

fn percentile_of(xs: &[f64], p: f64) -> f64 {
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    percentile(&sorted, p)
}

impl BenchReport {
    /// Builds a report from raw samples, deriving the summary stats.
    #[must_use]
    pub fn from_samples(scenario: &str, warmup: u64, samples: Vec<f64>, meta: BenchMeta) -> Self {
        let mut sorted = samples.clone();
        sorted.sort_by(f64::total_cmp);
        BenchReport {
            schema: SCHEMA_VERSION,
            scenario: scenario.to_string(),
            unit: "ms".to_string(),
            warmup,
            median: percentile(&sorted, 50.0),
            iqr: percentile(&sorted, 75.0) - percentile(&sorted, 25.0),
            min: sorted.first().copied().unwrap_or(0.0),
            max: sorted.last().copied().unwrap_or(0.0),
            samples,
            meta,
        }
    }

    /// Serializes to the schema-1 JSON document shown in the module
    /// docs (pretty-printed, trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": {},", self.schema);
        let _ = writeln!(out, "  \"scenario\": {},", quote(&self.scenario));
        let _ = writeln!(out, "  \"unit\": {},", quote(&self.unit));
        let _ = writeln!(out, "  \"warmup\": {},", self.warmup);
        out.push_str("  \"samples\": [");
        for (i, s) in self.samples.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&num(*s));
        }
        out.push_str("],\n");
        let _ = writeln!(out, "  \"median\": {},", num(self.median));
        let _ = writeln!(out, "  \"iqr\": {},", num(self.iqr));
        let _ = writeln!(out, "  \"min\": {},", num(self.min));
        let _ = writeln!(out, "  \"max\": {},", num(self.max));
        out.push_str("  \"meta\": {\n");
        let _ = writeln!(out, "    \"rustc\": {},", quote(&self.meta.rustc));
        let _ = writeln!(out, "    \"threads\": {},", self.meta.threads);
        let _ = writeln!(out, "    \"seed\": {},", self.meta.seed);
        let _ = writeln!(
            out,
            "    \"crate_version\": {},",
            quote(&self.meta.crate_version)
        );
        let _ = writeln!(out, "    \"mode\": {}", quote(&self.meta.mode));
        out.push_str("  }\n}\n");
        out
    }

    /// Decodes a schema-1 JSON document. Returns `Err` (never panics)
    /// on malformed input, missing fields, wrong types, non-finite
    /// samples, or an unknown schema version.
    pub fn from_json(text: &str) -> Result<Self, ParseError> {
        let doc = crate::jsonv::parse(text).map_err(ParseError)?;
        let schema = req_u64(&doc, "schema")?;
        if schema != SCHEMA_VERSION {
            return Err(ParseError(format!(
                "unsupported schema version {schema} (this build reads {SCHEMA_VERSION})"
            )));
        }
        let samples_json = doc
            .get("samples")
            .and_then(crate::jsonv::Json::as_arr)
            .ok_or_else(|| ParseError("missing array field \"samples\"".to_string()))?;
        let mut samples = Vec::with_capacity(samples_json.len());
        for (i, s) in samples_json.iter().enumerate() {
            let v = s
                .as_f64()
                .ok_or_else(|| ParseError(format!("sample {i} is not a number")))?;
            if !v.is_finite() {
                return Err(ParseError(format!("sample {i} is not finite")));
            }
            samples.push(v);
        }
        let meta_json = doc
            .get("meta")
            .ok_or_else(|| ParseError("missing object field \"meta\"".to_string()))?;
        let meta = BenchMeta {
            rustc: req_str(meta_json, "rustc")?,
            threads: req_u64(meta_json, "threads")?,
            seed: req_u64(meta_json, "seed")?,
            crate_version: req_str(meta_json, "crate_version")?,
            mode: req_str(meta_json, "mode")?,
        };
        Ok(BenchReport {
            schema,
            scenario: req_str(&doc, "scenario")?,
            unit: req_str(&doc, "unit")?,
            warmup: req_u64(&doc, "warmup")?,
            samples,
            median: req_finite(&doc, "median")?,
            iqr: req_finite(&doc, "iqr")?,
            min: req_finite(&doc, "min")?,
            max: req_finite(&doc, "max")?,
            meta,
        })
    }
}

fn req_u64(v: &crate::jsonv::Json, key: &str) -> Result<u64, ParseError> {
    v.get(key)
        .and_then(crate::jsonv::Json::as_u64)
        .ok_or_else(|| ParseError(format!("missing integer field {key:?}")))
}

fn req_str(v: &crate::jsonv::Json, key: &str) -> Result<String, ParseError> {
    v.get(key)
        .and_then(crate::jsonv::Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| ParseError(format!("missing string field {key:?}")))
}

fn req_finite(v: &crate::jsonv::Json, key: &str) -> Result<f64, ParseError> {
    let n = v
        .get(key)
        .and_then(crate::jsonv::Json::as_f64)
        .ok_or_else(|| ParseError(format!("missing number field {key:?}")))?;
    if n.is_finite() {
        Ok(n)
    } else {
        Err(ParseError(format!("field {key:?} is not finite")))
    }
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        // Samples are validated finite before writing; this is a
        // defensive fallback that still produces valid JSON.
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> BenchMeta {
        BenchMeta {
            rustc: "rustc 1.95.0 (test)".to_string(),
            threads: 1,
            seed: 42,
            crate_version: "0.1.0".to_string(),
            mode: "quick".to_string(),
        }
    }

    #[test]
    fn stats_from_samples() {
        let r = BenchReport::from_samples("s", 1, vec![3.0, 1.0, 2.0, 4.0], meta());
        assert_eq!(r.median, 2.5);
        assert_eq!(r.min, 1.0);
        assert_eq!(r.max, 4.0);
        assert_eq!(r.iqr, 1.5); // p75 = 3.25, p25 = 1.75
    }

    #[test]
    fn empty_samples_do_not_panic() {
        let r = BenchReport::from_samples("s", 0, vec![], meta());
        assert_eq!(r.median, 0.0);
        assert_eq!(r.iqr, 0.0);
        let back = BenchReport::from_json(&r.to_json()).expect("round-trips");
        assert_eq!(back, r);
    }

    #[test]
    fn json_round_trip_is_exact() {
        let r = BenchReport::from_samples(
            "feature_extraction",
            2,
            vec![12.125, 11.875, 12.4375, 13.0078125, 11.90625],
            meta(),
        );
        let back = BenchReport::from_json(&r.to_json()).expect("round-trips");
        assert_eq!(back, r);
    }

    #[test]
    fn rejects_wrong_schema_and_missing_fields() {
        let good = BenchReport::from_samples("s", 1, vec![1.0], meta()).to_json();
        let wrong_schema = good.replace("\"schema\": 1", "\"schema\": 99");
        assert!(BenchReport::from_json(&wrong_schema).is_err());
        let no_meta = good.replace("\"meta\"", "\"nope\"");
        assert!(BenchReport::from_json(&no_meta).is_err());
        assert!(BenchReport::from_json("not json at all").is_err());
        assert!(BenchReport::from_json("").is_err());
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&xs, 0.0), 10.0);
        assert_eq!(percentile(&xs, 100.0), 40.0);
        assert_eq!(percentile(&xs, 50.0), 25.0);
        assert_eq!(percentile(&xs, 25.0), 17.5);
    }
}
