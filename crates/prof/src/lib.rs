//! `ph-prof` — self-profiling and continuous benchmarking for the
//! pseudo-honeypot pipeline.
//!
//! The ROADMAP's north star is a system that runs "as fast as the
//! hardware allows", and the paper's own pitch is *efficiency* (§VI
//! compares collection cost per spammer across honeypot designs). Speed
//! only improves durably when every run is measured against a recorded
//! baseline, so this crate provides the two halves of that discipline:
//!
//! **Profiling** (where time and memory go *inside* a run):
//!
//! - [`CountingAllocator`]: a drop-in `#[global_allocator]` wrapper
//!   around the system allocator that counts allocations, bytes, frees,
//!   live bytes, and the high-water mark. Disabled it costs one relaxed
//!   atomic load per allocation; enabled ([`enable`]) it attributes
//!   every allocation to the current [`scope`].
//! - [`scope`]: scoped per-stage attribution. A pipeline stage opens a
//!   scope (`let _s = ph_prof::scope("features.pure");`) and every
//!   allocation on that thread while the guard lives is charged to the
//!   stage. Scopes nest (inner wins) and are thread-local, so sharded
//!   workers attribute independently.
//! - [`publish`]: flushes the per-stage tallies, heap high-water mark,
//!   and process CPU/wall rollups into the `ph-telemetry` registry as
//!   `prof.*` metrics, where the existing JSON report, Prometheus
//!   exporter, and `inspect` pick them up for free.
//!
//! **Benchmarking** (whether a change made things faster or slower):
//!
//! - [`BenchReport`]: the stable on-disk schema for `BENCH_<scenario>.json`
//!   baseline files — raw samples, median/IQR, and build metadata — with
//!   a hand-rolled codec ([`BenchReport::to_json`] /
//!   [`BenchReport::from_json`]) that never panics on malformed input.
//! - [`compare`]: the noise-aware diff behind `perf diff`: a change only
//!   counts as a regression when it clears both a relative floor and a
//!   multiple of the measured inter-quartile spread.
//!
//! The crate is std-only. The single `unsafe` block lives in the
//! allocator shim (see [`alloc`]); everything else is forbidden from
//! using `unsafe`.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod bench;
pub mod diff;
pub mod jsonv;
mod sysstat;

pub use alloc::{
    disable, enable, is_enabled, publish, scope, stage_stats, AllocStats, CountingAllocator,
    ScopeGuard,
};
pub use bench::{bench_file_name, iqr, median, percentile, BenchMeta, BenchReport, ParseError};
pub use diff::{compare, Comparison, DiffConfig, Verdict};
pub use sysstat::process_cpu_ms;

// The unit-test binary installs the counting allocator so the alloc
// tests exercise real attribution end to end.
#[cfg(test)]
#[global_allocator]
static TEST_ALLOC: CountingAllocator = CountingAllocator::new();
