//! The counting global allocator and scoped per-stage attribution.
//!
//! # Design
//!
//! The process installs [`CountingAllocator`] as its
//! `#[global_allocator]`. Until [`enable`] is called, every allocation
//! pays exactly one relaxed atomic load on top of the system allocator —
//! profiling must be free to ship enabled-capable. Once enabled, each
//! allocation/free bumps a fixed table of atomic counters indexed by the
//! thread's *current scope*: a thread-local small integer set by
//! [`scope`] guards. There are no locks, no heap use, and no
//! `thread_local!` lazy initialization on the allocation path (the
//! scope cell is `const`-initialized), so the allocator can never
//! recurse into itself.
//!
//! Attribution is capped at [`MAX_STAGES`] distinct stage names per
//! process; later names fall back to the `unattributed` slot (slot 0)
//! and are tallied in `prof.scope_overflow`. Frees are charged to the
//! scope active where the free happens, which for cross-stage handoffs
//! means "bytes freed" is attribution-approximate while the global
//! live/peak numbers stay exact.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Maximum distinct stage names attributable per process (slot 0 is the
/// implicit `unattributed` scope).
pub const MAX_STAGES: usize = 64;

static ENABLED: AtomicBool = AtomicBool::new(false);
static SCOPE_OVERFLOW: AtomicU64 = AtomicU64::new(0);
/// Live heap bytes (signed: frees of allocations made before `enable`
/// legitimately drive it negative; publish clamps at 0).
static LIVE_BYTES: AtomicI64 = AtomicI64::new(0);
static PEAK_BYTES: AtomicI64 = AtomicI64::new(0);

struct SlotCounters {
    allocs: AtomicU64,
    bytes: AtomicU64,
    frees: AtomicU64,
    freed_bytes: AtomicU64,
}

// `const` item so the static array below gets per-element fresh atomics.
#[allow(clippy::declare_interior_mutable_const)]
const ZERO_SLOT: SlotCounters = SlotCounters {
    allocs: AtomicU64::new(0),
    bytes: AtomicU64::new(0),
    frees: AtomicU64::new(0),
    freed_bytes: AtomicU64::new(0),
};
static SLOTS: [SlotCounters; MAX_STAGES] = [ZERO_SLOT; MAX_STAGES];

std::thread_local! {
    // `const` init: reading this inside the allocator never allocates.
    static CURRENT_SLOT: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

fn names() -> &'static Mutex<Vec<String>> {
    static NAMES: OnceLock<Mutex<Vec<String>>> = OnceLock::new();
    NAMES.get_or_init(|| Mutex::new(Vec::new()))
}

fn started() -> &'static Mutex<Option<Instant>> {
    static STARTED: OnceLock<Mutex<Option<Instant>>> = OnceLock::new();
    STARTED.get_or_init(|| Mutex::new(None))
}

/// Turns allocation counting (and scope attribution) on. Also starts
/// the wall-clock used for the `prof.wall_ms` rollup.
pub fn enable() {
    let mut started = started().lock().expect("prof start lock poisoned");
    started.get_or_insert_with(Instant::now);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns allocation counting back off (existing tallies are kept).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether profiling is currently enabled.
#[must_use]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Interns `name`, returning its 1-based slot, or 0 when the stage
/// table is full.
fn intern(name: &str) -> usize {
    let mut names = names().lock().expect("prof names lock poisoned");
    if let Some(i) = names.iter().position(|n| n == name) {
        return i + 1;
    }
    if names.len() + 1 >= MAX_STAGES {
        SCOPE_OVERFLOW.fetch_add(1, Ordering::Relaxed);
        return 0;
    }
    names.push(name.to_string());
    names.len()
}

/// RAII guard restoring the previous attribution scope on drop.
#[derive(Debug)]
pub struct ScopeGuard {
    /// Previous slot, or `usize::MAX` for the disabled no-op guard.
    prev: usize,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if self.prev != usize::MAX {
            let _ = CURRENT_SLOT.try_with(|c| c.set(self.prev));
        }
    }
}

/// Opens a per-stage attribution scope on the current thread: until the
/// returned guard drops, allocations (and frees) on this thread are
/// charged to `stage`. Scopes nest — the innermost wins — and are
/// per-thread, so sharded workers attribute independently. When
/// profiling is disabled this is a no-op costing one atomic load.
pub fn scope(stage: &str) -> ScopeGuard {
    if !is_enabled() {
        return ScopeGuard { prev: usize::MAX };
    }
    let slot = intern(stage);
    let prev = CURRENT_SLOT
        .try_with(|c| c.replace(slot))
        .unwrap_or(usize::MAX);
    ScopeGuard { prev }
}

/// Point-in-time allocation tallies for one stage (or for the
/// `unattributed` remainder).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocStats {
    /// Allocations charged to the stage.
    pub allocs: u64,
    /// Bytes allocated.
    pub bytes: u64,
    /// Frees charged to the stage.
    pub frees: u64,
    /// Bytes freed.
    pub freed_bytes: u64,
}

fn slot_stats(slot: usize) -> AllocStats {
    let s = &SLOTS[slot];
    AllocStats {
        allocs: s.allocs.load(Ordering::Relaxed),
        bytes: s.bytes.load(Ordering::Relaxed),
        frees: s.frees.load(Ordering::Relaxed),
        freed_bytes: s.freed_bytes.load(Ordering::Relaxed),
    }
}

/// Current tallies for `stage`, or `None` if no scope ever opened it.
#[must_use]
pub fn stage_stats(stage: &str) -> Option<AllocStats> {
    let names = names().lock().expect("prof names lock poisoned");
    let i = names.iter().position(|n| n == stage)?;
    Some(slot_stats(i + 1))
}

/// Zeroes every tally (stage names stay interned). For tests and for
/// per-phase measurement windows.
pub fn reset_counts() {
    for slot in &SLOTS {
        slot.allocs.store(0, Ordering::Relaxed);
        slot.bytes.store(0, Ordering::Relaxed);
        slot.frees.store(0, Ordering::Relaxed);
        slot.freed_bytes.store(0, Ordering::Relaxed);
    }
    LIVE_BYTES.store(0, Ordering::Relaxed);
    PEAK_BYTES.store(0, Ordering::Relaxed);
    SCOPE_OVERFLOW.store(0, Ordering::Relaxed);
}

/// Flushes the profiling state into the `ph-telemetry` registry as
/// `prof.*` gauges, where the JSON report and Prometheus exporter pick
/// it up: per-stage `prof.alloc.<stage>.{allocs,bytes,frees,freed_bytes}`,
/// the heap rollups `prof.heap.{live_bytes,peak_bytes}`, totals under
/// `prof.alloc.total.*`, and the process rollups `prof.cpu_ms` /
/// `prof.wall_ms`. Idempotent (gauges are set, not added), so calling
/// it again just refreshes the values.
pub fn publish() {
    let names: Vec<String> = names().lock().expect("prof names lock poisoned").clone();
    let mut total = AllocStats::default();
    let emit = |label: &str, s: AllocStats| {
        if s.allocs == 0 && s.frees == 0 {
            return;
        }
        ph_telemetry::gauge(&format!("prof.alloc.{label}.allocs")).set(s.allocs as f64);
        ph_telemetry::gauge(&format!("prof.alloc.{label}.bytes")).set(s.bytes as f64);
        ph_telemetry::gauge(&format!("prof.alloc.{label}.frees")).set(s.frees as f64);
        ph_telemetry::gauge(&format!("prof.alloc.{label}.freed_bytes")).set(s.freed_bytes as f64);
    };
    for (i, name) in names.iter().enumerate() {
        let s = slot_stats(i + 1);
        total.allocs += s.allocs;
        total.bytes += s.bytes;
        total.frees += s.frees;
        total.freed_bytes += s.freed_bytes;
        emit(name, s);
    }
    let unattributed = slot_stats(0);
    total.allocs += unattributed.allocs;
    total.bytes += unattributed.bytes;
    total.frees += unattributed.frees;
    total.freed_bytes += unattributed.freed_bytes;
    emit("unattributed", unattributed);
    if total.allocs > 0 || total.frees > 0 {
        ph_telemetry::gauge("prof.alloc.total.allocs").set(total.allocs as f64);
        ph_telemetry::gauge("prof.alloc.total.bytes").set(total.bytes as f64);
        ph_telemetry::gauge("prof.heap.live_bytes")
            .set(LIVE_BYTES.load(Ordering::Relaxed).max(0) as f64);
        ph_telemetry::gauge("prof.heap.peak_bytes")
            .set(PEAK_BYTES.load(Ordering::Relaxed).max(0) as f64);
    }
    let overflow = SCOPE_OVERFLOW.load(Ordering::Relaxed);
    if overflow > 0 {
        ph_telemetry::gauge("prof.scope_overflow").set(overflow as f64);
    }
    if let Some(cpu_ms) = crate::sysstat::process_cpu_ms() {
        ph_telemetry::gauge("prof.cpu_ms").set(cpu_ms);
    }
    if let Some(start) = *started().lock().expect("prof start lock poisoned") {
        ph_telemetry::gauge("prof.wall_ms").set(start.elapsed().as_secs_f64() * 1000.0);
    }
}

fn note_alloc(size: usize) {
    let slot = CURRENT_SLOT.try_with(std::cell::Cell::get).unwrap_or(0);
    SLOTS[slot].allocs.fetch_add(1, Ordering::Relaxed);
    SLOTS[slot].bytes.fetch_add(size as u64, Ordering::Relaxed);
    let live = LIVE_BYTES.fetch_add(size as i64, Ordering::Relaxed) + size as i64;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
}

fn note_dealloc(size: usize) {
    let slot = CURRENT_SLOT.try_with(std::cell::Cell::get).unwrap_or(0);
    SLOTS[slot].frees.fetch_add(1, Ordering::Relaxed);
    SLOTS[slot]
        .freed_bytes
        .fetch_add(size as u64, Ordering::Relaxed);
    LIVE_BYTES.fetch_sub(size as i64, Ordering::Relaxed);
}

/// A counting wrapper around [`std::alloc::System`], suitable as a
/// `#[global_allocator]`:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: ph_prof::CountingAllocator = ph_prof::CountingAllocator::new();
/// ```
///
/// All counting is gated on [`enable`]; an installed-but-disabled
/// allocator adds one relaxed atomic load per call.
#[derive(Debug, Default)]
pub struct CountingAllocator;

impl CountingAllocator {
    /// A new allocator shim (stateless — all state is process-global).
    #[must_use]
    pub const fn new() -> Self {
        CountingAllocator
    }
}

// The one unsafe block in the crate: pure delegation to `System`, with
// counting bolted on after the fact. No pointer arithmetic, no layout
// changes — the safety obligations are exactly `System`'s.
#[allow(unsafe_code)]
mod shim {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::Ordering;

    use super::{note_alloc, note_dealloc, CountingAllocator, ENABLED};

    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let ptr = System.alloc(layout);
            if ENABLED.load(Ordering::Relaxed) && !ptr.is_null() {
                note_alloc(layout.size());
            }
            ptr
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            let ptr = System.alloc_zeroed(layout);
            if ENABLED.load(Ordering::Relaxed) && !ptr.is_null() {
                note_alloc(layout.size());
            }
            ptr
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout);
            if ENABLED.load(Ordering::Relaxed) {
                note_dealloc(layout.size());
            }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let new_ptr = System.realloc(ptr, layout, new_size);
            if ENABLED.load(Ordering::Relaxed) && !new_ptr.is_null() {
                note_dealloc(layout.size());
                note_alloc(new_size);
            }
            new_ptr
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test binary installs the counting allocator (see lib.rs), so
    // these tests exercise real attribution. Counting is process-global;
    // tests use unique stage names and avoid asserting on globals other
    // tests also move.

    #[test]
    fn disabled_scope_is_a_noop() {
        disable();
        let before = stage_stats("test.alloc.noop");
        {
            let _g = scope("test.alloc.noop");
            let v: Vec<u8> = Vec::with_capacity(4096);
            drop(v);
        }
        assert_eq!(stage_stats("test.alloc.noop"), before, "counted while off");
    }

    #[test]
    fn enabled_scope_attributes_allocations() {
        enable();
        let before = stage_stats("test.alloc.counted").unwrap_or_default();
        {
            let _g = scope("test.alloc.counted");
            let v: Vec<u8> = Vec::with_capacity(100_000);
            drop(v);
        }
        let after = stage_stats("test.alloc.counted").expect("stage interned");
        assert!(after.allocs > before.allocs, "no allocations attributed");
        assert!(
            after.bytes - before.bytes >= 100_000,
            "expected >= 100000 new bytes, got {}",
            after.bytes - before.bytes
        );
        assert!(after.frees > before.frees, "the drop was not attributed");
    }

    #[test]
    fn scopes_nest_and_restore() {
        enable();
        let outer_before = stage_stats("test.alloc.outer").unwrap_or_default();
        {
            let _outer = scope("test.alloc.outer");
            {
                let _inner = scope("test.alloc.inner");
                let v: Vec<u8> = Vec::with_capacity(50_000);
                drop(v);
            }
            // Back in the outer scope after the inner guard dropped.
            let v: Vec<u8> = Vec::with_capacity(60_000);
            drop(v);
        }
        let inner = stage_stats("test.alloc.inner").expect("inner interned");
        let outer = stage_stats("test.alloc.outer").expect("outer interned");
        assert!(inner.bytes >= 50_000, "inner under-attributed: {inner:?}");
        assert!(
            outer.bytes - outer_before.bytes >= 60_000,
            "outer lost its post-inner allocation: {outer:?}"
        );
    }

    #[test]
    fn publish_exports_prof_gauges() {
        enable();
        {
            let _g = scope("test.alloc.published");
            let v: Vec<u8> = Vec::with_capacity(10_000);
            drop(v);
        }
        publish();
        let report = ph_telemetry::snapshot();
        let gauge = |name: &str| {
            report
                .gauges
                .iter()
                .find(|g| g.name == name)
                .map(|g| g.value)
        };
        assert!(
            gauge("prof.alloc.test.alloc.published.bytes").is_some_and(|v| v >= 10_000.0),
            "per-stage bytes gauge missing or too small"
        );
        assert!(
            gauge("prof.alloc.total.allocs").is_some_and(|v| v > 0.0),
            "total allocs gauge missing"
        );
        assert!(
            gauge("prof.heap.peak_bytes").is_some_and(|v| v > 0.0),
            "peak gauge missing"
        );
    }

    #[test]
    fn stage_table_overflow_falls_back_to_unattributed() {
        enable();
        // Drown the table; every name past MAX_STAGES-1 must yield slot 0
        // instead of panicking or growing without bound.
        for i in 0..(MAX_STAGES * 2) {
            let _g = scope(&format!("test.alloc.flood.{i}"));
        }
        assert!(SCOPE_OVERFLOW.load(Ordering::Relaxed) > 0);
    }
}
