//! Process CPU accounting read from the OS.

/// Total process CPU time (user + system, all threads) in milliseconds,
/// or `None` when the platform does not expose it.
///
/// On Linux this parses fields 14/15 (`utime`/`stime`) of
/// `/proc/self/stat`, scaling by the kernel's `USER_HZ` (100 on every
/// mainstream Linux configuration; the value is part of the kernel ABI
/// exposed to userspace and glibc's `sysconf(_SC_CLK_TCK)` reports the
/// same constant). The parse skips past the last `)` first because the
/// comm field (2) may itself contain spaces and parentheses.
#[must_use]
pub fn process_cpu_ms() -> Option<f64> {
    #[cfg(target_os = "linux")]
    {
        let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
        let (_, rest) = stat.rsplit_once(')')?;
        let mut fields = rest.split_whitespace();
        // After the ')' the next field is 3 (state); utime is field 14.
        let utime: u64 = fields.nth(11)?.parse().ok()?;
        let stime: u64 = fields.next()?.parse().ok()?;
        const USER_HZ: f64 = 100.0;
        Some((utime + stime) as f64 * 1000.0 / USER_HZ)
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;

    #[test]
    fn cpu_time_is_present_and_grows() {
        let before = process_cpu_ms().expect("/proc/self/stat parses");
        assert!(before >= 0.0);
        // Burn a little CPU; the counter must not go backwards.
        let mut acc = 0u64;
        for i in 0..2_000_000u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        assert!(acc != 42, "keep the loop observable");
        let after = process_cpu_ms().expect("/proc/self/stat parses");
        assert!(
            after >= before,
            "CPU time went backwards: {before} -> {after}"
        );
    }
}
