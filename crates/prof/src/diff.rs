//! Noise-aware comparison of two [`BenchReport`]s — the math behind
//! `perf diff`.
//!
//! A raw "new median is X% slower" number is useless on a noisy box:
//! quick-mode scenarios run for milliseconds and jitter by double-digit
//! percentages. The gate therefore only calls a change real when it
//! clears **all** of:
//!
//! 1. a relative floor ([`DiffConfig::min_rel`], default 10%),
//! 2. a multiple of the measured spread: `noise_mult × max(old.iqr,
//!    new.iqr) / old.median` — a run whose own IQR is 15% of its median
//!    cannot flag an 18% delta,
//! 3. an absolute floor ([`DiffConfig::min_abs_ms`]) so sub-tenth-of-a-
//!    millisecond scenarios never gate on scheduler dust.

use crate::bench::BenchReport;

/// Tunables for [`compare`]. The defaults are deliberately
/// conservative: CI runs on shared, throttled machines, and a perf gate
/// that cries wolf gets deleted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffConfig {
    /// Minimum relative change (fraction of the old median) before a
    /// delta can count at all.
    pub min_rel: f64,
    /// Multiplier on the relative IQR; the effective threshold is
    /// `max(min_rel, noise_mult × max(old.iqr, new.iqr) / old.median)`.
    pub noise_mult: f64,
    /// Absolute floor in milliseconds: deltas smaller than this are
    /// always within noise.
    pub min_abs_ms: f64,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            min_rel: 0.10,
            noise_mult: 3.0,
            min_abs_ms: 0.05,
        }
    }
}

/// Outcome of comparing one scenario's old and new reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// New median is slower than the threshold allows.
    Regression,
    /// New median is faster than the threshold requires.
    Improvement,
    /// The delta does not clear the noise threshold either way.
    WithinNoise,
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Verdict::Regression => "REGRESSION",
            Verdict::Improvement => "improvement",
            Verdict::WithinNoise => "within noise",
        })
    }
}

/// One scenario's comparison result.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Scenario name (identical in both inputs).
    pub scenario: String,
    /// Old (baseline) median, ms.
    pub old_median: f64,
    /// New (candidate) median, ms.
    pub new_median: f64,
    /// `(new − old) / old`; positive = slower.
    pub change_ratio: f64,
    /// Effective relative threshold the delta was held against.
    pub threshold: f64,
    /// The call.
    pub verdict: Verdict,
}

/// Compares a baseline against a candidate. Errors (rather than
/// guessing) when the files describe different scenarios or units.
pub fn compare(
    old: &BenchReport,
    new: &BenchReport,
    cfg: &DiffConfig,
) -> Result<Comparison, String> {
    if old.scenario != new.scenario {
        return Err(format!(
            "scenario mismatch: {:?} vs {:?}",
            old.scenario, new.scenario
        ));
    }
    if old.unit != new.unit {
        return Err(format!("unit mismatch: {:?} vs {:?}", old.unit, new.unit));
    }
    // Degenerate medians (empty or zero-duration baselines) can't anchor
    // a relative comparison; clamp the denominator instead of dividing
    // by zero.
    let denom = old.median.max(1e-9);
    let rel_noise = old.iqr.max(new.iqr) / denom;
    let threshold = cfg.min_rel.max(cfg.noise_mult * rel_noise);
    let delta = new.median - old.median;
    let change_ratio = delta / denom;
    let verdict = if delta > threshold * denom && delta > cfg.min_abs_ms {
        Verdict::Regression
    } else if -delta > threshold * denom && -delta > cfg.min_abs_ms {
        Verdict::Improvement
    } else {
        Verdict::WithinNoise
    };
    Ok(Comparison {
        scenario: old.scenario.clone(),
        old_median: old.median,
        new_median: new.median,
        change_ratio,
        threshold,
        verdict,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench::{BenchMeta, BenchReport};

    fn meta() -> BenchMeta {
        BenchMeta {
            rustc: "rustc-test".to_string(),
            threads: 1,
            seed: 42,
            crate_version: "0.1.0".to_string(),
            mode: "quick".to_string(),
        }
    }

    /// Tight-IQR report centred on `center` (ms).
    fn report(name: &str, center: f64) -> BenchReport {
        let samples = vec![center * 0.99, center, center * 1.01];
        BenchReport::from_samples(name, 1, samples, meta())
    }

    #[test]
    fn identical_reports_are_within_noise() {
        let r = report("s", 100.0);
        let c = compare(&r, &r, &DiffConfig::default()).expect("same scenario");
        assert_eq!(c.verdict, Verdict::WithinNoise);
        assert_eq!(c.change_ratio, 0.0);
    }

    #[test]
    fn twenty_percent_slower_is_a_regression() {
        let old = report("s", 100.0);
        let new = report("s", 120.0);
        let c = compare(&old, &new, &DiffConfig::default()).expect("same scenario");
        assert_eq!(c.verdict, Verdict::Regression);
        assert!((c.change_ratio - 0.2).abs() < 1e-9);
    }

    #[test]
    fn twenty_percent_faster_is_an_improvement() {
        let old = report("s", 100.0);
        let new = report("s", 80.0);
        let c = compare(&old, &new, &DiffConfig::default()).expect("same scenario");
        assert_eq!(c.verdict, Verdict::Improvement);
    }

    #[test]
    fn small_delta_stays_within_noise() {
        let old = report("s", 100.0);
        let new = report("s", 105.0); // 5% < 10% floor
        let c = compare(&old, &new, &DiffConfig::default()).expect("same scenario");
        assert_eq!(c.verdict, Verdict::WithinNoise);
    }

    #[test]
    fn wide_iqr_raises_the_threshold() {
        // 15% slower would clear the 10% floor, but the baseline's own
        // spread is huge: IQR ≈ 40ms on a 100ms median ⇒ threshold
        // 3 × 0.4 = 120%, so the delta must be called noise.
        let old = BenchReport::from_samples("s", 1, vec![60.0, 80.0, 100.0, 120.0, 140.0], meta());
        let new = report("s", 115.0);
        let c = compare(&old, &new, &DiffConfig::default()).expect("same scenario");
        assert_eq!(c.verdict, Verdict::WithinNoise);
        assert!(
            c.threshold > 1.0,
            "threshold {} should exceed 100%",
            c.threshold
        );
    }

    #[test]
    fn absolute_floor_filters_microsecond_dust() {
        // 50% slower but only 0.015ms in absolute terms — below the
        // 0.05ms floor, so not actionable.
        let old = report("s", 0.030);
        let new = report("s", 0.045);
        let c = compare(&old, &new, &DiffConfig::default()).expect("same scenario");
        assert_eq!(c.verdict, Verdict::WithinNoise);
    }

    #[test]
    fn zero_median_baseline_does_not_divide_by_zero() {
        let old = BenchReport::from_samples("s", 0, vec![], meta());
        let new = report("s", 1.0);
        let c = compare(&old, &new, &DiffConfig::default()).expect("same scenario");
        assert!(c.change_ratio.is_finite());
        assert_eq!(c.verdict, Verdict::Regression);
    }

    #[test]
    fn mismatched_inputs_error() {
        let a = report("a", 1.0);
        let b = report("b", 1.0);
        assert!(compare(&a, &b, &DiffConfig::default()).is_err());
        let mut a2 = report("a", 1.0);
        a2.unit = "s".to_string();
        assert!(compare(&a, &a2, &DiffConfig::default()).is_err());
    }
}
