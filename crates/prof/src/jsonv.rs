//! A minimal, panic-free JSON value parser — used for reading
//! `BENCH_*.json` files and by the binary tests to strictly validate
//! emitted JSON (e.g. the `--trace` Chrome trace-event export). The
//! workspace's vendored `serde` is a no-op API shim (the container has
//! no network), so decoding is hand-rolled here: a depth-limited
//! recursive-descent parser over bytes that returns `Err` on every
//! malformed input instead of panicking.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON has one numeric type).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs (duplicates preserved).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first occurrence wins).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an exact non-negative integer, if it is one.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The items, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

const MAX_DEPTH: usize = 32;

/// Parses a complete JSON document; trailing non-whitespace is an error.
///
/// # Errors
///
/// Returns a description of the first syntax error; never panics.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected '{}' at byte {}",
                other as char, self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            // Surrogates decode to the replacement char;
                            // bench files never emit them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let ch = s.chars().next().ok_or("unterminated string")?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        let n: f64 = text
            .parse()
            .map_err(|_| format!("bad number {text:?} at byte {start}"))?;
        if !n.is_finite() {
            return Err(format!("non-finite number {text:?}"));
        }
        Ok(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny"}, "d": null, "e": true}"#)
            .expect("valid json");
        assert_eq!(
            v.get("a").and_then(|a| a.as_arr()).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(Json::as_str),
            Some("x\ny")
        );
        assert_eq!(v.get("d"), Some(&Json::Null));
        assert_eq!(v.get("e"), Some(&Json::Bool(true)));
    }

    #[test]
    fn rejects_garbage_without_panicking() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\":}",
            "tru",
            "1.2.3",
            "\"abc",
            "{\"a\" 1}",
            "[1] trailing",
            "nul",
            "+1",
            "\u{1}",
            "{\"k\": 1e999}",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn depth_limit_holds() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn numbers_round_trip_display() {
        for n in [0.0, 1.5, -2.25, 1e9, 0.1, 123456789.123] {
            let v = parse(&format!("{n}")).expect("number parses");
            assert_eq!(v.as_f64(), Some(n));
        }
    }
}
