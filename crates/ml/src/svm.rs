//! Linear support vector machine trained with Pegasos-style stochastic
//! sub-gradient descent on the hinge loss (Table IV's "SVM" row).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::data::{Dataset, Standardizer};
use crate::Classifier;

/// Hyper-parameters for [`LinearSvm`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SvmConfig {
    /// Number of SGD epochs over the training set.
    pub epochs: usize,
    /// Regularization strength λ of the Pegasos objective.
    pub lambda: f64,
    /// Standardize features before training (strongly recommended).
    pub standardize: bool,
    /// Weight hinge violations of the minority class by the class ratio.
    /// Spam streams are heavily imbalanced; an unweighted SVM happily
    /// degenerates to "everything is ham".
    pub balance_classes: bool,
}

impl Default for SvmConfig {
    fn default() -> Self {
        Self {
            epochs: 30,
            lambda: 1e-4,
            standardize: true,
            balance_classes: true,
        }
    }
}

/// A fitted linear SVM: `predict = sign(w · x + b)`.
///
/// # Example
///
/// ```
/// use ph_ml::data::Dataset;
/// use ph_ml::svm::{LinearSvm, SvmConfig};
/// use ph_ml::Classifier;
///
/// let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 50.0 - 1.0]).collect();
/// let labels: Vec<bool> = (0..100).map(|i| i >= 50).collect();
/// let data = Dataset::new(rows, labels)?;
/// let svm = LinearSvm::fit(&SvmConfig::default(), &data, 4);
/// assert!(svm.predict(&[0.8]));
/// assert!(!svm.predict(&[-0.8]));
/// # Ok::<(), ph_ml::data::DatasetError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearSvm {
    weights: Vec<f64>,
    bias: f64,
    scaler: Option<Standardizer>,
}

impl LinearSvm {
    /// Trains with Pegasos SGD: learning rate `1 / (λ t)`, hinge
    /// sub-gradient, deterministic for a given seed.
    ///
    /// # Panics
    ///
    /// Panics if `epochs == 0` or `lambda <= 0`.
    pub fn fit(config: &SvmConfig, data: &Dataset, seed: u64) -> Self {
        assert!(config.epochs > 0, "epochs must be positive");
        assert!(config.lambda > 0.0, "lambda must be positive");
        let scaler = config.standardize.then(|| Standardizer::fit(data));
        let rows: Vec<Vec<f64>> = match &scaler {
            Some(s) => data.rows().iter().map(|r| s.transform(r)).collect(),
            None => data.rows().to_vec(),
        };
        let targets: Vec<f64> = data
            .labels()
            .iter()
            .map(|&l| if l { 1.0 } else { -1.0 })
            .collect();

        let d = data.num_features();
        let n = rows.len();
        // Per-class example weights: minority-class hinge violations count
        // proportionally more, so the margin cannot collapse onto the
        // majority class.
        let positives = data.num_positive().max(1);
        let negatives = (n - data.num_positive()).max(1);
        // Square-root weighting: enough pull to keep the margin off the
        // majority class, without the full-ratio weighting that floods the
        // positive side with false alarms at extreme imbalance.
        let positive_weight = if config.balance_classes {
            (negatives as f64 / positives as f64).sqrt()
        } else {
            1.0
        };
        let mut weights = vec![0.0; d];
        let mut bias = 0.0;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t: u64 = 0;
        for _ in 0..config.epochs {
            for _ in 0..n {
                t += 1;
                let i = rng.random_range(0..n);
                let eta = 1.0 / (config.lambda * t as f64);
                let margin = targets[i] * (dot(&weights, &rows[i]) + bias);
                // w ← (1 − ηλ) w  [+ η c_i y x when the hinge is active]
                let shrink = 1.0 - eta * config.lambda;
                for w in &mut weights {
                    *w *= shrink;
                }
                if margin < 1.0 {
                    let class_weight = if targets[i] > 0.0 {
                        positive_weight
                    } else {
                        1.0
                    };
                    let step = eta * targets[i] * class_weight;
                    for (w, &x) in weights.iter_mut().zip(&rows[i]) {
                        *w += step * x;
                    }
                    bias += step;
                }
            }
        }
        Self {
            weights,
            bias,
            scaler,
        }
    }

    /// Signed decision value `w · x + b` (positive ⇒ spam side).
    pub fn decision_value(&self, features: &[f64]) -> f64 {
        let scaled;
        let x: &[f64] = match &self.scaler {
            Some(s) => {
                scaled = s.transform(features);
                &scaled
            }
            None => features,
        };
        dot(&self.weights, x) + self.bias
    }

    /// Fitted weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Fitted bias term.
    pub fn bias(&self) -> f64 {
        self.bias
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "feature width mismatch");
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

impl Classifier for LinearSvm {
    fn predict(&self, features: &[f64]) -> bool {
        self.decision_value(features) > 0.0
    }

    fn predict_score(&self, features: &[f64]) -> f64 {
        // Logistic squashing of the margin gives a usable [0,1] score.
        1.0 / (1.0 + (-self.decision_value(features)).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable(n: usize) -> Dataset {
        // Positive iff 2*x0 + x1 > 3.
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let x0 = (i % 20) as f64 / 5.0;
                let x1 = ((i * 13) % 20) as f64 / 5.0;
                vec![x0, x1]
            })
            .collect();
        let labels: Vec<bool> = rows.iter().map(|r| 2.0 * r[0] + r[1] > 3.0).collect();
        Dataset::new(rows, labels).unwrap()
    }

    #[test]
    fn learns_linear_boundary() {
        let data = separable(400);
        let svm = LinearSvm::fit(&SvmConfig::default(), &data, 1);
        let correct = data
            .rows()
            .iter()
            .zip(data.labels())
            .filter(|(r, &l)| svm.predict(r) == l)
            .count();
        assert!(
            correct as f64 / data.len() as f64 > 0.95,
            "only {correct}/{} correct",
            data.len()
        );
    }

    #[test]
    fn deterministic_for_seed() {
        let data = separable(100);
        let a = LinearSvm::fit(&SvmConfig::default(), &data, 7);
        let b = LinearSvm::fit(&SvmConfig::default(), &data, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn decision_value_sign_matches_prediction() {
        let data = separable(100);
        let svm = LinearSvm::fit(&SvmConfig::default(), &data, 7);
        for row in data.rows().iter().take(20) {
            assert_eq!(svm.predict(row), svm.decision_value(row) > 0.0);
        }
    }

    #[test]
    fn score_is_probability_like() {
        let data = separable(100);
        let svm = LinearSvm::fit(&SvmConfig::default(), &data, 7);
        let s = svm.predict_score(&[4.0, 4.0]);
        assert!((0.0..=1.0).contains(&s));
        assert!(s > 0.5, "clearly positive point should score > 0.5");
    }

    #[test]
    #[should_panic(expected = "epochs must be positive")]
    fn zero_epochs_panics() {
        let data = separable(10);
        let _ = LinearSvm::fit(
            &SvmConfig {
                epochs: 0,
                ..Default::default()
            },
            &data,
            1,
        );
    }

    #[test]
    #[should_panic(expected = "lambda must be positive")]
    fn non_positive_lambda_panics() {
        let data = separable(10);
        let _ = LinearSvm::fit(
            &SvmConfig {
                lambda: 0.0,
                ..Default::default()
            },
            &data,
            1,
        );
    }

    #[test]
    fn class_balancing_rescues_imbalanced_data() {
        // 5% positives, linearly separable on x0.
        let rows: Vec<Vec<f64>> = (0..400).map(|i| vec![i as f64 / 400.0]).collect();
        let labels: Vec<bool> = (0..400).map(|i| i >= 380).collect();
        let data = Dataset::new(rows, labels).unwrap();
        let catches = |balance: bool| {
            let model = LinearSvm::fit(
                &SvmConfig {
                    balance_classes: balance,
                    ..Default::default()
                },
                &data,
                2,
            );
            (380..400)
                .filter(|&i| model.predict(&[i as f64 / 400.0]))
                .count()
        };
        let balanced = catches(true);
        let unbalanced = catches(false);
        assert!(
            balanced >= 8,
            "balanced SVM caught only {balanced}/20 positives"
        );
        assert!(
            balanced >= unbalanced,
            "balancing should not reduce positive coverage \
             (balanced {balanced}, unbalanced {unbalanced})"
        );
    }

    #[test]
    fn unstandardized_training_also_works_on_small_scales() {
        let data = separable(200);
        let svm = LinearSvm::fit(
            &SvmConfig {
                standardize: false,
                ..Default::default()
            },
            &data,
            3,
        );
        let correct = data
            .rows()
            .iter()
            .zip(data.labels())
            .filter(|(r, &l)| svm.predict(r) == l)
            .count();
        assert!(correct as f64 / data.len() as f64 > 0.85);
    }
}
