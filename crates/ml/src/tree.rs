//! CART trees: the classification tree of Table IV's "DT" row, and the
//! regression variant that powers gradient boosting.
//!
//! Both variants share one split-search core operating on `f64` targets.
//! For binary 0/1 targets, variance reduction ranks splits identically to
//! Gini gain (Gini impurity `2p(1-p)` is proportional to the node variance
//! `p(1-p)`), so the classification tree fits the shared core to 0/1 targets
//! and thresholds leaf means at 0.5.

use rand::rngs::StdRng;
use rand::seq::index::sample;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::data::Dataset;
use crate::Classifier;

/// Hyper-parameters for [`DecisionTree`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecisionTreeConfig {
    /// Maximum tree depth (the paper caps its RF trees at 700).
    pub max_depth: usize,
    /// Minimum number of samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum number of samples in each child of a split.
    pub min_samples_leaf: usize,
}

impl Default for DecisionTreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 700,
            min_samples_split: 2,
            min_samples_leaf: 1,
        }
    }
}

/// One node of a fitted tree, stored in a flat arena.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) enum Node {
    /// Terminal node carrying the mean target of its training samples.
    Leaf { value: f64 },
    /// Internal split: rows with `features[feature] <= threshold` go left.
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// The shared fitted-tree core used by both public tree types.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct TreeCore {
    pub(crate) nodes: Vec<Node>,
    pub(crate) num_features: usize,
}

impl TreeCore {
    fn predict_value(&self, features: &[f64]) -> f64 {
        assert_eq!(
            features.len(),
            self.num_features,
            "feature width mismatch with training data"
        );
        let mut at = 0;
        loop {
            match &self.nodes[at] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    at = if features[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    fn depth(&self) -> usize {
        fn walk(nodes: &[Node], at: usize) -> usize {
            match &nodes[at] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + walk(nodes, *left).max(walk(nodes, *right)),
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            walk(&self.nodes, 0)
        }
    }

    fn num_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count()
    }
}

/// Options driving one tree-growing run.
struct GrowOptions<'a> {
    config: &'a DecisionTreeConfig,
    /// `Some(k)` samples k features per split (random-forest mode).
    features_per_split: Option<usize>,
}

/// The per-tree presorted working set (classic presorted CART).
///
/// All columns are indexed by *slot* — a position in the bootstrap sample,
/// so duplicate draws get distinct slots. `sorted` holds, per feature, the
/// slots stably sorted by that feature's value; `order` holds the slots in
/// original bootstrap order. Each tree node owns a contiguous `[lo, hi)`
/// range of every column, and a split stably partitions those ranges in
/// place — no per-node sort, no per-node allocation.
///
/// Equivalence with sort-per-node: a stable sort of a node's slots equals
/// the stable filter of the globally sorted column (both orderings ascend
/// by value with ties in bootstrap-subsequence order), and the gain scan,
/// leaf means, and SSE accumulators all visit slots in exactly the same
/// sequence as before — so the grown tree is bit-identical, including for
/// arbitrary `f64` regression targets.
struct PresortedSample {
    /// Columnar feature values: `values[f * n + s]` = feature `f` of slot `s`.
    values: Vec<f64>,
    /// Target per slot.
    targets: Vec<f64>,
    /// Per-feature slot permutation, stably sorted by value (stride `n`).
    sorted: Vec<u32>,
    /// Slots in original bootstrap order (preserves summation order).
    order: Vec<u32>,
    /// Slot count (`indices.len()`).
    n: usize,
    num_features: usize,
}

impl PresortedSample {
    fn build(rows: &[Vec<f64>], targets: &[f64], indices: &[usize]) -> Self {
        let n = indices.len();
        let num_features = rows[0].len();
        let mut values = vec![0.0f64; num_features * n];
        for (s, &i) in indices.iter().enumerate() {
            let row = &rows[i];
            for (f, &v) in row.iter().enumerate() {
                values[f * n + s] = v;
            }
        }
        let targets: Vec<f64> = indices.iter().map(|&i| targets[i]).collect();
        let mut sorted = vec![0u32; num_features * n];
        for f in 0..num_features {
            let col = &mut sorted[f * n..(f + 1) * n];
            for (s, slot) in col.iter_mut().enumerate() {
                *slot = s as u32;
            }
            let vals = &values[f * n..(f + 1) * n];
            // Stable: ties stay in bootstrap order, matching the stable
            // per-node sort of the sort-per-node implementation.
            col.sort_by(|&a, &b| vals[a as usize].total_cmp(&vals[b as usize]));
        }
        let order: Vec<u32> = (0..n as u32).collect();
        Self {
            values,
            targets,
            sorted,
            order,
            n,
            num_features,
        }
    }

    fn value(&self, feature: usize, slot: u32) -> f64 {
        self.values[feature * self.n + slot as usize]
    }

    fn target(&self, slot: u32) -> f64 {
        self.targets[slot as usize]
    }
}

/// Stably partitions `col[lo..hi]` so slots with `goes_left` come first
/// (both halves keep their relative order). Returns the left-half length.
fn partition_stable(col: &mut [u32], goes_left: &[bool], scratch: &mut Vec<u32>) -> usize {
    scratch.clear();
    let mut write = 0usize;
    for read in 0..col.len() {
        let slot = col[read];
        if goes_left[slot as usize] {
            col[write] = slot;
            write += 1;
        } else {
            scratch.push(slot);
        }
    }
    col[write..].copy_from_slice(scratch);
    write
}

/// Grows a regression tree on `targets` over the given row indices.
fn grow(
    rows: &[Vec<f64>],
    targets: &[f64],
    indices: &[usize],
    opts: &GrowOptions<'_>,
    rng: &mut StdRng,
) -> TreeCore {
    assert!(!indices.is_empty(), "cannot grow a tree on zero samples");
    let mut sample = PresortedSample::build(rows, targets, indices);
    let num_features = sample.num_features;
    let n = sample.n;
    let mut core = TreeCore {
        nodes: Vec::new(),
        num_features,
    };
    let mut goes_left = vec![false; n];
    let mut scratch: Vec<u32> = Vec::with_capacity(n);
    // Explicit stack instead of recursion: the paper's depth cap is 700,
    // beyond typical thread stack comfort for recursive descent.
    // Each entry: (node slot, column range lo..hi, depth). Push order
    // (left, then right) matches the pre-presort implementation so the
    // per-node RNG draws line up exactly.
    core.nodes.push(Node::Leaf { value: 0.0 });
    let mut stack: Vec<(usize, usize, usize, usize)> = vec![(0, 0, n, 0)];
    while let Some((slot, lo, hi, depth)) = stack.pop() {
        let node = &sample.order[lo..hi];
        let mean = node.iter().map(|&s| sample.target(s)).sum::<f64>() / node.len() as f64;
        let make_leaf = |core: &mut TreeCore| core.nodes[slot] = Node::Leaf { value: mean };
        if depth >= opts.config.max_depth
            || node.len() < opts.config.min_samples_split
            || is_pure(&sample.targets, node)
        {
            make_leaf(&mut core);
            continue;
        }
        let candidates = candidate_features(num_features, opts.features_per_split, rng);
        match best_split(&sample, lo, hi, &candidates, opts.config) {
            None => make_leaf(&mut core),
            Some(split) => {
                for &s in &sample.order[lo..hi] {
                    goes_left[s as usize] = sample.value(split.feature, s) <= split.threshold;
                }
                let mut left_len = 0;
                for f in 0..num_features {
                    let col = &mut sample.sorted[f * n + lo..f * n + hi];
                    left_len = partition_stable(col, &goes_left, &mut scratch);
                }
                partition_stable(&mut sample.order[lo..hi], &goes_left, &mut scratch);
                let left_slot = core.nodes.len();
                core.nodes.push(Node::Leaf { value: 0.0 });
                let right_slot = core.nodes.len();
                core.nodes.push(Node::Leaf { value: 0.0 });
                core.nodes[slot] = Node::Split {
                    feature: split.feature,
                    threshold: split.threshold,
                    left: left_slot,
                    right: right_slot,
                };
                stack.push((left_slot, lo, lo + left_len, depth + 1));
                stack.push((right_slot, lo + left_len, hi, depth + 1));
            }
        }
    }
    core
}

fn is_pure(targets: &[f64], slots: &[u32]) -> bool {
    let first = targets[slots[0] as usize];
    slots.iter().all(|&s| targets[s as usize] == first)
}

fn candidate_features(
    num_features: usize,
    features_per_split: Option<usize>,
    rng: &mut StdRng,
) -> Vec<usize> {
    match features_per_split {
        Some(k) if k < num_features => sample(rng, num_features, k).into_vec(),
        _ => (0..num_features).collect(),
    }
}

struct SplitChoice {
    feature: usize,
    threshold: f64,
}

/// Finds the variance-minimizing split over the candidate features, if any
/// split yields positive gain while respecting `min_samples_leaf`.
///
/// Scans the node's pre-sorted `[lo, hi)` column ranges directly — no
/// per-node sort or allocation. The parent totals accumulate over `order`
/// (bootstrap order) and each feature scan walks the sorted column, both in
/// exactly the sequence the sort-per-node implementation produced.
fn best_split(
    sample: &PresortedSample,
    lo: usize,
    hi: usize,
    candidates: &[usize],
    config: &DecisionTreeConfig,
) -> Option<SplitChoice> {
    let node = &sample.order[lo..hi];
    let n = node.len() as f64;
    let total_sum: f64 = node.iter().map(|&s| sample.target(s)).sum();
    let total_sq: f64 = node
        .iter()
        .map(|&s| sample.target(s) * sample.target(s))
        .sum();
    let parent_sse = total_sq - total_sum * total_sum / n;
    let mut best: Option<(f64, SplitChoice)> = None;

    for &feature in candidates {
        let col = &sample.sorted[feature * sample.n + lo..feature * sample.n + hi];
        let mut left_sum = 0.0;
        let mut left_sq = 0.0;
        for (k, &s) in col.iter().enumerate().take(col.len() - 1) {
            let value = sample.value(feature, s);
            let target = sample.target(s);
            left_sum += target;
            left_sq += target * target;
            let next_value = sample.value(feature, col[k + 1]);
            if value == next_value {
                continue; // cannot split between equal feature values
            }
            let left_n = (k + 1) as f64;
            let right_n = n - left_n;
            if (left_n as usize) < config.min_samples_leaf
                || (right_n as usize) < config.min_samples_leaf
            {
                continue;
            }
            let right_sum = total_sum - left_sum;
            let right_sq = total_sq - left_sq;
            let sse = (left_sq - left_sum * left_sum / left_n)
                + (right_sq - right_sum * right_sum / right_n);
            let gain = parent_sse - sse;
            // Zero-gain splits are allowed (XOR-style interactions only pay
            // off a level deeper); tiny negative values are float noise.
            if gain >= -1e-9 && best.as_ref().is_none_or(|(g, _)| gain > *g) {
                best = Some((
                    gain,
                    SplitChoice {
                        feature,
                        threshold: midpoint(value, next_value),
                    },
                ));
            }
        }
    }
    best.map(|(_, choice)| choice)
}

/// Midpoint that is guaranteed to separate `lo < hi` even when they are
/// adjacent floats (falls back to `lo`).
fn midpoint(lo: f64, hi: f64) -> f64 {
    let mid = lo + (hi - lo) / 2.0;
    if mid > lo && mid < hi {
        mid
    } else {
        lo
    }
}

/// A fitted CART classification tree (Gini-equivalent splits, see module
/// docs).
///
/// # Example
///
/// ```
/// use ph_ml::data::Dataset;
/// use ph_ml::tree::{DecisionTree, DecisionTreeConfig};
/// use ph_ml::Classifier;
///
/// let data = Dataset::new(
///     vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]],
///     vec![false, false, true, true],
/// )?;
/// let tree = DecisionTree::fit(&DecisionTreeConfig::default(), &data);
/// assert!(tree.predict(&[2.5]));
/// assert!(!tree.predict(&[0.5]));
/// # Ok::<(), ph_ml::data::DatasetError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    core: TreeCore,
}

impl DecisionTree {
    /// Fits a tree to the full dataset.
    pub fn fit(config: &DecisionTreeConfig, data: &Dataset) -> Self {
        let indices: Vec<usize> = (0..data.len()).collect();
        Self::fit_on_indices(config, data, &indices, None, 0)
    }

    /// Fits a tree over a row subset with optional per-split feature
    /// subsampling — the entry point used by [`crate::forest::RandomForest`].
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty.
    pub fn fit_on_indices(
        config: &DecisionTreeConfig,
        data: &Dataset,
        indices: &[usize],
        features_per_split: Option<usize>,
        seed: u64,
    ) -> Self {
        let targets: Vec<f64> = data
            .labels()
            .iter()
            .map(|&l| if l { 1.0 } else { 0.0 })
            .collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let core = grow(
            data.rows(),
            &targets,
            indices,
            &GrowOptions {
                config,
                features_per_split,
            },
            &mut rng,
        );
        Self { core }
    }

    /// Fraction of positive training samples in the leaf this row lands in.
    pub fn predict_probability(&self, features: &[f64]) -> f64 {
        self.core.predict_value(features)
    }

    /// Depth of the fitted tree (0 for a single leaf).
    pub fn depth(&self) -> usize {
        self.core.depth()
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        self.core.num_leaves()
    }

    /// Fitted-tree internals, for [`crate::flat::FlatForest`] flattening.
    pub(crate) fn core(&self) -> &TreeCore {
        &self.core
    }
}

impl Classifier for DecisionTree {
    fn predict(&self, features: &[f64]) -> bool {
        self.predict_probability(features) >= 0.5
    }

    fn predict_score(&self, features: &[f64]) -> f64 {
        self.predict_probability(features)
    }
}

/// A fitted CART regression tree over arbitrary `f64` targets — the weak
/// learner of [`crate::boost::GradientBoosting`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegressionTree {
    core: TreeCore,
}

impl RegressionTree {
    /// Fits a regression tree on explicit targets.
    ///
    /// # Panics
    ///
    /// Panics if `rows` and `targets` differ in length or are empty.
    pub fn fit(config: &DecisionTreeConfig, rows: &[Vec<f64>], targets: &[f64]) -> Self {
        assert_eq!(rows.len(), targets.len(), "rows/targets length mismatch");
        assert!(!rows.is_empty(), "cannot fit on an empty dataset");
        let indices: Vec<usize> = (0..rows.len()).collect();
        let mut rng = StdRng::seed_from_u64(0);
        let core = grow(
            rows,
            targets,
            &indices,
            &GrowOptions {
                config,
                features_per_split: None,
            },
            &mut rng,
        );
        Self { core }
    }

    /// Predicted target for one row.
    pub fn predict(&self, features: &[f64]) -> f64 {
        self.core.predict_value(features)
    }

    /// Depth of the fitted tree.
    pub fn depth(&self) -> usize {
        self.core.depth()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stripes() -> Dataset {
        // Positive iff x in [1, 2) ∪ [3, 4): needs depth ≥ 2.
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 10.0]).collect();
        let labels: Vec<bool> = (0..40).map(|i| (i / 10) % 2 == 1).collect();
        Dataset::new(rows, labels).unwrap()
    }

    #[test]
    fn fits_axis_aligned_boundary_perfectly() {
        let data = stripes();
        let tree = DecisionTree::fit(&DecisionTreeConfig::default(), &data);
        for (row, &label) in data.rows().iter().zip(data.labels()) {
            assert_eq!(tree.predict(row), label);
        }
        assert!(tree.depth() >= 2);
    }

    #[test]
    fn depth_zero_tree_is_majority_vote() {
        let data = Dataset::new(
            vec![vec![0.0], vec![1.0], vec![2.0]],
            vec![true, true, false],
        )
        .unwrap();
        let tree = DecisionTree::fit(
            &DecisionTreeConfig {
                max_depth: 0,
                ..Default::default()
            },
            &data,
        );
        assert_eq!(tree.num_leaves(), 1);
        assert!(tree.predict(&[5.0]));
        assert!((tree.predict_probability(&[5.0]) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn pure_node_stops_splitting() {
        let data = Dataset::new(vec![vec![1.0], vec![2.0]], vec![true, true]).unwrap();
        let tree = DecisionTree::fit(&DecisionTreeConfig::default(), &data);
        assert_eq!(tree.depth(), 0);
        assert!(tree.predict(&[0.0]));
    }

    #[test]
    fn min_samples_leaf_is_respected() {
        let data = stripes();
        let tree = DecisionTree::fit(
            &DecisionTreeConfig {
                min_samples_leaf: 15,
                ..Default::default()
            },
            &data,
        );
        // With 40 samples and a 15-sample leaf floor, at most 1 split level
        // on each side is possible.
        assert!(tree.depth() <= 2);
    }

    #[test]
    fn constant_features_produce_single_leaf() {
        let data = Dataset::new(
            vec![vec![3.0], vec![3.0], vec![3.0], vec![3.0]],
            vec![true, false, true, false],
        )
        .unwrap();
        let tree = DecisionTree::fit(&DecisionTreeConfig::default(), &data);
        assert_eq!(tree.depth(), 0);
    }

    #[test]
    fn regression_tree_fits_step_function() {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let targets: Vec<f64> = (0..20).map(|i| if i < 10 { 1.0 } else { 5.0 }).collect();
        let tree = RegressionTree::fit(&DecisionTreeConfig::default(), &rows, &targets);
        assert!((tree.predict(&[3.0]) - 1.0).abs() < 1e-9);
        assert!((tree.predict(&[15.0]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn regression_tree_respects_depth_cap() {
        let rows: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let targets: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let tree = RegressionTree::fit(
            &DecisionTreeConfig {
                max_depth: 3,
                ..Default::default()
            },
            &rows,
            &targets,
        );
        assert!(tree.depth() <= 3);
    }

    #[test]
    fn midpoint_separates_adjacent_values() {
        let m = midpoint(1.0, 1.0 + f64::EPSILON);
        assert!((1.0..1.0 + f64::EPSILON).contains(&m));
    }

    #[test]
    #[should_panic(expected = "feature width mismatch")]
    fn predict_with_wrong_width_panics() {
        let data = Dataset::new(vec![vec![0.0], vec![1.0]], vec![false, true]).unwrap();
        let tree = DecisionTree::fit(&DecisionTreeConfig::default(), &data);
        let _ = tree.predict(&[0.0, 1.0]);
    }

    #[test]
    fn two_feature_interaction() {
        // XOR-like pattern needs both features.
        let rows = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ];
        let labels = vec![false, true, true, false];
        let data = Dataset::new(rows, labels).unwrap();
        let tree = DecisionTree::fit(&DecisionTreeConfig::default(), &data);
        assert!(!tree.predict(&[0.0, 0.0]));
        assert!(tree.predict(&[0.0, 1.0]));
        assert!(tree.predict(&[1.0, 0.0]));
        assert!(!tree.predict(&[1.0, 1.0]));
    }
}
