//! Permutation feature importance.
//!
//! The paper motivates its 58 features qualitatively; permutation
//! importance quantifies which of them the trained detector actually leans
//! on: shuffle one feature column across the evaluation set, measure the
//! accuracy drop. Model-agnostic, so it works for every Table IV
//! classifier.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::data::Dataset;
use crate::metrics::ConfusionMatrix;
use crate::Classifier;

/// Importance of one feature.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureImportance {
    /// Column index.
    pub feature: usize,
    /// Accuracy drop when the column is permuted (may be slightly negative
    /// for irrelevant features due to sampling noise).
    pub accuracy_drop: f64,
}

/// Computes permutation importance of every feature on `data`.
///
/// `repeats` permutations are averaged per feature (2–5 is typical).
/// Results are sorted by importance, largest drop first.
///
/// # Panics
///
/// Panics if `repeats == 0`.
pub fn permutation_importance(
    model: &dyn Classifier,
    data: &Dataset,
    repeats: usize,
    seed: u64,
) -> Vec<FeatureImportance> {
    assert!(repeats > 0, "need at least one repeat");
    let mut rng = StdRng::seed_from_u64(seed);
    let baseline = accuracy_of(model, data.rows(), data.labels());
    let n = data.len();
    let mut rows: Vec<Vec<f64>> = data.rows().to_vec();
    let mut importances = Vec::with_capacity(data.num_features());
    for feature in 0..data.num_features() {
        let original: Vec<f64> = rows.iter().map(|r| r[feature]).collect();
        let mut total_drop = 0.0;
        for _ in 0..repeats {
            let mut permuted = original.clone();
            permuted.shuffle(&mut rng);
            for (row, &v) in rows.iter_mut().zip(&permuted) {
                row[feature] = v;
            }
            total_drop += baseline - accuracy_of(model, &rows, data.labels());
        }
        // Restore the column.
        for (row, &v) in rows.iter_mut().zip(&original) {
            row[feature] = v;
        }
        importances.push(FeatureImportance {
            feature,
            accuracy_drop: total_drop / repeats as f64,
        });
        debug_assert_eq!(rows.len(), n);
    }
    importances.sort_by(|a, b| b.accuracy_drop.total_cmp(&a.accuracy_drop));
    importances
}

fn accuracy_of(model: &dyn Classifier, rows: &[Vec<f64>], labels: &[bool]) -> f64 {
    let predictions = model.predict_batch(rows);
    ConfusionMatrix::from_predictions(&predictions, labels).accuracy()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::{RandomForest, RandomForestConfig};

    /// Dataset where only feature 0 matters; feature 1 is noise.
    fn signal_and_noise() -> Dataset {
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![i as f64, ((i * 7919) % 101) as f64])
            .collect();
        let labels: Vec<bool> = (0..200).map(|i| i >= 100).collect();
        Dataset::new(rows, labels).unwrap()
    }

    #[test]
    fn signal_feature_dominates() {
        let data = signal_and_noise();
        let model = RandomForest::fit(
            &RandomForestConfig {
                num_trees: 10,
                ..Default::default()
            },
            &data,
            3,
        );
        let imp = permutation_importance(&model, &data, 3, 7);
        assert_eq!(imp.len(), 2);
        assert_eq!(imp[0].feature, 0, "signal feature should rank first");
        assert!(imp[0].accuracy_drop > 0.2);
        assert!(imp[1].accuracy_drop.abs() < 0.1, "noise feature ~zero drop");
    }

    #[test]
    fn importance_is_deterministic() {
        let data = signal_and_noise();
        let model = RandomForest::fit(
            &RandomForestConfig {
                num_trees: 5,
                ..Default::default()
            },
            &data,
            3,
        );
        let a = permutation_importance(&model, &data, 2, 9);
        let b = permutation_importance(&model, &data, 2, 9);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one repeat")]
    fn zero_repeats_panics() {
        let data = signal_and_noise();
        let model = RandomForest::fit(
            &RandomForestConfig {
                num_trees: 2,
                ..Default::default()
            },
            &data,
            1,
        );
        let _ = permutation_importance(&model, &data, 0, 1);
    }
}
