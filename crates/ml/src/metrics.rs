//! Binary-classification metrics: the accuracy / precision / recall /
//! false-positive-rate quadruple reported in the paper's Table IV.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A 2×2 confusion matrix for the positive class "spam".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// Spam predicted spam.
    pub true_positives: usize,
    /// Ham predicted spam.
    pub false_positives: usize,
    /// Ham predicted ham.
    pub true_negatives: usize,
    /// Spam predicted ham.
    pub false_negatives: usize,
}

impl ConfusionMatrix {
    /// Tallies a matrix from parallel prediction/truth slices.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn from_predictions(predicted: &[bool], actual: &[bool]) -> Self {
        assert_eq!(
            predicted.len(),
            actual.len(),
            "prediction/truth length mismatch"
        );
        let mut m = ConfusionMatrix::default();
        for (&p, &a) in predicted.iter().zip(actual) {
            match (p, a) {
                (true, true) => m.true_positives += 1,
                (true, false) => m.false_positives += 1,
                (false, false) => m.true_negatives += 1,
                (false, true) => m.false_negatives += 1,
            }
        }
        m
    }

    /// Total number of examples.
    pub fn total(&self) -> usize {
        self.true_positives + self.false_positives + self.true_negatives + self.false_negatives
    }

    /// Adds another matrix element-wise (used to pool CV folds).
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        self.true_positives += other.true_positives;
        self.false_positives += other.false_positives;
        self.true_negatives += other.true_negatives;
        self.false_negatives += other.false_negatives;
    }

    /// `(TP + TN) / total`; 0 when empty.
    pub fn accuracy(&self) -> f64 {
        ratio(self.true_positives + self.true_negatives, self.total())
    }

    /// `TP / (TP + FP)`; 0 when nothing was predicted positive.
    pub fn precision(&self) -> f64 {
        ratio(
            self.true_positives,
            self.true_positives + self.false_positives,
        )
    }

    /// `TP / (TP + FN)`; 0 when there are no positives.
    pub fn recall(&self) -> f64 {
        ratio(
            self.true_positives,
            self.true_positives + self.false_negatives,
        )
    }

    /// `FP / (FP + TN)`; 0 when there are no negatives.
    pub fn false_positive_rate(&self) -> f64 {
        ratio(
            self.false_positives,
            self.false_positives + self.true_negatives,
        )
    }

    /// Harmonic mean of precision and recall; 0 when either is 0.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Bundles the four Table IV numbers.
    pub fn report(&self) -> ClassificationReport {
        ClassificationReport {
            accuracy: self.accuracy(),
            precision: self.precision(),
            recall: self.recall(),
            false_positive_rate: self.false_positive_rate(),
        }
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// The four numbers of one Table IV row.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ClassificationReport {
    /// Overall accuracy.
    pub accuracy: f64,
    /// Positive-class precision.
    pub precision: f64,
    /// Positive-class recall.
    pub recall: f64,
    /// False-positive rate.
    pub false_positive_rate: f64,
}

impl ClassificationReport {
    /// Element-wise mean of several reports (CV fold averaging).
    ///
    /// # Panics
    ///
    /// Panics if `reports` is empty.
    pub fn mean(reports: &[ClassificationReport]) -> ClassificationReport {
        assert!(!reports.is_empty(), "cannot average zero reports");
        let n = reports.len() as f64;
        ClassificationReport {
            accuracy: reports.iter().map(|r| r.accuracy).sum::<f64>() / n,
            precision: reports.iter().map(|r| r.precision).sum::<f64>() / n,
            recall: reports.iter().map(|r| r.recall).sum::<f64>() / n,
            false_positive_rate: reports.iter().map(|r| r.false_positive_rate).sum::<f64>() / n,
        }
    }
}

impl fmt::Display for ClassificationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "accuracy {:.3}, precision {:.3}, recall {:.3}, FPR {:.3}",
            self.accuracy, self.precision, self.recall, self.false_positive_rate
        )
    }
}

/// One point on a ROC curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RocPoint {
    /// Score threshold this point corresponds to.
    pub threshold: f64,
    /// False-positive rate at the threshold.
    pub false_positive_rate: f64,
    /// True-positive rate (recall) at the threshold.
    pub true_positive_rate: f64,
}

/// Computes the ROC curve of scored predictions, one point per distinct
/// score threshold, ordered from (0,0) to (1,1).
///
/// # Panics
///
/// Panics if the slices differ in length, are empty, or contain a
/// non-finite score.
pub fn roc_curve(scores: &[f64], labels: &[bool]) -> Vec<RocPoint> {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    assert!(!scores.is_empty(), "cannot build a ROC curve of nothing");
    assert!(
        scores.iter().all(|s| s.is_finite()),
        "scores must be finite"
    );
    let positives = labels.iter().filter(|&&l| l).count();
    let negatives = labels.len() - positives;
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
    let mut curve = vec![RocPoint {
        threshold: f64::INFINITY,
        false_positive_rate: 0.0,
        true_positive_rate: 0.0,
    }];
    let (mut tp, mut fp) = (0usize, 0usize);
    let mut i = 0;
    while i < order.len() {
        let threshold = scores[order[i]];
        // Consume every example tied at this threshold.
        while i < order.len() && scores[order[i]] == threshold {
            if labels[order[i]] {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        curve.push(RocPoint {
            threshold,
            false_positive_rate: if negatives == 0 {
                0.0
            } else {
                fp as f64 / negatives as f64
            },
            true_positive_rate: if positives == 0 {
                0.0
            } else {
                tp as f64 / positives as f64
            },
        });
    }
    curve
}

/// Area under the ROC curve by trapezoidal integration. 0.5 ≈ random,
/// 1.0 = perfect ranking.
///
/// # Panics
///
/// Propagates the panics of [`roc_curve`].
pub fn roc_auc(scores: &[f64], labels: &[bool]) -> f64 {
    let curve = roc_curve(scores, labels);
    let mut auc = 0.0;
    for pair in curve.windows(2) {
        let dx = pair[1].false_positive_rate - pair[0].false_positive_rate;
        auc += dx * (pair[0].true_positive_rate + pair[1].true_positive_rate) / 2.0;
    }
    auc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ConfusionMatrix {
        // 6 TP, 2 FP, 10 TN, 2 FN
        ConfusionMatrix {
            true_positives: 6,
            false_positives: 2,
            true_negatives: 10,
            false_negatives: 2,
        }
    }

    #[test]
    fn from_predictions_tallies_cells() {
        let predicted = [true, true, false, false, true];
        let actual = [true, false, false, true, true];
        let m = ConfusionMatrix::from_predictions(&predicted, &actual);
        assert_eq!(m.true_positives, 2);
        assert_eq!(m.false_positives, 1);
        assert_eq!(m.true_negatives, 1);
        assert_eq!(m.false_negatives, 1);
        assert_eq!(m.total(), 5);
    }

    #[test]
    fn metric_formulas() {
        let m = sample();
        assert!((m.accuracy() - 16.0 / 20.0).abs() < 1e-12);
        assert!((m.precision() - 6.0 / 8.0).abs() < 1e-12);
        assert!((m.recall() - 6.0 / 8.0).abs() < 1e-12);
        assert!((m.false_positive_rate() - 2.0 / 12.0).abs() < 1e-12);
        assert!((m.f1() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn degenerate_denominators_yield_zero() {
        let m = ConfusionMatrix::default();
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.precision(), 0.0);
        assert_eq!(m.recall(), 0.0);
        assert_eq!(m.false_positive_rate(), 0.0);
        assert_eq!(m.f1(), 0.0);
    }

    #[test]
    fn merge_adds_cells() {
        let mut a = sample();
        a.merge(&sample());
        assert_eq!(a.true_positives, 12);
        assert_eq!(a.total(), 40);
    }

    #[test]
    fn report_mean_averages_fields() {
        let r1 = ClassificationReport {
            accuracy: 1.0,
            precision: 0.5,
            recall: 0.0,
            false_positive_rate: 0.2,
        };
        let r2 = ClassificationReport {
            accuracy: 0.0,
            precision: 0.5,
            recall: 1.0,
            false_positive_rate: 0.4,
        };
        let mean = ClassificationReport::mean(&[r1, r2]);
        assert!((mean.accuracy - 0.5).abs() < 1e-12);
        assert!((mean.precision - 0.5).abs() < 1e-12);
        assert!((mean.recall - 0.5).abs() < 1e-12);
        assert!((mean.false_positive_rate - 0.3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_slices_panic() {
        let _ = ConfusionMatrix::from_predictions(&[true], &[true, false]);
    }

    #[test]
    fn display_formats_four_numbers() {
        let text = sample().report().to_string();
        assert!(text.contains("accuracy 0.800"));
        assert!(text.contains("FPR 0.167"));
    }

    #[test]
    fn perfect_ranking_has_auc_one() {
        let scores = [0.9, 0.8, 0.3, 0.1];
        let labels = [true, true, false, false];
        assert!((roc_auc(&scores, &labels) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverted_ranking_has_auc_zero() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [true, true, false, false];
        assert!(roc_auc(&scores, &labels).abs() < 1e-12);
    }

    #[test]
    fn random_like_ranking_is_half() {
        // Perfectly interleaved scores.
        let scores = [0.8, 0.7, 0.6, 0.5, 0.4, 0.3];
        let labels = [true, false, true, false, true, false];
        let auc = roc_auc(&scores, &labels);
        assert!((auc - 0.5).abs() < 0.2, "auc {auc}");
    }

    #[test]
    fn tied_scores_are_handled_jointly() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        let labels = [true, false, true, false];
        // All tied: one diagonal step → AUC exactly 0.5.
        assert!((roc_auc(&scores, &labels) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn roc_curve_endpoints() {
        let scores = [0.9, 0.1];
        let labels = [true, false];
        let curve = roc_curve(&scores, &labels);
        let first = curve.first().unwrap();
        let last = curve.last().unwrap();
        assert_eq!(
            (first.false_positive_rate, first.true_positive_rate),
            (0.0, 0.0)
        );
        assert_eq!(
            (last.false_positive_rate, last.true_positive_rate),
            (1.0, 1.0)
        );
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn roc_length_mismatch_panics() {
        let _ = roc_curve(&[0.5], &[true, false]);
    }
}
