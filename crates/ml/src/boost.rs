//! Gradient boosting over regression trees with logistic loss — the paper's
//! "Extreme Gradient Boosting (EGB)" contender (Table IV).
//!
//! Each stage fits a shallow [`RegressionTree`] to the negative gradient of
//! the logistic loss (the residual `y − p`), optionally on a subsample of
//! rows, and adds it to the additive model with shrinkage.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::data::Dataset;
use crate::tree::{DecisionTreeConfig, RegressionTree};
use crate::Classifier;

/// Hyper-parameters for [`GradientBoosting`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoostConfig {
    /// Number of boosting stages.
    pub num_stages: usize,
    /// Shrinkage (learning rate) applied to each stage.
    pub learning_rate: f64,
    /// Depth of each weak learner.
    pub max_depth: usize,
    /// Fraction of rows sampled (without replacement) per stage; 1.0
    /// disables stochastic boosting.
    pub subsample: f64,
    /// Minimum samples per leaf of the weak learners.
    pub min_samples_leaf: usize,
}

impl Default for BoostConfig {
    fn default() -> Self {
        Self {
            num_stages: 60,
            learning_rate: 0.2,
            max_depth: 4,
            subsample: 0.8,
            min_samples_leaf: 2,
        }
    }
}

/// A fitted gradient-boosting classifier.
///
/// # Example
///
/// ```
/// use ph_ml::boost::{BoostConfig, GradientBoosting};
/// use ph_ml::data::Dataset;
/// use ph_ml::Classifier;
///
/// let rows: Vec<Vec<f64>> = (0..80).map(|i| vec![(i % 40) as f64]).collect();
/// let labels: Vec<bool> = rows.iter().map(|r| r[0] >= 20.0).collect();
/// let data = Dataset::new(rows, labels)?;
/// let model = GradientBoosting::fit(&BoostConfig::default(), &data, 2);
/// assert!(model.predict(&[35.0]));
/// assert!(!model.predict(&[3.0]));
/// # Ok::<(), ph_ml::data::DatasetError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GradientBoosting {
    initial_log_odds: f64,
    learning_rate: f64,
    stages: Vec<RegressionTree>,
}

impl GradientBoosting {
    /// Trains the boosted ensemble; deterministic for a given seed.
    ///
    /// # Panics
    ///
    /// Panics if `num_stages == 0`, `learning_rate <= 0`, or
    /// `subsample ∉ (0, 1]`.
    pub fn fit(config: &BoostConfig, data: &Dataset, seed: u64) -> Self {
        assert!(config.num_stages > 0, "need at least one stage");
        assert!(config.learning_rate > 0.0, "learning rate must be positive");
        assert!(
            config.subsample > 0.0 && config.subsample <= 1.0,
            "subsample must be in (0, 1]"
        );
        let n = data.len();
        let y: Vec<f64> = data
            .labels()
            .iter()
            .map(|&l| if l { 1.0 } else { 0.0 })
            .collect();
        // F0 = log-odds of the positive class, clamped away from ±∞ for
        // single-class datasets.
        let p0 = (data.num_positive() as f64 / n as f64).clamp(1e-6, 1.0 - 1e-6);
        let initial_log_odds = (p0 / (1.0 - p0)).ln();

        let tree_config = DecisionTreeConfig {
            max_depth: config.max_depth,
            min_samples_split: config.min_samples_leaf * 2,
            min_samples_leaf: config.min_samples_leaf,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut scores = vec![initial_log_odds; n];
        let mut stages = Vec::with_capacity(config.num_stages);
        let sample_size = ((n as f64 * config.subsample) as usize).clamp(1, n);
        let mut order: Vec<usize> = (0..n).collect();
        for _ in 0..config.num_stages {
            // Residuals of the logistic loss: r_i = y_i − σ(F(x_i)).
            let residuals: Vec<f64> = scores
                .iter()
                .zip(&y)
                .map(|(&f, &yi)| yi - sigmoid(f))
                .collect();
            let (rows_stage, targets_stage): (Vec<Vec<f64>>, Vec<f64>) = if sample_size < n {
                order.shuffle(&mut rng);
                order[..sample_size]
                    .iter()
                    .map(|&i| (data.row(i).to_vec(), residuals[i]))
                    .unzip()
            } else {
                (data.rows().to_vec(), residuals.clone())
            };
            let tree = RegressionTree::fit(&tree_config, &rows_stage, &targets_stage);
            for (i, score) in scores.iter_mut().enumerate() {
                *score += config.learning_rate * tree.predict(data.row(i));
            }
            stages.push(tree);
        }
        Self {
            initial_log_odds,
            learning_rate: config.learning_rate,
            stages,
        }
    }

    /// Number of boosting stages.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Predicted positive-class probability.
    pub fn predict_probability(&self, features: &[f64]) -> f64 {
        let mut f = self.initial_log_odds;
        for stage in &self.stages {
            f += self.learning_rate * stage.predict(features);
        }
        sigmoid(f)
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

impl Classifier for GradientBoosting {
    fn predict(&self, features: &[f64]) -> bool {
        self.predict_probability(features) >= 0.5
    }

    fn predict_score(&self, features: &[f64]) -> f64 {
        self.predict_probability(features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stripes() -> Dataset {
        // Positive iff floor(x / 10) is odd — nonlinear, needs an ensemble.
        let rows: Vec<Vec<f64>> = (0..200).map(|i| vec![(i % 40) as f64]).collect();
        let labels: Vec<bool> = rows
            .iter()
            .map(|r| ((r[0] / 10.0) as usize) % 2 == 1)
            .collect();
        Dataset::new(rows, labels).unwrap()
    }

    #[test]
    fn fits_nonlinear_pattern() {
        let data = stripes();
        let model = GradientBoosting::fit(&BoostConfig::default(), &data, 5);
        let correct = data
            .rows()
            .iter()
            .zip(data.labels())
            .filter(|(r, &l)| model.predict(r) == l)
            .count();
        assert!(correct as f64 / data.len() as f64 > 0.97);
    }

    #[test]
    fn deterministic_for_seed() {
        let data = stripes();
        let a = GradientBoosting::fit(&BoostConfig::default(), &data, 3);
        let b = GradientBoosting::fit(&BoostConfig::default(), &data, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn probability_in_bounds_and_monotone_in_stages() {
        let data = stripes();
        let model = GradientBoosting::fit(&BoostConfig::default(), &data, 1);
        for row in data.rows().iter().take(10) {
            let p = model.predict_probability(row);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn single_class_dataset_predicts_that_class() {
        let data = Dataset::new(vec![vec![1.0], vec![2.0]], vec![true, true]).unwrap();
        let model = GradientBoosting::fit(&BoostConfig::default(), &data, 1);
        assert!(model.predict(&[1.5]));
        assert!(model.predict_probability(&[1.5]) > 0.9);
    }

    #[test]
    fn full_sample_mode_has_no_row_sampling() {
        let data = stripes();
        let config = BoostConfig {
            subsample: 1.0,
            ..Default::default()
        };
        // Different seeds only affect row sampling, so with subsample = 1.0
        // the fitted models must be identical.
        assert_eq!(
            GradientBoosting::fit(&config, &data, 1),
            GradientBoosting::fit(&config, &data, 2)
        );
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn zero_stages_panics() {
        let data = stripes();
        let _ = GradientBoosting::fit(
            &BoostConfig {
                num_stages: 0,
                ..Default::default()
            },
            &data,
            1,
        );
    }

    #[test]
    #[should_panic(expected = "subsample")]
    fn invalid_subsample_panics() {
        let data = stripes();
        let _ = GradientBoosting::fit(
            &BoostConfig {
                subsample: 1.5,
                ..Default::default()
            },
            &data,
            1,
        );
    }
}
