//! Brute-force k-nearest-neighbours with z-score feature scaling
//! (Table IV's "kNN" row).

use serde::{Deserialize, Serialize};

use crate::data::{Dataset, Standardizer};
use crate::Classifier;

/// Hyper-parameters for [`KNearestNeighbors`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KnnConfig {
    /// Number of neighbours consulted per prediction.
    pub k: usize,
    /// Standardize features before distance computation (recommended; raw
    /// profile counts span 9 orders of magnitude).
    pub standardize: bool,
}

impl Default for KnnConfig {
    fn default() -> Self {
        Self {
            k: 5,
            standardize: true,
        }
    }
}

/// A fitted (memorized) kNN model.
///
/// # Example
///
/// ```
/// use ph_ml::data::Dataset;
/// use ph_ml::knn::{KNearestNeighbors, KnnConfig};
/// use ph_ml::Classifier;
///
/// let data = Dataset::new(
///     vec![vec![0.0], vec![0.1], vec![0.9], vec![1.0]],
///     vec![false, false, true, true],
/// )?;
/// let model = KNearestNeighbors::fit(&KnnConfig { k: 3, standardize: false }, &data);
/// assert!(model.predict(&[0.95]));
/// # Ok::<(), ph_ml::data::DatasetError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KNearestNeighbors {
    k: usize,
    scaler: Option<Standardizer>,
    rows: Vec<Vec<f64>>,
    labels: Vec<bool>,
}

impl KNearestNeighbors {
    /// Memorizes the training data (and fits the scaler when enabled).
    ///
    /// `k` is clamped to the training-set size.
    ///
    /// # Panics
    ///
    /// Panics if `config.k == 0`.
    pub fn fit(config: &KnnConfig, data: &Dataset) -> Self {
        assert!(config.k > 0, "k must be positive");
        let scaler = config.standardize.then(|| Standardizer::fit(data));
        let rows = match &scaler {
            Some(s) => data.rows().iter().map(|r| s.transform(r)).collect(),
            None => data.rows().to_vec(),
        };
        Self {
            k: config.k.min(data.len()),
            scaler,
            rows,
            labels: data.labels().to_vec(),
        }
    }

    /// Effective `k` after clamping.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Fraction of the k nearest training points labelled positive.
    pub fn predict_probability(&self, features: &[f64]) -> f64 {
        let query = match &self.scaler {
            Some(s) => s.transform(features),
            None => features.to_vec(),
        };
        // Partial selection of the k smallest squared distances.
        let mut dists: Vec<(f64, bool)> = self
            .rows
            .iter()
            .zip(&self.labels)
            .map(|(row, &label)| (squared_distance(row, &query), label))
            .collect();
        dists.select_nth_unstable_by(self.k - 1, |a, b| a.0.total_cmp(&b.0));
        let positive = dists[..self.k].iter().filter(|(_, l)| *l).count();
        positive as f64 / self.k as f64
    }
}

fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "feature width mismatch");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

impl Classifier for KNearestNeighbors {
    fn predict(&self, features: &[f64]) -> bool {
        self.predict_probability(features) >= 0.5
    }

    fn predict_score(&self, features: &[f64]) -> f64 {
        self.predict_probability(features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_neighbour_wins_with_k1() {
        let data = Dataset::new(vec![vec![0.0], vec![10.0]], vec![false, true]).unwrap();
        let model = KNearestNeighbors::fit(
            &KnnConfig {
                k: 1,
                standardize: false,
            },
            &data,
        );
        assert!(!model.predict(&[1.0]));
        assert!(model.predict(&[9.0]));
    }

    #[test]
    fn k_is_clamped_to_dataset_size() {
        let data = Dataset::new(vec![vec![0.0], vec![1.0]], vec![true, true]).unwrap();
        let model = KNearestNeighbors::fit(
            &KnnConfig {
                k: 50,
                standardize: false,
            },
            &data,
        );
        assert_eq!(model.k(), 2);
        assert!(model.predict(&[0.5]));
    }

    #[test]
    fn standardization_rebalances_feature_scales() {
        // Feature 0 is the signal (range 0–1); feature 1 is noise with a
        // huge scale that swamps unscaled Euclidean distance.
        let rows = vec![
            vec![0.0, 50_000.0],
            vec![0.1, -90_000.0],
            vec![0.9, 80_000.0],
            vec![1.0, -60_000.0],
        ];
        let labels = vec![false, false, true, true];
        let data = Dataset::new(rows, labels).unwrap();
        let scaled = KNearestNeighbors::fit(
            &KnnConfig {
                k: 1,
                standardize: true,
            },
            &data,
        );
        // Query near the positive cluster on the signal axis, noise mid-range.
        assert!(scaled.predict(&[0.95, 0.0]));
    }

    #[test]
    fn probability_counts_neighbour_votes() {
        let data = Dataset::new(
            vec![vec![0.0], vec![0.2], vec![0.4], vec![10.0]],
            vec![true, true, false, false],
        )
        .unwrap();
        let model = KNearestNeighbors::fit(
            &KnnConfig {
                k: 3,
                standardize: false,
            },
            &data,
        );
        assert!((model.predict_probability(&[0.1]) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let data = Dataset::new(vec![vec![0.0]], vec![true]).unwrap();
        let _ = KNearestNeighbors::fit(
            &KnnConfig {
                k: 0,
                standardize: false,
            },
            &data,
        );
    }

    #[test]
    fn tie_breaks_positive() {
        let data = Dataset::new(vec![vec![0.0], vec![2.0]], vec![true, false]).unwrap();
        let model = KNearestNeighbors::fit(
            &KnnConfig {
                k: 2,
                standardize: false,
            },
            &data,
        );
        // 1 of 2 neighbours positive → probability 0.5 → predicted positive.
        assert!(model.predict(&[1.0]));
    }
}
