//! Seeded stratified k-fold cross-validation — the evaluation protocol
//! behind the paper's Table IV (10-fold).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::data::Dataset;
use crate::metrics::{ClassificationReport, ConfusionMatrix};
use crate::Algorithm;

/// The paper's fold count.
pub const PAPER_FOLDS: usize = 10;

/// Produces stratified fold index sets: each fold receives a proportional
/// share of positives and negatives, shuffled with `seed`.
///
/// # Panics
///
/// Panics if `folds < 2` or `folds > data.len()`.
pub fn stratified_folds(data: &Dataset, folds: usize, seed: u64) -> Vec<Vec<usize>> {
    assert!(folds >= 2, "need at least 2 folds");
    assert!(folds <= data.len(), "more folds than examples");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut positives: Vec<usize> = Vec::new();
    let mut negatives: Vec<usize> = Vec::new();
    for (i, &label) in data.labels().iter().enumerate() {
        if label {
            positives.push(i);
        } else {
            negatives.push(i);
        }
    }
    positives.shuffle(&mut rng);
    negatives.shuffle(&mut rng);
    let mut out: Vec<Vec<usize>> = vec![Vec::new(); folds];
    for (k, &i) in positives.iter().enumerate() {
        out[k % folds].push(i);
    }
    for (k, &i) in negatives.iter().enumerate() {
        // Offset negative round-robin so small classes don't all land with
        // fold 0's positives.
        out[(k + folds / 2) % folds].push(i);
    }
    out
}

/// The outcome of one cross-validated evaluation of one algorithm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossValidation {
    /// Which algorithm was evaluated.
    pub algorithm_name: String,
    /// Per-fold reports, in fold order.
    pub fold_reports: Vec<ClassificationReport>,
    /// Mean of the per-fold reports (the Table IV row).
    pub mean: ClassificationReport,
    /// Confusion matrix pooled over all folds.
    pub pooled: ConfusionMatrix,
}

/// Runs k-fold cross-validation of `algorithm` with its default
/// configuration.
///
/// Every fold trains on the remaining k−1 folds and evaluates on the held-out
/// fold; folds are stratified and seeded so results are reproducible.
///
/// # Panics
///
/// Panics if any training split would be single-row or `folds < 2`.
pub fn cross_validate(
    algorithm: Algorithm,
    data: &Dataset,
    folds: usize,
    seed: u64,
) -> CrossValidation {
    cross_validate_with(&format!("{algorithm}"), data, folds, seed, |train, s| {
        algorithm.fit_default(train, s)
    })
}

/// Generic cross-validation over any training closure, enabling custom
/// configurations and the ablation benches.
///
/// The closure receives the training split and a per-fold seed.
pub fn cross_validate_with<F>(
    name: &str,
    data: &Dataset,
    folds: usize,
    seed: u64,
    mut fit: F,
) -> CrossValidation
where
    F: FnMut(&Dataset, u64) -> Box<dyn crate::Classifier>,
{
    let _span = ph_telemetry::span("ml.cv");
    let fold_timer =
        ph_telemetry::histogram("ml.cv.fold_ms", &ph_telemetry::default_latency_buckets_ms());
    let fold_indices = stratified_folds(data, folds, seed);
    let mut fold_reports = Vec::with_capacity(folds);
    let mut pooled = ConfusionMatrix::default();
    for (k, test_idx) in fold_indices.iter().enumerate() {
        if test_idx.is_empty() {
            continue; // tiny datasets can leave a fold empty
        }
        let fold_span = ph_telemetry::span("fold");
        let train_idx: Vec<usize> = fold_indices
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != k)
            .flat_map(|(_, idx)| idx.iter().copied())
            .collect();
        let train = data.subset(&train_idx);
        let test = data.subset(test_idx);
        let model = fit(&train, seed.wrapping_add(k as u64));
        let predictions = model.predict_batch(test.rows());
        let matrix = ConfusionMatrix::from_predictions(&predictions, test.labels());
        pooled.merge(&matrix);
        fold_reports.push(matrix.report());
        fold_timer.record(fold_span.elapsed_ms());
    }
    let mean = ClassificationReport::mean(&fold_reports);
    CrossValidation {
        algorithm_name: name.to_string(),
        fold_reports,
        mean,
        pooled,
    }
}

/// Cross-validates every Table IV algorithm and returns results in the
/// paper's row order (DT, kNN, SVM, EGB, RF).
pub fn compare_algorithms(data: &Dataset, folds: usize, seed: u64) -> Vec<CrossValidation> {
    Algorithm::ALL
        .iter()
        .map(|&a| cross_validate(a, data, folds, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(n: usize) -> Dataset {
        // Separable-with-noise: positive iff x0 + small noise feature > n/2.
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![i as f64, ((i * 37) % 11) as f64])
            .collect();
        let labels: Vec<bool> = (0..n).map(|i| i > n / 2).collect();
        Dataset::new(rows, labels).unwrap()
    }

    #[test]
    fn folds_partition_all_indices() {
        let data = dataset(103);
        let folds = stratified_folds(&data, 10, 7);
        let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..103).collect::<Vec<_>>());
    }

    #[test]
    fn folds_are_stratified() {
        let data = dataset(100);
        let folds = stratified_folds(&data, 5, 3);
        let overall = data.positive_rate();
        for fold in &folds {
            let pos = fold.iter().filter(|&&i| data.label(i)).count() as f64;
            let rate = pos / fold.len() as f64;
            assert!(
                (rate - overall).abs() < 0.15,
                "fold positive rate {rate} far from overall {overall}"
            );
        }
    }

    #[test]
    fn folds_are_seed_deterministic() {
        let data = dataset(60);
        assert_eq!(
            stratified_folds(&data, 6, 11),
            stratified_folds(&data, 6, 11)
        );
        assert_ne!(
            stratified_folds(&data, 6, 11),
            stratified_folds(&data, 6, 12)
        );
    }

    #[test]
    fn cross_validation_reports_all_folds() {
        let data = dataset(90);
        let cv = cross_validate(Algorithm::DecisionTree, &data, 5, 1);
        assert_eq!(cv.fold_reports.len(), 5);
        assert_eq!(cv.pooled.total(), 90);
        assert!(cv.mean.accuracy > 0.8, "DT should fit the toy boundary");
    }

    #[test]
    fn compare_runs_all_five() {
        let data = dataset(60);
        let results = compare_algorithms(&data, 3, 1);
        let names: Vec<&str> = results.iter().map(|r| r.algorithm_name.as_str()).collect();
        assert_eq!(names, vec!["DT", "kNN", "SVM", "EGB", "RF"]);
        for r in &results {
            assert!(r.mean.accuracy > 0.6, "{} too weak", r.algorithm_name);
        }
    }

    #[test]
    #[should_panic(expected = "at least 2 folds")]
    fn one_fold_panics() {
        let data = dataset(10);
        let _ = stratified_folds(&data, 1, 0);
    }
}
