//! Random forest — the paper's production classifier (Table IV: precision
//! 0.974, false-positive rate 0.002; configured with 70 trees and a depth
//! cap of 700).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::data::Dataset;
use crate::tree::{DecisionTree, DecisionTreeConfig};
use crate::Classifier;

/// Hyper-parameters for [`RandomForest`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RandomForestConfig {
    /// Number of trees (paper: 70).
    pub num_trees: usize,
    /// Per-tree CART configuration (paper: max depth 700).
    pub tree: DecisionTreeConfig,
    /// Features considered per split; `None` = `sqrt(num_features)`.
    pub features_per_split: Option<usize>,
    /// Train trees on parallel worker threads.
    pub parallel: bool,
}

impl Default for RandomForestConfig {
    fn default() -> Self {
        Self {
            num_trees: 70,
            tree: DecisionTreeConfig::default(),
            features_per_split: None,
            parallel: true,
        }
    }
}

/// A fitted random forest: bootstrap-bagged CART trees with per-split
/// feature subsampling, majority-voted.
///
/// # Example
///
/// ```
/// use ph_ml::data::Dataset;
/// use ph_ml::forest::{RandomForest, RandomForestConfig};
/// use ph_ml::Classifier;
///
/// let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64, (i % 7) as f64]).collect();
/// let labels: Vec<bool> = (0..60).map(|i| i >= 30).collect();
/// let data = Dataset::new(rows, labels)?;
/// let config = RandomForestConfig { num_trees: 15, ..Default::default() };
/// let forest = RandomForest::fit(&config, &data, 11);
/// assert!(forest.predict(&[55.0, 1.0]));
/// # Ok::<(), ph_ml::data::DatasetError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
}

impl RandomForest {
    /// Trains the forest. Deterministic for a given `(config, data, seed)`
    /// regardless of the `parallel` flag.
    ///
    /// # Panics
    ///
    /// Panics if `config.num_trees == 0`.
    pub fn fit(config: &RandomForestConfig, data: &Dataset, seed: u64) -> Self {
        let _span = ph_telemetry::span("forest.fit");
        let tree_timer = ph_telemetry::histogram(
            "ml.forest.tree_train_ms",
            &ph_telemetry::default_latency_buckets_ms(),
        );
        assert!(config.num_trees > 0, "forest needs at least one tree");
        let features_per_split = config
            .features_per_split
            .unwrap_or_else(|| ((data.num_features() as f64).sqrt().round() as usize).max(1));
        // Derive one independent seed per tree up front so parallel and
        // sequential training produce identical forests.
        let mut seeder = StdRng::seed_from_u64(seed);
        let tree_seeds: Vec<u64> = (0..config.num_trees).map(|_| seeder.random()).collect();

        let train_one = |tree_seed: u64| -> (DecisionTree, f64) {
            let start = std::time::Instant::now();
            let mut rng = StdRng::seed_from_u64(tree_seed);
            // Bootstrap sample: n draws with replacement.
            let n = data.len();
            let indices: Vec<usize> = (0..n).map(|_| rng.random_range(0..n)).collect();
            let tree = DecisionTree::fit_on_indices(
                &config.tree,
                data,
                &indices,
                Some(features_per_split),
                rng.random(),
            );
            (tree, start.elapsed().as_secs_f64() * 1e3)
        };

        // Trees fan out through the exec stage driver: one tree per chunk,
        // CPU-bound round-robin dealing, outputs back in seed order. This
        // buys the standard stage telemetry/prof/trace instrumentation
        // (so `perf critical-path` sees per-tree batches inside the
        // ml.train phase) for free.
        let workers = if config.parallel && config.num_trees > 1 {
            ph_exec::ExecConfig::with_threads(0)
                .resolve_threads()
                .min(config.num_trees)
        } else {
            1
        };
        ph_telemetry::set_meta("ml.forest.workers", &workers.to_string());
        let exec = ph_exec::ExecConfig {
            chunk_size: 1,
            ..ph_exec::ExecConfig::with_threads(workers)
        };
        let timed: Vec<(DecisionTree, f64)> = ph_exec::run_weighted(
            &exec,
            "ml.forest.train",
            ph_exec::StageWeight::CpuBound,
            tree_seeds,
            |&s| s,
            |_worker| train_one,
        );
        // Timings recorded on the caller thread after the ordered merge:
        // per-seed order, and no worker contention on the shared
        // histogram mutex.
        let trees = timed
            .into_iter()
            .map(|(tree, ms)| {
                tree_timer.record(ms);
                tree
            })
            .collect();
        Self { trees }
    }

    /// Number of trees in the ensemble.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// Fraction of trees voting positive.
    pub fn predict_probability(&self, features: &[f64]) -> f64 {
        let votes = self.trees.iter().filter(|t| t.predict(features)).count();
        votes as f64 / self.trees.len() as f64
    }

    /// Access to the fitted trees (for inspection / feature-importance
    /// style analyses).
    pub fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }
}

impl Classifier for RandomForest {
    fn predict(&self, features: &[f64]) -> bool {
        self.predict_probability(features) >= 0.5
    }

    fn predict_score(&self, features: &[f64]) -> f64 {
        self.predict_probability(features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_data(n: usize) -> Dataset {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![i as f64, ((i * 31) % 17) as f64, ((i * 7) % 5) as f64])
            .collect();
        let labels: Vec<bool> = (0..n).map(|i| i >= n / 2).collect();
        Dataset::new(rows, labels).unwrap()
    }

    #[test]
    fn forest_learns_simple_boundary() {
        let data = linear_data(200);
        let forest = RandomForest::fit(
            &RandomForestConfig {
                num_trees: 21,
                ..Default::default()
            },
            &data,
            3,
        );
        assert!(forest.predict(&[180.0, 0.0, 0.0]));
        assert!(!forest.predict(&[5.0, 0.0, 0.0]));
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let data = linear_data(120);
        let base = RandomForestConfig {
            num_trees: 8,
            ..Default::default()
        };
        let par = RandomForest::fit(&base, &data, 42);
        let seq = RandomForest::fit(
            &RandomForestConfig {
                parallel: false,
                ..base
            },
            &data,
            42,
        );
        assert_eq!(par, seq);
    }

    #[test]
    fn deterministic_across_runs() {
        let data = linear_data(80);
        let config = RandomForestConfig {
            num_trees: 5,
            ..Default::default()
        };
        assert_eq!(
            RandomForest::fit(&config, &data, 9),
            RandomForest::fit(&config, &data, 9)
        );
    }

    #[test]
    fn different_seeds_differ() {
        let data = linear_data(80);
        let config = RandomForestConfig {
            num_trees: 5,
            ..Default::default()
        };
        assert_ne!(
            RandomForest::fit(&config, &data, 1),
            RandomForest::fit(&config, &data, 2)
        );
    }

    #[test]
    fn probability_is_vote_fraction() {
        let data = linear_data(100);
        let forest = RandomForest::fit(
            &RandomForestConfig {
                num_trees: 10,
                ..Default::default()
            },
            &data,
            5,
        );
        let p = forest.predict_probability(&[99.0, 0.0, 0.0]);
        assert!((0.0..=1.0).contains(&p));
        // Vote fractions are multiples of 1/num_trees.
        let scaled = p * 10.0;
        assert!((scaled - scaled.round()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn zero_trees_panics() {
        let data = linear_data(10);
        let _ = RandomForest::fit(
            &RandomForestConfig {
                num_trees: 0,
                ..Default::default()
            },
            &data,
            1,
        );
    }
}
