//! Dense binary-classification datasets and related utilities.

use std::fmt;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Errors produced when constructing or manipulating a [`Dataset`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// Feature matrix and label vector lengths differ.
    LengthMismatch {
        /// Number of feature rows supplied.
        rows: usize,
        /// Number of labels supplied.
        labels: usize,
    },
    /// Two feature rows have different widths.
    RaggedRows {
        /// Width of the first row.
        expected: usize,
        /// Index of the offending row.
        row: usize,
        /// Width of the offending row.
        found: usize,
    },
    /// The dataset contains no rows.
    Empty,
    /// A feature value is NaN or infinite.
    NonFinite {
        /// Row index of the offending value.
        row: usize,
        /// Column index of the offending value.
        column: usize,
    },
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::LengthMismatch { rows, labels } => {
                write!(
                    f,
                    "feature rows ({rows}) and labels ({labels}) differ in length"
                )
            }
            DatasetError::RaggedRows {
                expected,
                row,
                found,
            } => write!(
                f,
                "row {row} has {found} features but the first row has {expected}"
            ),
            DatasetError::Empty => write!(f, "dataset contains no rows"),
            DatasetError::NonFinite { row, column } => {
                write!(f, "non-finite feature value at row {row}, column {column}")
            }
        }
    }
}

impl std::error::Error for DatasetError {}

/// A dense binary-classification dataset: one `f64` feature row per example
/// plus a boolean label (`true` = positive / spam).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    rows: Vec<Vec<f64>>,
    labels: Vec<bool>,
}

impl Dataset {
    /// Builds a dataset, validating shape and finiteness.
    ///
    /// # Errors
    ///
    /// Returns a [`DatasetError`] when the matrix is empty, ragged, contains
    /// non-finite values, or disagrees with the label count.
    pub fn new(rows: Vec<Vec<f64>>, labels: Vec<bool>) -> Result<Self, DatasetError> {
        if rows.len() != labels.len() {
            return Err(DatasetError::LengthMismatch {
                rows: rows.len(),
                labels: labels.len(),
            });
        }
        if rows.is_empty() {
            return Err(DatasetError::Empty);
        }
        let width = rows[0].len();
        for (i, row) in rows.iter().enumerate() {
            if row.len() != width {
                return Err(DatasetError::RaggedRows {
                    expected: width,
                    row: i,
                    found: row.len(),
                });
            }
            for (j, &v) in row.iter().enumerate() {
                if !v.is_finite() {
                    return Err(DatasetError::NonFinite { row: i, column: j });
                }
            }
        }
        Ok(Self { rows, labels })
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the dataset holds no examples (unreachable for values
    /// produced by [`Dataset::new`], which rejects empty input).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of features per example.
    pub fn num_features(&self) -> usize {
        self.rows[0].len()
    }

    /// Feature rows.
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }

    /// Labels (`true` = positive class).
    pub fn labels(&self) -> &[bool] {
        &self.labels
    }

    /// One feature row.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn row(&self, index: usize) -> &[f64] {
        &self.rows[index]
    }

    /// One label.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn label(&self, index: usize) -> bool {
        self.labels[index]
    }

    /// Number of positive examples.
    pub fn num_positive(&self) -> usize {
        self.labels.iter().filter(|&&l| l).count()
    }

    /// Fraction of positive examples.
    pub fn positive_rate(&self) -> f64 {
        self.num_positive() as f64 / self.len() as f64
    }

    /// Selects the sub-dataset at `indices` (cloning rows).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds or `indices` is empty.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        assert!(!indices.is_empty(), "subset must be non-empty");
        Dataset {
            rows: indices.iter().map(|&i| self.rows[i].clone()).collect(),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
        }
    }

    /// Splits into `(train, test)` with `test_fraction` of rows (rounded
    /// down, at least 1) held out, after a seeded shuffle.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < test_fraction < 1` and both sides end up non-empty.
    pub fn train_test_split(&self, test_fraction: f64, seed: u64) -> (Dataset, Dataset) {
        assert!(
            test_fraction > 0.0 && test_fraction < 1.0,
            "test_fraction must be in (0, 1)"
        );
        let mut indices: Vec<usize> = (0..self.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        indices.shuffle(&mut rng);
        let test_len = ((self.len() as f64 * test_fraction) as usize).max(1);
        assert!(test_len < self.len(), "both splits must be non-empty");
        let (test_idx, train_idx) = indices.split_at(test_len);
        (self.subset(train_idx), self.subset(test_idx))
    }

    /// Per-feature `(mean, standard deviation)` pairs. Degenerate features
    /// (zero variance) report a standard deviation of 1 so that scaling is a
    /// no-op for them.
    pub fn feature_moments(&self) -> Vec<(f64, f64)> {
        let n = self.len() as f64;
        let d = self.num_features();
        let mut moments = vec![(0.0, 0.0); d];
        for row in &self.rows {
            for (j, &v) in row.iter().enumerate() {
                moments[j].0 += v;
            }
        }
        for m in &mut moments {
            m.0 /= n;
        }
        for row in &self.rows {
            for (j, &v) in row.iter().enumerate() {
                let d = v - moments[j].0;
                moments[j].1 += d * d;
            }
        }
        for m in &mut moments {
            let var = m.1 / n;
            m.1 = if var > 1e-24 { var.sqrt() } else { 1.0 };
        }
        moments
    }
}

/// A fitted per-feature standardizer (z-score scaling).
///
/// kNN and the linear SVM are scale-sensitive; both fit a `Standardizer` on
/// their training split and apply it at prediction time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Standardizer {
    moments: Vec<(f64, f64)>,
}

impl Standardizer {
    /// Fits the scaler to a dataset.
    pub fn fit(data: &Dataset) -> Self {
        Self {
            moments: data.feature_moments(),
        }
    }

    /// Number of features the scaler was fitted on.
    pub fn num_features(&self) -> usize {
        self.moments.len()
    }

    /// Scales one row into a fresh vector.
    ///
    /// # Panics
    ///
    /// Panics if `row.len()` differs from the fitted dimensionality.
    pub fn transform(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.moments.len(), "feature width mismatch");
        row.iter()
            .zip(&self.moments)
            .map(|(&v, &(mean, std))| (v - mean) / std)
            .collect()
    }

    /// Scales every row of a dataset, preserving labels.
    pub fn transform_dataset(&self, data: &Dataset) -> Dataset {
        Dataset {
            rows: data.rows().iter().map(|r| self.transform(r)).collect(),
            labels: data.labels().to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            vec![
                vec![0.0, 10.0],
                vec![1.0, 20.0],
                vec![2.0, 30.0],
                vec![3.0, 40.0],
            ],
            vec![false, false, true, true],
        )
        .unwrap()
    }

    #[test]
    fn new_validates_lengths() {
        let err = Dataset::new(vec![vec![1.0]], vec![true, false]).unwrap_err();
        assert!(matches!(err, DatasetError::LengthMismatch { .. }));
    }

    #[test]
    fn new_rejects_empty() {
        assert_eq!(
            Dataset::new(vec![], vec![]).unwrap_err(),
            DatasetError::Empty
        );
    }

    #[test]
    fn new_rejects_ragged() {
        let err = Dataset::new(vec![vec![1.0, 2.0], vec![3.0]], vec![true, false]).unwrap_err();
        assert!(matches!(err, DatasetError::RaggedRows { row: 1, .. }));
    }

    #[test]
    fn new_rejects_nan() {
        let err = Dataset::new(vec![vec![f64::NAN]], vec![true]).unwrap_err();
        assert_eq!(err, DatasetError::NonFinite { row: 0, column: 0 });
    }

    #[test]
    fn counts_and_rates() {
        let d = toy();
        assert_eq!(d.len(), 4);
        assert_eq!(d.num_features(), 2);
        assert_eq!(d.num_positive(), 2);
        assert!((d.positive_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn subset_selects_rows() {
        let d = toy();
        let s = d.subset(&[2, 0]);
        assert_eq!(s.row(0), &[2.0, 30.0]);
        assert!(!s.label(1));
    }

    #[test]
    fn split_partitions_all_rows() {
        let d = toy();
        let (train, test) = d.train_test_split(0.25, 3);
        assert_eq!(train.len() + test.len(), d.len());
        assert_eq!(test.len(), 1);
    }

    #[test]
    fn split_is_seed_deterministic() {
        let d = toy();
        let (a1, b1) = d.train_test_split(0.5, 9);
        let (a2, b2) = d.train_test_split(0.5, 9);
        assert_eq!(a1, a2);
        assert_eq!(b1, b2);
    }

    #[test]
    fn moments_are_mean_and_std() {
        let d = toy();
        let m = d.feature_moments();
        assert!((m[0].0 - 1.5).abs() < 1e-12);
        assert!((m[1].0 - 25.0).abs() < 1e-12);
        // Population std of [0,1,2,3] = sqrt(1.25).
        assert!((m[0].1 - 1.25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn standardizer_centers_and_scales() {
        let d = toy();
        let s = Standardizer::fit(&d);
        let t = s.transform_dataset(&d);
        let m = t.feature_moments();
        assert!(m[0].0.abs() < 1e-12);
        assert!((m[0].1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn standardizer_handles_constant_feature() {
        let d = Dataset::new(vec![vec![5.0], vec![5.0]], vec![true, false]).unwrap();
        let s = Standardizer::fit(&d);
        assert_eq!(s.transform(&[5.0]), vec![0.0]);
    }
}
