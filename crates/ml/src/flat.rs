//! Flattened branchless random forest — the deployment-side data layout.
//!
//! [`crate::forest::RandomForest`] stores each tree as a `Vec` of enum
//! nodes behind a `DecisionTree` box: good for growing, bad for the hot
//! predict path (an enum discriminant branch plus a pointer chase per
//! level, per tree, per tweet). [`FlatForest`] flattens all trees into one
//! contiguous struct-of-arrays arena:
//!
//! - `feature[i]` — split feature index, or [`LEAF`] for a leaf,
//! - `threshold[i]` — split threshold, or the leaf's mean target,
//! - `left[i]` — left-child index; the right child is always `left[i] + 1`
//!   (children are allocated consecutively during flattening), so a level
//!   step is the branchless `left[i] + (value > threshold) as usize`.
//!
//! Predictions are bit-identical to the pointer forest: each tree lands in
//! the same leaf (same `<=` comparisons, same NaN routing via the negated
//! comparison), votes are exact integers, and the probability is the same
//! `votes as f64 / num_trees as f64` expression.
//!
//! The vendored `serde` shim is a no-op (no wire format), so persistence
//! uses an explicit little-endian byte codec ([`FlatForest::to_bytes`] /
//! [`FlatForest::from_bytes`]) in the style of the ph-store framed codecs,
//! with full structural validation on decode.

use serde::{Deserialize, Serialize};

use crate::forest::RandomForest;
use crate::tree::{Node, TreeCore};
use crate::Classifier;

/// Sentinel in `feature` marking a leaf node.
const LEAF: u32 = u32::MAX;

/// Magic prefix of the byte codec (`b"PHFF"`, version 1).
const MAGIC: [u8; 4] = *b"PHFF";
const VERSION: u32 = 1;

/// All trees of a random forest flattened into contiguous node arrays.
///
/// # Example
///
/// ```
/// use ph_ml::data::Dataset;
/// use ph_ml::flat::FlatForest;
/// use ph_ml::forest::{RandomForest, RandomForestConfig};
///
/// let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64, (i % 7) as f64]).collect();
/// let labels: Vec<bool> = (0..60).map(|i| i >= 30).collect();
/// let data = Dataset::new(rows, labels)?;
/// let config = RandomForestConfig { num_trees: 15, ..Default::default() };
/// let forest = RandomForest::fit(&config, &data, 11);
/// let flat = FlatForest::from_forest(&forest);
/// assert_eq!(
///     flat.predict_probability(&[55.0, 1.0]),
///     forest.predict_probability(&[55.0, 1.0]),
/// );
/// # Ok::<(), ph_ml::data::DatasetError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlatForest {
    num_features: u32,
    /// Root node index of each tree.
    roots: Vec<u32>,
    /// Split feature per node ([`LEAF`] for leaves).
    feature: Vec<u32>,
    /// Split threshold per node (leaf mean for leaves).
    threshold: Vec<f64>,
    /// Left-child index per node (0 for leaves); right child = left + 1.
    left: Vec<u32>,
}

impl FlatForest {
    /// Flattens a fitted pointer forest.
    ///
    /// # Panics
    ///
    /// Panics if the forest has no trees (cannot happen for a forest built
    /// by [`RandomForest::fit`]).
    pub fn from_forest(forest: &RandomForest) -> Self {
        assert!(
            forest.num_trees() > 0,
            "cannot flatten a forest with no trees"
        );
        let mut flat = Self {
            num_features: 0,
            roots: Vec::with_capacity(forest.num_trees()),
            feature: Vec::new(),
            threshold: Vec::new(),
            left: Vec::new(),
        };
        for tree in forest.trees() {
            let core = tree.core();
            flat.num_features = core.num_features as u32;
            let root = flat.flatten_tree(core);
            flat.roots.push(root);
        }
        flat
    }

    /// Copies one tree into the arena, renumbering so every split's
    /// children occupy consecutive slots. Returns the new root index.
    fn flatten_tree(&mut self, core: &TreeCore) -> u32 {
        let root = self.alloc();
        let mut stack: Vec<(usize, u32)> = vec![(0, root)];
        while let Some((old, new)) = stack.pop() {
            match &core.nodes[old] {
                Node::Leaf { value } => {
                    self.feature[new as usize] = LEAF;
                    self.threshold[new as usize] = *value;
                }
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let lnew = self.alloc();
                    let rnew = self.alloc();
                    debug_assert_eq!(rnew, lnew + 1);
                    self.feature[new as usize] = *feature as u32;
                    self.threshold[new as usize] = *threshold;
                    self.left[new as usize] = lnew;
                    stack.push((*right, rnew));
                    stack.push((*left, lnew));
                }
            }
        }
        root
    }

    fn alloc(&mut self) -> u32 {
        let at = self.feature.len() as u32;
        self.feature.push(LEAF);
        self.threshold.push(0.0);
        self.left.push(0);
        at
    }

    /// Number of trees.
    pub fn num_trees(&self) -> usize {
        self.roots.len()
    }

    /// Feature width expected by `predict*`.
    pub fn num_features(&self) -> usize {
        self.num_features as usize
    }

    /// Total node count across all trees.
    pub fn num_nodes(&self) -> usize {
        self.feature.len()
    }

    /// Walks one tree to its leaf value for `row`.
    // `!(x <= t)` is load-bearing, not a clumsy `x > t`: NaN must fail
    // the comparison and take the right child, as the pointer walk does.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    #[inline]
    fn leaf_value(&self, root: u32, row: &[f64]) -> f64 {
        let mut at = root as usize;
        loop {
            let f = self.feature[at];
            if f == LEAF {
                return self.threshold[at];
            }
            // `!(x <= t)` (not `x > t`) keeps the pointer tree's NaN
            // routing: NaN fails `<=` and goes right.
            at = self.left[at] as usize + usize::from(!(row[f as usize] <= self.threshold[at]));
        }
    }

    /// Fraction of trees voting positive — bit-identical to
    /// [`RandomForest::predict_probability`].
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the training width.
    pub fn predict_probability(&self, features: &[f64]) -> f64 {
        assert_eq!(
            features.len(),
            self.num_features as usize,
            "feature width mismatch with training data"
        );
        let votes = self
            .roots
            .iter()
            .filter(|&&root| self.leaf_value(root, features) >= 0.5)
            .count();
        votes as f64 / self.roots.len() as f64
    }

    /// Batch kernel over a contiguous row-major matrix: `data` holds
    /// `n_rows` rows of `num_features()` values each. Evaluates tree-outer
    /// / row-inner so each tree's node arrays stay hot in cache, and
    /// returns one vote-fraction probability per row (bit-identical to
    /// calling [`Self::predict_probability`] per row).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != n_rows * num_features()`.
    pub fn predict_batch(&self, data: &[f64], n_rows: usize) -> Vec<f64> {
        assert_eq!(
            data.len(),
            n_rows * self.num_features as usize,
            "feature width mismatch with training data"
        );
        let mut votes = vec![0u32; n_rows];
        let width = self.num_features as usize;
        for &root in &self.roots {
            for (row, vote) in data.chunks_exact(width.max(1)).zip(votes.iter_mut()) {
                *vote += u32::from(self.leaf_value(root, row) >= 0.5);
            }
        }
        let num_trees = self.roots.len() as f64;
        votes.into_iter().map(|v| v as f64 / num_trees).collect()
    }

    /// Serializes to the versioned little-endian byte format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24 + self.roots.len() * 4 + self.feature.len() * 16);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&self.num_features.to_le_bytes());
        out.extend_from_slice(&(self.roots.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.feature.len() as u32).to_le_bytes());
        for &r in &self.roots {
            out.extend_from_slice(&r.to_le_bytes());
        }
        for &f in &self.feature {
            out.extend_from_slice(&f.to_le_bytes());
        }
        for &t in &self.threshold {
            out.extend_from_slice(&t.to_le_bytes());
        }
        for &l in &self.left {
            out.extend_from_slice(&l.to_le_bytes());
        }
        out
    }

    /// Decodes [`Self::to_bytes`] output, validating every structural
    /// invariant (magic, version, counts, child/feature index ranges) so
    /// corrupt bytes yield an error, never a panicking forest.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, FlatForestDecodeError> {
        use FlatForestDecodeError::*;
        struct Cursor<'a> {
            bytes: &'a [u8],
            at: usize,
        }
        impl<'a> Cursor<'a> {
            fn take(&mut self, n: usize) -> Result<&'a [u8], FlatForestDecodeError> {
                let end = self.at.checked_add(n).ok_or(Truncated)?;
                let s = self.bytes.get(self.at..end).ok_or(Truncated)?;
                self.at = end;
                Ok(s)
            }
            fn read_u32(&mut self) -> Result<u32, FlatForestDecodeError> {
                Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
            }
            fn read_vec_u32(&mut self, len: usize) -> Result<Vec<u32>, FlatForestDecodeError> {
                let mut v = Vec::with_capacity(len.min(self.bytes.len() / 4));
                for _ in 0..len {
                    v.push(self.read_u32()?);
                }
                Ok(v)
            }
        }
        let mut cur = Cursor { bytes, at: 0 };
        if cur.take(4)? != MAGIC {
            return Err(BadMagic);
        }
        let version = cur.read_u32()?;
        if version != VERSION {
            return Err(UnsupportedVersion(version));
        }
        let num_features = cur.read_u32()?;
        let num_roots = cur.read_u32()? as usize;
        let num_nodes = cur.read_u32()? as usize;
        if num_roots == 0 {
            return Err(Structural("forest has no trees"));
        }
        let roots = cur.read_vec_u32(num_roots)?;
        let feature = cur.read_vec_u32(num_nodes)?;
        let mut threshold = Vec::with_capacity(num_nodes.min(bytes.len() / 8));
        for _ in 0..num_nodes {
            threshold.push(f64::from_le_bytes(cur.take(8)?.try_into().unwrap()));
        }
        let left = cur.read_vec_u32(num_nodes)?;
        if cur.at != bytes.len() {
            return Err(TrailingBytes);
        }
        for &r in &roots {
            if r as usize >= num_nodes {
                return Err(Structural("root index out of range"));
            }
        }
        for i in 0..num_nodes {
            if feature[i] == LEAF {
                continue;
            }
            if feature[i] >= num_features {
                return Err(Structural("split feature out of range"));
            }
            // Children must both exist and point past the parent so a
            // predict walk always terminates.
            let l = left[i] as usize;
            if l <= i || l + 1 >= num_nodes {
                return Err(Structural("child index out of range"));
            }
        }
        Ok(Self {
            num_features,
            roots,
            feature,
            threshold,
            left,
        })
    }
}

/// One explained prediction: the vote probability plus a signed
/// per-feature decomposition of how the forest got there.
///
/// `contributions[f]` is the probability delta attributed to feature `f`:
/// at every split taken, the change in the subtree's expected vote is
/// credited to the split feature (Saabas-style path attribution, with
/// subtree expectations weighted by leaf count). The deltas telescope, so
/// `baseline + contributions.iter().sum() == probability` up to float
/// rounding.
#[derive(Debug, Clone, PartialEq)]
pub struct Explanation {
    /// Fraction of trees voting positive — bit-identical to
    /// [`FlatForest::predict_probability`] on the same row.
    pub probability: f64,
    /// Signed vote margin `2·probability − 1`: +1 is a unanimous spam
    /// vote, −1 unanimous ham, 0 a split jury.
    pub margin: f64,
    /// The forest's prior: mean expected root vote across trees — what
    /// the forest would predict knowing nothing about the row.
    pub baseline: f64,
    /// Signed probability delta per feature (`num_features` long).
    pub contributions: Vec<f64>,
}

/// Explanation-mode companion to a [`FlatForest`]: precomputes each
/// node's expected vote (leaf-count-weighted mean of the leaves below
/// it) so explained walks cost one subtraction per level instead of a
/// subtree traversal.
///
/// Build once per forest with [`FlatForest::explainer`]; `explain` is
/// then pure and deterministic, and its `probability` stays bit-identical
/// to the unexplained predict path (same leaf comparisons, same vote
/// arithmetic).
#[derive(Debug, Clone)]
pub struct ForestExplainer<'a> {
    forest: &'a FlatForest,
    /// Expected vote of the subtree rooted at each node.
    value: Vec<f64>,
    baseline: f64,
}

impl FlatForest {
    /// Builds the explanation companion. One `O(num_nodes)` pass; walk
    /// nodes in reverse index order — children are always allocated
    /// after their parent (and the byte decoder enforces `left > node`),
    /// so both child values exist by the time a split is folded.
    pub fn explainer(&self) -> ForestExplainer<'_> {
        let n = self.feature.len();
        let mut value = vec![0.0f64; n];
        let mut leaves = vec![0u64; n];
        for i in (0..n).rev() {
            if self.feature[i] == LEAF {
                value[i] = f64::from(self.threshold[i] >= 0.5);
                leaves[i] = 1;
            } else {
                let l = self.left[i] as usize;
                let (wl, wr) = (leaves[l] as f64, leaves[l + 1] as f64);
                leaves[i] = leaves[l] + leaves[l + 1];
                value[i] = (value[l] * wl + value[l + 1] * wr) / (wl + wr);
            }
        }
        let baseline =
            self.roots.iter().map(|&r| value[r as usize]).sum::<f64>() / self.roots.len() as f64;
        ForestExplainer {
            forest: self,
            value,
            baseline,
        }
    }
}

impl ForestExplainer<'_> {
    /// The forest's prior (mean expected root vote).
    pub fn baseline(&self) -> f64 {
        self.baseline
    }

    /// Explains one prediction: walks every tree exactly like
    /// [`FlatForest::predict_probability`], crediting each level's
    /// expected-vote change to the split feature.
    ///
    /// # Panics
    ///
    /// Panics if `row.len()` differs from the training width.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn explain(&self, row: &[f64]) -> Explanation {
        let forest = self.forest;
        assert_eq!(
            row.len(),
            forest.num_features as usize,
            "feature width mismatch with training data"
        );
        let mut contributions = vec![0.0f64; forest.num_features as usize];
        let inv = 1.0 / forest.roots.len() as f64;
        let mut votes = 0usize;
        for &root in &forest.roots {
            let mut at = root as usize;
            loop {
                let f = forest.feature[at];
                if f == LEAF {
                    // Same comparison as the predict walk's vote test.
                    votes += usize::from(forest.threshold[at] >= 0.5);
                    break;
                }
                // Same NaN-goes-right step as `leaf_value`.
                let next = forest.left[at] as usize
                    + usize::from(!(row[f as usize] <= forest.threshold[at]));
                contributions[f as usize] += (self.value[next] - self.value[at]) * inv;
                at = next;
            }
        }
        let probability = votes as f64 / forest.roots.len() as f64;
        Explanation {
            probability,
            margin: 2.0 * probability - 1.0,
            baseline: self.baseline,
            contributions,
        }
    }
}

/// Why [`FlatForest::from_bytes`] rejected its input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlatForestDecodeError {
    /// Input ended before the declared counts were satisfied.
    Truncated,
    /// Input does not start with the `PHFF` magic.
    BadMagic,
    /// Unknown format version.
    UnsupportedVersion(u32),
    /// Bytes left over after the declared counts.
    TrailingBytes,
    /// An index invariant is violated (root/child/feature out of range).
    Structural(&'static str),
}

impl std::fmt::Display for FlatForestDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated => write!(f, "flat forest bytes truncated"),
            Self::BadMagic => write!(f, "flat forest magic mismatch"),
            Self::UnsupportedVersion(v) => write!(f, "unsupported flat forest version {v}"),
            Self::TrailingBytes => write!(f, "trailing bytes after flat forest"),
            Self::Structural(why) => write!(f, "flat forest structure invalid: {why}"),
        }
    }
}

impl std::error::Error for FlatForestDecodeError {}

impl Classifier for FlatForest {
    fn predict(&self, features: &[f64]) -> bool {
        self.predict_probability(features) >= 0.5
    }

    fn predict_score(&self, features: &[f64]) -> f64 {
        self.predict_probability(features)
    }

    fn predict_batch(&self, rows: &[Vec<f64>]) -> Vec<bool> {
        rows.iter()
            .map(|r| self.predict_probability(r) >= 0.5)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Dataset;
    use crate::forest::RandomForestConfig;

    fn fitted(n: usize, trees: usize, seed: u64) -> (RandomForest, Dataset) {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![i as f64, ((i * 31) % 17) as f64, ((i * 7) % 5) as f64])
            .collect();
        let labels: Vec<bool> = (0..n).map(|i| i >= n / 2).collect();
        let data = Dataset::new(rows, labels).unwrap();
        let forest = RandomForest::fit(
            &RandomForestConfig {
                num_trees: trees,
                ..Default::default()
            },
            &data,
            seed,
        );
        (forest, data)
    }

    #[test]
    fn matches_pointer_forest_on_training_rows() {
        let (forest, data) = fitted(150, 12, 7);
        let flat = FlatForest::from_forest(&forest);
        for row in data.rows() {
            assert_eq!(
                flat.predict_probability(row).to_bits(),
                forest.predict_probability(row).to_bits(),
            );
        }
    }

    #[test]
    fn predict_batch_matches_per_row() {
        let (forest, data) = fitted(90, 9, 3);
        let flat = FlatForest::from_forest(&forest);
        let width = flat.num_features();
        let mut matrix = Vec::with_capacity(data.len() * width);
        for row in data.rows() {
            matrix.extend_from_slice(row);
        }
        let probs = flat.predict_batch(&matrix, data.len());
        assert_eq!(probs.len(), data.len());
        for (row, p) in data.rows().iter().zip(&probs) {
            assert_eq!(p.to_bits(), forest.predict_probability(row).to_bits());
        }
    }

    #[test]
    fn byte_codec_round_trips() {
        let (forest, _) = fitted(60, 5, 11);
        let flat = FlatForest::from_forest(&forest);
        let bytes = flat.to_bytes();
        let back = FlatForest::from_bytes(&bytes).unwrap();
        assert_eq!(flat, back);
    }

    #[test]
    fn decode_rejects_corruption() {
        let (forest, _) = fitted(40, 3, 2);
        let flat = FlatForest::from_forest(&forest);
        let bytes = flat.to_bytes();
        assert_eq!(
            FlatForest::from_bytes(&[]),
            Err(FlatForestDecodeError::Truncated)
        );
        assert_eq!(
            FlatForest::from_bytes(&bytes[..bytes.len() - 1]),
            Err(FlatForestDecodeError::Truncated)
        );
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xff;
        assert_eq!(
            FlatForest::from_bytes(&bad_magic),
            Err(FlatForestDecodeError::BadMagic)
        );
        let mut extra = bytes.clone();
        extra.push(0);
        assert_eq!(
            FlatForest::from_bytes(&extra),
            Err(FlatForestDecodeError::TrailingBytes)
        );
    }

    #[test]
    fn decode_never_builds_a_walkable_cycle() {
        // A split whose child points at itself must be rejected.
        let (forest, _) = fitted(40, 3, 2);
        let flat = FlatForest::from_forest(&forest);
        let mut bytes = flat.to_bytes();
        // Find the first split node and corrupt its left child to 0.
        let num_roots = flat.roots.len();
        let nodes_at = 20 + num_roots * 4 + flat.feature.len() * 12;
        let split = flat.feature.iter().position(|&f| f != LEAF).unwrap();
        bytes[nodes_at + split * 4..nodes_at + split * 4 + 4]
            .copy_from_slice(&(split as u32).to_le_bytes());
        assert!(matches!(
            FlatForest::from_bytes(&bytes),
            Err(FlatForestDecodeError::Structural(_))
        ));
    }

    #[test]
    #[should_panic(expected = "feature width mismatch")]
    fn wrong_width_panics() {
        let (forest, _) = fitted(40, 3, 2);
        let flat = FlatForest::from_forest(&forest);
        let _ = flat.predict_probability(&[1.0]);
    }

    #[test]
    fn explained_probability_is_bit_identical_to_predict() {
        let (forest, data) = fitted(150, 12, 7);
        let flat = FlatForest::from_forest(&forest);
        let explainer = flat.explainer();
        for row in data.rows() {
            let e = explainer.explain(row);
            assert_eq!(
                e.probability.to_bits(),
                flat.predict_probability(row).to_bits()
            );
            assert_eq!(e.margin.to_bits(), (2.0 * e.probability - 1.0).to_bits());
        }
    }

    #[test]
    fn contributions_telescope_to_probability_minus_baseline() {
        let (forest, data) = fitted(120, 9, 5);
        let flat = FlatForest::from_forest(&forest);
        let explainer = flat.explainer();
        for row in data.rows() {
            let e = explainer.explain(row);
            let total: f64 = e.contributions.iter().sum();
            assert!(
                (e.baseline + total - e.probability).abs() < 1e-9,
                "baseline {} + sum {} != probability {}",
                e.baseline,
                total,
                e.probability
            );
        }
    }

    #[test]
    fn baseline_is_a_probability_and_unsplit_features_get_zero() {
        // Only feature 0 separates the classes, so the trees should
        // never credit a feature the forest has no splits on.
        let rows: Vec<Vec<f64>> = (0..80).map(|i| vec![i as f64, 1.0]).collect();
        let labels: Vec<bool> = (0..80).map(|i| i >= 40).collect();
        let data = Dataset::new(rows, labels).unwrap();
        let forest = RandomForest::fit(
            &RandomForestConfig {
                num_trees: 7,
                ..Default::default()
            },
            &data,
            3,
        );
        let flat = FlatForest::from_forest(&forest);
        let explainer = flat.explainer();
        assert!((0.0..=1.0).contains(&explainer.baseline()));
        let split_features: std::collections::HashSet<u32> = flat
            .feature
            .iter()
            .copied()
            .filter(|&f| f != LEAF)
            .collect();
        let e = explainer.explain(&[70.0, 1.0]);
        for (f, &c) in e.contributions.iter().enumerate() {
            if !split_features.contains(&(f as u32)) {
                assert_eq!(c, 0.0, "unsplit feature {f} was credited");
            }
        }
    }

    #[test]
    fn explain_is_deterministic() {
        let (forest, data) = fitted(90, 9, 3);
        let flat = FlatForest::from_forest(&forest);
        let a = flat.explainer();
        let b = flat.explainer();
        for row in data.rows() {
            let (ea, eb) = (a.explain(row), b.explain(row));
            assert_eq!(ea, eb);
            for (x, y) in ea.contributions.iter().zip(&eb.contributions) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }
}
