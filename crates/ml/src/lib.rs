//! From-scratch machine-learning substrate for the pseudo-honeypot detector.
//!
//! The paper (§IV-C, Table IV) compares five classifiers on the labeled
//! ground-truth dataset under 10-fold cross-validation — Decision Tree,
//! k-Nearest Neighbors, Support Vector Machine, Extreme Gradient Boosting
//! and Random Forest — and deploys the winner (Random Forest, 70 trees,
//! depth cap 700) as the production spam detector.
//!
//! Rust's ML crate ecosystem is thin, so this crate implements all five from
//! scratch over a shared [`Dataset`] representation:
//!
//! - [`tree::DecisionTree`] — CART with Gini impurity (plus a regression
//!   variant used by boosting),
//! - [`forest::RandomForest`] — bagged CART trees with per-split feature
//!   subsampling,
//! - [`knn::KNearestNeighbors`] — brute-force kNN with z-score scaling,
//! - [`svm::LinearSvm`] — Pegasos-style SGD on the hinge loss,
//! - [`boost::GradientBoosting`] — logistic-loss gradient boosting ("EGB"),
//!
//! together with [`metrics`] (accuracy / precision / recall / false-positive
//! rate) and a seeded stratified [`cv`] (cross-validation) harness.
//!
//! # Example
//!
//! ```
//! use ph_ml::data::Dataset;
//! use ph_ml::forest::{RandomForest, RandomForestConfig};
//! use ph_ml::Classifier;
//!
//! // Toy dataset: positive iff x0 > 0.5.
//! let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 100.0, 0.0]).collect();
//! let labels: Vec<bool> = (0..100).map(|i| i >= 50).collect();
//! let data = Dataset::new(rows, labels)?;
//! let model = RandomForest::fit(&RandomForestConfig::default(), &data, 7);
//! assert!(model.predict(&[0.9, 0.0]));
//! assert!(!model.predict(&[0.1, 0.0]));
//! # Ok::<(), ph_ml::data::DatasetError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boost;
pub mod cv;
pub mod data;
pub mod flat;
pub mod forest;
pub mod importance;
pub mod knn;
pub mod metrics;
pub mod svm;
pub mod tree;

pub use data::Dataset;
pub use metrics::ClassificationReport;

/// A trained binary classifier over dense feature rows.
///
/// `true` is the positive (spam) class throughout the workspace.
pub trait Classifier: Send + Sync {
    /// Predicts the class of one feature row.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `features.len()` differs from the
    /// training dimensionality.
    fn predict(&self, features: &[f64]) -> bool;

    /// Predicts a score in `[0, 1]` interpreted as the positive-class
    /// probability (or a monotone surrogate for margin-based models).
    fn predict_score(&self, features: &[f64]) -> f64 {
        if self.predict(features) {
            1.0
        } else {
            0.0
        }
    }

    /// Predicts every row of a feature matrix.
    fn predict_batch(&self, rows: &[Vec<f64>]) -> Vec<bool> {
        rows.iter().map(|r| self.predict(r)).collect()
    }
}

/// The five classifier families compared in Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Algorithm {
    /// CART decision tree ("DT").
    DecisionTree,
    /// k-nearest neighbours ("kNN").
    KNearestNeighbors,
    /// Linear support vector machine ("SVM").
    LinearSvm,
    /// Gradient boosting over regression trees ("EGB").
    GradientBoosting,
    /// Random forest ("RF") — the paper's production choice.
    RandomForest,
}

impl Algorithm {
    /// All algorithms in the paper's Table IV row order.
    pub const ALL: [Algorithm; 5] = [
        Algorithm::DecisionTree,
        Algorithm::KNearestNeighbors,
        Algorithm::LinearSvm,
        Algorithm::GradientBoosting,
        Algorithm::RandomForest,
    ];

    /// The abbreviation used in the paper ("DT", "kNN", "SVM", "EGB", "RF").
    pub fn abbreviation(self) -> &'static str {
        match self {
            Algorithm::DecisionTree => "DT",
            Algorithm::KNearestNeighbors => "kNN",
            Algorithm::LinearSvm => "SVM",
            Algorithm::GradientBoosting => "EGB",
            Algorithm::RandomForest => "RF",
        }
    }

    /// Trains this algorithm with its default configuration.
    pub fn fit_default(self, data: &Dataset, seed: u64) -> Box<dyn Classifier> {
        match self {
            Algorithm::DecisionTree => Box::new(tree::DecisionTree::fit(
                &tree::DecisionTreeConfig::default(),
                data,
            )),
            Algorithm::KNearestNeighbors => Box::new(knn::KNearestNeighbors::fit(
                &knn::KnnConfig::default(),
                data,
            )),
            Algorithm::LinearSvm => {
                Box::new(svm::LinearSvm::fit(&svm::SvmConfig::default(), data, seed))
            }
            Algorithm::GradientBoosting => Box::new(boost::GradientBoosting::fit(
                &boost::BoostConfig::default(),
                data,
                seed,
            )),
            Algorithm::RandomForest => Box::new(flat::FlatForest::from_forest(
                &forest::RandomForest::fit(&forest::RandomForestConfig::default(), data, seed),
            )),
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.abbreviation())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_abbreviations_match_paper() {
        let abbrs: Vec<&str> = Algorithm::ALL.iter().map(|a| a.abbreviation()).collect();
        assert_eq!(abbrs, vec!["DT", "kNN", "SVM", "EGB", "RF"]);
    }

    #[test]
    fn display_uses_abbreviation() {
        assert_eq!(Algorithm::RandomForest.to_string(), "RF");
    }
}
