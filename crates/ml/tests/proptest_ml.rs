//! Property-based tests for the ML substrate invariants.

use proptest::prelude::*;

use ph_ml::boost::{BoostConfig, GradientBoosting};
use ph_ml::cv::stratified_folds;
use ph_ml::data::{Dataset, Standardizer};
use ph_ml::flat::FlatForest;
use ph_ml::forest::{RandomForest, RandomForestConfig};
use ph_ml::knn::{KNearestNeighbors, KnnConfig};
use ph_ml::metrics::ConfusionMatrix;
use ph_ml::svm::{LinearSvm, SvmConfig};
use ph_ml::tree::{DecisionTree, DecisionTreeConfig};
use ph_ml::Classifier;

/// Strategy: a small random dataset with both classes present.
fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (4usize..40, 1usize..5, any::<u64>()).prop_map(|(n, d, seed)| {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..d).map(|_| next() * 10.0).collect())
            .collect();
        // Label: threshold on first feature, guaranteeing both classes by
        // flipping the first two rows deterministically.
        let mut labels: Vec<bool> = rows.iter().map(|r| r[0] > 5.0).collect();
        labels[0] = true;
        labels[1] = false;
        Dataset::new(rows, labels).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A deep decision tree achieves 100% training accuracy whenever no two
    /// identical rows carry different labels (here rows are continuous, so
    /// collisions are essentially impossible).
    #[test]
    fn tree_memorizes_training_data(data in dataset_strategy()) {
        let tree = DecisionTree::fit(&DecisionTreeConfig::default(), &data);
        for (row, &label) in data.rows().iter().zip(data.labels()) {
            prop_assert_eq!(tree.predict(row), label);
        }
    }

    /// Forest probability is always a valid vote fraction.
    #[test]
    fn forest_probability_bounds(data in dataset_strategy(), seed: u64) {
        let forest = RandomForest::fit(
            &RandomForestConfig { num_trees: 7, parallel: false, ..Default::default() },
            &data,
            seed,
        );
        for row in data.rows() {
            let p = forest.predict_probability(row);
            prop_assert!((0.0..=1.0).contains(&p));
        }
    }

    /// The flattened SoA forest agrees bit-for-bit with the pointer forest
    /// on arbitrary fitted forests and query rows: per-row probabilities,
    /// the batch kernel over a contiguous matrix, and the byte codec all
    /// preserve exact `f64` bits.
    #[test]
    fn flat_forest_is_bit_identical(
        data in dataset_strategy(),
        seed: u64,
        trees in 1usize..9,
        queries in proptest::collection::vec(
            proptest::collection::vec(-1e3f64..1e3, 5),
            1..12,
        ),
    ) {
        let forest = RandomForest::fit(
            &RandomForestConfig { num_trees: trees, parallel: false, ..Default::default() },
            &data,
            seed,
        );
        let flat = FlatForest::from_forest(&forest);
        let width = flat.num_features();
        // Query rows trimmed to the training width; training rows too.
        let rows: Vec<Vec<f64>> = data
            .rows()
            .iter()
            .cloned()
            .chain(queries.into_iter().map(|q| q[..width].to_vec()))
            .collect();
        let mut matrix = Vec::with_capacity(rows.len() * width);
        for row in &rows {
            matrix.extend_from_slice(row);
        }
        let batch = flat.predict_batch(&matrix, rows.len());
        let decoded = FlatForest::from_bytes(&flat.to_bytes()).unwrap();
        prop_assert_eq!(&decoded, &flat, "byte codec round-trip diverged");
        for (row, &p_batch) in rows.iter().zip(&batch) {
            let expected = forest.predict_probability(row);
            prop_assert_eq!(flat.predict_probability(row).to_bits(), expected.to_bits());
            prop_assert_eq!(p_batch.to_bits(), expected.to_bits());
            prop_assert_eq!(
                decoded.predict_probability(row).to_bits(),
                expected.to_bits()
            );
        }
    }

    /// kNN with k = n predicts the majority class for every query.
    #[test]
    fn knn_full_k_is_majority(data in dataset_strategy()) {
        let model = KNearestNeighbors::fit(
            &KnnConfig { k: data.len(), standardize: false },
            &data,
        );
        let majority = data.num_positive() * 2 >= data.len();
        prop_assert_eq!(model.predict(data.row(0)), majority);
    }

    /// SVM training is deterministic in the seed.
    #[test]
    fn svm_seed_determinism(data in dataset_strategy(), seed: u64) {
        let cfg = SvmConfig { epochs: 3, ..Default::default() };
        prop_assert_eq!(
            LinearSvm::fit(&cfg, &data, seed),
            LinearSvm::fit(&cfg, &data, seed)
        );
    }

    /// Boosting probabilities stay in (0, 1).
    #[test]
    fn boosting_probability_bounds(data in dataset_strategy(), seed: u64) {
        let cfg = BoostConfig { num_stages: 5, ..Default::default() };
        let model = GradientBoosting::fit(&cfg, &data, seed);
        for row in data.rows() {
            let p = model.predict_probability(row);
            prop_assert!(p > 0.0 && p < 1.0);
        }
    }

    /// Standardized data has ~zero mean and ~unit variance per feature.
    #[test]
    fn standardizer_normalizes(data in dataset_strategy()) {
        let scaler = Standardizer::fit(&data);
        let scaled = scaler.transform_dataset(&data);
        for (mean, std) in scaled.feature_moments() {
            prop_assert!(mean.abs() < 1e-6, "mean {mean}");
            // Degenerate (constant) features keep std 1 by convention.
            prop_assert!((std - 1.0).abs() < 1e-6, "std {std}");
        }
    }

    /// Stratified folds partition the dataset exactly.
    #[test]
    fn folds_partition(data in dataset_strategy(), seed: u64, folds in 2usize..5) {
        prop_assume!(folds <= data.len());
        let f = stratified_folds(&data, folds, seed);
        let mut all: Vec<usize> = f.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..data.len()).collect::<Vec<_>>());
    }

    /// Confusion-matrix identities: accuracy ∈ [0,1], TPR+FNR-style cell sums.
    #[test]
    fn confusion_matrix_identities(
        preds in proptest::collection::vec(any::<bool>(), 1..64),
        seed: u64,
    ) {
        let actual: Vec<bool> = preds
            .iter()
            .enumerate()
            .map(|(i, &p)| p ^ ((seed >> (i % 64)) & 1 == 1))
            .collect();
        let m = ConfusionMatrix::from_predictions(&preds, &actual);
        prop_assert_eq!(m.total(), preds.len());
        prop_assert!((0.0..=1.0).contains(&m.accuracy()));
        prop_assert!((0.0..=1.0).contains(&m.precision()));
        prop_assert!((0.0..=1.0).contains(&m.recall()));
        prop_assert!((0.0..=1.0).contains(&m.false_positive_rate()));
        let pos_truth = m.true_positives + m.false_negatives;
        prop_assert_eq!(pos_truth, actual.iter().filter(|&&a| a).count());
    }
}
