//! Property-based tests for the sketch substrate invariants.

use proptest::prelude::*;

use ph_sketch::dhash::DHash128;
use ph_sketch::image::GrayImage;
use ph_sketch::minhash::MinHasher;
use ph_sketch::namepattern::NamePattern;
use ph_sketch::shingle::{jaccard, normalize, shingles, trigram_shingles};
use ph_sketch::unionfind::UnionFind;

proptest! {
    /// Any shard partitioning of the same edge set — any number of shards,
    /// any assignment of edges to shards, any edge order within a shard —
    /// absorbed in shard order yields exactly the sequential components.
    #[test]
    fn sharded_union_find_matches_sequential(
        len in 1usize..40,
        edges in proptest::collection::vec((any::<u16>(), any::<u16>(), any::<u8>()), 0..80),
        shards in 1usize..6,
    ) {
        let edges: Vec<(usize, usize, usize)> = edges
            .into_iter()
            .map(|(a, b, s)| (a as usize % len, b as usize % len, s as usize % shards))
            .collect();
        let mut sequential = UnionFind::new(len);
        for &(a, b, _) in &edges {
            sequential.union(a, b);
        }
        // Build one local union-find per shard from its edge subset.
        let mut locals: Vec<UnionFind> = (0..shards).map(|_| UnionFind::new(len)).collect();
        for &(a, b, s) in &edges {
            locals[s].union(a, b);
        }
        // Shard-ordered fold, as the parallel cluster merge does.
        let mut merged = UnionFind::new(len);
        for local in &locals {
            merged.absorb(local);
        }
        prop_assert_eq!(merged.component_count(), sequential.component_count());
        prop_assert_eq!(merged.components(), sequential.components());
    }

    /// `root` never mutates and always names a fixed point.
    #[test]
    fn root_is_pure_and_idempotent(
        len in 1usize..30,
        edges in proptest::collection::vec((any::<u16>(), any::<u16>()), 0..40),
    ) {
        let mut uf = UnionFind::new(len);
        for (a, b) in edges {
            uf.union(a as usize % len, b as usize % len);
        }
        let snapshot = uf.clone();
        for x in 0..len {
            let r = uf.root(x);
            prop_assert_eq!(uf.root(r), r, "root of a root must be itself");
            prop_assert_eq!(r, snapshot.clone().find(x));
        }
        prop_assert_eq!(uf, snapshot);
    }

    /// Hamming distance is a metric: identity, symmetry, triangle inequality.
    #[test]
    fn dhash_distance_is_a_metric(a: (u64, u64), b: (u64, u64), c: (u64, u64)) {
        let (h1, h2, h3) = (
            DHash128::from_parts(a.0, a.1),
            DHash128::from_parts(b.0, b.1),
            DHash128::from_parts(c.0, c.1),
        );
        prop_assert_eq!(h1.hamming_distance(h1), 0);
        prop_assert_eq!(h1.hamming_distance(h2), h2.hamming_distance(h1));
        prop_assert!(
            h1.hamming_distance(h3) <= h1.hamming_distance(h2) + h2.hamming_distance(h3)
        );
        prop_assert!(h1.hamming_distance(h2) <= 128);
    }

    /// Resizing never panics and preserves the value range.
    #[test]
    fn resize_preserves_value_range(
        w in 1u32..40,
        h in 1u32..40,
        nw in 1u32..20,
        nh in 1u32..20,
        seed in any::<u64>(),
    ) {
        let img = GrayImage::from_fn(w, h, |x, y| {
            (seed
                .wrapping_mul(u64::from(x) + 1)
                .wrapping_add(u64::from(y).wrapping_mul(7919))
                % 256) as u8
        });
        let lo = *img.as_raw().iter().min().unwrap();
        let hi = *img.as_raw().iter().max().unwrap();
        let out = img.resize(nw, nh);
        prop_assert_eq!(out.dimensions(), (nw, nh));
        for &p in out.as_raw() {
            prop_assert!(p >= lo && p <= hi, "averaged pixel escaped source range");
        }
    }

    /// dHash of any image is deterministic.
    #[test]
    fn dhash_is_deterministic(w in 1u32..40, h in 1u32..40, seed in any::<u64>()) {
        let img = GrayImage::from_fn(w, h, |x, y| {
            (seed ^ (u64::from(x) << 8) ^ u64::from(y)) as u8
        });
        prop_assert_eq!(DHash128::of(&img), DHash128::of(&img));
    }

    /// Identical texts always produce matching signatures; estimate is in [0,1].
    #[test]
    fn minhash_identity_and_bounds(text in ".{0,64}", other in ".{0,64}", seed: u64) {
        let hasher = MinHasher::new(16, seed);
        let s1 = hasher.signature_of_text(&text);
        let s2 = hasher.signature_of_text(&text);
        prop_assert!(s1.matches(&s2));
        let s3 = hasher.signature_of_text(&other);
        let est = s1.estimate_jaccard(&s3);
        prop_assert!((0.0..=1.0).contains(&est));
    }

    /// MinHash estimate correlates with true Jaccard for word-ish strings:
    /// equal sets estimate 1.0, disjoint sets estimate low.
    #[test]
    fn minhash_estimate_matches_extremes(words in proptest::collection::vec("[a-z]{3,8}", 3..10)) {
        let text = words.join(" ");
        let hasher = MinHasher::new(128, 42);
        let sig = hasher.signature(trigram_shingles(&text));
        prop_assert!((sig.estimate_jaccard(&sig) - 1.0).abs() < 1e-12);
    }

    /// Normalization output contains only lowercase alphanumerics and spaces,
    /// and is idempotent.
    #[test]
    fn normalize_is_idempotent(text in ".{0,80}") {
        let once = normalize(&text);
        prop_assert!(once
            .chars()
            .all(|c| c == ' ' || c.is_ascii_lowercase() || c.is_ascii_digit()));
        prop_assert_eq!(normalize(&once), once.clone());
    }

    /// Shingle sets are consistent with text length.
    #[test]
    fn shingle_count_bounds(text in "[a-z ]{0,50}", k in 1usize..6) {
        let s = shingles(&text, k);
        let n = text.chars().count();
        if n == 0 {
            prop_assert!(s.is_empty());
        } else if n <= k {
            prop_assert_eq!(s.len(), 1);
        } else {
            prop_assert!(s.len() <= n - k + 1);
        }
    }

    /// Jaccard similarity is symmetric and bounded.
    #[test]
    fn jaccard_symmetric(a in "[a-z ]{0,40}", b in "[a-z ]{0,40}") {
        let (sa, sb) = (trigram_shingles(&a), trigram_shingles(&b));
        let j1 = jaccard(&sa, &sb);
        let j2 = jaccard(&sb, &sa);
        prop_assert!((j1 - j2).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&j1));
    }

    /// Name pattern length equals the name's character count.
    #[test]
    fn name_pattern_covers_all_chars(name in ".{0,40}") {
        let p = NamePattern::of(&name);
        prop_assert_eq!(p.len() as usize, name.chars().count());
    }

    /// Union-find: component count decreases by exactly the number of
    /// successful unions, and `connected` agrees with `find`.
    #[test]
    fn unionfind_component_accounting(
        n in 1usize..64,
        edges in proptest::collection::vec((0usize..64, 0usize..64), 0..128),
    ) {
        let mut uf = UnionFind::new(n);
        let mut merges = 0;
        for (a, b) in edges {
            let (a, b) = (a % n, b % n);
            if uf.union(a, b) {
                merges += 1;
            }
        }
        prop_assert_eq!(uf.component_count(), n - merges);
        let comps = uf.components();
        let total: usize = comps.iter().map(|c| c.len()).sum();
        prop_assert_eq!(total, n);
        prop_assert_eq!(comps.len(), uf.component_count());
    }
}
