//! Σ-sequence screen-name patterns.
//!
//! Spam campaigns register accounts with automatic naming patterns of limited
//! variability (paper §IV-B). Each screen name is mapped onto a sequence over
//! the character classes `Σ = { \p{Lu}, \p{Ll}, \p{N}, \p{P} }` (uppercase,
//! lowercase, numeric, punctuation); names sharing a Σ-sequence *shape* are
//! grouped, and groups with 5 or more members are kept as candidate campaign
//! clusters.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Minimum group size the paper keeps as a campaign-candidate cluster.
pub const MIN_GROUP_SIZE: usize = 5;

/// One of the paper's four character classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CharClass {
    /// `\p{Lu}` — uppercase letter.
    Upper,
    /// `\p{Ll}` — lowercase letter.
    Lower,
    /// `\p{N}` — numeric.
    Numeric,
    /// `\p{P}` — punctuation / everything else printable.
    Punct,
}

impl CharClass {
    /// Classifies one character.
    pub fn of(c: char) -> Self {
        if c.is_uppercase() {
            CharClass::Upper
        } else if c.is_lowercase() {
            CharClass::Lower
        } else if c.is_numeric() {
            CharClass::Numeric
        } else {
            CharClass::Punct
        }
    }

    /// One-letter mnemonic used in the compact pattern rendering.
    pub fn symbol(self) -> char {
        match self {
            CharClass::Upper => 'U',
            CharClass::Lower => 'l',
            CharClass::Numeric => 'N',
            CharClass::Punct => 'P',
        }
    }
}

/// A run-length-compressed Σ-sequence: e.g. `Mykhaylo_bowning` →
/// `U¹ l⁷ P¹ l⁷`, rendered compactly as `"U1 l7 P1 l7"`.
///
/// Run lengths are kept (rather than just the class order) because campaign
/// generators pad fields to fixed widths; two names from the same generator
/// therefore share both the class order *and* the run lengths, while organic
/// names rarely collide on both.
///
/// # Example
///
/// ```
/// use ph_sketch::NamePattern;
///
/// let a = NamePattern::of("crypto_deal42");
/// let b = NamePattern::of("credit_loan97");
/// assert_eq!(a, b); // same generator shape
/// assert_ne!(a, NamePattern::of("JaneDoe"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NamePattern {
    runs: Vec<(CharClass, u32)>,
}

impl NamePattern {
    /// Computes the pattern of a screen name.
    pub fn of(name: &str) -> Self {
        let mut runs: Vec<(CharClass, u32)> = Vec::new();
        for c in name.chars() {
            let class = CharClass::of(c);
            match runs.last_mut() {
                Some((last, count)) if *last == class => *count += 1,
                _ => runs.push((class, 1)),
            }
        }
        Self { runs }
    }

    /// The run-length-encoded class sequence.
    pub fn runs(&self) -> &[(CharClass, u32)] {
        &self.runs
    }

    /// True for the pattern of the empty string.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Total character count covered by the pattern.
    pub fn len(&self) -> u32 {
        self.runs.iter().map(|&(_, n)| n).sum()
    }
}

impl fmt::Display for NamePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for &(class, count) in &self.runs {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{}{}", class.symbol(), count)?;
            first = false;
        }
        Ok(())
    }
}

/// Groups items by the Σ-sequence of their screen names and keeps groups with
/// at least [`MIN_GROUP_SIZE`] members, per the paper's rule.
///
/// Returns `(pattern, member indices)` pairs, largest group first.
///
/// # Example
///
/// ```
/// use ph_sketch::namepattern::group_by_pattern;
///
/// let names = ["alpha_bot01", "bravo_bot02", "gamma_bot03", "delta_bot04",
///              "omega_bot05", "JustAHuman"];
/// let groups = group_by_pattern(names.iter().map(|s| *s));
/// assert_eq!(groups.len(), 1);
/// assert_eq!(groups[0].1.len(), 5);
/// ```
pub fn group_by_pattern<'a, I>(names: I) -> Vec<(NamePattern, Vec<usize>)>
where
    I: IntoIterator<Item = &'a str>,
{
    group_by_pattern_with_min(names, MIN_GROUP_SIZE)
}

/// Like [`group_by_pattern`] with an explicit minimum group size.
pub fn group_by_pattern_with_min<'a, I>(names: I, min_size: usize) -> Vec<(NamePattern, Vec<usize>)>
where
    I: IntoIterator<Item = &'a str>,
{
    let mut map: HashMap<NamePattern, Vec<usize>> = HashMap::new();
    for (idx, name) in names.into_iter().enumerate() {
        map.entry(NamePattern::of(name)).or_default().push(idx);
    }
    let mut groups: Vec<(NamePattern, Vec<usize>)> = map
        .into_iter()
        .filter(|(_, members)| members.len() >= min_size)
        .collect();
    groups.sort_by(|a, b| b.1.len().cmp(&a.1.len()).then_with(|| a.0.cmp_key(&b.0)));
    groups
}

impl NamePattern {
    /// Deterministic ordering key used for stable sorting of groups.
    fn cmp_key(&self, other: &Self) -> std::cmp::Ordering {
        self.runs.cmp(&other.runs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_characters() {
        assert_eq!(CharClass::of('A'), CharClass::Upper);
        assert_eq!(CharClass::of('z'), CharClass::Lower);
        assert_eq!(CharClass::of('7'), CharClass::Numeric);
        assert_eq!(CharClass::of('_'), CharClass::Punct);
        assert_eq!(CharClass::of('!'), CharClass::Punct);
    }

    #[test]
    fn pattern_run_length_encodes() {
        let p = NamePattern::of("Mykhaylo_bowning");
        assert_eq!(p.to_string(), "U1 l7 P1 l7");
        assert_eq!(p.len(), 16);
    }

    #[test]
    fn empty_name_has_empty_pattern() {
        let p = NamePattern::of("");
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        assert_eq!(p.to_string(), "");
    }

    #[test]
    fn same_generator_shape_collides() {
        assert_eq!(NamePattern::of("user_0001"), NamePattern::of("spam_9999"));
    }

    #[test]
    fn different_lengths_do_not_collide() {
        assert_ne!(NamePattern::of("ab12"), NamePattern::of("abc12"));
    }

    #[test]
    fn grouping_respects_min_size() {
        let names = ["aa1", "bb2", "cc3", "dd4", "XY"];
        assert!(group_by_pattern(names.iter().copied()).is_empty());
        let groups = group_by_pattern_with_min(names.iter().copied(), 4);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].1, vec![0, 1, 2, 3]);
    }

    #[test]
    fn groups_sorted_by_size_descending() {
        let names = [
            "aaa1", "bbb2", "ccc3", // pattern l3 N1 ×3
            "A1", "B2", "C3", "D4", // pattern U1 N1 ×4
        ];
        let groups = group_by_pattern_with_min(names.iter().copied(), 2);
        assert_eq!(groups.len(), 2);
        assert!(groups[0].1.len() >= groups[1].1.len());
        assert_eq!(groups[0].1.len(), 4);
    }
}
