//! Similarity-sketch substrate for the pseudo-honeypot reproduction.
//!
//! The ground-truth labeling pipeline of *Pseudo-Honeypot: Toward Efficient
//! and Scalable Spam Sniffer* (DSN 2019) clusters user accounts and tweets by
//! four kinds of similarity (paper §IV-B):
//!
//! 1. **Profile images** — the dHash (difference hash) perceptual hash with a
//!    Hamming-distance threshold of 5 ([`dhash`]).
//! 2. **Screen names** — Σ-sequence character-class patterns over
//!    `{ \p{Lu}, \p{Ll}, \p{N}, \p{P} }` ([`namepattern`]).
//! 3. **User descriptions** — MinHash over tri-gram shinglings after text
//!    normalization ([`minhash`], [`shingle`]).
//! 4. **Tweet contents** — near-duplicate detection in a 1-day window
//!    (built on the same MinHash machinery).
//!
//! This crate implements all of that machinery from scratch, plus the
//! [`unionfind`] structure used to merge pairwise similarities into clusters.
//!
//! # Example
//!
//! ```
//! use ph_sketch::dhash::DHash128;
//! use ph_sketch::image::GrayImage;
//!
//! // Two images from the same campaign template differ only by noise…
//! let a = GrayImage::from_fn(48, 48, |x, y| ((x * 5 + y * 3) % 251) as u8);
//! let b = GrayImage::from_fn(48, 48, |x, y| ((x * 5 + y * 3) % 251) as u8 ^ 1);
//! let (ha, hb) = (DHash128::of(&a), DHash128::of(&b));
//! // …so their perceptual hashes are near-identical.
//! assert!(ha.hamming_distance(hb) <= 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dhash;
pub mod image;
pub mod lsh;
pub mod minhash;
pub mod namepattern;
pub mod shingle;
pub mod simhash;
pub mod unionfind;

pub use dhash::DHash128;
pub use image::GrayImage;
pub use minhash::{MinHashSignature, MinHasher};
pub use namepattern::NamePattern;
pub use simhash::SimHash64;
pub use unionfind::UnionFind;
