//! A minimal owned grayscale raster image.
//!
//! Profile images in the simulator are synthetic grayscale rasters; the only
//! consumer is the [dHash](crate::dhash) perceptual hash, which needs pixel
//! access and an area-averaging downscale. Keeping the type tiny (no external
//! image crate) is deliberate: the paper's pipeline only ever reduces images
//! to 9×9 grayscale before hashing.

use serde::{Deserialize, Serialize};

/// An owned 8-bit grayscale image in row-major order.
///
/// # Example
///
/// ```
/// use ph_sketch::image::GrayImage;
///
/// let img = GrayImage::from_fn(4, 2, |x, y| (x + 4 * y) as u8);
/// assert_eq!(img.get(3, 1), 7);
/// assert_eq!(img.dimensions(), (4, 2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GrayImage {
    width: u32,
    height: u32,
    pixels: Vec<u8>,
}

impl GrayImage {
    /// Creates an all-black image of the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be non-zero");
        Self {
            width,
            height,
            pixels: vec![0; (width as usize) * (height as usize)],
        }
    }

    /// Creates an image by evaluating `f(x, y)` for every pixel.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn from_fn<F: FnMut(u32, u32) -> u8>(width: u32, height: u32, mut f: F) -> Self {
        let mut img = Self::new(width, height);
        for y in 0..height {
            for x in 0..width {
                img.set(x, y, f(x, y));
            }
        }
        img
    }

    /// Creates an image from raw row-major pixels.
    ///
    /// # Errors
    ///
    /// Returns `None` if `pixels.len() != width * height` or a dimension is
    /// zero.
    pub fn from_raw(width: u32, height: u32, pixels: Vec<u8>) -> Option<Self> {
        if width == 0 || height == 0 || pixels.len() != (width as usize) * (height as usize) {
            return None;
        }
        Some(Self {
            width,
            height,
            pixels,
        })
    }

    /// Image width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// `(width, height)` pair.
    pub fn dimensions(&self) -> (u32, u32) {
        (self.width, self.height)
    }

    /// Returns the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if `(x, y)` is out of bounds.
    pub fn get(&self, x: u32, y: u32) -> u8 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.pixels[(y as usize) * (self.width as usize) + x as usize]
    }

    /// Sets the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if `(x, y)` is out of bounds.
    pub fn set(&mut self, x: u32, y: u32, value: u8) {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.pixels[(y as usize) * (self.width as usize) + x as usize] = value;
    }

    /// Raw row-major pixel slice.
    pub fn as_raw(&self) -> &[u8] {
        &self.pixels
    }

    /// Downscales to `(new_w, new_h)` by averaging each source box that maps
    /// onto a destination pixel (area averaging).
    ///
    /// This is the "reduce the original image into a constant size by removing
    /// high frequencies and detailed information" step of the paper's dHash
    /// description; area averaging is the standard low-pass reduction.
    ///
    /// # Panics
    ///
    /// Panics if either target dimension is zero.
    pub fn resize(&self, new_w: u32, new_h: u32) -> GrayImage {
        assert!(new_w > 0 && new_h > 0, "target dimensions must be non-zero");
        let mut out = GrayImage::new(new_w, new_h);
        for oy in 0..new_h {
            // Source row span [y0, y1) covered by destination row `oy`.
            let y0 = (oy as u64 * self.height as u64) / new_h as u64;
            let mut y1 = ((oy as u64 + 1) * self.height as u64).div_ceil(new_h as u64);
            if y1 <= y0 {
                y1 = y0 + 1;
            }
            for ox in 0..new_w {
                let x0 = (ox as u64 * self.width as u64) / new_w as u64;
                let mut x1 = ((ox as u64 + 1) * self.width as u64).div_ceil(new_w as u64);
                if x1 <= x0 {
                    x1 = x0 + 1;
                }
                let mut sum: u64 = 0;
                for sy in y0..y1 {
                    for sx in x0..x1 {
                        sum += u64::from(self.get(sx as u32, sy as u32));
                    }
                }
                let count = (y1 - y0) * (x1 - x0);
                out.set(ox, oy, (sum / count) as u8);
            }
        }
        out
    }

    /// Mean pixel intensity, useful as a cheap brightness statistic.
    pub fn mean(&self) -> f64 {
        let sum: u64 = self.pixels.iter().map(|&p| u64::from(p)).sum();
        sum as f64 / self.pixels.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_fills_pixels() {
        let img = GrayImage::from_fn(3, 2, |x, y| (10 * y + x) as u8);
        assert_eq!(img.get(0, 0), 0);
        assert_eq!(img.get(2, 0), 2);
        assert_eq!(img.get(0, 1), 10);
        assert_eq!(img.get(2, 1), 12);
    }

    #[test]
    fn from_raw_validates_length() {
        assert!(GrayImage::from_raw(2, 2, vec![0; 4]).is_some());
        assert!(GrayImage::from_raw(2, 2, vec![0; 3]).is_none());
        assert!(GrayImage::from_raw(0, 2, vec![]).is_none());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let img = GrayImage::new(2, 2);
        let _ = img.get(2, 0);
    }

    #[test]
    fn resize_identity_is_noop() {
        let img = GrayImage::from_fn(5, 5, |x, y| (x * y) as u8);
        assert_eq!(img.resize(5, 5), img);
    }

    #[test]
    fn resize_constant_image_stays_constant() {
        let img = GrayImage::from_fn(32, 32, |_, _| 77);
        let small = img.resize(9, 9);
        assert!(small.as_raw().iter().all(|&p| p == 77));
    }

    #[test]
    fn resize_averages_blocks() {
        // 2x2 image of [0, 100; 200, 100] → 1x1 = mean 100.
        let img = GrayImage::from_raw(2, 2, vec![0, 100, 200, 100]).unwrap();
        let one = img.resize(1, 1);
        assert_eq!(one.get(0, 0), 100);
    }

    #[test]
    fn resize_upscale_replicates() {
        let img = GrayImage::from_raw(1, 1, vec![42]).unwrap();
        let big = img.resize(3, 3);
        assert!(big.as_raw().iter().all(|&p| p == 42));
    }

    #[test]
    fn mean_matches_manual_average() {
        let img = GrayImage::from_raw(2, 2, vec![0, 10, 20, 30]).unwrap();
        assert!((img.mean() - 15.0).abs() < 1e-12);
    }
}
