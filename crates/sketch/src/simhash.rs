//! SimHash — the alternative near-duplicate sketch.
//!
//! The paper justifies MinHash for description clustering by citing
//! Shrivastava & Li, *In defense of MinHash over SimHash* (AISTATS 2014).
//! Implementing SimHash alongside MinHash lets the repository reproduce
//! that design decision empirically (see the `ablation_sketch` bench):
//! SimHash packs a weighted feature set into one 64-bit fingerprint whose
//! Hamming distance tracks cosine similarity.

use serde::{Deserialize, Serialize};

use crate::shingle::trigram_shingles;

/// A 64-bit SimHash fingerprint.
///
/// # Example
///
/// ```
/// use ph_sketch::simhash::SimHash64;
///
/// let a = SimHash64::of_text("cheap followers instant delivery today");
/// let b = SimHash64::of_text("cheap followers instant delivery tonight");
/// let c = SimHash64::of_text("completely unrelated gardening notes");
/// assert!(a.hamming_distance(b) < a.hamming_distance(c));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SimHash64(u64);

impl SimHash64 {
    /// Fingerprints an iterator of (already tokenized) features.
    ///
    /// An empty input yields the zero fingerprint.
    pub fn of_features<I, S>(features: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut tally = [0i32; 64];
        for feature in features {
            let h = fnv1a(feature.as_ref().as_bytes());
            for (bit, slot) in tally.iter_mut().enumerate() {
                if (h >> bit) & 1 == 1 {
                    *slot += 1;
                } else {
                    *slot -= 1;
                }
            }
        }
        let mut bits = 0u64;
        for (bit, &count) in tally.iter().enumerate() {
            if count > 0 {
                bits |= 1 << bit;
            }
        }
        SimHash64(bits)
    }

    /// Fingerprints raw text through tri-gram shingling.
    pub fn of_text(text: &str) -> Self {
        Self::of_features(trigram_shingles(text))
    }

    /// The raw fingerprint bits.
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Number of differing bits.
    pub fn hamming_distance(self, other: Self) -> u32 {
        (self.0 ^ other.0).count_ones()
    }

    /// Estimated cosine similarity: `cos(π · d / 64)` clamped at 0.
    pub fn estimate_cosine(self, other: Self) -> f64 {
        let d = f64::from(self.hamming_distance(other));
        (std::f64::consts::PI * d / 64.0).cos().max(0.0)
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_texts_have_zero_distance() {
        let a = SimHash64::of_text("win a free cruise today");
        let b = SimHash64::of_text("win a free cruise today");
        assert_eq!(a, b);
        assert_eq!(a.hamming_distance(b), 0);
        assert!((a.estimate_cosine(b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn near_duplicates_are_closer_than_strangers() {
        let a = SimHash64::of_text("official promo network best promo offers daily updates");
        let b = SimHash64::of_text("official promo network best promo offers daily update");
        let c = SimHash64::of_text("my cat discovered the garden hose this morning");
        assert!(a.hamming_distance(b) < a.hamming_distance(c));
    }

    #[test]
    fn empty_text_is_zero() {
        assert_eq!(SimHash64::of_text("").bits(), 0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = SimHash64::of_text("alpha beta gamma");
        let b = SimHash64::of_text("delta epsilon zeta");
        assert_eq!(a.hamming_distance(b), b.hamming_distance(a));
    }

    #[test]
    fn cosine_estimate_bounds() {
        let a = SimHash64::of_text("one two three four");
        let b = SimHash64::of_text("five six seven eight");
        let cos = a.estimate_cosine(b);
        assert!((0.0..=1.0).contains(&cos));
    }
}
