//! Difference-hash (dHash) perceptual image hashing.
//!
//! The paper (§IV-B, "Clustering Based Method") hashes profile images as
//! follows:
//!
//! 1. Reduce the image to a constant 9×9 grayscale raster, removing high
//!    frequencies and detail.
//! 2. Compare adjacent pixels horizontally *and* vertically: emit 1 when a
//!    pixel is greater than its neighbour, 0 otherwise. Each direction yields
//!    8×8 = 64 bits; concatenated they form a 128-bit hash.
//! 3. Compare two hashes by Hamming distance; images within distance 5 fall
//!    into the same cluster.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::image::GrayImage;

/// Side length of the reduced image used for hashing.
pub const REDUCED_SIDE: u32 = 9;

/// Hamming-distance threshold below which two images are considered
/// near-duplicates (the paper uses 5).
pub const DEFAULT_THRESHOLD: u32 = 5;

/// A 128-bit dHash: 64 horizontal-gradient bits concatenated with 64
/// vertical-gradient bits.
///
/// # Example
///
/// ```
/// use ph_sketch::{DHash128, GrayImage};
///
/// let img = GrayImage::from_fn(36, 36, |x, y| ((3 * x + 7 * y) % 256) as u8);
/// let h = DHash128::of(&img);
/// assert_eq!(h.hamming_distance(h), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DHash128 {
    horizontal: u64,
    vertical: u64,
}

impl DHash128 {
    /// Computes the dHash of an image.
    pub fn of(image: &GrayImage) -> Self {
        let reduced = if image.dimensions() == (REDUCED_SIDE, REDUCED_SIDE) {
            image.clone()
        } else {
            image.resize(REDUCED_SIDE, REDUCED_SIDE)
        };
        let mut horizontal: u64 = 0;
        let mut vertical: u64 = 0;
        let mut bit = 0u32;
        for y in 0..REDUCED_SIDE - 1 {
            for x in 0..REDUCED_SIDE - 1 {
                if reduced.get(x, y) > reduced.get(x + 1, y) {
                    horizontal |= 1 << bit;
                }
                if reduced.get(x, y) > reduced.get(x, y + 1) {
                    vertical |= 1 << bit;
                }
                bit += 1;
            }
        }
        Self {
            horizontal,
            vertical,
        }
    }

    /// Builds a hash from its two 64-bit halves.
    pub fn from_parts(horizontal: u64, vertical: u64) -> Self {
        Self {
            horizontal,
            vertical,
        }
    }

    /// The horizontal-gradient half.
    pub fn horizontal_bits(self) -> u64 {
        self.horizontal
    }

    /// The vertical-gradient half.
    pub fn vertical_bits(self) -> u64 {
        self.vertical
    }

    /// Number of differing bits between the two hashes
    /// (`d(h1, h2) = Σ XOR(h1, h2)` in the paper).
    pub fn hamming_distance(self, other: Self) -> u32 {
        (self.horizontal ^ other.horizontal).count_ones()
            + (self.vertical ^ other.vertical).count_ones()
    }

    /// Whether two hashes fall within the paper's near-duplicate threshold.
    pub fn is_near_duplicate(self, other: Self) -> bool {
        self.hamming_distance(other) < DEFAULT_THRESHOLD
    }
}

impl fmt::Display for DHash128 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.horizontal, self.vertical)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient_image(shift: u32) -> GrayImage {
        GrayImage::from_fn(45, 45, move |x, y| ((x * 4 + y * 2 + shift) % 256) as u8)
    }

    #[test]
    fn identical_images_have_distance_zero() {
        let a = DHash128::of(&gradient_image(0));
        let b = DHash128::of(&gradient_image(0));
        assert_eq!(a, b);
        assert_eq!(a.hamming_distance(b), 0);
    }

    #[test]
    fn noisy_copy_is_near_duplicate() {
        let base = gradient_image(0);
        // Flip a few pixels slightly — perceptual hash should barely move.
        let mut noisy = base.clone();
        for i in 0..8 {
            let x = (i * 5) % 45;
            let y = (i * 7) % 45;
            let v = noisy.get(x, y);
            noisy.set(x, y, v.saturating_add(2));
        }
        let (ha, hb) = (DHash128::of(&base), DHash128::of(&noisy));
        assert!(
            ha.hamming_distance(hb) < DEFAULT_THRESHOLD,
            "distance {} too large",
            ha.hamming_distance(hb)
        );
    }

    #[test]
    fn unrelated_images_are_far() {
        let a = DHash128::of(&GrayImage::from_fn(45, 45, |x, y| {
            (x.wrapping_mul(97) ^ y.wrapping_mul(31)) as u8
        }));
        let b = DHash128::of(&GrayImage::from_fn(45, 45, |x, y| {
            (x.wrapping_mul(13) ^ y.wrapping_mul(151)).wrapping_add(91) as u8
        }));
        assert!(a.hamming_distance(b) > DEFAULT_THRESHOLD);
    }

    #[test]
    fn distance_is_symmetric_and_triangle() {
        let h1 = DHash128::from_parts(0xdead_beef, 0x1234);
        let h2 = DHash128::from_parts(0xbeef_dead, 0x4321);
        let h3 = DHash128::from_parts(0, 0);
        assert_eq!(h1.hamming_distance(h2), h2.hamming_distance(h1));
        assert!(h1.hamming_distance(h3) <= h1.hamming_distance(h2) + h2.hamming_distance(h3));
    }

    #[test]
    fn display_is_32_hex_chars() {
        let h = DHash128::from_parts(1, 2);
        assert_eq!(h.to_string().len(), 32);
        assert_eq!(h.to_string(), "00000000000000010000000000000002");
    }

    #[test]
    fn hash_of_flat_image_is_zero() {
        let img = GrayImage::from_fn(20, 20, |_, _| 128);
        let h = DHash128::of(&img);
        assert_eq!(h.horizontal_bits(), 0);
        assert_eq!(h.vertical_bits(), 0);
    }

    #[test]
    fn already_reduced_image_is_hashed_directly() {
        let img = GrayImage::from_fn(REDUCED_SIDE, REDUCED_SIDE, |x, y| (x * 9 + y) as u8);
        // Must not panic and must be deterministic.
        assert_eq!(DHash128::of(&img), DHash128::of(&img));
    }
}
