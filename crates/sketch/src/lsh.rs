//! Banded locality-sensitive hashing over fixed-width signatures.
//!
//! Both clustering passes that need all-pairs similarity (profile-image
//! dHash, description MinHash) avoid the O(n²) scan by banding: split each
//! signature into bands, bucket items by exact band value, and only verify
//! candidate pairs sharing a bucket. For Hamming-bounded matching the
//! banding is *recall-lossless* by pigeonhole: `d` differing bits over `b`
//! bands leave at least `b − d` bands identical.

use std::collections::HashMap;

/// Generic band-bucket index: items are inserted band by band; candidate
/// pairs are items sharing any `(band, key)` bucket.
///
/// # Example
///
/// ```
/// use ph_sketch::lsh::BandIndex;
///
/// let mut index = BandIndex::new();
/// // Two items agreeing on band 1, a third agreeing with nobody.
/// index.insert(0, [(0, 11), (1, 42)]);
/// index.insert(1, [(0, 99), (1, 42)]);
/// index.insert(2, [(0, 7), (1, 8)]);
/// let pairs = index.candidate_pairs();
/// assert_eq!(pairs, vec![(0, 1)]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BandIndex {
    buckets: HashMap<(u32, u64), Vec<usize>>,
}

impl BandIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts one item under its `(band, key)` pairs.
    pub fn insert<I>(&mut self, item: usize, bands: I)
    where
        I: IntoIterator<Item = (u32, u64)>,
    {
        for (band, key) in bands {
            self.buckets.entry((band, key)).or_default().push(item);
        }
    }

    /// All distinct candidate pairs `(i, j)` with `i < j`, sorted.
    pub fn candidate_pairs(&self) -> Vec<(usize, usize)> {
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for bucket in self.buckets.values() {
            for (k, &i) in bucket.iter().enumerate() {
                for &j in &bucket[k + 1..] {
                    pairs.push(if i < j { (i, j) } else { (j, i) });
                }
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        pairs
    }

    /// Number of non-empty buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }
}

/// Splits a 128-bit value into `bands` equal chunks (up to 16-bit each for
/// 8 bands), yielding `(band, key)` pairs for [`BandIndex`].
///
/// With 8 bands, any pair within Hamming distance < 5 shares at least 4
/// exact bands — banding loses no true matches at the paper's threshold.
///
/// # Panics
///
/// Panics unless `bands` divides 128 and is in `1..=64`.
pub fn bands_of_u128(bits: u128, bands: u32) -> Vec<(u32, u64)> {
    assert!(
        (1..=64).contains(&bands) && 128 % bands == 0,
        "bands must divide 128"
    );
    let width = 128 / bands;
    (0..bands)
        .map(|band| {
            let chunk = (bits >> (width * band)) & ((1u128 << width) - 1);
            (band, chunk as u64)
        })
        .collect()
}

/// Bands a MinHash signature: `rows_per_band` consecutive minima are mixed
/// into one 64-bit band key.
///
/// # Panics
///
/// Panics if `rows_per_band == 0`.
pub fn bands_of_signature(mins: &[u64], rows_per_band: usize) -> Vec<(u32, u64)> {
    assert!(rows_per_band > 0, "rows_per_band must be positive");
    mins.chunks(rows_per_band)
        .enumerate()
        .map(|(band, chunk)| {
            let key = chunk.iter().fold(0u64, |acc, &m| acc.rotate_left(13) ^ m);
            (band as u32, key)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dhash::DHash128;
    use crate::minhash::MinHasher;

    #[test]
    fn candidate_pairs_deduplicate_across_bands() {
        let mut index = BandIndex::new();
        // Items 0 and 1 share two bands; the pair must appear once.
        index.insert(0, [(0, 5), (1, 9)]);
        index.insert(1, [(0, 5), (1, 9)]);
        assert_eq!(index.candidate_pairs(), vec![(0, 1)]);
    }

    #[test]
    fn pigeonhole_guarantee_for_dhash_threshold() {
        // Construct two 128-bit values 4 bits apart: banding with 8 bands
        // must produce them as a candidate pair.
        let a: u128 = 0xdead_beef_dead_beef_dead_beef_dead_beef;
        let b = a ^ 0b1111; // 4 differing bits, all in band 0
        let mut index = BandIndex::new();
        index.insert(0, bands_of_u128(a, 8));
        index.insert(1, bands_of_u128(b, 8));
        assert_eq!(index.candidate_pairs(), vec![(0, 1)]);
        let ha = DHash128::from_parts((a >> 64) as u64, a as u64);
        let hb = DHash128::from_parts((b >> 64) as u64, b as u64);
        assert!(ha.hamming_distance(hb) < 5);
    }

    #[test]
    fn distant_values_share_no_bands_usually() {
        let a: u128 = 0;
        let b: u128 = !0;
        let mut index = BandIndex::new();
        index.insert(0, bands_of_u128(a, 8));
        index.insert(1, bands_of_u128(b, 8));
        assert!(index.candidate_pairs().is_empty());
    }

    #[test]
    fn signature_banding_matches_identical_signatures() {
        let hasher = MinHasher::new(16, 3);
        let s1 = hasher.signature_of_text("identical text body");
        let s2 = hasher.signature_of_text("identical text body");
        let mut index = BandIndex::new();
        index.insert(0, bands_of_signature(s1.as_slice(), 4));
        index.insert(1, bands_of_signature(s2.as_slice(), 4));
        assert_eq!(index.candidate_pairs(), vec![(0, 1)]);
    }

    #[test]
    #[should_panic(expected = "divide 128")]
    fn bad_band_count_panics() {
        let _ = bands_of_u128(0, 7);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rows_per_band_panics() {
        let _ = bands_of_signature(&[1, 2], 0);
    }

    #[test]
    fn bucket_count_reports_nonempty_buckets() {
        let mut index = BandIndex::new();
        index.insert(0, [(0, 1), (1, 2)]);
        assert_eq!(index.bucket_count(), 2);
    }
}
