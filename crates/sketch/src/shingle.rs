//! Text normalization and shingling for near-duplicate detection.
//!
//! Before MinHash-ing user descriptions, the paper removes URLs, emoji, stop
//! words and special characters, then builds tri-gram shinglings (§IV-B).

use std::collections::BTreeSet;

/// Common English stop words removed during normalization.
///
/// A compact list is sufficient here: the goal is canonicalizing templated
/// campaign descriptions, not full IR-grade stemming.
pub const STOP_WORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "but", "by", "for", "if", "in", "into", "is", "it",
    "no", "not", "of", "on", "or", "our", "so", "such", "that", "the", "their", "then", "there",
    "these", "they", "this", "to", "was", "we", "will", "with", "you", "your",
];

/// Normalizes free-form profile/tweet text for shingling.
///
/// Removes URLs (`http://`, `https://`, `www.` tokens), non-ASCII symbols
/// (which covers emoji), punctuation, and stop words; lower-cases the rest
/// and collapses whitespace.
///
/// # Example
///
/// ```
/// use ph_sketch::shingle::normalize;
///
/// let n = normalize("Check THIS out!! 🚀 https://spam.example/x the best deal");
/// assert_eq!(n, "check out best deal");
/// ```
pub fn normalize(text: &str) -> String {
    let mut words: Vec<String> = Vec::new();
    for raw in text.split_whitespace() {
        let lower = raw.to_lowercase();
        if lower.starts_with("http://")
            || lower.starts_with("https://")
            || lower.starts_with("www.")
        {
            continue;
        }
        let cleaned: String = lower
            .chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .collect();
        if cleaned.is_empty() || STOP_WORDS.contains(&cleaned.as_str()) {
            continue;
        }
        words.push(cleaned);
    }
    words.join(" ")
}

/// Produces the set of character tri-gram shingles of `text`.
///
/// Texts shorter than the shingle length yield a single shingle containing
/// the whole text (so that short descriptions still compare equal to
/// themselves).
///
/// # Example
///
/// ```
/// use ph_sketch::shingle::trigram_shingles;
///
/// let s = trigram_shingles("abcd");
/// assert!(s.contains("abc") && s.contains("bcd"));
/// assert_eq!(s.len(), 2);
/// ```
pub fn trigram_shingles(text: &str) -> BTreeSet<String> {
    shingles(text, 3)
}

/// Produces the set of character `k`-gram shingles of `text`.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn shingles(text: &str, k: usize) -> BTreeSet<String> {
    assert!(k > 0, "shingle length must be positive");
    let chars: Vec<char> = text.chars().collect();
    let mut out = BTreeSet::new();
    if chars.is_empty() {
        return out;
    }
    if chars.len() <= k {
        out.insert(chars.iter().collect());
        return out;
    }
    for window in chars.windows(k) {
        out.insert(window.iter().collect());
    }
    out
}

/// Exact Jaccard similarity of two shingle sets.
///
/// Returns 1.0 for two empty sets (identical-by-vacuity), matching the
/// convention used by the MinHash estimator.
pub fn jaccard(a: &BTreeSet<String>, b: &BTreeSet<String>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let intersection = a.intersection(b).count();
    let union = a.len() + b.len() - intersection;
    if union == 0 {
        1.0
    } else {
        intersection as f64 / union as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_strips_urls_and_emoji() {
        assert_eq!(
            normalize("WIN money 💰 now!!! at http://bad.example/click"),
            "win money now"
        );
    }

    #[test]
    fn normalize_strips_www_links() {
        assert_eq!(normalize("go www.spam.biz today"), "go today");
    }

    #[test]
    fn normalize_removes_stop_words() {
        assert_eq!(normalize("the cat and the hat"), "cat hat");
    }

    #[test]
    fn normalize_empty_and_symbol_only() {
        assert_eq!(normalize(""), "");
        assert_eq!(normalize("!!! ??? 🤖"), "");
    }

    #[test]
    fn shingles_of_short_text_is_whole_text() {
        let s = shingles("ab", 3);
        assert_eq!(s.len(), 1);
        assert!(s.contains("ab"));
    }

    #[test]
    fn shingles_count_matches_window_count() {
        let s = shingles("hello world", 3);
        // 11 chars → 9 windows, minus duplicates (none here).
        assert_eq!(s.len(), 9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_length_shingle_panics() {
        let _ = shingles("abc", 0);
    }

    #[test]
    fn jaccard_bounds_and_identity() {
        let a = trigram_shingles("free money fast");
        let b = trigram_shingles("free money fast");
        let c = trigram_shingles("completely different words");
        assert!((jaccard(&a, &b) - 1.0).abs() < 1e-12);
        let d = jaccard(&a, &c);
        assert!((0.0..1.0).contains(&d));
    }

    #[test]
    fn jaccard_empty_sets_are_identical() {
        let e = BTreeSet::new();
        assert_eq!(jaccard(&e, &e), 1.0);
    }
}
