//! Disjoint-set (union-find) used to merge pairwise similarities into
//! clusters.
//!
//! Every clustering pass of the labeling pipeline (image hashes, name
//! patterns, description signatures, near-duplicate tweets) produces pairwise
//! "same group" relations; this structure merges them into connected
//! components with path compression and union by rank.

use serde::{Deserialize, Serialize};

/// A disjoint-set forest over `0..len` with union by rank and path
/// compression.
///
/// # Example
///
/// ```
/// use ph_sketch::UnionFind;
///
/// let mut uf = UnionFind::new(5);
/// uf.union(0, 1);
/// uf.union(3, 4);
/// assert!(uf.connected(0, 1));
/// assert!(!uf.connected(1, 3));
/// assert_eq!(uf.component_count(), 3); // {0,1} {2} {3,4}
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// Creates `len` singleton sets.
    pub fn new(len: usize) -> Self {
        Self {
            parent: (0..len).collect(),
            rank: vec![0; len],
            components: len,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when the structure holds no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint components.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Representative of `x`'s component.
    ///
    /// # Panics
    ///
    /// Panics if `x >= len`.
    pub fn find(&mut self, x: usize) -> usize {
        assert!(x < self.parent.len(), "element out of range");
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the components of `a` and `b`. Returns `true` when they were
    /// previously disjoint.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.components -= 1;
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// Whether `a` and `b` share a component.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Representative of `x`'s component without path compression — the
    /// read-only twin of [`find`](Self::find), usable on a shared
    /// reference (e.g. while folding another structure in).
    ///
    /// # Panics
    ///
    /// Panics if `x >= len`.
    pub fn root(&self, x: usize) -> usize {
        assert!(x < self.parent.len(), "element out of range");
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        root
    }

    /// Merges every equivalence recorded in `other` into `self`: after the
    /// call, any two elements connected in *either* structure are connected
    /// in `self`. Both structures must cover the same universe.
    ///
    /// This is the deterministic fold step of the parallel cluster merge:
    /// shard workers build local union-finds over disjoint slices of the
    /// candidate-pair stream, and the caller absorbs them in shard order.
    /// Components depend only on the *set* of equivalences, so the result
    /// equals feeding all pairs through one sequential structure, whatever
    /// the partitioning.
    ///
    /// # Panics
    ///
    /// Panics if the two structures differ in length.
    pub fn absorb(&mut self, other: &UnionFind) {
        assert_eq!(
            self.len(),
            other.len(),
            "cannot absorb a union-find over a different universe"
        );
        for x in 0..other.len() {
            let r = other.root(x);
            if r != x {
                self.union(x, r);
            }
        }
    }

    /// Materializes all components as member lists (each sorted ascending),
    /// ordered by their smallest member. Singletons are included.
    pub fn components(&mut self) -> Vec<Vec<usize>> {
        use std::collections::BTreeMap;
        let mut map: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for x in 0..self.len() {
            let root = self.find(x);
            map.entry(root).or_default().push(x);
        }
        let mut out: Vec<Vec<usize>> = map.into_values().collect();
        out.sort_by_key(|members| members[0]);
        out
    }

    /// Like [`components`](Self::components) but drops groups smaller than
    /// `min_size`.
    pub fn components_with_min_size(&mut self, min_size: usize) -> Vec<Vec<usize>> {
        self.components()
            .into_iter()
            .filter(|c| c.len() >= min_size)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_at_start() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.component_count(), 4);
        for i in 0..4 {
            assert_eq!(uf.find(i), i);
        }
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(6);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already merged");
        assert_eq!(uf.component_count(), 4);
        assert!(uf.connected(0, 2));
    }

    #[test]
    fn transitive_chains() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.component_count(), 1);
        assert!(uf.connected(0, 99));
    }

    #[test]
    fn components_materialize_sorted() {
        let mut uf = UnionFind::new(5);
        uf.union(4, 2);
        uf.union(1, 3);
        let comps = uf.components();
        assert_eq!(comps, vec![vec![0], vec![1, 3], vec![2, 4]]);
    }

    #[test]
    fn min_size_filter() {
        let mut uf = UnionFind::new(5);
        uf.union(0, 1);
        uf.union(1, 2);
        let comps = uf.components_with_min_size(3);
        assert_eq!(comps, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn empty_structure() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.component_count(), 0);
        assert!(uf.components().is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn find_out_of_range_panics() {
        let mut uf = UnionFind::new(2);
        let _ = uf.find(2);
    }

    #[test]
    fn root_agrees_with_find_without_mutation() {
        let mut uf = UnionFind::new(8);
        uf.union(0, 3);
        uf.union(3, 5);
        uf.union(6, 7);
        let before = uf.clone();
        for x in 0..8 {
            assert_eq!(uf.root(x), before.clone().find(x));
        }
        assert_eq!(uf, before, "root() must not compress paths");
    }

    #[test]
    fn absorb_unions_other_structures_equivalences() {
        let mut a = UnionFind::new(6);
        a.union(0, 1);
        let mut b = UnionFind::new(6);
        b.union(1, 2);
        b.union(4, 5);
        a.absorb(&b);
        assert_eq!(a.components(), vec![vec![0, 1, 2], vec![3], vec![4, 5]]);
    }

    #[test]
    fn absorb_order_is_invisible_in_components() {
        let edges = [(0usize, 1usize), (1, 2), (5, 6), (2, 5), (8, 9)];
        let mut sequential = UnionFind::new(10);
        for &(x, y) in &edges {
            sequential.union(x, y);
        }
        // Split edges across two locals, absorb in both orders.
        for flip in [false, true] {
            let mut left = UnionFind::new(10);
            let mut right = UnionFind::new(10);
            for (i, &(x, y)) in edges.iter().enumerate() {
                if (i % 2 == 0) != flip {
                    left.union(x, y);
                } else {
                    right.union(x, y);
                }
            }
            let mut merged = UnionFind::new(10);
            merged.absorb(&left);
            merged.absorb(&right);
            assert_eq!(merged.components(), sequential.components());
        }
    }

    #[test]
    #[should_panic(expected = "different universe")]
    fn absorb_length_mismatch_panics() {
        let mut a = UnionFind::new(3);
        a.absorb(&UnionFind::new(4));
    }
}
