//! MinHash signatures for near-duplicate text detection.
//!
//! The paper (§IV-B) finds near-duplicate user descriptions with MinHash over
//! tri-gram shinglings, treating two descriptions as identical "if their
//! minimum hash values of the tri-grams shinglings are the same". This module
//! provides a seeded [`MinHasher`] that produces fixed-width
//! [`MinHashSignature`]s, signature equality, and Jaccard estimation.

use serde::{Deserialize, Serialize};

use crate::shingle::trigram_shingles;

/// Default number of hash functions in a signature.
pub const DEFAULT_NUM_HASHES: usize = 64;

/// A factory for MinHash signatures using `k` independent 64-bit hash
/// functions derived from a seed.
///
/// # Example
///
/// ```
/// use ph_sketch::MinHasher;
///
/// let hasher = MinHasher::new(16, 42);
/// let a = hasher.signature_of_text("limited time offer click now");
/// let b = hasher.signature_of_text("limited time offer click now");
/// assert_eq!(a, b);
/// assert!(a.estimate_jaccard(&b) > 0.999);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MinHasher {
    /// Per-function multiplier (odd, derived from the seed).
    multipliers: Vec<u64>,
    /// Per-function XOR mask.
    masks: Vec<u64>,
}

impl MinHasher {
    /// Creates a hasher with `num_hashes` functions seeded by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `num_hashes == 0`.
    pub fn new(num_hashes: usize, seed: u64) -> Self {
        assert!(num_hashes > 0, "need at least one hash function");
        // SplitMix64 stream to derive per-function parameters deterministically.
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut multipliers = Vec::with_capacity(num_hashes);
        let mut masks = Vec::with_capacity(num_hashes);
        for _ in 0..num_hashes {
            multipliers.push(next() | 1); // odd multiplier = bijection mod 2^64
            masks.push(next());
        }
        Self { multipliers, masks }
    }

    /// Creates a hasher with [`DEFAULT_NUM_HASHES`] functions.
    pub fn with_default_width(seed: u64) -> Self {
        Self::new(DEFAULT_NUM_HASHES, seed)
    }

    /// Number of hash functions (signature width).
    pub fn num_hashes(&self) -> usize {
        self.multipliers.len()
    }

    /// Signature of an arbitrary shingle iterator.
    ///
    /// An empty input produces the all-`u64::MAX` signature, which only
    /// compares equal to other empty signatures.
    pub fn signature<I, S>(&self, shingles: I) -> MinHashSignature
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut mins = vec![u64::MAX; self.num_hashes()];
        for shingle in shingles {
            let base = fnv1a(shingle.as_ref().as_bytes());
            for (i, min) in mins.iter_mut().enumerate() {
                let h = (base ^ self.masks[i]).wrapping_mul(self.multipliers[i]);
                if h < *min {
                    *min = h;
                }
            }
        }
        MinHashSignature { mins }
    }

    /// Signature of raw text: tri-gram shingles over the text as-is.
    ///
    /// Callers that need the paper's normalization should pass the text
    /// through [`crate::shingle::normalize`] first.
    pub fn signature_of_text(&self, text: &str) -> MinHashSignature {
        self.signature(trigram_shingles(text))
    }
}

/// A MinHash signature: the element-wise minimum of hashed shingles.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MinHashSignature {
    mins: Vec<u64>,
}

impl MinHashSignature {
    /// Signature width.
    pub fn len(&self) -> usize {
        self.mins.len()
    }

    /// True when the signature has zero width (never produced by
    /// [`MinHasher`], which requires at least one function).
    pub fn is_empty(&self) -> bool {
        self.mins.is_empty()
    }

    /// Raw minimum values.
    pub fn as_slice(&self) -> &[u64] {
        &self.mins
    }

    /// Fraction of matching positions — an unbiased estimator of Jaccard
    /// similarity between the underlying shingle sets.
    ///
    /// # Panics
    ///
    /// Panics if the signatures have different widths (i.e. came from
    /// different hashers).
    pub fn estimate_jaccard(&self, other: &Self) -> f64 {
        assert_eq!(
            self.len(),
            other.len(),
            "signatures must come from the same MinHasher"
        );
        if self.is_empty() {
            return 1.0;
        }
        let matches = self
            .mins
            .iter()
            .zip(&other.mins)
            .filter(|(a, b)| a == b)
            .count();
        matches as f64 / self.len() as f64
    }

    /// The paper's identity criterion: all minimum hash values equal.
    pub fn matches(&self, other: &Self) -> bool {
        self.mins == other.mins
    }
}

/// FNV-1a 64-bit hash of a byte slice.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shingle::{jaccard, normalize, trigram_shingles};

    #[test]
    fn identical_texts_match() {
        let h = MinHasher::new(32, 7);
        let a = h.signature_of_text("win a free iphone today");
        let b = h.signature_of_text("win a free iphone today");
        assert!(a.matches(&b));
        assert_eq!(a.estimate_jaccard(&b), 1.0);
    }

    #[test]
    fn different_texts_do_not_match() {
        let h = MinHasher::new(32, 7);
        let a = h.signature_of_text("win a free iphone today");
        let b = h.signature_of_text("the weather in lafayette is humid");
        assert!(!a.matches(&b));
        assert!(a.estimate_jaccard(&b) < 0.5);
    }

    #[test]
    fn estimate_tracks_true_jaccard() {
        let h = MinHasher::new(256, 99);
        let t1 = "cheap followers instant delivery guaranteed results buy now";
        let t2 = "cheap followers instant delivery guaranteed results order today";
        let (s1, s2) = (h.signature_of_text(t1), h.signature_of_text(t2));
        let truth = jaccard(&trigram_shingles(t1), &trigram_shingles(t2));
        let est = s1.estimate_jaccard(&s2);
        assert!(
            (est - truth).abs() < 0.15,
            "estimate {est} too far from truth {truth}"
        );
    }

    #[test]
    fn empty_text_signature_is_saturated() {
        let h = MinHasher::new(8, 1);
        let s = h.signature_of_text("");
        assert!(s.as_slice().iter().all(|&m| m == u64::MAX));
    }

    #[test]
    fn seeds_produce_different_hashers() {
        let a = MinHasher::new(16, 1).signature_of_text("hello world text");
        let b = MinHasher::new(16, 2).signature_of_text("hello world text");
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "same MinHasher")]
    fn mismatched_widths_panic() {
        let a = MinHasher::new(8, 1).signature_of_text("x y z");
        let b = MinHasher::new(16, 1).signature_of_text("x y z");
        let _ = a.estimate_jaccard(&b);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_hashes_panics() {
        let _ = MinHasher::new(0, 1);
    }

    #[test]
    fn normalized_campaign_variants_collide() {
        // Same template, different URL — the paper's canonical campaign case.
        let h = MinHasher::new(64, 3);
        let a = h.signature_of_text(&normalize("Earn $$$ fast!! visit https://a.example/aaa"));
        let b = h.signature_of_text(&normalize("Earn $$$ fast!! visit https://b.example/zzz"));
        assert!(a.matches(&b));
    }
}
