//! `ph-telemetry` — observability substrate for the pseudo-honeypot
//! pipeline.
//!
//! The paper's headline numbers are *rates measured over time* (PGE,
//! spammers per node-hour, collection efficiency), so the reproduction
//! needs to see its own stages: how long a simulated hour takes, how many
//! tweets the monitor collected and shed, where labeling time goes, how
//! expensive forest training is per tree. This crate provides that with
//! zero dependencies (std only):
//!
//! - **Spans** ([`span`], [`time`]): wall-clock timed, hierarchical via a
//!   per-thread stack — nesting `span("monitor.run")` over
//!   `span("switch")` records `monitor.run.switch`. Aggregated as
//!   count/total/min/max per path.
//! - **Counters** ([`counter`]): monotone `u64`s (tweets collected,
//!   tweets dropped, features extracted).
//! - **Gauges** ([`gauge`]): last-value-wins `f64`s with an `add` upsert
//!   (buffer depth, per-slot node-hours).
//! - **Histograms** ([`histogram`]): fixed upper-bound buckets plus a
//!   catch-all overflow bucket, with sum/min/max — latency and per-hour
//!   volume distributions.
//! - **Run reports** ([`snapshot`], [`RunReport::to_json`],
//!   [`write_json_report`]): one JSON document with every metric above,
//!   written by the CLI's `--metrics-out` and by every `ph-bench` binary.
//! - **A leveled logger** ([`set_max_level`], [`log_info!`] and
//!   friends): the CLI's `--log-level`/`--quiet` plumbing.
//! - **A typed event journal** ([`journal_emit`], [`TelemetryEvent`]):
//!   ordered pipeline events (hour ticks, attribute switches, labeling
//!   passes, checkpoint/roll, shard stalls) with monotone sequence
//!   numbers; the deterministic subset persists into run stores.
//! - **Time series** ([`series`]): fixed-capacity rings of per-engine-
//!   hour buckets — per-hour collection volume, shed counts,
//!   per-attribute PGE inputs.
//! - **Alert rules** ([`alert_install`], [`alert_evaluate`]): a small
//!   deterministic threshold / multi-window burn-rate evaluator over the
//!   per-hour series, emitting `SloBreach`/`SloRecovered` journal events
//!   and `alert.*` gauges at hour boundaries.
//! - **A flight recorder** ([`flight_note`], [`flight_snapshot`]): a
//!   fixed-capacity ring of recent journal events and notes,
//!   wall-clock stamped, dumped into a store (`flight.log`) on SIGQUIT,
//!   watchdog trip, or panic for post-mortem diagnosis.
//! - **Prometheus export** ([`to_prometheus`]): the same snapshot in
//!   text-exposition format (CLI `--metrics-format prom`).
//! - **Live progress** ([`set_progress`], [`progress_update`]):
//!   stderr-only status line, so stdout byte-identity is preserved.
//!
//! Everything lives in one process-global registry, is thread-safe, and
//! is cheap enough for per-stage (not per-tweet-inner-loop)
//! instrumentation: counters are a single atomic add once the handle is
//! cached (see [`cached_counter!`]), spans cost two `Instant::now` calls
//! plus one short mutex-guarded map update on close.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alert;
mod event;
mod flight;
mod json;
mod logger;
mod metrics;
mod progress;
mod prom;
mod registry;
mod report;
mod series;
mod spans;

pub use alert::{
    alert_active, alert_evaluate, alert_install, alert_reset, rule_fires, rule_value, AlertKind,
    AlertRule,
};
pub use event::{journal_emit, journal_reset, journal_snapshot, JournalEntry, TelemetryEvent};
pub use flight::{flight_note, flight_reset, flight_snapshot, FlightEntry, FLIGHT_CAPACITY};
pub use logger::{log_args, set_max_level, set_quiet, Level, ParseLevelError};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use progress::{progress_bar, progress_done, progress_enabled, progress_update, set_progress};
pub use prom::to_prometheus;
pub use registry::{counter, gauge, histogram, reset, set_meta, snapshot};
pub use report::{
    write_json_report, write_report, CounterSnapshot, GaugeSnapshot, HistogramReport, ReportFormat,
    RunReport, SpanSnapshot,
};
pub use series::{
    run_series_points, series, series_reset, series_snapshot, Series, SeriesPoint,
    DEFAULT_SERIES_CAPACITY,
};
pub use spans::{span, time, SpanGuard};

/// Default bucket upper bounds (milliseconds) for stage-latency
/// histograms: exponential 0.25 ms → 16 s.
#[must_use]
pub fn default_latency_buckets_ms() -> Vec<f64> {
    let mut edge = 0.25;
    let mut buckets = Vec::with_capacity(17);
    while edge <= 16_384.0 {
        buckets.push(edge);
        edge *= 2.0;
    }
    buckets
}

/// Fetches (and on first use registers) a counter through a per-call-site
/// static cell, making steady-state increments a single atomic add.
#[macro_export]
macro_rules! cached_counter {
    ($name:expr) => {{
        static CELL: ::std::sync::OnceLock<::std::sync::Arc<$crate::Counter>> =
            ::std::sync::OnceLock::new();
        &**CELL.get_or_init(|| $crate::counter($name))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global registry is shared across the test binary's threads, so
    // these tests use distinct metric names instead of `reset()` races.

    #[test]
    fn counters_accumulate_and_snapshot() {
        counter("test.lib.counter").add(3);
        counter("test.lib.counter").add(4);
        let report = snapshot();
        let c = report
            .counters
            .iter()
            .find(|c| c.name == "test.lib.counter")
            .expect("registered");
        assert!(c.value >= 7);
    }

    #[test]
    fn cached_counter_returns_the_same_instance() {
        let a = cached_counter!("test.lib.cached") as *const Counter;
        let b = cached_counter!("test.lib.cached2") as *const Counter;
        assert_ne!(a, b, "distinct call sites may differ");
        for _ in 0..10 {
            cached_counter!("test.lib.cached").add(1);
        }
        let report = snapshot();
        let c = report
            .counters
            .iter()
            .find(|c| c.name == "test.lib.cached")
            .expect("registered");
        assert!(c.value >= 10);
    }

    #[test]
    fn default_buckets_are_sorted_and_positive() {
        let buckets = default_latency_buckets_ms();
        assert!(buckets.len() > 10);
        assert!(buckets.windows(2).all(|w| w[0] < w[1]));
        assert!(buckets[0] > 0.0);
    }
}
