//! Prometheus text-exposition rendering of a [`RunReport`].
//!
//! The output follows the text format version 0.0.4: every non-comment
//! line is `name{labels} value` (labels optional), preceded by
//! `# HELP`/`# TYPE` headers per metric family. Metric names are
//! sanitized to `[a-zA-Z_][a-zA-Z0-9_]*` and prefixed `ph_`; the
//! original dotted name survives either in the sanitized form
//! (`monitor.tweets_collected` → `ph_monitor_tweets_collected`) or as a
//! label (spans, series).

use std::fmt::Write as _;

use crate::report::RunReport;
use crate::series::SeriesPoint;

/// Maps a dotted registry name onto a legal Prometheus metric name.
fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 3);
    out.push_str("ph_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escapes a label value. Text format 0.0.4: inside label values,
/// backslash, double quote, and line feed become `\\`, `\"`, `\n`.
fn label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Escapes `# HELP` docstring text. Text format 0.0.4 escapes **only**
/// backslash and line feed in HELP lines — a double quote must pass
/// through verbatim (escaping it as `\"` renders a literal backslash in
/// scrapers, which is the bug this replaces: HELP lines used to reuse
/// [`label_value`]).
fn help_text(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Formats a sample value the way Prometheus expects (`+Inf`, `-Inf`,
/// `NaN` spellings for non-finite floats).
fn sample(value: f64) -> String {
    if value.is_nan() {
        "NaN".to_string()
    } else if value == f64::INFINITY {
        "+Inf".to_string()
    } else if value == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{value}")
    }
}

/// Renders `report` (plus flattened `series` points) in the Prometheus
/// text exposition format.
#[must_use]
pub fn to_prometheus(report: &RunReport, series: &[SeriesPoint]) -> String {
    let mut out = String::with_capacity(8192);

    if !report.meta.is_empty() {
        out.push_str("# HELP ph_meta Run metadata as key/value labels\n");
        out.push_str("# TYPE ph_meta gauge\n");
        for (key, value) in &report.meta {
            let _ = writeln!(
                out,
                "ph_meta{{key=\"{}\",value=\"{}\"}} 1",
                label_value(key),
                label_value(value)
            );
        }
    }

    for c in &report.counters {
        let name = metric_name(&c.name);
        let _ = writeln!(out, "# HELP {name} Counter {}", help_text(&c.name));
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {}", c.value);
    }

    for g in &report.gauges {
        let name = metric_name(&g.name);
        let _ = writeln!(out, "# HELP {name} Gauge {}", help_text(&g.name));
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {}", sample(g.value));
    }

    for h in &report.histograms {
        let name = metric_name(&h.name);
        let _ = writeln!(out, "# HELP {name} Histogram {}", help_text(&h.name));
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (bound, count) in h.snapshot.bounds.iter().zip(&h.snapshot.counts) {
            cumulative += count;
            let _ = writeln!(
                out,
                "{name}_bucket{{le=\"{}\"}} {cumulative}",
                sample(*bound)
            );
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.snapshot.count);
        let _ = writeln!(out, "{name}_sum {}", sample(h.snapshot.sum));
        let _ = writeln!(out, "{name}_count {}", h.snapshot.count);
        if h.snapshot.count > 0 {
            // Precomputed quantiles as a sibling gauge family (a
            // histogram family itself may only carry bucket/sum/count
            // samples) — the same interpolated walk `inspect` renders.
            let _ = writeln!(
                out,
                "# HELP {name}_quantiles Interpolated quantiles of {}",
                help_text(&h.name)
            );
            let _ = writeln!(out, "# TYPE {name}_quantiles gauge");
            for q in [0.5, 0.95, 0.99] {
                let _ = writeln!(
                    out,
                    "{name}_quantiles{{quantile=\"{q}\"}} {}",
                    sample(h.snapshot.quantile(q))
                );
            }
        }
    }

    if !report.spans.is_empty() {
        out.push_str("# HELP ph_span_total_ms Total wall-clock milliseconds per span path\n");
        out.push_str("# TYPE ph_span_total_ms counter\n");
        for s in &report.spans {
            let _ = writeln!(
                out,
                "ph_span_total_ms{{path=\"{}\"}} {}",
                label_value(&s.path),
                sample(s.total_ms)
            );
        }
        out.push_str("# HELP ph_span_count Number of closes per span path\n");
        out.push_str("# TYPE ph_span_count counter\n");
        for s in &report.spans {
            let _ = writeln!(
                out,
                "ph_span_count{{path=\"{}\"}} {}",
                label_value(&s.path),
                s.count
            );
        }
    }

    if !series.is_empty() {
        out.push_str("# HELP ph_series Per-engine-hour time-series buckets\n");
        out.push_str("# TYPE ph_series gauge\n");
        for p in series {
            let _ = writeln!(
                out,
                "ph_series{{name=\"{}\",hour=\"{}\"}} {}",
                label_value(&p.name),
                p.hour,
                sample(p.value)
            );
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::HistogramSnapshot;
    use crate::report::{CounterSnapshot, GaugeSnapshot, HistogramReport, SpanSnapshot};

    fn sample_report() -> RunReport {
        RunReport {
            meta: vec![("threads".to_string(), "4".to_string())],
            spans: vec![SpanSnapshot {
                path: "monitor.run".to_string(),
                count: 2,
                total_ms: 3.5,
                mean_ms: 1.75,
                min_ms: 1.0,
                max_ms: 2.5,
            }],
            counters: vec![CounterSnapshot {
                name: "monitor.tweets_collected".to_string(),
                value: 42,
            }],
            gauges: vec![GaugeSnapshot {
                name: "exec.stage.queue-depth".to_string(),
                value: 1.5,
            }],
            histograms: vec![HistogramReport {
                name: "detect.rf_confidence".to_string(),
                snapshot: HistogramSnapshot {
                    bounds: vec![0.5, 1.0],
                    counts: vec![3, 1, 0],
                    count: 4,
                    sum: 1.9,
                    min: 0.1,
                    max: 0.9,
                },
            }],
        }
    }

    /// The shape ci.sh asserts: every line is a comment or
    /// `name{labels} value`.
    fn line_is_well_formed(line: &str) -> bool {
        if line.starts_with("# HELP ") || line.starts_with("# TYPE ") {
            return true;
        }
        let (name_part, value) = match line.rsplit_once(' ') {
            Some(parts) => parts,
            None => return false,
        };
        let name = name_part.split('{').next().unwrap_or("");
        !name.is_empty()
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
            && (value.parse::<f64>().is_ok() || ["+Inf", "-Inf", "NaN"].contains(&value))
    }

    #[test]
    fn every_line_parses() {
        let text = to_prometheus(
            &sample_report(),
            &[SeriesPoint {
                name: "monitor.collected".to_string(),
                hour: 3,
                value: 17.0,
            }],
        );
        assert!(!text.is_empty());
        for line in text.lines() {
            assert!(line_is_well_formed(line), "bad line: {line}");
        }
    }

    #[test]
    fn meta_becomes_labeled_constant_gauges() {
        let text = to_prometheus(&sample_report(), &[]);
        assert!(text.contains("ph_meta{key=\"threads\",value=\"4\"} 1"));
        assert!(!to_prometheus(&RunReport::default(), &[]).contains("ph_meta"));
    }

    #[test]
    fn names_are_sanitized_and_prefixed() {
        let text = to_prometheus(&sample_report(), &[]);
        assert!(text.contains("ph_monitor_tweets_collected 42"));
        assert!(text.contains("ph_exec_stage_queue_depth 1.5"));
        assert!(!text.contains("queue-depth 1.5"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_with_inf() {
        let text = to_prometheus(&sample_report(), &[]);
        assert!(text.contains("ph_detect_rf_confidence_bucket{le=\"0.5\"} 3"));
        assert!(text.contains("ph_detect_rf_confidence_bucket{le=\"1\"} 4"));
        assert!(text.contains("ph_detect_rf_confidence_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("ph_detect_rf_confidence_count 4"));
    }

    #[test]
    fn histograms_export_interpolated_quantiles() {
        let report = sample_report();
        let text = to_prometheus(&report, &[]);
        assert!(text.contains("# TYPE ph_detect_rf_confidence_quantiles gauge"));
        for q in [0.5, 0.95, 0.99] {
            let expected = format!(
                "ph_detect_rf_confidence_quantiles{{quantile=\"{q}\"}} {}",
                sample(report.histograms[0].snapshot.quantile(q))
            );
            assert!(text.contains(&expected), "missing {expected} in:\n{text}");
        }
        // An empty histogram exports no quantile samples.
        let mut empty = sample_report();
        empty.histograms[0].snapshot.count = 0;
        assert!(!to_prometheus(&empty, &[]).contains("_quantiles"));
    }

    /// A hostile meta value (quotes, backslashes, newlines) must escape
    /// per text format 0.0.4: `\\`, `\"`, `\n` inside the label value —
    /// one physical line, no raw quote terminating the value early —
    /// while HELP docstrings escape only backslash and newline (a
    /// double quote stays verbatim there).
    #[test]
    fn hostile_meta_and_names_escape_per_text_format() {
        let report = RunReport {
            meta: vec![(
                "cmdline".to_string(),
                "sniff --name \"ab\\cd\"\nsecond line".to_string(),
            )],
            counters: vec![CounterSnapshot {
                name: "weird\"name".to_string(),
                value: 1,
            }],
            ..Default::default()
        };
        let text = to_prometheus(&report, &[]);
        assert!(
            text.contains(
                r#"ph_meta{key="cmdline",value="sniff --name \"ab\\cd\"\nsecond line"} 1"#
            ),
            "meta line not escaped as expected:\n{text}"
        );
        // The label value must not smuggle a raw newline into the output.
        for line in text.lines() {
            assert!(line_is_well_formed(line), "bad line: {line}");
        }
        // HELP text keeps the quote verbatim (no `\"` there).
        assert!(
            text.contains("# HELP ph_weird_name Counter weird\"name"),
            "HELP line over-escaped:\n{text}"
        );
    }

    #[test]
    fn series_points_become_labeled_gauges() {
        let text = to_prometheus(
            &RunReport::default(),
            &[SeriesPoint {
                name: "pge.hashtag.politics".to_string(),
                hour: 7,
                value: 0.25,
            }],
        );
        assert!(text.contains("ph_series{name=\"pge.hashtag.politics\",hour=\"7\"} 0.25"));
    }
}
