//! Machine-readable run reports: a point-in-time snapshot of the whole
//! registry, serialized as one JSON document.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use crate::json;
use crate::metrics::HistogramSnapshot;

/// Aggregated timing for one span path.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSnapshot {
    /// Dotted span path, e.g. `"monitor.run.switch"`.
    pub path: String,
    /// Number of times the span closed.
    pub count: u64,
    /// Total wall-clock milliseconds across all closes.
    pub total_ms: f64,
    /// Mean milliseconds per close (0 when `count` is 0).
    pub mean_ms: f64,
    /// Fastest close, milliseconds.
    pub min_ms: f64,
    /// Slowest close, milliseconds.
    pub max_ms: f64,
}

/// One counter's name and value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Registered counter name.
    pub name: String,
    /// Current total.
    pub value: u64,
}

/// One gauge's name and value.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeSnapshot {
    /// Registered gauge name.
    pub name: String,
    /// Current value.
    pub value: f64,
}

/// One histogram's name and distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramReport {
    /// Registered histogram name.
    pub name: String,
    /// The distribution at snapshot time.
    pub snapshot: HistogramSnapshot,
}

/// Everything the registry knew at snapshot time, sorted by name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunReport {
    /// Run metadata key/value pairs (thread count, seed, crate
    /// version, …), sorted by key. See [`crate::set_meta`].
    pub meta: Vec<(String, String)>,
    /// Span timing aggregates, sorted by path.
    pub spans: Vec<SpanSnapshot>,
    /// Counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// Gauges, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramReport>,
}

impl RunReport {
    /// Finds a counter's value by name.
    #[must_use]
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Finds a span aggregate by path.
    #[must_use]
    pub fn span(&self, path: &str) -> Option<&SpanSnapshot> {
        self.spans.iter().find(|s| s.path == path)
    }

    /// Renders the report as a pretty-printed JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"meta\": {");
        for (i, (key, value)) in self.meta.iter().enumerate() {
            out.push_str(if i == 0 { "\n    " } else { ",\n    " });
            json::push_str_literal(&mut out, key);
            out.push_str(": ");
            json::push_str_literal(&mut out, value);
        }
        out.push_str("\n  },\n  \"spans\": [");
        for (i, s) in self.spans.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\"path\": ");
            json::push_str_literal(&mut out, &s.path);
            let _ = write!(out, ", \"count\": {}, \"total_ms\": ", s.count);
            json::push_f64(&mut out, s.total_ms);
            out.push_str(", \"mean_ms\": ");
            json::push_f64(&mut out, s.mean_ms);
            out.push_str(", \"min_ms\": ");
            json::push_f64(&mut out, s.min_ms);
            out.push_str(", \"max_ms\": ");
            json::push_f64(&mut out, s.max_ms);
            out.push('}');
        }
        out.push_str("\n  ],\n  \"counters\": [");
        for (i, c) in self.counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\"name\": ");
            json::push_str_literal(&mut out, &c.name);
            let _ = write!(out, ", \"value\": {}}}", c.value);
        }
        out.push_str("\n  ],\n  \"gauges\": [");
        for (i, g) in self.gauges.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\"name\": ");
            json::push_str_literal(&mut out, &g.name);
            out.push_str(", \"value\": ");
            json::push_f64(&mut out, g.value);
            out.push('}');
        }
        out.push_str("\n  ],\n  \"histograms\": [");
        for (i, h) in self.histograms.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\"name\": ");
            json::push_str_literal(&mut out, &h.name);
            out.push_str(", \"bounds\": ");
            json::push_f64_array(&mut out, &h.snapshot.bounds);
            out.push_str(", \"counts\": ");
            json::push_u64_array(&mut out, &h.snapshot.counts);
            let _ = write!(out, ", \"count\": {}, \"sum\": ", h.snapshot.count);
            json::push_f64(&mut out, h.snapshot.sum);
            out.push_str(", \"mean\": ");
            json::push_f64(&mut out, h.snapshot.mean());
            out.push_str(", \"min\": ");
            json::push_f64(&mut out, h.snapshot.min);
            out.push_str(", \"max\": ");
            json::push_f64(&mut out, h.snapshot.max);
            out.push('}');
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Output format for [`write_report`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportFormat {
    /// The pretty-printed JSON run report ([`RunReport::to_json`]).
    Json,
    /// Prometheus text exposition ([`crate::to_prometheus`]), including
    /// the flattened time series.
    Prom,
}

/// Snapshots the registry and writes the report to `path` in the chosen
/// format, creating parent directories as needed. The one metrics-file
/// writer behind both the CLI's `--metrics-out` and the bench binaries'
/// `results/<name>.metrics.json` files.
pub fn write_report(path: &Path, format: ReportFormat) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let body = match format {
        ReportFormat::Json => crate::snapshot().to_json(),
        ReportFormat::Prom => crate::to_prometheus(&crate::snapshot(), &crate::series_snapshot()),
    };
    std::fs::write(path, body)
}

/// Snapshots the registry and writes the JSON report to `path`, creating
/// parent directories as needed. Equivalent to
/// `write_report(path, ReportFormat::Json)`.
pub fn write_json_report(path: &Path) -> io::Result<()> {
    write_report(path, ReportFormat::Json)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> RunReport {
        RunReport {
            meta: vec![
                ("seed".to_string(), "42".to_string()),
                ("threads".to_string(), "1".to_string()),
            ],
            spans: vec![SpanSnapshot {
                path: "a.b".to_string(),
                count: 2,
                total_ms: 3.0,
                mean_ms: 1.5,
                min_ms: 1.0,
                max_ms: 2.0,
            }],
            counters: vec![CounterSnapshot {
                name: "tweets".to_string(),
                value: 7,
            }],
            gauges: vec![GaugeSnapshot {
                name: "depth".to_string(),
                value: 0.5,
            }],
            histograms: vec![HistogramReport {
                name: "lat".to_string(),
                snapshot: HistogramSnapshot {
                    bounds: vec![1.0],
                    counts: vec![1, 0],
                    count: 1,
                    sum: 0.25,
                    min: 0.25,
                    max: 0.25,
                },
            }],
        }
    }

    #[test]
    fn json_contains_every_section() {
        let json = sample_report().to_json();
        for needle in [
            "\"meta\"",
            "\"seed\": \"42\"",
            "\"threads\": \"1\"",
            "\"spans\"",
            "\"counters\"",
            "\"gauges\"",
            "\"histograms\"",
            "\"path\": \"a.b\"",
            "\"name\": \"tweets\", \"value\": 7",
            "\"bounds\": [1]",
            "\"counts\": [1,0]",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn json_is_balanced() {
        // Cheap structural check without a parser: balanced delimiters
        // and no trailing commas before closers.
        let json = sample_report().to_json();
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes);
        assert!(!json.contains(",]") && !json.contains(",}"));
    }

    #[test]
    fn lookup_helpers_find_entries() {
        let report = sample_report();
        assert_eq!(report.counter_value("tweets"), Some(7));
        assert_eq!(report.counter_value("nope"), None);
        assert_eq!(report.span("a.b").map(|s| s.count), Some(2));
    }

    #[test]
    fn write_creates_parent_dirs() {
        let dir = std::env::temp_dir().join("ph-telemetry-test-report");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("run.json");
        write_json_report(&path).expect("write succeeds");
        let body = std::fs::read_to_string(&path).expect("readable");
        assert!(body.starts_with('{') && body.trim_end().ends_with('}'));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
