//! The process-global metric registry.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::metrics::{Counter, Gauge, Histogram};
use crate::report::{CounterSnapshot, GaugeSnapshot, HistogramReport, RunReport, SpanSnapshot};
use crate::spans::SpanStats;

#[derive(Default)]
struct Registry {
    counters: Mutex<HashMap<String, Arc<Counter>>>,
    gauges: Mutex<HashMap<String, Arc<Gauge>>>,
    histograms: Mutex<HashMap<String, Arc<Histogram>>>,
    spans: Mutex<HashMap<String, SpanStats>>,
    meta: Mutex<HashMap<String, String>>,
}

fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::default)
}

/// Fetches (registering on first use) the counter named `name`.
pub fn counter(name: &str) -> Arc<Counter> {
    let mut counters = global().counters.lock().expect("registry lock poisoned");
    Arc::clone(
        counters
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Counter::default())),
    )
}

/// Fetches (registering on first use) the gauge named `name`.
pub fn gauge(name: &str) -> Arc<Gauge> {
    let mut gauges = global().gauges.lock().expect("registry lock poisoned");
    Arc::clone(
        gauges
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Gauge::default())),
    )
}

/// Fetches (registering on first use) the histogram named `name` with the
/// given bucket upper edges. A histogram keeps the bounds it was first
/// registered with; later callers' `bounds` are ignored.
pub fn histogram(name: &str, bounds: &[f64]) -> Arc<Histogram> {
    let mut histograms = global().histograms.lock().expect("registry lock poisoned");
    Arc::clone(
        histograms
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new(bounds))),
    )
}

/// Records a key/value pair of run metadata (thread count, seed, crate
/// version, …) carried verbatim into every report so files from
/// different runs/machines are comparable. Last write per key wins;
/// cleared by [`reset`].
pub fn set_meta(key: &str, value: &str) {
    let mut meta = global().meta.lock().expect("registry lock poisoned");
    meta.insert(key.to_string(), value.to_string());
}

pub(crate) fn record_span(path: &str, elapsed_ns: u64) {
    let mut spans = global().spans.lock().expect("registry lock poisoned");
    spans
        .entry(path.to_string())
        .or_default()
        .record(elapsed_ns);
}

/// Zeroes every registered metric **in place**: cached counter/gauge/
/// histogram handles stay valid; span aggregates, the event journal,
/// and every time series are cleared. Intended for the start of an
/// instrumented run (and for tests).
pub fn reset() {
    crate::event::journal_reset();
    crate::series::series_reset();
    let registry = global();
    for c in registry
        .counters
        .lock()
        .expect("registry lock poisoned")
        .values()
    {
        c.zero();
    }
    for g in registry
        .gauges
        .lock()
        .expect("registry lock poisoned")
        .values()
    {
        g.zero();
    }
    for h in registry
        .histograms
        .lock()
        .expect("registry lock poisoned")
        .values()
    {
        h.zero();
    }
    registry
        .spans
        .lock()
        .expect("registry lock poisoned")
        .clear();
    registry
        .meta
        .lock()
        .expect("registry lock poisoned")
        .clear();
}

/// Takes a consistent point-in-time copy of every registered metric,
/// sorted by name for stable report diffs.
#[must_use]
pub fn snapshot() -> RunReport {
    let registry = global();
    let mut counters: Vec<CounterSnapshot> = registry
        .counters
        .lock()
        .expect("registry lock poisoned")
        .iter()
        .map(|(name, c)| CounterSnapshot {
            name: name.clone(),
            value: c.get(),
        })
        .collect();
    counters.sort_by(|a, b| a.name.cmp(&b.name));

    let mut gauges: Vec<GaugeSnapshot> = registry
        .gauges
        .lock()
        .expect("registry lock poisoned")
        .iter()
        .map(|(name, g)| GaugeSnapshot {
            name: name.clone(),
            value: g.get(),
        })
        .collect();
    gauges.sort_by(|a, b| a.name.cmp(&b.name));

    let mut histograms: Vec<HistogramReport> = registry
        .histograms
        .lock()
        .expect("registry lock poisoned")
        .iter()
        .map(|(name, h)| HistogramReport {
            name: name.clone(),
            snapshot: h.snapshot(),
        })
        .collect();
    histograms.sort_by(|a, b| a.name.cmp(&b.name));

    let mut spans: Vec<SpanSnapshot> = registry
        .spans
        .lock()
        .expect("registry lock poisoned")
        .iter()
        .map(|(path, stats)| SpanSnapshot {
            path: path.clone(),
            count: stats.count,
            total_ms: stats.total_ns as f64 / 1e6,
            mean_ms: if stats.count == 0 {
                0.0
            } else {
                stats.total_ns as f64 / stats.count as f64 / 1e6
            },
            min_ms: stats.min_ns as f64 / 1e6,
            max_ms: stats.max_ns as f64 / 1e6,
        })
        .collect();
    spans.sort_by(|a, b| a.path.cmp(&b.path));

    let mut meta: Vec<(String, String)> = registry
        .meta
        .lock()
        .expect("registry lock poisoned")
        .iter()
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect();
    meta.sort();

    RunReport {
        meta,
        spans,
        counters,
        gauges,
        histograms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_returns_shared_instances() {
        let a = counter("test.registry.shared");
        let b = counter("test.registry.shared");
        a.add(5);
        assert_eq!(b.get(), a.get());
    }

    #[test]
    fn histogram_keeps_first_bounds() {
        let a = histogram("test.registry.hist", &[1.0, 2.0]);
        let b = histogram("test.registry.hist", &[9.0]);
        a.record(1.5);
        assert_eq!(b.snapshot().bounds, vec![1.0, 2.0]);
        assert_eq!(b.count(), a.count());
    }

    #[test]
    fn snapshot_is_sorted() {
        counter("test.registry.zzz").inc();
        counter("test.registry.aaa").inc();
        let report = snapshot();
        let names: Vec<&str> = report.counters.iter().map(|c| c.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }
}
