//! The flight recorder: a fixed-capacity in-memory ring of recent
//! run events, wall-clock stamped.
//!
//! Metrics and the journal describe a run that *finished*; the flight
//! recorder exists for runs that did not. Every [`crate::journal_emit`]
//! call (deterministic or diagnostic) and every explicit
//! [`flight_note`] lands here with an epoch-millisecond stamp, and the
//! ring keeps only the most recent [`FLIGHT_CAPACITY`] entries — O(1)
//! memory however long a daemon soaks. On SIGQUIT, on a watchdog trip,
//! or from a panic hook, the owner dumps the ring into the store
//! (`ph-store`'s `flight.log`) so a dead soak is diagnosable from the
//! store directory alone.
//!
//! The ring carries wall-clock timestamps and scheduling-dependent
//! diagnostic events, so it is deliberately **outside** the byte-
//! stability contract: `flight.log` is only ever written on the
//! abnormal paths above, never by a clean run.

use std::collections::VecDeque;
use std::sync::{Mutex, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

/// Most recent entries the ring retains.
pub const FLIGHT_CAPACITY: usize = 4096;

/// One flight-recorder entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEntry {
    /// Wall-clock stamp, milliseconds since the Unix epoch.
    pub at_ms: u64,
    /// Short stable tag (`journal kind` or a caller-chosen note kind).
    pub kind: String,
    /// One-line human rendering.
    pub detail: String,
}

fn ring() -> &'static Mutex<VecDeque<FlightEntry>> {
    static GLOBAL: OnceLock<Mutex<VecDeque<FlightEntry>>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(VecDeque::new()))
}

fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Appends a note to the ring, evicting the oldest entry past capacity.
pub fn flight_note(kind: &str, detail: &str) {
    let mut ring = ring().lock().expect("flight ring poisoned");
    if ring.len() >= FLIGHT_CAPACITY {
        ring.pop_front();
    }
    ring.push_back(FlightEntry {
        at_ms: now_ms(),
        kind: kind.to_string(),
        detail: detail.to_string(),
    });
}

/// Copies out the ring, oldest entry first.
#[must_use]
pub fn flight_snapshot() -> Vec<FlightEntry> {
    ring()
        .lock()
        .expect("flight ring poisoned")
        .iter()
        .cloned()
        .collect()
}

/// Drops every entry (capacity is kept).
pub fn flight_reset() {
    ring().lock().expect("flight ring poisoned").clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    // The ring is process-global; serialize the tests that reset it.
    fn lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn notes_accumulate_in_order_with_nondecreasing_stamps() {
        let _guard = lock();
        flight_reset();
        for i in 0..5 {
            flight_note("test", &format!("note {i}"));
        }
        let entries = flight_snapshot();
        assert_eq!(entries.len(), 5);
        for (i, e) in entries.iter().enumerate() {
            assert_eq!(e.detail, format!("note {i}"));
        }
        assert!(entries.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
    }

    #[test]
    fn ring_evicts_oldest_past_capacity() {
        let _guard = lock();
        flight_reset();
        for i in 0..(FLIGHT_CAPACITY + 10) {
            flight_note("test", &format!("n{i}"));
        }
        let entries = flight_snapshot();
        assert_eq!(entries.len(), FLIGHT_CAPACITY);
        assert_eq!(entries[0].detail, "n10");
        flight_reset();
        assert!(flight_snapshot().is_empty());
    }

    #[test]
    fn journal_emits_feed_the_ring() {
        let _guard = lock();
        flight_reset();
        crate::journal_emit(crate::TelemetryEvent::SegmentRoll {
            segment: 7,
            records: 11,
        });
        let entries = flight_snapshot();
        assert!(entries
            .iter()
            .any(|e| e.kind == "segment_roll" && e.detail.contains("segment 7")));
    }
}
