//! Windowed time-series metrics: per-hour buckets in a fixed-capacity
//! ring, keyed by simulated engine hour rather than wall clock.
//!
//! The paper's quantities (PGE, per-hour collection volume, shed rate)
//! are rates over *simulated* time, so a series bucket is addressed by
//! engine hour. Each named series keeps at most `capacity` buckets;
//! when a new hour arrives past capacity, the oldest bucket is evicted
//! — a long-running monitor holds O(window) memory however many hours
//! it has seen.
//!
//! Series are also the persistence format for derived run statistics:
//! the CLI flattens stage throughput, span aggregates, and histogram
//! buckets into named points (`stage.*`, `span.*`, `hist.*`) and writes
//! them into the run's store, where `inspect` reads them back.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex, OnceLock};

/// Default ring capacity: far above any reproduction run length (the
/// paper's window is 21 days = 504 hours) while still bounding memory.
pub const DEFAULT_SERIES_CAPACITY: usize = 4096;

/// One named, hour-bucketed ring of values.
#[derive(Debug)]
pub struct Series {
    capacity: usize,
    buckets: Mutex<VecDeque<(u64, f64)>>,
}

impl Series {
    /// Creates an empty series holding at most `capacity` hour buckets.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Series {
            capacity: capacity.max(1),
            buckets: Mutex::new(VecDeque::new()),
        }
    }

    fn with_bucket(&self, hour: u64, f: impl FnOnce(&mut f64)) {
        let mut buckets = self.buckets.lock().expect("series lock poisoned");
        // Hot path: the monitor advances hour by hour, so the target is
        // almost always the final bucket.
        if let Some(last) = buckets.back_mut() {
            if last.0 == hour {
                f(&mut last.1);
                return;
            }
        }
        if let Some(entry) = buckets.iter_mut().find(|(h, _)| *h == hour) {
            f(&mut entry.1);
            return;
        }
        let mut value = 0.0;
        f(&mut value);
        // Keep buckets sorted by hour so snapshots are ordered even if
        // hours arrive out of order (e.g. backfill after classification).
        let at = buckets.partition_point(|(h, _)| *h < hour);
        buckets.insert(at, (hour, value));
        while buckets.len() > self.capacity {
            buckets.pop_front();
        }
    }

    /// Adds `delta` into the bucket for `hour`, creating it at 0 first.
    pub fn add(&self, hour: u64, delta: f64) {
        self.with_bucket(hour, |v| *v += delta);
    }

    /// Sets the bucket for `hour` to `value` (last write wins).
    pub fn set(&self, hour: u64, value: f64) {
        self.with_bucket(hour, |v| *v = value);
    }

    /// Copies out `(hour, value)` pairs sorted by hour.
    #[must_use]
    pub fn points(&self) -> Vec<(u64, f64)> {
        self.buckets
            .lock()
            .expect("series lock poisoned")
            .iter()
            .copied()
            .collect()
    }

    /// Drops every bucket (capacity is kept).
    pub fn zero(&self) {
        self.buckets.lock().expect("series lock poisoned").clear();
    }
}

/// One flattened series observation, as persisted and reported.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesPoint {
    /// Series name, dotted (`"monitor.collected"`, `"pge.profile.age"`).
    pub name: String,
    /// Engine-hour bucket (0 for run-level derived points).
    pub hour: u64,
    /// Bucket value.
    pub value: f64,
}

fn global() -> &'static Mutex<HashMap<String, Arc<Series>>> {
    static GLOBAL: OnceLock<Mutex<HashMap<String, Arc<Series>>>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Fetches (registering on first use) the series named `name` with the
/// default ring capacity.
pub fn series(name: &str) -> Arc<Series> {
    let mut map = global().lock().expect("series registry lock poisoned");
    Arc::clone(
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Series::new(DEFAULT_SERIES_CAPACITY))),
    )
}

/// Flattens every registered series into points sorted by name then
/// hour — a stable order for reports and persistence.
#[must_use]
pub fn series_snapshot() -> Vec<SeriesPoint> {
    let map = global().lock().expect("series registry lock poisoned");
    let mut names: Vec<&String> = map.keys().collect();
    names.sort();
    let mut out = Vec::new();
    for name in names {
        for (hour, value) in map[name].points() {
            out.push(SeriesPoint {
                name: name.clone(),
                hour,
                value,
            });
        }
    }
    out
}

/// Flattens the whole telemetry registry into hour-keyed series points
/// for persistence: every live time-series point, plus run-level
/// aggregates under structured names — `stage.<name>.{items,ms,tweets_per_s}`
/// from the exec counters/histograms, `span.<path>.{count,total_ms,mean_ms}`
/// from the span aggregates, and `hist.<name>.{count,sum,mean,p50,p95,p99}`
/// (interpolated quantiles) from every histogram — keyed to `final_hour`.
/// The series stream carries wall-clock quantities and is deliberately
/// outside the journal's byte-stability contract.
#[must_use]
pub fn run_series_points(final_hour: u64) -> Vec<SeriesPoint> {
    let mut points = series_snapshot();
    let report = crate::registry::snapshot();
    let mut push = |name: String, value: f64| {
        points.push(SeriesPoint {
            name,
            hour: final_hour,
            value,
        });
    };
    for c in &report.counters {
        if let Some(stage) = c
            .name
            .strip_prefix("exec.")
            .and_then(|s| s.strip_suffix(".items"))
        {
            push(format!("stage.{stage}.items"), c.value as f64);
        }
    }
    for h in &report.histograms {
        push(format!("hist.{}.count", h.name), h.snapshot.count as f64);
        push(format!("hist.{}.sum", h.name), h.snapshot.sum);
        push(format!("hist.{}.mean", h.name), h.snapshot.mean());
        push(format!("hist.{}.p50", h.name), h.snapshot.quantile(0.50));
        push(format!("hist.{}.p95", h.name), h.snapshot.quantile(0.95));
        push(format!("hist.{}.p99", h.name), h.snapshot.quantile(0.99));
        if let Some(stage) = h
            .name
            .strip_prefix("exec.")
            .and_then(|s| s.strip_suffix(".ms"))
        {
            push(format!("stage.{stage}.ms"), h.snapshot.sum);
            let items = report
                .counter_value(&format!("exec.{stage}.items"))
                .unwrap_or(0);
            let secs = h.snapshot.sum / 1000.0;
            if secs > 0.0 {
                push(format!("stage.{stage}.tweets_per_s"), items as f64 / secs);
            }
        }
    }
    for s in &report.spans {
        push(format!("span.{}.count", s.path), s.count as f64);
        push(format!("span.{}.total_ms", s.path), s.total_ms);
        push(format!("span.{}.mean_ms", s.path), s.mean_ms);
    }
    points.sort_by(|a, b| a.name.cmp(&b.name).then(a.hour.cmp(&b.hour)));
    points
}

/// Clears the buckets of every registered series in place (handles
/// stay valid).
pub fn series_reset() {
    for s in global()
        .lock()
        .expect("series registry lock poisoned")
        .values()
    {
        s.zero();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_accumulates_within_an_hour_bucket() {
        let s = Series::new(8);
        s.add(3, 1.0);
        s.add(3, 2.0);
        s.add(4, 5.0);
        assert_eq!(s.points(), vec![(3, 3.0), (4, 5.0)]);
    }

    #[test]
    fn set_overwrites() {
        let s = Series::new(8);
        s.set(1, 10.0);
        s.set(1, 4.0);
        assert_eq!(s.points(), vec![(1, 4.0)]);
    }

    #[test]
    fn ring_evicts_oldest_hour_past_capacity() {
        let s = Series::new(3);
        for hour in 0..5 {
            s.add(hour, 1.0);
        }
        assert_eq!(s.points(), vec![(2, 1.0), (3, 1.0), (4, 1.0)]);
    }

    #[test]
    fn out_of_order_hours_stay_sorted() {
        let s = Series::new(8);
        s.add(5, 1.0);
        s.add(2, 1.0);
        s.add(7, 1.0);
        let hours: Vec<u64> = s.points().iter().map(|(h, _)| *h).collect();
        assert_eq!(hours, vec![2, 5, 7]);
    }

    #[test]
    fn registry_shares_instances_and_snapshot_is_sorted() {
        series("test.series.zz").add(0, 1.0);
        series("test.series.aa").add(1, 2.0);
        series("test.series.aa").add(0, 2.0);
        let snap = series_snapshot();
        let ours: Vec<&SeriesPoint> = snap
            .iter()
            .filter(|p| p.name.starts_with("test.series."))
            .collect();
        assert!(ours.len() >= 3);
        let keys: Vec<(String, u64)> = ours.iter().map(|p| (p.name.clone(), p.hour)).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }
}
