//! Hierarchical wall-clock spans.
//!
//! A span is opened with [`span`] (RAII guard) or [`time`] (closure) and
//! records its elapsed wall-clock time when it closes. Span names nest
//! through a per-thread stack: closing `"switch"` while `"monitor.run"`
//! is open aggregates under the path `"monitor.run.switch"`. Aggregation
//! is count/total/min/max per path in the global registry.

use std::cell::RefCell;
use std::time::Instant;

use crate::registry;

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard: records the span on drop.
#[derive(Debug)]
pub struct SpanGuard {
    path: String,
    start: Instant,
    closed: bool,
}

/// Opens a span named `name`, nested under any span already open on this
/// thread.
pub fn span(name: &'static str) -> SpanGuard {
    let path = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        stack.push(name);
        stack.join(".")
    });
    SpanGuard {
        path,
        start: Instant::now(),
        closed: false,
    }
}

/// Times `f` under a span named `name`.
pub fn time<R>(name: &'static str, f: impl FnOnce() -> R) -> R {
    let _guard = span(name);
    f()
}

impl SpanGuard {
    /// The full dotted path this span records under.
    #[must_use]
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Elapsed time so far.
    #[must_use]
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }

    fn close(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        let elapsed_ns = self.start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        SPAN_STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        registry::record_span(&self.path, elapsed_ns);
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.close();
    }
}

/// Aggregated statistics for one span path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanStats {
    /// Number of times the span closed.
    pub count: u64,
    /// Total nanoseconds across all closes.
    pub total_ns: u64,
    /// Fastest close, nanoseconds.
    pub min_ns: u64,
    /// Slowest close, nanoseconds.
    pub max_ns: u64,
}

impl SpanStats {
    pub(crate) fn record(&mut self, elapsed_ns: u64) {
        if self.count == 0 {
            self.min_ns = elapsed_ns;
            self.max_ns = elapsed_ns;
        } else {
            self.min_ns = self.min_ns.min(elapsed_ns);
            self.max_ns = self.max_ns.max(elapsed_ns);
        }
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(elapsed_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot;

    fn stats_for(report: &crate::RunReport, path: &str) -> Option<crate::SpanSnapshot> {
        report.spans.iter().find(|s| s.path == path).cloned()
    }

    #[test]
    fn spans_nest_through_the_thread_stack() {
        {
            let outer = span("test.spans.outer");
            assert_eq!(outer.path(), "test.spans.outer");
            let inner = span("inner");
            assert_eq!(inner.path(), "test.spans.outer.inner");
            drop(inner);
            let second = span("second");
            assert_eq!(second.path(), "test.spans.outer.second");
        }
        let report = snapshot();
        let outer = stats_for(&report, "test.spans.outer").expect("outer recorded");
        assert!(outer.count >= 1);
        assert!(stats_for(&report, "test.spans.outer.inner").is_some());
        assert!(stats_for(&report, "test.spans.outer.second").is_some());
    }

    #[test]
    fn time_records_and_returns() {
        let value = time("test.spans.time", || 21 * 2);
        assert_eq!(value, 42);
        let report = snapshot();
        let s = stats_for(&report, "test.spans.time").expect("recorded");
        assert!(s.count >= 1);
        assert!(s.max_ms >= s.min_ms);
        assert!(s.total_ms >= s.max_ms - 1e-9);
    }

    #[test]
    fn sibling_threads_do_not_inherit_parents() {
        let _outer = span("test.spans.parent");
        let path = std::thread::scope(|scope| {
            scope
                .spawn(|| span("test.spans.child").path().to_string())
                .join()
                .expect("no panic")
        });
        assert_eq!(path, "test.spans.child");
    }

    #[test]
    fn span_stats_track_extremes() {
        let mut stats = SpanStats::default();
        stats.record(50);
        stats.record(10);
        stats.record(90);
        assert_eq!(stats.count, 3);
        assert_eq!(stats.total_ns, 150);
        assert_eq!(stats.min_ns, 10);
        assert_eq!(stats.max_ns, 90);
    }
}
